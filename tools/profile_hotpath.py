#!/usr/bin/env python
"""Profile the NIC datapath hot loop: cProfile + ktrace attribution.

Runs one netperf-recv workload under ``cProfile`` and reports where the
*wall-clock* cycles go, bucketed by simulator layer (driver loop, device
model, kernel core, io dispatch, net stack, tracing, workload), plus the
*virtual-time* attribution the kernel's CPU accounting keeps per charge
category.  The two views answer different questions:

* cProfile buckets: where does the **simulator** burn host CPU?  The
  compiled-datapath work (ISSUE 7) drives this toward the device-model
  bucket -- remaining cycles should be "hardware" costs, not interpreter
  overhead in the driver loop.
* ktrace/vtime categories: where does the **simulated machine** spend
  its virtual CPU?  This is the Table-3-style utilization split and is
  invariant under loop compilation (byte-identical runs charge identical
  virtual time).

Examples::

    PYTHONPATH=src python tools/profile_hotpath.py --top 10
    PYTHONPATH=src python tools/profile_hotpath.py --driver rtl8139 \
        --mode napi --seconds 0.5 --sort tottime
    PYTHONPATH=src python tools/profile_hotpath.py --driver e1000 \
        --smp 4 --queues 4 --interpreted
    PYTHONPATH=src python tools/profile_hotpath.py --fleet 1024
"""

import argparse
import cProfile
import hashlib
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.workloads.netperf import netperf_recv  # noqa: E402
from repro.workloads.rigs import make_8139too_rig, make_e1000_rig  # noqa: E402

# Layer buckets, matched against each profiled function's source path.
# First match wins; order from most to least specific.
BUCKETS = (
    ("driver-loop", ("drivers/legacy/", "drivers/decaf/")),
    ("fastpath", ("kernel/fastpath",)),
    ("device-model", ("repro/devices/",)),
    ("io-dispatch", ("kernel/ioports",)),
    ("net-stack", ("kernel/netdev", "kernel/napi")),
    ("kernel-core", ("kernel/core", "kernel/events", "kernel/vtime",
                     "kernel/irq", "kernel/context", "kernel/locks",
                     "kernel/workqueue", "kernel/memory", "kernel/timers")),
    ("trace", ("repro/trace/",)),
    ("workload", ("repro/workloads/",)),
    ("cstruct/marshal", ("core/cstruct", "core/marshal")),
)


def _bucket_for(path):
    norm = path.replace(os.sep, "/")
    for name, needles in BUCKETS:
        for needle in needles:
            if needle in norm:
                return name
    return "other"


def build_rig(args):
    if args.driver == "rtl8139":
        return make_8139too_rig(
            decaf=args.decaf,
            irq_mode=args.mode,
            nr_cpus=args.smp,
            rx_coalesce_ns=100_000 if args.mode == "napi" else 0,
            compiled=not args.interpreted,
        )
    return make_e1000_rig(
        decaf=args.decaf,
        irq_mode=args.mode,
        nr_cpus=args.smp,
        num_queues=args.queues,
        compiled=not args.interpreted,
    )


def profile_fleet(args):
    """Profile a mixed hotplug fleet instead of one NIC rig.

    Same bucket attribution as the single-rig path, but the workload is
    the ISSUE-9 fleet: N devices across five families on one kernel,
    with churn and fault injection interleaved.  The headline number is
    the device-model fraction -- harness overhead must stay a minority
    cost, so optimization targets are whatever non-device buckets float
    to the top here.
    """
    from repro.fleet import FleetHarness, FleetSpec

    spec = FleetSpec(n_devices=args.fleet, nr_cpus=max(args.smp, 4),
                     duration_ms=40, fault_period_ms=10, seed=1234)
    harness = FleetHarness(spec)
    t0 = time.perf_counter()
    harness.build()
    build_wall = time.perf_counter() - t0
    harness.run(20)  # warm-up: caches filled, first churn wave done

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    harness.run(max(int(args.seconds * 1000), 40))
    profiler.disable()
    run_wall = time.perf_counter() - t0

    stats = pstats.Stats(profiler)
    total_tt = 0.0
    bucket_tt = {}
    rows = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():
        total_tt += tottime
        bucket = _bucket_for(path)
        bucket_tt[bucket] = bucket_tt.get(bucket, 0.0) + tottime
        rows.append((tottime, cumtime, ncalls,
                     "%s:%d:%s" % (os.path.basename(path), line, func),
                     bucket))

    print("== profile_hotpath: fleet n=%d cpus=%d ==" % (
        spec.n_devices, spec.nr_cpus))
    print("build_wall=%.2fs  profiled_wall=%.2fs  events/s=%.0f" % (
        build_wall, run_wall, harness.events_per_sec))
    print("churn_cycles=%d  faults=%d  recoveries=%d" % (
        harness.churn_cycles, harness.faults_fired(), harness.recoveries()))

    device_tt = (bucket_tt.get("device-model", 0.0)
                 + bucket_tt.get("fastpath", 0.0))
    print("\n-- wall-clock attribution (cProfile tottime by layer) --")
    for bucket, tt in sorted(bucket_tt.items(), key=lambda kv: -kv[1]):
        print("  %-14s %8.4fs  %5.1f%%"
              % (bucket, tt, 100.0 * tt / total_tt if total_tt else 0.0))
    print("  device-model+fastpath fraction: %.3f"
          % (device_tt / total_tt if total_tt else 0.0))

    key = 0 if args.sort == "tottime" else 1
    rows.sort(key=lambda r: -r[key])
    print("\n-- top %d functions by %s --" % (args.top, args.sort))
    print("  %9s %9s %9s  %-14s %s"
          % ("tottime", "cumtime", "ncalls", "layer", "function"))
    for tottime, cumtime, ncalls, where, bucket in rows[:args.top]:
        print("  %8.4fs %8.4fs %9d  %-14s %s"
              % (tottime, cumtime, ncalls, bucket, where))
    harness.teardown()
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--driver", choices=("e1000", "rtl8139"),
                        default="rtl8139")
    parser.add_argument("--mode", choices=("napi", "irq"), default="napi")
    parser.add_argument("--interpreted", action="store_true",
                        help="ablation: interpreted rx/tx loops "
                             "(compiled=False)")
    parser.add_argument("--decaf", action="store_true",
                        help="profile the decaf split driver")
    parser.add_argument("--seconds", type=float, default=0.2,
                        help="virtual seconds of receive traffic")
    parser.add_argument("--burst", type=int, default=None,
                        help="frames per arrival burst "
                             "(default: 8 for rtl8139, 1 for e1000)")
    parser.add_argument("--smp", type=int, default=1, metavar="N",
                        help="number of virtual CPUs")
    parser.add_argument("--queues", type=int, default=1,
                        help="e1000 rx/tx queue pairs")
    parser.add_argument("--top", type=int, default=15,
                        help="how many functions to list")
    parser.add_argument("--sort", choices=("tottime", "cumulative"),
                        default="tottime")
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="profile an N-device mixed hotplug fleet "
                             "instead of a single NIC rig")
    args = parser.parse_args(argv)
    if args.fleet:
        return profile_fleet(args)
    if args.burst is None:
        args.burst = 8 if args.driver == "rtl8139" else 1

    # Warm-up run fills import and codec caches so the profile measures
    # the steady state, not one-time compilation.
    rig = build_rig(args)
    rig.insmod()
    netperf_recv(rig, duration_s=min(args.seconds, 0.05), burst=args.burst)

    rig = build_rig(args)
    t0 = time.perf_counter()
    rig.insmod()
    insmod_wall = time.perf_counter() - t0

    digest = hashlib.sha256()
    update = digest.update

    def sink_extra(_dev, skb):
        update(skb.data)

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    result = netperf_recv(rig, duration_s=args.seconds,
                          sink_extra=sink_extra, burst=args.burst)
    profiler.disable()
    recv_wall = time.perf_counter() - t0

    stats = pstats.Stats(profiler)
    total_tt = 0.0
    bucket_tt = {}
    rows = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():
        total_tt += tottime
        bucket = _bucket_for(path)
        bucket_tt[bucket] = bucket_tt.get(bucket, 0.0) + tottime
        rows.append((tottime, cumtime, ncalls,
                     "%s:%d:%s" % (os.path.basename(path), line, func),
                     bucket))

    loop = ("interpreted" if args.interpreted else "compiled")
    print("== profile_hotpath: %s %s (%s loops%s%s) ==" % (
        args.driver, args.mode, loop,
        ", decaf" if args.decaf else "",
        (", smp=%d q=%d" % (args.smp, args.queues))
        if args.smp > 1 or args.queues > 1 else ""))
    print("packets=%d  virtual_s=%.4f  insmod_wall=%.4fs  recv_wall=%.4fs"
          % (result.packets, result.duration_s, insmod_wall, recv_wall))
    print("wall pkts/s=%.0f  napi_polls=%d  pool_hit=%.3f  sha256=%s"
          % (result.packets / recv_wall if recv_wall else 0.0,
             result.napi_polls, result.skb_pool_hit_rate,
             digest.hexdigest()[:16]))

    print("\n-- wall-clock attribution (cProfile tottime by layer) --")
    for bucket, tt in sorted(bucket_tt.items(), key=lambda kv: -kv[1]):
        print("  %-14s %8.4fs  %5.1f%%"
              % (bucket, tt, 100.0 * tt / total_tt if total_tt else 0.0))

    key = 0 if args.sort == "tottime" else 1
    rows.sort(key=lambda r: -r[key])
    print("\n-- top %d functions by %s --" % (args.top, args.sort))
    print("  %9s %9s %9s  %-14s %s"
          % ("tottime", "cumtime", "ncalls", "layer", "function"))
    for tottime, cumtime, ncalls, where, bucket in rows[:args.top]:
        print("  %8.4fs %8.4fs %9d  %-14s %s"
              % (tottime, cumtime, ncalls, bucket, where))

    # Virtual-time attribution: the ktrace/CPU-accounting category
    # split.  Identical between compiled and interpreted loops -- a
    # difference here means the optimization changed simulated
    # behaviour, not just simulator speed.
    acct = rig.kernel.cpu
    cats = sorted(acct._by_category.items(), key=lambda kv: -kv[1])
    total_v = sum(ns for _c, ns in cats)
    print("\n-- virtual-time attribution (ktrace charge categories) --")
    for cat, ns in cats:
        print("  %-14s %10.3f ms  %5.1f%%"
              % (cat, ns / 1e6, 100.0 * ns / total_v if total_v else 0.0))
    print("  %-14s %10.3f ms  (window utilization %.1f%%)"
          % ("total busy", total_v / 1e6, 100 * result.cpu_utilization))
    return 0


if __name__ == "__main__":
    sys.exit(main())
