#!/usr/bin/env python
"""Dependency-free line coverage with a floor.

Runs pytest in-process under ``sys.settrace`` and measures which lines
of ``src/repro`` executed, against the executable-line set read from
each module's compiled code objects (``co_lines``).  No third-party
coverage package is needed, so the number means the same thing in CI
and in a bare container.

Usage:
    PYTHONPATH=src python tools/linecov.py --fail-under 80 [pytest args]

Exit status: pytest's own status if the suite fails, 2 if the suite
passes but total coverage is below the floor, else 0.
"""

import argparse
import json
import os
import sys
import threading
from collections import defaultdict


def executable_lines(path):
    """Line numbers the compiler put in ``path``'s line tables."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def install_tracer(src_root):
    """Line-trace frames whose code lives under ``src_root`` only.

    The global trace function returns None for foreign frames, so
    pytest internals and the stdlib pay a call-event check and nothing
    more; only simulator frames carry per-line overhead.
    """
    covered = defaultdict(set)
    in_src = {}

    def local_trace(frame, event, _arg):
        if event == "line":
            covered[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, _event, _arg):
        filename = frame.f_code.co_filename
        hit = in_src.get(filename)
        if hit is None:
            hit = in_src[filename] = os.path.abspath(
                filename).startswith(src_root)
        if not hit:
            return None
        covered[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    return covered


def report(src_root, covered, fail_under, report_path, echo=print):
    covered_abs = defaultdict(set)
    for filename, lines in covered.items():
        covered_abs[os.path.abspath(filename)] |= lines

    rows = []
    total_executable = total_covered = 0
    for dirpath, _dirs, files in os.walk(src_root):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            lines = executable_lines(path)
            if not lines:
                continue
            hit = len(lines & covered_abs.get(path, set()))
            total_executable += len(lines)
            total_covered += hit
            rows.append((os.path.relpath(path, src_root),
                         hit, len(lines)))

    percent = 100.0 * total_covered / total_executable \
        if total_executable else 0.0
    rows.sort(key=lambda row: row[1] / row[2])
    echo("%-42s %9s %7s" % ("least-covered files", "lines", "cover"))
    for rel, hit, executable in rows[:10]:
        echo("%-42s %4d/%-4d %6.1f%%"
             % (rel, hit, executable, 100.0 * hit / executable))
    echo("TOTAL %d/%d executable lines covered: %.1f%% (floor %.1f%%)"
         % (total_covered, total_executable, percent, fail_under))

    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump({
                "percent": round(percent, 2),
                "covered": total_covered,
                "executable": total_executable,
                "fail_under": fail_under,
                "files": [
                    {"file": rel, "covered": hit, "executable": executable}
                    for rel, hit, executable in sorted(rows)
                ],
            }, handle, indent=1)
    return percent


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python tools/linecov.py",
        description="line coverage of src/repro with a hard floor")
    parser.add_argument("--fail-under", type=float, default=0.0,
                        help="minimum total coverage percent")
    parser.add_argument("--src", default=None,
                        help="source root (default: src/repro next to "
                             "this script)")
    parser.add_argument("--report", default=None,
                        help="write a JSON report here")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest "
                             "(default: -q)")
    args, extra = parser.parse_known_args(argv)
    args.pytest_args += extra  # pytest flags like -q land here

    src_root = args.src or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src", "repro")
    src_root = os.path.abspath(src_root) + os.sep

    covered = install_tracer(src_root)
    try:
        import pytest
        status = pytest.main(args.pytest_args or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    percent = report(src_root, covered, args.fail_under, args.report)
    if status:
        return int(status)
    if percent < args.fail_under:
        print("coverage %.1f%% is below the floor of %.1f%%"
              % (percent, args.fail_under))
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
