#!/usr/bin/env python
"""Aggregate every BENCH_*.json into one trend table with floors.

Each benchmark suite merges its results into a ``BENCH_<name>.json`` at
the repo root.  This tool reads them all and renders one table per
tracked metric: the floor (or ceiling) the suite is expected to hold,
the latest measured value, and the headroom between them -- the
one-screen answer to "are the performance contracts drifting?".

Usage::

    python tools/bench_trend.py [--dir REPO_ROOT] [--fail]

``--fail`` exits non-zero when any tracked metric is outside its bound
(missing BENCH files are reported but never fail: a partial bench run
is not a regression).  Untracked metrics are ignored -- the floors
below are the curated contracts, mirrored from the asserting suites.
"""

import argparse
import json
import os
import sys

# (file, dotted.path.in.json, bound, kind) -- kind "floor" means the
# value must stay >= bound, "ceiling" means <= bound.  These mirror the
# asserts inside the benchmark suites; the table shows drift *toward*
# a bound before the suite itself goes red.
FLOORS = [
    ("BENCH_datapath.json", "e1000_compiled.wall_speedup", 2.0, "floor"),
    ("BENCH_datapath.json", "rtl8139_compiled.wall_speedup", 2.0, "floor"),
    ("BENCH_datapath.json", "e1000_recv.wall_speedup", 2.0, "floor"),
    ("BENCH_datapath.json", "rtl8139_recv.wall_speedup", 1.0, "floor"),
    ("BENCH_trace.json",
     "netperf_recv_e1000.disabled_overhead_fraction", 0.03, "ceiling"),
    ("BENCH_health.json",
     "netperf_recv_e1000.always_on_overhead_fraction", 0.01, "ceiling"),
    ("BENCH_health.json",
     "netperf_recv_rtl8139.always_on_overhead_fraction", 0.01, "ceiling"),
    ("BENCH_health.json",
     "netperf_recv_e1000.sampler_overhead_fraction", 0.05, "ceiling"),
    ("BENCH_health.json",
     "netperf_recv_rtl8139.sampler_overhead_fraction", 0.05, "ceiling"),
    ("BENCH_fleet.json", "device_model_fraction", 0.60, "floor"),
    ("BENCH_fleet.json", "recovery_rate", 0.99, "floor"),
]


def _lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def _headroom(value, bound, kind):
    """Fraction of slack left before the bound; negative = violated."""
    if kind == "floor":
        return (value - bound) / bound if bound else 0.0
    return (bound - value) / bound if bound else 0.0


def collect(root):
    """Rows of (file, metric, bound, kind, value, headroom|None)."""
    rows = []
    cache = {}
    for fname, dotted, bound, kind in FLOORS:
        path = os.path.join(root, fname)
        if fname not in cache:
            doc = None
            if os.path.exists(path):
                try:
                    with open(path) as fh:
                        doc = json.load(fh)
                except ValueError:
                    doc = None
            cache[fname] = doc
        doc = cache[fname]
        value = _lookup(doc, dotted) if doc is not None else None
        headroom = (None if value is None
                    else _headroom(value, bound, kind))
        rows.append((fname, dotted, bound, kind, value, headroom))
    return rows


def render(rows, out=None):
    out = out if out is not None else sys.stdout
    header = ("metric", "bound", "latest", "headroom")
    widths = [max(len(header[0]),
                  max(len("%s:%s" % (r[0][6:-5], r[1])) for r in rows)),
              10, 10, 10]
    print("== bench trend (%d tracked metrics) ==" % len(rows), file=out)
    print("  %-*s  %*s  %*s  %*s" % (widths[0], header[0],
                                     widths[1], header[1],
                                     widths[2], header[2],
                                     widths[3], header[3]), file=out)
    violations = 0
    missing = 0
    for fname, dotted, bound, kind, value, headroom in rows:
        label = "%s:%s" % (fname[6:-5], dotted)
        sign = ">=" if kind == "floor" else "<="
        bound_s = "%s %g" % (sign, bound)
        if value is None:
            missing += 1
            print("  %-*s  %*s  %*s  %*s" % (widths[0], label,
                                             widths[1], bound_s,
                                             widths[2], "(missing)",
                                             widths[3], "-"), file=out)
            continue
        mark = ""
        if headroom < 0:
            violations += 1
            mark = "  VIOLATED"
        print("  %-*s  %*s  %*s  %*s%s"
              % (widths[0], label, widths[1], bound_s,
                 widths[2], "%.4g" % value,
                 widths[3], "%+.0f%%" % (100 * headroom), mark), file=out)
    print("%d violation(s), %d missing" % (violations, missing), file=out)
    return violations, missing


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python tools/bench_trend.py",
        description="Aggregate BENCH_*.json into a floor/headroom table.")
    parser.add_argument("--dir", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir),
        help="directory holding BENCH_*.json (default: repo root)")
    parser.add_argument("--fail", action="store_true",
                        help="exit 1 if any tracked metric violates "
                             "its bound")
    args = parser.parse_args(argv)
    rows = collect(os.path.abspath(args.dir))
    violations, _missing = render(rows)
    if args.fail and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
