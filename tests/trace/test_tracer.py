"""Tracer lifecycle, schema and tracepoint validation."""

import pytest

from repro import trace as trace_mod
from repro.trace import TRACEPOINTS, TraceError, Tracer
from repro.trace import core as trace_core


class TestLifecycle:
    def test_install_sets_kernel_hooks_and_flag(self, kernel):
        assert kernel.tracer is None
        base = trace_core.active_tracers
        tracer = Tracer(kernel).install()
        assert kernel.tracer is tracer
        assert kernel.events.tracer is tracer
        assert trace_core.active_tracers == base + 1
        tracer.uninstall()
        assert kernel.tracer is None
        assert kernel.events.tracer is None
        assert trace_core.active_tracers == base

    def test_double_install_raises(self, kernel):
        tracer = Tracer(kernel).install()
        try:
            with pytest.raises(TraceError):
                Tracer(kernel).install()
        finally:
            tracer.uninstall()

    def test_uninstall_is_idempotent(self, kernel):
        tracer = Tracer(kernel).install()
        tracer.uninstall()
        tracer.uninstall()
        assert trace_core.active_tracers >= 0


class TestEmission:
    def test_unregistered_tracepoint_raises(self, kernel):
        tracer = Tracer(kernel)
        with pytest.raises(TraceError):
            tracer.instant("no.such.point")
        with pytest.raises(TraceError):
            tracer.span("no.such.point", 0)

    def test_unknown_enable_name_raises(self, kernel):
        with pytest.raises(TraceError):
            Tracer(kernel, enable={"bogus"})

    def test_enable_filters(self, kernel):
        tracer = Tracer(kernel, enable={"printk"})
        tracer.instant("printk", {"msg": "hi"})
        tracer.instant("timer.arm", {"timer": "t"})
        assert [ev["name"] for ev in tracer.events] == ["printk"]

    def test_event_schema(self, kernel):
        tracer = Tracer(kernel)
        kernel.run_for_ns(500)
        start = tracer.now()
        kernel.run_for_ns(100)
        tracer.span("timer.fire", start, {"timer": "t"})
        (ev,) = tracer.events
        assert ev["ph"] == "X"
        assert ev["ts"] == start
        assert ev["dur"] == kernel.clock.now_ns - start
        assert ev["ctx"] == "process"
        assert ev["locks"] == 0
        assert ev["cat"] == "timer"
        assert ev["args"] == {"timer": "t"}

    def test_instant_captures_context_and_locks(self, kernel):
        from repro.kernel.locks import SpinLock

        tracer = Tracer(kernel)
        lock = SpinLock(kernel, "l")
        with lock:
            tracer.instant("printk", {"msg": "x"})
        (ev,) = tracer.events
        assert ev["ph"] == "i"
        assert ev["locks"] == 1

    def test_max_events_bounds_and_counts_drops(self, kernel):
        tracer = Tracer(kernel, max_events=2)
        for _ in range(5):
            tracer.instant("printk", {})
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.summary()["dropped"] == 3

    def test_catalog_phases_are_valid(self):
        for name, (ph, desc) in TRACEPOINTS.items():
            assert ph in ("X", "i"), name
            assert desc


class TestSummary:
    def test_summary_shape(self, kernel):
        tracer = Tracer(kernel, name="t0")
        tracer.metrics.inc("xpc.bytes|e1000", 100)
        tracer.metrics.inc("xpc.crossings|e1000", 2)
        tracer.metrics.inc("unrelated", 1)
        s = tracer.summary()
        assert s["tracer"] == "t0"
        assert s["clock"] == "virtual-ns"
        assert s["per_driver"] == {"e1000": {"bytes": 100, "crossings": 2}}
        assert s["counters"]["unrelated"] == 1


class TestBeginFinish:
    def test_begin_trace_falsy_is_none(self, kernel):
        assert trace_mod.begin_trace(kernel, None) is None
        assert trace_mod.begin_trace(kernel, False) is None
        assert trace_mod.finish_trace(None, None) is None

    def test_begin_trace_true_installs_fresh(self, kernel):
        session = trace_mod.begin_trace(kernel, True)
        tracer, owned, path = session
        assert owned and path is None
        assert kernel.tracer is tracer
        trace_mod.finish_trace(session, None)
        assert kernel.tracer is None

    def test_preinstalled_tracer_stays_installed(self, kernel):
        tracer = Tracer(kernel).install()
        session = trace_mod.begin_trace(kernel, tracer)
        trace_mod.finish_trace(session, None)
        assert kernel.tracer is tracer  # caller owns it
        tracer.uninstall()

    def test_foreign_kernel_tracer_rejected(self, kernel):
        from repro.kernel import make_kernel

        other = make_kernel()
        tracer = Tracer(other)
        with pytest.raises(TraceError):
            trace_mod.begin_trace(kernel, tracer)

    def test_path_writes_file(self, kernel, tmp_path):
        import json

        out = tmp_path / "t.json"
        session = trace_mod.begin_trace(kernel, str(out))
        kernel.printk("hello")

        class R:
            trace_summary = {}

        result = R()
        trace_mod.finish_trace(session, result)
        doc = json.loads(out.read_text())
        assert any(ev.get("name") == "printk" for ev in doc["traceEvents"])
        assert result.trace_summary["events"] == 1
