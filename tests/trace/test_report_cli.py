"""The trace report CLI (python -m repro.trace.report)."""

import io
import json

from repro.trace import Tracer
from repro.trace.perfetto import chrome_trace, write_chrome_trace
from repro.trace.report import diff_docs, main, report_trace
from repro.workloads import make_8139too_rig, netperf_recv


def _traced_doc(tmp_path, name="r.json"):
    rig = make_8139too_rig(decaf=True)
    tracer = Tracer(rig.kernel).install()
    rig.insmod()
    netperf_recv(rig, duration_s=0.05, trace=tracer)
    path = tmp_path / name
    write_chrome_trace(tracer, path)
    tracer.uninstall()
    return path


class TestReport:
    def test_report_sections(self, tmp_path):
        path = _traced_doc(tmp_path)
        out = io.StringIO()
        report_trace(json.loads(path.read_text()), top=5, out=out)
        text = out.getvalue()
        assert "top XPC callsites by marshaled bytes" in text
        assert "top XPC callsites by crossings" in text
        assert "lock hold times" in text
        assert "IRQ->poll latency" in text
        assert "softirq budget timeline" in text
        assert "per-driver XPC breakdown" in text
        # The decaf rig's driver shows up attributed by name.
        assert "8139too" in text

    def test_report_on_empty_trace(self, kernel):
        out = io.StringIO()
        report_trace(chrome_trace(Tracer(kernel)), out=out)
        assert "0 events" in out.getvalue()

    def test_cli_main_summarize(self, tmp_path, capsys):
        path = _traced_doc(tmp_path)
        assert main([str(path)]) == 0
        assert "per-driver XPC breakdown" in capsys.readouterr().out


class TestDiff:
    def test_flags_counters_moved_beyond_threshold(self):
        a = {"counters": {"x": 100, "y": 100, "z": 100}}
        b = {"counters": {"x": 125, "y": 105, "z": 100}}
        out = io.StringIO()
        flagged = diff_docs(a, b, threshold_pct=10.0, out=out)
        text = out.getvalue()
        assert flagged == 1
        assert "counters.x" in text
        assert "+25.0%" in text

    def test_new_and_from_zero_always_flag(self):
        a = {"x": 0}
        b = {"x": 5, "y": 1}
        flagged = diff_docs(a, b, out=io.StringIO())
        assert flagged == 2

    def test_identical_docs_flag_nothing(self):
        doc = {"x": 1, "nested": {"y": [1, 2]}}
        assert diff_docs(doc, doc, out=io.StringIO()) == 0

    def test_one_sided_counters_are_new_gone_not_percentages(self):
        """A counter present in only one doc must not render as a
        -100% "regression" (or divide by zero): it lands in the
        explicit new/gone section with no percentage at all."""
        a = {"x": 100, "vanished": 7}
        b = {"x": 100, "appeared": 3}
        out = io.StringIO()
        flagged = diff_docs(a, b, threshold_pct=10.0, out=out)
        text = out.getvalue()
        assert flagged == 2
        assert "-100" not in text
        assert "1 new, 1 gone" in text
        assert "appeared" in text and "vanished" in text

    def test_trace_docs_compare_summaries(self, tmp_path, capsys):
        a = _traced_doc(tmp_path, "a.json")
        b = _traced_doc(tmp_path, "b.json")
        # Deterministic simulation: identical runs diff clean.
        assert main(["--diff", str(a), str(b)]) == 0
        assert "0 counter(s) moved" in capsys.readouterr().out

    def test_cli_diff_bench_jsons(self, tmp_path, capsys):
        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        a.write_text(json.dumps({"bench": {"pkts_per_sec": 1000}}))
        b.write_text(json.dumps({"bench": {"pkts_per_sec": 1500}}))
        assert main(["--diff", str(a), str(b)]) == 0
        text = capsys.readouterr().out
        assert "!" in text and "+50.0%" in text
