"""Counters and log2-bucket histograms (repro.trace.metrics)."""

from repro.trace.metrics import (
    Counter, Histogram, MetricsRegistry, bucket_upper_bound, split_label,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42


class TestHistogramBuckets:
    def test_zero_goes_to_bucket_zero(self):
        h = Histogram("h")
        h.record(0)
        assert h.buckets[0] == 1
        assert h.percentile(50) == 0

    def test_bucket_boundaries(self):
        # bucket b holds [2^(b-1), 2^b - 1]
        h = Histogram("h")
        for v in (1, 2, 3, 4, 7, 8):
            h.record(v)
        assert h.buckets[1] == 1  # {1}
        assert h.buckets[2] == 2  # {2, 3}
        assert h.buckets[3] == 2  # {4..7}
        assert h.buckets[4] == 1  # {8..15}

    def test_upper_bounds(self):
        assert bucket_upper_bound(0) == 0
        assert bucket_upper_bound(1) == 1
        assert bucket_upper_bound(4) == 15

    def test_negative_clamps_to_zero(self):
        h = Histogram("h")
        h.record(-5)
        assert h.buckets[0] == 1
        assert h.max == 0

    def test_stats(self):
        h = Histogram("h")
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.total == 60
        assert h.max == 30
        assert h.mean == 20.0

    def test_percentile_never_exceeds_max(self):
        h = Histogram("h")
        h.record(1000)  # bucket upper bound is 1023
        assert h.percentile(50) == 1000
        assert h.percentile(99) == 1000

    def test_percentile_of_empty_is_zero(self):
        assert Histogram("h").percentile(99) == 0

    def test_percentile_is_bucket_upper_bound(self):
        h = Histogram("h")
        for _ in range(99):
            h.record(4)  # bucket [4,7]
        h.record(5000)
        assert h.percentile(50) == 7
        assert h.percentile(99) == 7

    def test_snapshot_sparse_buckets(self):
        h = Histogram("h")
        h.record(4)
        h.record(6)
        snap = h.snapshot()
        assert snap["buckets"] == {"7": 2}
        assert snap["count"] == 2
        assert snap["p50"] == 6  # min(bucket bound 7, max 6)


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        m = MetricsRegistry()
        c = m.counter("a")
        assert m.counter("a") is c
        h = m.histogram("b")
        assert m.histogram("b") is h

    def test_inc_and_record_conveniences(self):
        m = MetricsRegistry()
        m.inc("a", 3)
        m.record("b", 9)
        snap = m.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["histograms"]["b"]["count"] == 1

    def test_split_label(self):
        assert split_label("xpc.bytes|e1000") == ("xpc.bytes", "e1000")
        assert split_label("irq_ns") == ("irq_ns", "")
