"""Chrome-trace export: format, lanes, and XPC reconciliation."""

import json

from repro.trace import Tracer
from repro.trace.perfetto import (
    CTX_TIDS, chrome_trace, load_trace, span_events, write_chrome_trace,
)
from repro.workloads import make_8139too_rig, netperf_send


class TestFormat:
    def test_thread_name_metadata_and_lanes(self, kernel):
        tracer = Tracer(kernel)
        doc = chrome_trace(tracer)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == set(CTX_TIDS)
        assert doc["otherData"]["tracer"] == tracer.name

    def test_ns_to_us_conversion_and_tid(self, kernel):
        tracer = Tracer(kernel)
        kernel.run_for_ns(2500)
        tracer.span("timer.fire", 500, {"timer": "t"})
        doc = chrome_trace(tracer)
        (span,) = span_events(doc)
        assert span["ts"] == 0.5       # 500 ns -> 0.5 trace us
        assert span["dur"] == 2.0      # 2000 ns
        assert span["tid"] == CTX_TIDS["process"]
        assert span["args"]["ctx"] == "process"
        assert span["args"]["locks_held"] == 0

    def test_instants_carry_scope(self, kernel):
        tracer = Tracer(kernel)
        tracer.instant("printk", {"msg": "x"})
        doc = chrome_trace(tracer)
        inst = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert inst and all(ev["s"] == "t" for ev in inst)

    def test_write_and_load_round_trip(self, kernel, tmp_path):
        tracer = Tracer(kernel)
        tracer.instant("printk", {"msg": "x"})
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, path)
        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(written))
        assert "trace_summary" in loaded["otherData"]


class TestXpcReconciliation:
    """The acceptance contract: the exported trace accounts for every
    kernel/user crossing and every marshaled byte, exactly."""

    def _traced_netperf(self, tmp_path):
        rig = make_8139too_rig(decaf=True)
        # Install before insmod so the tracer sees the same life
        # window as the Xpc counters (zero from birth).
        tracer = Tracer(rig.kernel).install()
        rig.insmod()
        netperf_send(rig, duration_s=0.05, trace=tracer)
        path = tmp_path / "netperf.json"
        write_chrome_trace(tracer, path)
        tracer.uninstall()
        return rig, load_trace(path)

    def test_span_count_equals_kernel_user_crossings(self, tmp_path):
        rig, doc = self._traced_netperf(tmp_path)
        xpc_spans = span_events(doc, cat="xpc")
        assert len(xpc_spans) == rig.xpc.kernel_user_crossings
        assert rig.xpc.kernel_user_crossings > 0

    def test_span_bytes_reconcile_with_bytes_marshaled(self, tmp_path):
        rig, doc = self._traced_netperf(tmp_path)
        spans = span_events(doc, cat="xpc") + span_events(doc, cat="xpc.lang")
        traced = sum(ev["args"]["bytes"] for ev in spans
                     if "bytes" in ev["args"])
        assert traced == rig.xpc.bytes_marshaled

    def test_per_driver_summary_reconciles(self, tmp_path):
        rig, doc = self._traced_netperf(tmp_path)
        per = doc["otherData"]["trace_summary"]["per_driver"]
        d = per[rig.name]
        assert d["crossings"] == rig.xpc.kernel_user_crossings
        assert d["bytes"] == rig.xpc.bytes_marshaled
