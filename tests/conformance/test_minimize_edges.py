"""Edge cases for divergence minimization and repro emission.

``test_generator.py`` covers the happy ddmin paths; this file covers
the corners the explorer leans on: schedules that are already minimal
(one event), failures that depend on event *order* rather than event
membership (the exact shape interleaving divergences take), replay
budgets, and ``write_repro_script`` emitting a standalone script with
no nobble and no recorded divergences.
"""

import os
import subprocess
import sys

from repro.conformance import Scenario, write_repro_script
from repro.conformance.minimize import ddmin, minimize_scenario
from repro.conformance.runner import Divergence


class _Result:
    def __init__(self, failing):
        self.ok = not failing
        self.divergences = [Divergence("tx", "fake detail")] if failing else []


class _FakeRunner:
    """run_pair stub: diverges when ``predicate(events)`` holds."""

    def __init__(self, predicate):
        self.predicate = predicate
        self.calls = 0

    def run_pair(self, scenario):
        self.calls += 1
        return _Result(self.predicate(scenario.events))


def _events(n):
    return [{"kind": "irq", "n": i} for i in range(n)]


def _scenario(events):
    return Scenario("e1000", 0, "strict", events)


class TestDdminEdges:
    def test_single_failing_event(self):
        assert ddmin([42], lambda s: 42 in s) == [42]

    def test_empty_input(self):
        assert ddmin([], lambda s: True) == []

    def test_order_dependent_failure(self):
        # Fails only when 3 occurs *before* 11 -- membership alone is
        # not enough, which is how interleaving divergences behave.
        items = list(range(16))

        def fails(subset):
            return (3 in subset and 11 in subset
                    and subset.index(3) < subset.index(11))

        assert ddmin(items, fails) == [3, 11]

    def test_never_reorders_surviving_events(self):
        # ddmin only ever drops chunks; relative order is preserved, so
        # an order-sensitive repro stays valid through minimization.
        items = list(range(12))
        observed = []

        def fails(subset):
            observed.append(list(subset))
            return {2, 7, 9} <= set(subset)

        result = ddmin(items, fails)
        assert result == [2, 7, 9]
        for subset in observed:
            assert subset == sorted(subset)


class TestMinimizeScenario:
    def test_one_event_schedule_is_already_minimal(self):
        runner = _FakeRunner(lambda events: len(events) == 1)
        scenario = _scenario(_events(1))
        minimized, runs = minimize_scenario(runner, scenario)
        assert minimized.events == scenario.events
        assert runs >= 1

    def test_reduces_to_single_culprit_event(self):
        culprit = {"kind": "irq", "n": 5}
        runner = _FakeRunner(lambda events: culprit in events)
        minimized, _runs = minimize_scenario(runner, _scenario(_events(8)))
        assert minimized.events == [culprit]

    def test_order_dependent_pair_survives(self):
        first, second = {"kind": "tx", "n": 1}, {"kind": "irq", "n": 6}

        def fails(events):
            return (first in events and second in events
                    and events.index(first) < events.index(second))

        minimized, _runs = minimize_scenario(
            _FakeRunner(fails), _scenario(_events(4) + [first] +
                                          _events(2) + [second]))
        assert minimized.events == [first, second]

    def test_budget_exhaustion_returns_best_so_far(self):
        runner = _FakeRunner(lambda events: True)
        scenario = _scenario(_events(32))
        minimized, runs = minimize_scenario(runner, scenario, max_runs=3)
        assert runs <= 3
        # Still a valid (possibly unminimized) failing schedule.
        assert set(map(str, minimized.events)) <= set(
            map(str, scenario.events))

    def test_zero_budget_is_a_no_op(self):
        runner = _FakeRunner(lambda events: True)
        scenario = _scenario(_events(6))
        minimized, runs = minimize_scenario(runner, scenario, max_runs=0)
        assert runs == 0
        assert minimized.events == scenario.events

    def test_preserves_scenario_identity_fields(self):
        runner = _FakeRunner(lambda events: True)
        base = Scenario("e1000", 7, "strict", _events(4),
                        faults=[{"kind": "xpc_raise", "at": 1}])
        minimized, _runs = minimize_scenario(runner, base)
        assert (minimized.driver, minimized.seed, minimized.mode) == (
            "e1000", 7, "strict")
        assert minimized.faults == base.faults


class TestWriteReproScript:
    def test_no_divergences_and_no_nobble(self, tmp_path):
        path = tmp_path / "repro_empty.py"
        write_repro_script(_scenario(_events(2)), [], str(path))
        text = path.read_text()
        assert "(none recorded)" in text
        assert "DifferentialRunner()" in text  # no nobble argument
        assert "nobble" not in text.split("import")[1].splitlines()[0]

    def test_script_runs_standalone_and_reports_clean(self, tmp_path):
        # An empty schedule cannot diverge: the emitted script must run
        # from a bare subprocess (only PYTHONPATH=src) and exit 0 with
        # the "fixed?" report -- the path a developer hits after
        # repairing the bug a repro captured.
        path = tmp_path / "repro_clean.py"
        write_repro_script(_scenario([]), [], str(path))
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.run([sys.executable, str(path)], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no divergence" in proc.stdout

    def test_filename_in_docstring_from_path_object(self, tmp_path):
        path = tmp_path / "repro_named.py"
        write_repro_script(_scenario(_events(1)),
                           [Divergence("tx", "one frame short")], path)
        text = path.read_text()
        assert "PYTHONPATH=src python repro_named.py" in text
        assert "one frame short" in text
