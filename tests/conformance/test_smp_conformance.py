"""SMP conformance: the differential harness on multi-CPU rigs.

With ``smp=N`` every rig runs N virtual CPUs and the e1000 pair
additionally runs multi-queue (per-queue NAPI contexts affined across
CPUs, rx compared as per-queue streams).  The e1000 pair must stay
tier-clean across 10 seeds -- strict and faulty modes both -- and the
sweep digest must be reproducible.
"""

import pytest

from repro.conformance import DifferentialRunner, ScenarioGenerator
from repro.conformance.__main__ import main, mode_for, run_sweep


@pytest.fixture(scope="module")
def smp_runner():
    return DifferentialRunner(smp=4)


def test_e1000_tier_clean_for_10_seeds(smp_runner):
    for seed in range(10):
        scenario = ScenarioGenerator(seed).generate(
            "e1000", mode=mode_for(seed))
        result = smp_runner.run_pair(scenario)
        assert result.ok, "seed %d (%s):\n%s" % (seed, scenario.mode, "\n".join(
            "[%s] %s" % (d.channel, d.detail) for d in result.divergences))


def test_smp_rig_topology(smp_runner):
    scenario = ScenarioGenerator(0).generate("e1000", mode="strict")
    rig = smp_runner._make_rig(scenario, decaf=False)
    assert rig.kernel.nr_cpus == 4
    assert rig.device.num_queues == 4
    scenario = ScenarioGenerator(0).generate("8139too", mode="strict")
    rig = smp_runner._make_rig(scenario, decaf=True)
    assert rig.kernel.nr_cpus == 4  # non-e1000 rigs stay single-queue


def test_multiqueue_rx_recorded_per_queue(smp_runner):
    """Under multi-queue the rx channel is a per-queue stream dict (the
    cross-queue interleave is timing-coupled and excluded by design)."""
    scenario = ScenarioGenerator(0).generate("e1000", mode="strict")
    result = smp_runner.run_pair(scenario)
    assert result.ok
    rx = result.legacy["rx"]
    assert isinstance(rx, dict)
    assert set(rx) == {"q0", "q1", "q2", "q3"}
    assert result.decaf["rx"] == rx


def test_smp_sweep_digest_is_reproducible():
    seeds = range(3)
    _, first, failures = run_sweep(seeds, ["e1000"],
                                   DifferentialRunner(smp=2), echo=lambda *_: None)
    assert not failures
    _, second, _ = run_sweep(seeds, ["e1000"],
                             DifferentialRunner(smp=2), echo=lambda *_: None)
    assert first == second


def test_cli_smp_flag(capsys):
    status = main(["--smp", "2", "--seeds", "2", "--drivers", "e1000"])
    assert status == 0
    out = capsys.readouterr().out
    assert "2 scenario pairs, 0 divergent" in out
