"""Scenario generation: deterministic, seed-sensitive, well-formed."""

import pytest

from repro.conformance import (
    DRIVERS,
    ScenarioGenerator,
    canonical_json,
    digest_of,
)
from repro.conformance.minimize import ddmin
from repro.conformance.observe import is_subsequence
from repro.conformance.scenario import FAMILY


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_same_seed_same_scenario(self, driver):
        a = ScenarioGenerator(7).generate(driver, "strict")
        b = ScenarioGenerator(7).generate(driver, "strict")
        assert canonical_json(a.to_json()) == canonical_json(b.to_json())

    def test_generation_does_not_consume_global_random(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        ScenarioGenerator(7).generate("e1000", "strict")
        assert random.random() == before

    def test_different_seeds_differ(self):
        a = ScenarioGenerator(1).generate("e1000", "strict")
        b = ScenarioGenerator(2).generate("e1000", "strict")
        assert canonical_json(a.to_json()) != canonical_json(b.to_json())

    def test_different_drivers_differ(self):
        a = ScenarioGenerator(1).generate("e1000", "strict")
        b = ScenarioGenerator(1).generate("8139too", "strict")
        assert a.events != b.events

    def test_json_roundtrip(self):
        from repro.conformance import Scenario

        a = ScenarioGenerator(3).generate("psmouse", "strict")
        b = Scenario.from_json(a.to_json())
        assert canonical_json(a.to_json()) == canonical_json(b.to_json())


class TestScenarioShape:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_events_are_time_ordered(self, driver):
        scenario = ScenarioGenerator(5).generate(driver, "strict")
        times = [ev["t"] for ev in scenario.events]
        assert times == sorted(times)
        assert len(times) >= 2

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_family_tag(self, driver):
        scenario = ScenarioGenerator(5).generate(driver, "strict")
        assert scenario.family == FAMILY[driver]

    def test_strict_mode_has_no_faults(self):
        scenario = ScenarioGenerator(5).generate("e1000", "strict")
        assert scenario.faults == []

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_faulty_mode_has_faults(self, driver):
        scenario = ScenarioGenerator(5).generate(driver, "faulty")
        assert scenario.faults
        for fault in scenario.faults:
            assert fault["kind"] == "xpc_raise"
            assert fault["at"] > 0

    def test_mac_addresses_are_locally_administered(self):
        for seed in range(12):
            scenario = ScenarioGenerator(seed).generate("e1000", "strict")
            for ev in scenario.events:
                if ev["kind"] == "config_mac":
                    mac = bytes.fromhex(ev["addr"])
                    assert mac[0] & 0x02  # locally administered
                    assert not mac[0] & 0x01  # not multicast


class TestObserveHelpers:
    def test_canonical_json_is_stable(self):
        assert (canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
                == canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1}))

    def test_digest_of_differs_on_content(self):
        assert digest_of({"x": 1}) != digest_of({"x": 2})

    def test_is_subsequence(self):
        assert is_subsequence([], [1, 2, 3])
        assert is_subsequence([1, 3], [1, 2, 3])
        assert is_subsequence([1, 2, 3], [1, 2, 3])
        assert not is_subsequence([3, 1], [1, 2, 3])
        assert not is_subsequence([1, 1], [1, 2, 3])
        assert not is_subsequence([4], [1, 2, 3])


class TestDdmin:
    def test_reduces_to_single_culprit(self):
        items = list(range(20))

        def fails(subset):
            return 13 in subset

        assert ddmin(items, fails) == [13]

    def test_reduces_to_interacting_pair(self):
        items = list(range(16))

        def fails(subset):
            return 3 in subset and 11 in subset

        assert sorted(ddmin(items, fails)) == [3, 11]

    def test_keeps_everything_when_all_needed(self):
        items = [0, 1, 2]

        def fails(subset):
            return len(subset) == 3

        assert ddmin(items, fails) == [0, 1, 2]

    def test_passing_input_returned_unchanged(self):
        assert ddmin([1, 2, 3], lambda subset: False) == [1, 2, 3]
