"""Canary: a deliberately broken driver must be caught and minimized.

The harness is only trustworthy if sabotage is detected: ``nobble_drop_tx``
wraps the decaf variant's transmit path to drop every third frame, which
must surface as tx/counter divergences, ddmin down to a near-minimal
schedule, and emit a standalone repro script that still reproduces.
"""

import subprocess
import sys
import os

import pytest

from repro.conformance import (
    DifferentialRunner,
    ScenarioGenerator,
    minimize_scenario,
    nobble_drop_tx,
    write_repro_script,
)

SEED = 1  # known to generate tx traffic for e1000


@pytest.fixture(scope="module")
def nobbled_result():
    runner = DifferentialRunner(nobble=nobble_drop_tx)
    scenario = ScenarioGenerator(SEED).generate("e1000", "strict")
    return runner, scenario, runner.run_pair(scenario)


class TestCanaryDetection:
    def test_nobbled_decaf_diverges(self, nobbled_result):
        _runner, _scenario, result = nobbled_result
        assert not result.ok
        channels = {d.channel for d in result.divergences}
        assert "tx" in channels

    def test_divergence_names_the_channel_and_detail(self, nobbled_result):
        _runner, _scenario, result = nobbled_result
        tx = [d for d in result.divergences if d.channel == "tx"][0]
        assert "legacy" in tx.detail and "decaf" in tx.detail

    def test_minimizes_and_emits_working_repro(self, nobbled_result,
                                               tmp_path):
        runner, scenario, result = nobbled_result
        minimized, runs = minimize_scenario(runner, scenario, max_runs=48)
        assert 1 <= len(minimized.events) < len(scenario.events)
        assert runs <= 48

        final = runner.run_pair(minimized)
        assert not final.ok  # still diverges after minimization

        # Not "repro.py": the script's own directory is sys.path[0] in
        # the subprocess, and that name would shadow the repro package.
        path = tmp_path / "repro_canary.py"
        write_repro_script(minimized, final.divergences, str(path),
                           nobble_name="nobble_drop_tx")
        text = path.read_text()
        assert "nobble_drop_tx" in text
        assert '"driver":"e1000"' in text.replace(" ", "")

        # The emitted script must reproduce standalone: exit status 1
        # and a human-readable divergence report on stdout.
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.run([sys.executable, str(path)], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "divergence reproduced" in proc.stdout

    def test_unnobbled_pair_is_clean(self):
        """The same scenario without sabotage passes: the canary result
        is attributable to the nobble alone."""
        result = DifferentialRunner().run_pair(
            ScenarioGenerator(SEED).generate("e1000", "strict"))
        assert result.ok, "\n".join(
            "[%s] %s" % (d.channel, d.detail) for d in result.divergences)
