"""Differential replay: legacy and decaf variants stay equivalent.

These are the harness's own acceptance tests: one strict scenario per
driver pair must replay with zero divergence (lockdep enabled), the
same scenario replayed twice must digest byte-identically, and faulty
mode must hold its weaker invariants (subsequence delivery, bounded
loss, completed recovery).
"""

import pytest

from repro.conformance import (
    DRIVERS,
    DifferentialRunner,
    ScenarioGenerator,
)


@pytest.fixture(scope="module")
def runner():
    return DifferentialRunner()


class TestStrictConformance:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_strict_pair_is_equivalent(self, runner, driver):
        scenario = ScenarioGenerator(0).generate(driver, "strict")
        result = runner.run_pair(scenario)
        assert result.ok, "\n".join(
            "[%s] %s" % (d.channel, d.detail) for d in result.divergences)

    def test_lockdep_is_enabled_and_quiet(self, runner):
        scenario = ScenarioGenerator(0).generate("8139too", "strict")
        result = runner.run_pair(scenario)
        assert result.ok
        # the runner records lockdep output as an observation channel;
        # a clean traced run must have none on either variant
        assert result.legacy.channels["lockdep"] == []
        assert result.decaf.channels["lockdep"] == []

    def test_replay_is_deterministic(self, runner):
        scenario = ScenarioGenerator(1).generate("psmouse", "strict")
        first = runner.run_pair(scenario)
        second = runner.run_pair(scenario)
        assert first.ok and second.ok
        assert first.digest() == second.digest()

    def test_observations_cover_expected_channels(self, runner):
        scenario = ScenarioGenerator(1).generate("psmouse", "strict")
        result = runner.run_pair(scenario)
        obs = result.legacy.channels
        assert obs["input"], "psmouse scenario produced no input events"
        assert obs["counters"]["crossings"] == 0  # legacy never crosses
        assert result.decaf.channels["counters"]["crossings"] > 0


class TestFaultyConformance:
    def test_faulty_pair_recovers_with_bounded_loss(self, runner):
        scenario = ScenarioGenerator(2).generate("8139too", "faulty")
        assert scenario.faults
        result = runner.run_pair(scenario)
        assert result.ok, "\n".join(
            "[%s] %s" % (d.channel, d.detail) for d in result.divergences)
        counters = result.decaf.channels["counters"]
        assert counters["faults_fired"] > 0
        assert counters["recoveries"] > 0
        assert not counters["gave_up"]
        assert not counters["recovery_pending"]


class TestSweepDeterminism:
    def test_small_sweep_digests_identically_twice(self):
        """The determinism audit, in miniature: an entire sweep run
        twice from scratch must produce byte-identical suite digests."""
        from repro.conformance.__main__ import mode_for, run_sweep

        digests = []
        for _ in range(2):
            _results, suite_digest, failures = run_sweep(
                seeds=[0, 2], drivers=["psmouse"],
                runner=DifferentialRunner(), echo=lambda *a, **k: None)
            assert not failures
            digests.append(suite_digest)
        assert digests[0] == digests[1]
        assert mode_for(2) == "faulty" and mode_for(0) == "strict"
