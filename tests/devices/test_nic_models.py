"""E1000 and RTL8139 device models at the register level."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import E1000Device, EthernetLink, Rtl8139Device
from repro.devices import e1000 as e1000_mod
from repro.devices import rtl8139 as rtl_mod
from repro.kernel import make_kernel


@pytest.fixture
def e1000_rig():
    kernel = make_kernel()
    link = EthernetLink(kernel)
    nic = E1000Device(kernel, link)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "t")
    return kernel, link, nic


class TestE1000Eeprom:
    def test_checksum_sums_to_baba(self, e1000_rig):
        _k, _l, nic = e1000_rig
        assert sum(nic.eeprom) & 0xFFFF == 0xBABA

    def test_mac_in_first_words(self, e1000_rig):
        _k, _l, nic = e1000_rig
        mac = nic.mac
        assert nic.eeprom[0] == mac[0] | (mac[1] << 8)
        assert nic.eeprom[2] == mac[4] | (mac[5] << 8)

    def test_eerd_read_protocol(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        kernel.io.writel((1 << 8) | e1000_mod.EERD_START,
                         base + e1000_mod.REG_EERD)
        value = kernel.io.readl(base + e1000_mod.REG_EERD)
        assert value & e1000_mod.EERD_DONE
        assert (value >> 16) & 0xFFFF == nic.eeprom[1]

    def test_eeprom_read_takes_time(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        t0 = kernel.now_ns()
        kernel.io.writel(e1000_mod.EERD_START, base + e1000_mod.REG_EERD)
        assert kernel.now_ns() - t0 >= kernel.costs.eeprom_word_ns


class TestE1000Phy:
    def test_mdic_read_ids(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        kernel.io.writel((e1000_mod.PHY_ID1 << 16) | e1000_mod.MDIC_OP_READ,
                         base + e1000_mod.REG_MDIC)
        v = kernel.io.readl(base + e1000_mod.REG_MDIC)
        assert v & e1000_mod.MDIC_READY
        assert v & 0xFFFF == e1000_mod.M88_PHY_ID1

    def test_mdic_write_readback(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        kernel.io.writel((4 << 16) | e1000_mod.MDIC_OP_WRITE | 0x1234,
                         base + e1000_mod.REG_MDIC)
        kernel.io.writel((4 << 16) | e1000_mod.MDIC_OP_READ,
                         base + e1000_mod.REG_MDIC)
        assert kernel.io.readl(base + e1000_mod.REG_MDIC) & 0xFFFF == 0x1234

    def test_phy_id_matches_m88(self, e1000_rig):
        _k, _l, nic = e1000_rig
        phy_id = (nic.phy_regs[2] << 16) | nic.phy_regs[3]
        assert phy_id & 0xFFFFFFF0 == 0x01410C50


class TestE1000Interrupts:
    def test_icr_read_clears(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        nic._assert_irq(0x4)
        assert kernel.io.readl(base + e1000_mod.REG_ICR) == 0x4
        assert kernel.io.readl(base + e1000_mod.REG_ICR) == 0

    def test_masked_causes_do_not_fire(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        fired = []
        kernel.irq.request_irq(nic.irq, lambda i, d: fired.append(1) or 1, "t")
        nic._assert_irq(0x4)  # IMS is 0
        assert fired == []
        base = nic.pci.resource_start(0)
        kernel.io.writel(0x4, base + e1000_mod.REG_IMS)
        assert fired == [1]

    def test_reset_clears_state(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        kernel.io.writel(0xFF, base + e1000_mod.REG_IMS)
        kernel.io.writel(e1000_mod.CTRL_RST, base + e1000_mod.REG_CTRL)
        assert nic.regs.get(e1000_mod.REG_IMS, 0) == 0
        assert nic.resets == 1

    def test_link_up_after_slu(self, e1000_rig):
        kernel, _l, nic = e1000_rig
        base = nic.pci.resource_start(0)
        kernel.io.writel(e1000_mod.CTRL_SLU, base + e1000_mod.REG_CTRL)
        kernel.run_for_ms(10)
        status = kernel.io.readl(base + e1000_mod.REG_STATUS)
        assert status & e1000_mod.STATUS_LU


class TestE1000Rings:
    def _setup_tx(self, kernel, nic, count=8):
        base = nic.pci.resource_start(0)
        desc = kernel.memory.dma_alloc_coherent(count * 16)
        bufs = kernel.memory.dma_alloc_coherent(count * 2048)
        w = kernel.io.writel
        w(desc.dma_addr & 0xFFFFFFFF, base + e1000_mod.REG_TDBAL)
        w(desc.dma_addr >> 32, base + e1000_mod.REG_TDBAH)
        w(count * 16, base + e1000_mod.REG_TDLEN)
        w(0, base + e1000_mod.REG_TDH)
        w(0, base + e1000_mod.REG_TDT)
        w(e1000_mod.TCTL_EN, base + e1000_mod.REG_TCTL)
        return base, desc, bufs

    def test_tx_descriptor_processed(self, e1000_rig):
        kernel, link, nic = e1000_rig
        sent = []
        link.peer_rx = lambda f: sent.append(f)
        base, desc, bufs = self._setup_tx(kernel, nic)
        frame = b"\xAA" * 100
        bufs.data[0:100] = frame
        struct.pack_into("<QHBBBBH", desc.data, 0, bufs.dma_addr, 100, 0,
                         e1000_mod.TXD_CMD_EOP | e1000_mod.TXD_CMD_RS,
                         0, 0, 0)
        kernel.io.writel(1, base + e1000_mod.REG_TDT)
        kernel.run_for_ms(1)
        assert sent == [frame]
        assert desc.data[12] & e1000_mod.TXD_STAT_DD

    def test_tx_completion_paced_by_wire(self, e1000_rig):
        """Completion (DD) lands at wire time, not instantly."""
        kernel, link, nic = e1000_rig
        base, desc, bufs = self._setup_tx(kernel, nic)
        struct.pack_into("<QHBBBBH", desc.data, 0, bufs.dma_addr, 1500, 0,
                         e1000_mod.TXD_CMD_EOP | e1000_mod.TXD_CMD_RS,
                         0, 0, 0)
        kernel.io.writel(1, base + e1000_mod.REG_TDT)
        assert not desc.data[12] & e1000_mod.TXD_STAT_DD
        kernel.run_for_ns(link.frame_time_ns(1500) + 1000)
        assert desc.data[12] & e1000_mod.TXD_STAT_DD

    def test_rx_delivery(self, e1000_rig):
        kernel, link, nic = e1000_rig
        base = nic.pci.resource_start(0)
        count = 8
        desc = kernel.memory.dma_alloc_coherent(count * 16)
        bufs = kernel.memory.dma_alloc_coherent(count * 2048)
        w = kernel.io.writel
        for i in range(count):
            struct.pack_into("<Q", desc.data, i * 16,
                             bufs.dma_addr + i * 2048)
        w(desc.dma_addr & 0xFFFFFFFF, base + e1000_mod.REG_RDBAL)
        w(0, base + e1000_mod.REG_RDBAH)
        w(count * 16, base + e1000_mod.REG_RDLEN)
        w(0, base + e1000_mod.REG_RDH)
        w(count - 1, base + e1000_mod.REG_RDT)
        w(e1000_mod.RCTL_EN, base + e1000_mod.REG_RCTL)
        link.inject(b"\x55" * 300)
        status = desc.data[12]
        assert status & e1000_mod.RXD_STAT_DD
        assert bytes(bufs.data[0:300]) == b"\x55" * 300


@pytest.fixture
def rtl_rig():
    kernel = make_kernel()
    link = EthernetLink(kernel, bits_per_second=100_000_000)
    nic = Rtl8139Device(kernel, link)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "t")
    return kernel, link, nic


class TestRtl8139:
    def test_mac_in_idr(self, rtl_rig):
        kernel, _l, nic = rtl_rig
        base = nic.pci.resource_start(0)
        mac = bytes(kernel.io.inb(base + i) for i in range(6))
        assert mac == nic.mac

    def test_reset_preserves_mac(self, rtl_rig):
        kernel, _l, nic = rtl_rig
        base = nic.pci.resource_start(0)
        kernel.io.outb(rtl_mod.CR_RST, base + rtl_mod.CR)
        mac = bytes(kernel.io.inb(base + i) for i in range(6))
        assert mac == nic.mac
        assert nic.resets == 1

    def test_isr_write_one_to_clear(self, rtl_rig):
        kernel, _l, nic = rtl_rig
        base = nic.pci.resource_start(0)
        nic._assert_irq(rtl_mod.ISR_ROK | rtl_mod.ISR_TOK)
        assert kernel.io.inw(base + rtl_mod.ISR) == 0x5
        kernel.io.outw(rtl_mod.ISR_ROK, base + rtl_mod.ISR)
        assert kernel.io.inw(base + rtl_mod.ISR) == rtl_mod.ISR_TOK

    def test_rx_ring_wraparound(self, rtl_rig):
        """Frames near the end of the 32K ring wrap to the start."""
        kernel, link, nic = rtl_rig
        base = nic.pci.resource_start(0)
        ring = kernel.memory.dma_alloc_coherent(rtl_mod.RX_RING_SIZE + 16)
        kernel.io.outl(ring.dma_addr, base + rtl_mod.RBSTART)
        kernel.io.outb(rtl_mod.CR_RE, base + rtl_mod.CR)
        # Force the write pointer near the end of the ring.
        nic._rx_write_off = rtl_mod.RX_RING_SIZE - 10
        nic._rx_read_off = rtl_mod.RX_RING_SIZE - 10
        frame = bytes(range(64))
        link.inject(frame)
        # Header is 4 bytes at offset SIZE-10; data wraps around.
        start = rtl_mod.RX_RING_SIZE - 10
        status, size = struct.unpack_from("<HH", ring.data, start)
        assert status & 0x1
        assert size == 64 + 4
        got = bytes(ring.data[(start + 4 + i) % rtl_mod.RX_RING_SIZE]
                    for i in range(64))
        assert got == frame

    def test_overflow_sets_rxovw(self, rtl_rig):
        kernel, link, nic = rtl_rig
        base = nic.pci.resource_start(0)
        ring = kernel.memory.dma_alloc_coherent(rtl_mod.RX_RING_SIZE + 16)
        kernel.io.outl(ring.dma_addr, base + rtl_mod.RBSTART)
        kernel.io.outb(rtl_mod.CR_RE, base + rtl_mod.CR)
        # Never advance CAPR: ring eventually overflows.
        for _ in range(40):
            link.inject(bytes(1500))
        assert nic.rx_overflows > 0
        assert kernel.io.inw(base + rtl_mod.ISR) & rtl_mod.ISR_RXOVW

    @given(sizes=st.lists(st.integers(min_value=20, max_value=1500),
                          min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_property_rx_frames_intact_in_order(self, sizes):
        kernel = make_kernel()
        link = EthernetLink(kernel, bits_per_second=100_000_000)
        nic = Rtl8139Device(kernel, link)
        kernel.pci.add_function(nic.pci)
        kernel.pci.request_regions(nic.pci, "t")
        base = nic.pci.resource_start(0)
        ring = kernel.memory.dma_alloc_coherent(rtl_mod.RX_RING_SIZE + 16)
        kernel.io.outl(ring.dma_addr, base + rtl_mod.RBSTART)
        kernel.io.outb(rtl_mod.CR_RE, base + rtl_mod.CR)
        frames = [bytes([i & 0xFF]) * n for i, n in enumerate(sizes)]
        for f in frames:
            link.inject(f)
        # Walk the ring like the driver does.
        cur = 0
        got = []
        for _ in frames:
            status, size = struct.unpack_from(
                "<HH", ring.data, cur % rtl_mod.RX_RING_SIZE)
            assert status & 0x1
            data = bytes(ring.data[(cur + 4 + i) % rtl_mod.RX_RING_SIZE]
                         for i in range(size - 4))
            got.append(data)
            cur = (cur + 4 + size + 3) & ~3
        assert got == frames
