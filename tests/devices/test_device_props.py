"""Property-based tests on device-model protocol behaviour."""

import struct

from hypothesis import given, settings, strategies as st

from repro.devices import Ps2MouseDevice, UsbFlashDiskModel
from repro.kernel import make_kernel


class TestPs2MouseProperties:
    @given(moves=st.lists(
        st.tuples(st.integers(-127, 127), st.integers(-127, 127),
                  st.integers(0, 7)),
        min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_packets_decode_to_original_motion(self, moves):
        kernel = make_kernel()
        port = kernel.input.new_serio_port()
        mouse = Ps2MouseDevice(kernel, intellimouse_capable=False)
        mouse.attach(port)
        received = []
        port.open(lambda p, b, f: received.append(b))
        port.write(0xF4)  # enable
        del received[:]
        for dx, dy, buttons in moves:
            mouse.move(dx, dy, buttons=buttons)
        assert len(received) == 3 * len(moves)
        for i, (dx, dy, buttons) in enumerate(moves):
            b0, bdx, bdy = received[3 * i:3 * i + 3]
            assert b0 & 0x07 == buttons
            got_dx = bdx - 256 if b0 & 0x10 else bdx
            got_dy = bdy - 256 if b0 & 0x20 else bdy
            assert got_dx == dx
            assert got_dy == dy

    @given(commands=st.lists(st.integers(0, 255), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_command_stream_never_crashes(self, commands):
        kernel = make_kernel()
        port = kernel.input.new_serio_port()
        mouse = Ps2MouseDevice(kernel)
        mouse.attach(port)
        port.open(lambda p, b, f: None)
        for byte in commands:
            port.write(byte)
        # The device remains responsive afterwards.
        responses = []
        port.driver_interrupt = lambda p, b, f: responses.append(b)
        mouse._awaiting_arg = None
        port.write(0xF2)
        assert responses[0] in (0xFA, 0xFE)


class TestFlashDiskProperties:
    @given(writes=st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 4),
                  st.integers(0, 255)),
        min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_last_write_wins(self, writes):
        disk = UsbFlashDiskModel()
        expected = {}
        for lba, count, fill in writes:
            payload = bytes([fill]) * (count * 512)
            disk.bulk_out(2, struct.pack("<BBHI", 1, 0, count, lba) + payload)
            for i in range(count):
                expected[lba + i] = bytes([fill]) * 512
        for lba, data in expected.items():
            disk.bulk_out(2, struct.pack("<BBHI", 2, 0, 1, lba))
            assert disk.bulk_in(1, 512) == data

    @given(chunks=st.lists(st.integers(1, 600), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_write_reassembled_from_any_chunking(self, chunks):
        disk = UsbFlashDiskModel()
        payload = bytes(range(256)) * 4  # 2 blocks
        blob = struct.pack("<BBHI", 1, 0, 2, 0) + payload
        # Split the blob at the generated chunk sizes.
        offset = 0
        for size in chunks:
            if offset >= len(blob):
                break
            disk.bulk_out(2, blob[offset:offset + size])
            offset += size
        if offset < len(blob):
            disk.bulk_out(2, blob[offset:])
        assert disk.blocks[0] == payload[:512]
        assert disk.blocks[1] == payload[512:]


class TestSlicerDeterminism:
    def test_partition_is_deterministic(self):
        from repro.slicer import DRIVER_CONFIGS, build_call_graph, partition_driver

        config = DRIVER_CONFIGS["e1000"]
        runs = []
        for _ in range(2):
            graph = build_call_graph(config.load_modules())
            partition = partition_driver(graph, config)
            runs.append((frozenset(partition.kernel_funcs),
                         frozenset(partition.user_entry_points)))
        assert runs[0] == runs[1]

    def test_xdr_spec_is_deterministic(self):
        from repro.drivers.legacy import e1000_main
        from repro.slicer import generate_xdr_spec
        from repro.slicer.xdrgen import driver_struct_classes

        a = generate_xdr_spec(driver_struct_classes([e1000_main]))
        b = generate_xdr_spec(driver_struct_classes([e1000_main]))
        assert a == b

    def test_stub_source_is_deterministic(self):
        from repro.drivers.legacy import rtl8139
        from repro.slicer import (
            DRIVER_CONFIGS,
            build_call_graph,
            generate_stubs,
            partition_driver,
        )

        config = DRIVER_CONFIGS["8139too"]
        graph = build_call_graph([rtl8139])
        partition = partition_driver(graph, config)
        a = generate_stubs("8139too", partition, [rtl8139], config.type_hints)
        b = generate_stubs("8139too", partition, [rtl8139], config.type_hints)
        assert a == b
