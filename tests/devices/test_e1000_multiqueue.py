"""E1000 multi-queue: strided register layout, RSS flow steering,
per-queue interrupt lines, and end-to-end per-queue delivery through
both driver variants."""

import struct
import zlib

import pytest

from repro.devices import E1000Device, EthernetLink
from repro.devices import e1000 as e1000_mod
from repro.kernel import make_kernel
from repro.workloads.rigs import make_e1000_rig


def _make_nic(num_queues=1, **kwargs):
    kernel = make_kernel()
    link = EthernetLink(kernel)
    nic = E1000Device(kernel, link, num_queues=num_queues, **kwargs)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "t")
    return kernel, nic, nic.pci.resource_start(0)


def _frame_for_queue(q, num_queues, length=64):
    """A frame whose steering key hashes to queue ``q``."""
    n = 0
    while True:
        key = struct.pack(">Q", n)
        if zlib.crc32(key) % num_queues == q:
            head = b"\x00" * 12 + key
            return head + b"\x00" * (length - len(head))
        n += 1


def test_num_queues_validation():
    kernel = make_kernel()
    link = EthernetLink(kernel)
    with pytest.raises(ValueError):
        E1000Device(kernel, link, num_queues=0)
    with pytest.raises(ValueError):
        E1000Device(kernel, link, num_queues=e1000_mod.MAX_QUEUES + 1)


def test_strided_layout_is_collision_free():
    """No queue's strided block may alias any base register (or another
    queue's block) -- the queue-0 map must stay byte-identical to the
    single-queue chip."""
    _kernel, nic, _base = _make_nic(num_queues=e1000_mod.MAX_QUEUES)
    base_regs = {value for name, value in vars(e1000_mod).items()
                 if name.startswith("REG_")}
    strided = set(nic._strided) | set(nic._icr_alias)
    assert not strided & base_regs
    # Every strided offset resolves to exactly one (kind, queue).
    assert len(strided) == len(nic._strided) + len(nic._icr_alias)


def test_steer_is_deterministic_and_covers_all_queues():
    _kernel, nic, _base = _make_nic(num_queues=4)
    hit = set()
    for q in range(4):
        frame = _frame_for_queue(q, 4)
        assert nic.steer(frame) == q
        assert nic.steer(frame) == q  # pure function of the frame
        hit.add(q)
    assert hit == {0, 1, 2, 3}


def test_single_queue_steers_everything_to_zero():
    _kernel, nic, _base = _make_nic(num_queues=1)
    assert nic._strided == {}
    assert nic.steer(_frame_for_queue(3, 4)) == 0


def test_per_queue_interrupt_block_is_independent():
    """Queue 1's ICS/IMS/ICR at +0x100 raise irq+1 and read-to-clear
    without disturbing queue 0's registers."""
    kernel, nic, base = _make_nic(num_queues=2, itr_window_ns=0)
    stride = e1000_mod.QUEUE_STRIDE
    seen = {0: [], 1: []}

    def handler(q):
        def fn(_irq, _dev_id):
            icr = kernel.io.readl(base + e1000_mod.REG_ICR + q * stride)
            seen[q].append(icr)
            return 1
        return fn

    for q in (0, 1):
        assert kernel.irq.request_irq(nic.irq + q, handler(q), "t") == 0
        kernel.io.writel(e1000_mod.ICR_RXT0,
                         base + e1000_mod.REG_IMS + q * stride)

    kernel.io.writel(e1000_mod.ICR_RXT0,
                     base + e1000_mod.REG_ICS + stride)
    assert seen == {0: [], 1: [e1000_mod.ICR_RXT0]}
    # Read-to-clear already emptied queue 1's ICR; queue 0 untouched.
    assert kernel.io.readl(base + e1000_mod.REG_ICR + stride) == 0
    kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
    assert seen == {0: [e1000_mod.ICR_RXT0], 1: [e1000_mod.ICR_RXT0]}


@pytest.mark.parametrize("decaf", [False, True], ids=["legacy", "decaf"])
def test_frames_land_on_steered_queue_end_to_end(decaf):
    """Through a loaded driver, injected flows are counted on the RSS
    queue their key hashes to, and every frame reaches the stack."""
    rig = make_e1000_rig(decaf=decaf, num_queues=4)
    rig.insmod()
    kernel = rig.kernel
    dev = rig.netdev()
    assert kernel.net.dev_open(dev) == 0
    kernel.run_for_ms(60)

    received = []
    kernel.net.rx_sink = lambda _dev, skb: received.append(bytes(skb.data))
    plan = [0, 2, 2, 3, 1, 3, 3, 0]
    for q in plan:
        rig.link.inject(_frame_for_queue(q, 4, length=128))
    kernel.run_for_ms(4)

    expected = [plan.count(q) for q in range(4)]
    assert rig.device.rx_queue_frames == expected
    assert len(received) == len(plan)
    assert sorted(received) == sorted(_frame_for_queue(q, 4, length=128)
                                      for q in plan)
    kernel.net.rx_sink = None
    kernel.net.dev_close(dev)
    rig.rmmod()
