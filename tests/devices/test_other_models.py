"""ens1371, UHCI + flash disk, and PS/2 mouse device models."""

import struct

import pytest

from repro.devices import (
    Ens1371Device,
    Ps2MouseDevice,
    UhciDevice,
    UsbFlashDiskModel,
)
from repro.devices import ens1371 as ens_mod
from repro.devices import uhci as uhci_mod
from repro.devices import ps2mouse as ps2_mod
from repro.kernel import make_kernel


@pytest.fixture
def ens_rig():
    kernel = make_kernel()
    snd = Ens1371Device(kernel)
    kernel.pci.add_function(snd.pci)
    kernel.pci.request_regions(snd.pci, "t")
    return kernel, snd, snd.pci.resource_start(0)


class TestEns1371Codec:
    def test_codec_read_vendor(self, ens_rig):
        kernel, snd, base = ens_rig
        kernel.io.outl((0x7C << 16) | ens_mod.CODEC_PIRD,
                       base + ens_mod.REG_CODEC)
        v = kernel.io.inl(base + ens_mod.REG_CODEC)
        assert v & ens_mod.CODEC_RDY
        assert v & 0xFFFF == 0x4352

    def test_codec_write_then_read(self, ens_rig):
        kernel, snd, base = ens_rig
        kernel.io.outl((0x02 << 16) | 0x1F1F, base + ens_mod.REG_CODEC)
        kernel.io.outl((0x02 << 16) | ens_mod.CODEC_PIRD,
                       base + ens_mod.REG_CODEC)
        assert kernel.io.inl(base + ens_mod.REG_CODEC) & 0xFFFF == 0x1F1F

    def test_src_rate_programming(self, ens_rig):
        kernel, snd, base = ens_rig
        reg = 0x75 % 128
        kernel.io.outl((reg << 25) | (1 << 24) | 48000,
                       base + ens_mod.REG_SRC)
        assert snd.src_ram[reg] == 48000


class TestEns1371Playback:
    def _start(self, kernel, snd, base, rate=44100, period_frames=1024,
               periods=4):
        buf = kernel.memory.dma_alloc_coherent(period_frames * 4 * periods)
        kernel.io.outl((0x75 << 25) | (1 << 24) | rate,
                       base + ens_mod.REG_SRC)
        kernel.io.outl(ens_mod.MEMPAGE_DAC2, base + ens_mod.REG_MEMPAGE)
        kernel.io.outl(buf.dma_addr, base + ens_mod.REG_DAC2_FRAME_ADDR)
        kernel.io.outl(period_frames * periods - 1,
                       base + ens_mod.REG_DAC2_FRAME_SIZE)
        kernel.io.outl(period_frames - 1, base + ens_mod.REG_DAC2_SCOUNT)
        sctrl = (ens_mod.SCTRL_P2_INTR_EN | ens_mod.SCTRL_P2_SMB
                 | ens_mod.SCTRL_P2_SSB)
        kernel.io.outl(sctrl, base + ens_mod.REG_SCTRL)
        kernel.io.outl(ens_mod.CTRL_DAC2_EN, base + ens_mod.REG_CONTROL)
        return buf

    def test_period_interrupt_cadence(self, ens_rig):
        kernel, snd, base = ens_rig
        fired = []
        kernel.irq.request_irq(snd.irq, lambda i, d: fired.append(
            kernel.now_ns()) or 1, "t")
        self._start(kernel, snd, base)
        kernel.run_for_s(1.0)
        # 44100 Hz / 1024-sample periods ~= 43 interrupts per second.
        assert 40 <= len(fired) <= 46

    def test_stop_stops_interrupts(self, ens_rig):
        kernel, snd, base = ens_rig
        self._start(kernel, snd, base)
        kernel.run_for_ms(100)
        count = snd.period_interrupts
        kernel.io.outl(0, base + ens_mod.REG_CONTROL)  # DAC2 off
        kernel.run_for_ms(100)
        assert snd.period_interrupts == count

    def test_audio_actually_consumed(self, ens_rig):
        kernel, snd, base = ens_rig
        buf = self._start(kernel, snd, base)
        buf.data[0:4] = struct.pack("<I", 0x11223344)
        kernel.run_for_ms(100)
        assert snd.samples_consumed > 0
        assert snd.audio_checksum != 0


class TestUhci:
    def _rig(self):
        kernel = make_kernel()
        hc = UhciDevice(kernel)
        disk = UsbFlashDiskModel(address=1)
        hc.attach(0, disk)
        kernel.pci.add_function(hc.pci)
        kernel.pci.request_regions(hc.pci, "t")
        return kernel, hc, disk, hc.pci.resource_start(0)

    def test_port_status_reflects_attachment(self):
        kernel, hc, disk, base = self._rig()
        sc = kernel.io.inw(base + uhci_mod.PORTSC1)
        assert sc & uhci_mod.PORT_CCS
        assert sc & uhci_mod.PORT_CSC
        sc2 = kernel.io.inw(base + uhci_mod.PORTSC2)
        assert not sc2 & uhci_mod.PORT_CCS

    def test_port_reset_enables(self):
        kernel, hc, disk, base = self._rig()
        kernel.io.outw(uhci_mod.PORT_PR, base + uhci_mod.PORTSC1)
        kernel.io.outw(0, base + uhci_mod.PORTSC1)
        assert kernel.io.inw(base + uhci_mod.PORTSC1) & uhci_mod.PORT_PE

    def test_frame_counter_advances_when_running(self):
        kernel, hc, disk, base = self._rig()
        fl = kernel.memory.dma_alloc_coherent(
            uhci_mod.TD_RING_ENTRIES * uhci_mod.TD_SIZE)
        kernel.io.outl(fl.dma_addr, base + uhci_mod.FLBASEADD)
        kernel.io.outw(uhci_mod.CMD_RS, base + uhci_mod.USBCMD)
        kernel.run_for_ms(10)
        assert kernel.io.inw(base + uhci_mod.FRNUM) == 10
        assert not kernel.io.inw(base + uhci_mod.USBSTS) & uhci_mod.STS_HCHALTED

    def test_td_execution_bandwidth_limited(self):
        """A 4 KB transfer takes several 1 ms frames at USB 1.1 speed."""
        kernel, hc, disk, base = self._rig()
        # Enable the port so the device is addressable.
        kernel.io.outw(uhci_mod.PORT_PR, base + uhci_mod.PORTSC1)
        kernel.io.outw(0, base + uhci_mod.PORTSC1)
        fl = kernel.memory.dma_alloc_coherent(
            uhci_mod.TD_RING_ENTRIES * uhci_mod.TD_SIZE)
        data = kernel.memory.dma_alloc_coherent(4096)
        payload = struct.pack("<BBHI", 1, 0, 8, 0) + bytes(8 * 512)
        data.data[0:len(payload)] = payload
        offset = 0
        slot = 0
        while offset < len(payload):
            chunk = min(512, len(payload) - offset)
            struct.pack_into("<IHBBBBH", fl.data, slot * uhci_mod.TD_SIZE,
                             data.dma_addr + offset, chunk,
                             uhci_mod.TD_ACTIVE, 1, 2, 0, 0)
            offset += chunk
            slot += 1
        kernel.io.outl(fl.dma_addr, base + uhci_mod.FLBASEADD)
        kernel.io.outw(uhci_mod.CMD_RS, base + uhci_mod.USBCMD)
        kernel.run_for_ms(1)
        # ~1216 bytes/frame: after 1 frame not all TDs are done.
        flags_last = fl.data[(slot - 1) * uhci_mod.TD_SIZE + 6]
        assert not flags_last & uhci_mod.TD_DONE
        kernel.run_for_ms(10)
        flags_last = fl.data[(slot - 1) * uhci_mod.TD_SIZE + 6]
        assert flags_last & uhci_mod.TD_DONE
        assert disk.blocks[0] == bytes(512)


class TestFlashDisk:
    def test_write_then_read(self):
        disk = UsbFlashDiskModel()
        payload = bytes(range(256)) * 2
        disk.bulk_out(2, struct.pack("<BBHI", 1, 0, 1, 7) + payload)
        assert disk.blocks[7] == payload
        disk.bulk_out(2, struct.pack("<BBHI", 2, 0, 1, 7))
        assert disk.bulk_in(1, 512) == payload

    def test_write_split_across_transfers(self):
        disk = UsbFlashDiskModel()
        payload = bytes([0xAB]) * 1024
        header = struct.pack("<BBHI", 1, 0, 2, 0)
        blob = header + payload
        disk.bulk_out(2, blob[:400])
        disk.bulk_out(2, blob[400:900])
        disk.bulk_out(2, blob[900:])
        assert disk.blocks[0] == payload[:512]
        assert disk.blocks[1] == payload[512:]

    def test_read_unwritten_block_is_zero(self):
        disk = UsbFlashDiskModel()
        disk.bulk_out(2, struct.pack("<BBHI", 2, 0, 1, 99))
        assert disk.bulk_in(1, 512) == bytes(512)


class TestPs2Mouse:
    def _rig(self):
        kernel = make_kernel()
        port = kernel.input.new_serio_port()
        mouse = Ps2MouseDevice(kernel)
        mouse.attach(port)
        received = []
        port.open(lambda p, b, f: received.append(b))
        return kernel, port, mouse, received

    def test_reset_sequence(self):
        kernel, port, mouse, rx = self._rig()
        port.write(0xFF)
        assert rx == [0xFA, 0xAA, 0x00]
        assert mouse.resets == 1

    def test_get_id_before_knock(self):
        kernel, port, mouse, rx = self._rig()
        port.write(0xF2)
        assert rx == [0xFA, 0x00]

    def test_intellimouse_knock(self):
        kernel, port, mouse, rx = self._rig()
        for rate in (200, 100, 80):
            port.write(0xF3)
            port.write(rate)
        del rx[:]
        port.write(0xF2)
        assert rx == [0xFA, 0x03]

    def test_wrong_knock_stays_standard(self):
        kernel, port, mouse, rx = self._rig()
        for rate in (200, 200, 80):  # explorer knock on a non-explorer
            port.write(0xF3)
            port.write(rate)
        del rx[:]
        port.write(0xF2)
        assert rx == [0xFA, 0x03] or rx == [0xFA, 0x00]

    def test_no_reports_until_enabled(self):
        kernel, port, mouse, rx = self._rig()
        assert mouse.move(1, 1) is False
        port.write(0xF4)
        del rx[:]
        assert mouse.move(1, 1) is True
        assert len(rx) == 3  # standard 3-byte packet

    def test_four_byte_packets_after_upgrade(self):
        kernel, port, mouse, rx = self._rig()
        for rate in (200, 100, 80):
            port.write(0xF3)
            port.write(rate)
        port.write(0xF4)
        del rx[:]
        mouse.move(2, 3, wheel=-1)
        assert len(rx) == 4

    def test_negative_motion_sign_bits(self):
        kernel, port, mouse, rx = self._rig()
        port.write(0xF4)
        del rx[:]
        mouse.move(-5, -7)
        b0, dx, dy = rx
        assert b0 & 0x10 and b0 & 0x20
        assert dx == (-5) & 0xFF and dy == (-7) & 0xFF

    def test_unknown_command_nak(self):
        kernel, port, mouse, rx = self._rig()
        port.write(0x42)
        assert rx == [0xFE]
