"""RTL8139 interrupt coalescing (the simplified IntrMitigate window)
and the traffic generator's bursty-arrival mode."""

from repro.devices import EthernetLink, Rtl8139Device, TrafficGenerator
from repro.devices import rtl8139 as rtl_mod
from repro.kernel import make_kernel


def _make_rig(rx_coalesce_ns=0):
    kernel = make_kernel()
    link = EthernetLink(kernel, bits_per_second=100_000_000)
    nic = Rtl8139Device(kernel, link, rx_coalesce_ns=rx_coalesce_ns)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "t")
    base = nic.pci.resource_start(0)
    return kernel, nic, base


def _install_handler(kernel, nic, base):
    """Handler that acks (write-1-to-clear) and logs what it saw."""
    seen = []

    def handler(_irq, _dev_id):
        isr = kernel.io.inw(base + rtl_mod.ISR)
        seen.append(isr)
        kernel.io.outw(isr, base + rtl_mod.ISR)
        return 1

    assert kernel.irq.request_irq(nic.irq, handler, "t") == 0
    kernel.io.outw(0xFFFF, base + rtl_mod.IMR)
    return seen


def test_zero_window_delivers_immediately():
    kernel, nic, base = _make_rig()
    seen = _install_handler(kernel, nic, base)
    for _ in range(3):
        nic._assert_irq(rtl_mod.ISR_ROK)
    assert seen == [rtl_mod.ISR_ROK] * 3


def test_causes_in_window_coalesce_into_one_delivery():
    kernel, nic, base = _make_rig(rx_coalesce_ns=50_000)
    seen = _install_handler(kernel, nic, base)

    nic._assert_irq(rtl_mod.ISR_ROK)
    assert seen == [rtl_mod.ISR_ROK]  # first cause delivers at once

    # Causes inside the open window latch in ISR, no extra interrupt.
    nic._assert_irq(rtl_mod.ISR_ROK)
    nic._assert_irq(rtl_mod.ISR_TOK)
    assert len(seen) == 1

    kernel.run_for_ns(50_001)
    assert seen == [rtl_mod.ISR_ROK, rtl_mod.ISR_ROK | rtl_mod.ISR_TOK]


def test_empty_window_expiry_is_silent():
    kernel, nic, base = _make_rig(rx_coalesce_ns=50_000)
    seen = _install_handler(kernel, nic, base)
    nic._assert_irq(rtl_mod.ISR_ROK)
    kernel.run_for_ns(200_000)  # handler acked; nothing accumulated
    assert seen == [rtl_mod.ISR_ROK]


def test_window_rearms_for_later_bursts():
    kernel, nic, base = _make_rig(rx_coalesce_ns=50_000)
    seen = _install_handler(kernel, nic, base)
    for _ in range(3):
        nic._assert_irq(rtl_mod.ISR_ROK)
        kernel.run_for_ns(100_000)
    assert seen == [rtl_mod.ISR_ROK] * 3


def test_reset_cancels_open_window():
    kernel, nic, base = _make_rig(rx_coalesce_ns=50_000)
    seen = _install_handler(kernel, nic, base)
    nic._assert_irq(rtl_mod.ISR_ROK)
    kernel.io.outb(rtl_mod.CR_RST, base + rtl_mod.CR)
    kernel.run_for_ns(200_000)
    # The stale expiry must not re-deliver against the post-reset ISR.
    assert seen == [rtl_mod.ISR_ROK]
    assert nic._coalesce_event is None


def test_traffic_generator_burst_preserves_average_rate():
    """burst=k injects k frames every k intervals: same average rate
    (up to the final partial burst), bursty arrival pattern."""
    counts = {}
    for burst in (1, 4):
        kernel = make_kernel()
        link = EthernetLink(kernel, bits_per_second=100_000_000)
        arrivals = []
        link.nic_rx = lambda f, a=arrivals: a.append(kernel.clock.now_ns)
        gen = TrafficGenerator(kernel, link, frame_bytes=1500, burst=burst)
        gen.start(stop_at_ns=10_000_000)
        kernel.run_for_ms(10)
        gen.stop()
        counts[burst] = gen.frames_sent
        if burst > 1:
            # Frames inside one burst land back-to-back at one instant.
            assert arrivals[0] == arrivals[burst - 1]
            assert arrivals[burst] > arrivals[0]
    assert counts[1] > 0 and counts[4] > 0
    assert abs(counts[1] - counts[4]) < 4
