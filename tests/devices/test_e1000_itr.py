"""E1000 interrupt coalescing (ITR window) at the register level.

The model throttles interrupt delivery to one per ITR window: causes
asserted while the window is open accumulate in ICR and are delivered in
a single interrupt when the window expires.  Read-to-clear must never
drop a cause that lands between the handler's ICR read and its return.
"""

import pytest

from repro.devices import E1000Device, EthernetLink
from repro.devices import e1000 as e1000_mod
from repro.kernel import make_kernel


def _make_rig(itr_window_ns=None):
    kernel = make_kernel()
    link = EthernetLink(kernel)
    nic = E1000Device(kernel, link, itr_window_ns=itr_window_ns)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "t")
    base = nic.pci.resource_start(0)
    return kernel, nic, base


def _install_handler(kernel, nic, base, on_first=None):
    """Handler that reads ICR (read-to-clear) and logs what it saw."""
    seen = []

    def handler(_irq, _dev_id):
        icr = kernel.io.readl(base + e1000_mod.REG_ICR)
        if on_first is not None and not seen:
            on_first()
        seen.append(icr)
        return 1

    assert kernel.irq.request_irq(nic.irq, handler, "t") == 0
    return seen


class TestItrCoalescing:
    def test_causes_in_window_coalesce_into_one_delivery(self):
        kernel, nic, base = _make_rig()
        seen = _install_handler(kernel, nic, base)
        kernel.io.writel(e1000_mod.ICR_RXT0 | e1000_mod.ICR_TXDW,
                         base + e1000_mod.REG_IMS)

        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
        assert seen == [e1000_mod.ICR_RXT0]  # first cause delivers at once

        # More causes inside the window: accumulate, no extra interrupt.
        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
        kernel.io.writel(e1000_mod.ICR_TXDW, base + e1000_mod.REG_ICS)
        assert len(seen) == 1

        # Window expiry delivers the accumulated causes as one interrupt.
        kernel.run_for_ns(nic.itr_window_ns + 1)
        assert seen == [e1000_mod.ICR_RXT0,
                        e1000_mod.ICR_RXT0 | e1000_mod.ICR_TXDW]

    def test_empty_window_expiry_is_silent(self):
        kernel, nic, base = _make_rig()
        seen = _install_handler(kernel, nic, base)
        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_IMS)
        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
        # Handler read cleared ICR; nothing new arrives in the window.
        kernel.run_for_ns(nic.itr_window_ns * 3)
        assert seen == [e1000_mod.ICR_RXT0]

    def test_cause_raised_mid_read_is_not_dropped(self):
        """A cause asserted between the ICR read and handler return must
        be delivered by the next window, not lost to read-to-clear."""
        kernel, nic, base = _make_rig()
        seen = _install_handler(
            kernel, nic, base,
            on_first=lambda: nic._assert_irq(e1000_mod.ICR_TXDW))
        kernel.io.writel(e1000_mod.ICR_RXT0 | e1000_mod.ICR_TXDW,
                         base + e1000_mod.REG_IMS)

        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
        assert seen == [e1000_mod.ICR_RXT0]
        # The mid-read TXDW sits latched in ICR behind the open window.
        assert nic.regs[e1000_mod.REG_ICR] == e1000_mod.ICR_TXDW
        kernel.run_for_ns(nic.itr_window_ns + 1)
        assert seen == [e1000_mod.ICR_RXT0, e1000_mod.ICR_TXDW]

    def test_window_rearms_for_later_bursts(self):
        kernel, nic, base = _make_rig()
        seen = _install_handler(kernel, nic, base)
        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_IMS)
        for _ in range(3):
            kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
            kernel.run_for_ns(nic.itr_window_ns * 2)
        assert seen == [e1000_mod.ICR_RXT0] * 3


class TestZeroWindow:
    def test_zero_window_delivers_per_cause(self):
        """itr_window_ns=0 is the per-packet-interrupt ablation baseline."""
        kernel, nic, base = _make_rig(itr_window_ns=0)
        seen = _install_handler(kernel, nic, base)
        kernel.io.writel(e1000_mod.ICR_RXT0 | e1000_mod.ICR_TXDW,
                         base + e1000_mod.REG_IMS)
        for _ in range(3):
            kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_ICS)
        kernel.io.writel(e1000_mod.ICR_TXDW, base + e1000_mod.REG_ICS)
        assert seen == [e1000_mod.ICR_RXT0] * 3 + [e1000_mod.ICR_TXDW]
        # No throttle event was ever armed (on any queue).
        assert all(ev is None for ev in nic._itr_event)

    def test_default_window_from_class_attribute(self):
        kernel = make_kernel()
        link = EthernetLink(kernel)
        nic = E1000Device(kernel, link)
        assert nic.itr_window_ns == E1000Device.ITR_WINDOW_NS


class TestImsRefire:
    def test_ims_write_refires_latched_causes(self):
        """Unmasking with causes pending delivers them (the NAPI poll
        relies on this when it restores IMS after napi_complete)."""
        kernel, nic, base = _make_rig()
        seen = _install_handler(kernel, nic, base)
        nic._assert_irq(e1000_mod.ICR_RXT0)  # IMS == 0: latched only
        assert seen == []
        kernel.io.writel(e1000_mod.ICR_RXT0, base + e1000_mod.REG_IMS)
        assert seen == [e1000_mod.ICR_RXT0]
