"""Clean unload: every driver generation frees everything it took."""

import pytest

from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)

ALL_RIGS = [
    ("8139too", make_8139too_rig),
    ("e1000", make_e1000_rig),
    ("ens1371", make_ens1371_rig),
    ("uhci_hcd", make_uhci_rig),
    ("psmouse", make_psmouse_rig),
]


@pytest.mark.parametrize("name,make_rig", ALL_RIGS,
                         ids=[n for n, _ in ALL_RIGS])
@pytest.mark.parametrize("decaf", [False, True], ids=["native", "decaf"])
def test_load_use_unload_leaves_no_memory(name, make_rig, decaf):
    rig = make_rig(decaf=decaf)
    rig.insmod()
    kernel = rig.kernel

    dev = kernel.net.find("eth0")
    if dev is not None:
        assert kernel.net.dev_open(dev) == 0
        kernel.run_for_ms(60)
        assert kernel.net.dev_close(dev) == 0

    rig.rmmod(check_leaks=True)  # raises MemoryLeakError on leaks

    # Subsystem registrations are gone too.
    assert kernel.net.find("eth0") is None
    assert kernel.sound.cards == []
    assert kernel.usb.devices == []
    assert kernel.input.devices == []


@pytest.mark.parametrize("decaf", [False, True], ids=["native", "decaf"])
def test_reload_after_unload(decaf):
    """insmod -> rmmod -> insmod works (fresh driver-global state)."""
    rig = make_e1000_rig(decaf=decaf)
    rig.insmod()
    rig.rmmod(check_leaks=True)
    rig2 = make_e1000_rig(decaf=decaf)
    rig2.insmod()
    dev = rig2.netdev()
    assert rig2.kernel.net.dev_open(dev) == 0
