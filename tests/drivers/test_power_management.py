"""Suspend/resume: power-management paths on both driver generations.

The paper calls initialization, shutdown and power management "ideal
code to move [to Java], as it executes rarely yet contains complicated
logic that is error prone".  Both stacks implement it; these tests
drive a full suspend/resume cycle and verify traffic flows afterwards.
"""

import pytest

from repro.kernel import SkBuff
from tests.conftest import xmit_all
from repro.workloads import make_e1000_rig


class TestLegacySuspendResume:
    def test_cycle_preserves_traffic(self):
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        assert rig.kernel.net.dev_open(dev) == 0
        rig.kernel.run_for_ms(60)

        assert e1000_main.e1000_suspend(rig.device.pci) == 0
        assert not rig.device.pci.enabled
        assert e1000_main.e1000_resume(rig.device.pci) == 0
        rig.kernel.run_for_ms(60)

        sent = []
        rig.link.peer_rx = lambda f: sent.append(f)
        xmit_all(rig, dev, [bytes(500)] * 10)
        rig.kernel.run_for_ms(10)
        assert len(sent) == 10

    def test_config_space_round_trips(self):
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig()
        rig.insmod()
        adapter = e1000_main._state.adapter
        assert e1000_main.e1000_suspend(rig.device.pci) == 0
        saved = list(adapter.config_space)
        assert e1000_main.e1000_resume(rig.device.pci) == 0
        assert adapter.config_space == saved

    def test_suspend_while_down(self):
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig()
        rig.insmod()
        assert e1000_main.e1000_suspend(rig.device.pci) == 0
        assert e1000_main.e1000_resume(rig.device.pci) == 0


class TestDecafSuspendResume:
    def test_cycle_runs_in_decaf_driver(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        assert rig.kernel.net.dev_open(dev) == 0
        rig.kernel.run_for_ms(60)
        nucleus = rig.module.instance

        before = rig.crossings()
        assert nucleus.stub_suspend() == 0
        assert not rig.device.pci.enabled
        assert nucleus.stub_resume() == 0
        rig.kernel.run_for_ms(60)
        # Suspend+resume is chatty: config-space save AND restore are
        # per-dword kernel calls (128+), exactly the rarely-executed
        # complicated path the paper moves out of the kernel.
        assert rig.crossings() - before > 100

        sent = []
        rig.link.peer_rx = lambda f: sent.append(f)
        xmit_all(rig, dev, [bytes(500)] * 10)
        rig.kernel.run_for_ms(10)
        assert len(sent) == 10

    def test_resume_phy_failure_is_loud(self):
        """Decaf resume propagates a PHY failure; the legacy suspend
        path's unchecked power_down call is one of the analysis's
        ignored-error cases."""
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        nucleus = rig.module.instance
        assert nucleus.stub_suspend() == 0

        def dead_mdic(value, rig=rig):
            rig.device.regs[0x20] = 0

        rig.device._write_mdic = dead_mdic
        assert nucleus.stub_resume() < 0

    def test_behaviour_matches_legacy(self):
        from repro.drivers.legacy import e1000_main

        def cycle(decaf):
            rig = make_e1000_rig(decaf=decaf)
            rig.insmod()
            dev = rig.netdev()
            rig.kernel.net.dev_open(dev)
            rig.kernel.run_for_ms(60)
            if decaf:
                nucleus = rig.module.instance
                assert nucleus.stub_suspend() == 0
                assert nucleus.stub_resume() == 0
            else:
                assert e1000_main.e1000_suspend(rig.device.pci) == 0
                assert e1000_main.e1000_resume(rig.device.pci) == 0
            rig.kernel.run_for_ms(60)
            sent = []
            rig.link.peer_rx = lambda f: sent.append(f)
            xmit_all(rig, dev, [bytes([7]) * 321] * 5)
            rig.kernel.run_for_ms(10)
            return sent

        assert cycle(False) == cycle(True)
