"""The five legacy drivers, end to end against their device models."""

import struct

import pytest

from repro.kernel import SkBuff
from tests.conftest import xmit_all
from repro.kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from repro.kernel.usb import usb_rcvbulkpipe, usb_sndbulkpipe
from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)


class TestRtl8139Legacy:
    def test_probe_registers_netdev(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        assert dev is not None
        assert dev.dev_addr == rig.device.mac

    def test_tx_rx_roundtrip(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        assert rig.kernel.net.dev_open(dev) == 0
        sent, got = [], []
        rig.link.peer_rx = lambda f: sent.append(f)
        rig.kernel.net.rx_sink = lambda d, s: got.append(s.data)
        xmit_all(rig, dev, [bytes([i]) * 200 for i in range(20)])
        for i in range(20):
            rig.link.inject(bytes([0x80 + i]) * 300)
        rig.kernel.run_for_ms(50)
        assert len(sent) == 20
        assert got == [bytes([0x80 + i]) * 300 for i in range(20)]
        assert dev.stats.tx_packets == 20
        assert dev.stats.rx_packets == 20
        rig.kernel.net.dev_close(dev)

    def test_small_frames_padded_to_ethernet_minimum(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        sent = []
        rig.link.peer_rx = lambda f: sent.append(f)
        rig.kernel.net.dev_queue_xmit(dev, SkBuff(b"hi"))
        rig.kernel.run_for_ms(1)
        assert len(sent[0]) >= 60

    def test_flow_control_wakes_queue(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        # Fill all four tx slots without letting completions run.
        count = 0
        while not dev.netif_queue_stopped() and count < 10:
            rig.kernel.net.dev_queue_xmit(dev, SkBuff(bytes(1500)))
            count += 1
        assert dev.netif_queue_stopped()
        rig.kernel.run_for_ms(5)
        assert not dev.netif_queue_stopped()
        assert dev.tx_queue_wakeups >= 1

    def test_rmmod_clean(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.net.dev_close(dev)
        rig.rmmod(check_leaks=True)  # all DMA freed

    def test_link_watch_timer_runs(self):
        from repro.drivers.legacy import rtl8139 as drv

        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_s(5)
        assert drv._state.thread_timer.fired >= 2


class TestE1000Legacy:
    def test_mac_read_from_eeprom(self):
        rig = make_e1000_rig()
        rig.insmod()
        assert rig.netdev().dev_addr == rig.device.mac

    def test_eeprom_checksum_validated(self):
        rig = make_e1000_rig()
        rig.device.eeprom[3] ^= 0xFFFF  # corrupt
        assert rig.kernel.modules.insmod(rig.module) != 0

    def test_tx_rx_roundtrip(self):
        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        assert rig.kernel.net.dev_open(dev) == 0
        rig.kernel.run_for_ms(50)
        sent, got = [], []
        rig.link.peer_rx = lambda f: sent.append(f)
        rig.kernel.net.rx_sink = lambda d, s: got.append(s.data)
        for i in range(100):
            assert rig.kernel.net.dev_queue_xmit(
                dev, SkBuff(bytes([i & 0xFF]) * 1000)) == 0
        for i in range(100):
            rig.link.inject(bytes([i & 0xFF]) * 900)
        rig.kernel.run_for_ms(50)
        assert len(sent) == 100
        assert len(got) == 100
        assert got[55] == bytes([55]) * 900

    def test_watchdog_maintains_carrier(self):
        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_s(3)
        assert dev.netif_carrier_ok()
        assert rig.kernel.net.find("eth0").stats is dev.stats

    def test_change_mtu_validates(self):
        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        from repro.drivers.legacy.e1000_main import e1000_change_mtu

        assert e1000_change_mtu(dev, 50) < 0
        assert e1000_change_mtu(dev, 9000) == 0
        assert dev.mtu == 9000

    def test_ethtool_diagnostics_pass(self):
        from repro.drivers.legacy import e1000_ethtool

        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(50)
        results = e1000_ethtool.e1000_diag_test(dev)
        assert results == [0, 0, 0, 0, 0]

    def test_intr_test_exercises_the_data_race_pattern(self):
        """The interrupt test waits for the irq handler to update
        test_icr -- works in the kernel, impossible from decaf."""
        from repro.drivers.legacy import e1000_ethtool

        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(50)
        assert e1000_ethtool.e1000_intr_test(dev.priv) == 0
        # The shared variable really was written from irq context.
        assert e1000_ethtool.test_icr["value"] != 0


class TestEns1371Legacy:
    def test_codec_vendor_probed(self):
        from repro.drivers.legacy import ens1371 as drv

        rig = make_ens1371_rig()
        rig.insmod()
        assert drv._state.ensoniq.codec_vendor == 0x43525914

    def test_mixer_controls_registered(self):
        rig = make_ens1371_rig()
        rig.insmod()
        card = rig.kernel.sound.cards[0]
        assert len(card.controls) >= 20
        assert "Master Playback Volume" in card.controls

    def test_playback_pipeline(self):
        rig = make_ens1371_rig()
        rig.insmod()
        sound = rig.kernel.sound
        ss = rig.kernel.sound.cards[0].pcms[0].playback
        assert sound.pcm_open(ss) == 0
        assert sound.pcm_hw_params(ss, 44100, 2, 2, 4096, 4) == 0
        assert sound.pcm_prepare(ss) == 0
        assert sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_START) == 0
        written = sound.pcm_write(ss, 44100 * 4)  # 1 second
        assert written == 44100 * 4
        assert ss.runtime.periods_elapsed > 30
        assert rig.device.period_interrupts == ss.runtime.periods_elapsed
        assert sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_STOP) == 0
        assert sound.pcm_close(ss) == 0

    def test_rate_programmed_through_src(self):
        rig = make_ens1371_rig()
        rig.insmod()
        sound = rig.kernel.sound
        ss = rig.kernel.sound.cards[0].pcms[0].playback
        sound.pcm_open(ss)
        sound.pcm_hw_params(ss, 22050, 2, 2, 4096, 4)
        assert rig.device.src_ram[0x75 % 128] == 22050


class TestUhciLegacy:
    def test_device_enumerated(self):
        rig = make_uhci_rig()
        rig.insmod()
        assert len(rig.kernel.usb.devices) == 1
        assert rig.kernel.usb.devices[0].address == 1

    def test_bulk_write_read(self):
        rig = make_uhci_rig()
        rig.insmod()
        dev = rig.kernel.usb.devices[0]
        disk = rig.extra["disk"]
        payload = bytes(range(256)) * 4
        cmd = struct.pack("<BBHI", 1, 0, 2, 10) + payload
        st_, n = rig.kernel.usb.usb_bulk_msg(dev, usb_sndbulkpipe(dev, 2), cmd)
        assert st_ == 0
        assert disk.blocks[10] == payload[:512]
        rig.kernel.usb.usb_bulk_msg(
            dev, usb_sndbulkpipe(dev, 2), struct.pack("<BBHI", 2, 0, 2, 10))
        buf = bytearray(1024)
        st_, n = rig.kernel.usb.usb_bulk_msg(dev, usb_rcvbulkpipe(dev, 1), buf)
        assert st_ == 0 and n == 1024
        assert bytes(buf) == payload

    def test_transfer_to_absent_device_fails(self):
        rig = make_uhci_rig()
        rig.insmod()
        dev = rig.kernel.usb.devices[0]
        dev.address = 99  # no such address on the bus
        st_, _n = rig.kernel.usb.usb_bulk_msg(
            dev, usb_sndbulkpipe(dev, 2), b"\x00" * 16)
        assert st_ != 0

    def test_rmmod_halts_controller(self):
        rig = make_uhci_rig()
        rig.insmod()
        rig.rmmod()
        assert rig.device.sts & 0x20  # HCHALTED


class TestPsmouseLegacy:
    def test_intellimouse_detected(self):
        from repro.drivers.legacy import psmouse as drv

        rig = make_psmouse_rig()
        rig.insmod()
        assert drv._state.psmouse.name == "IntelliMouse"
        assert drv._state.psmouse.pktsize == 4

    def test_plain_mouse_detected_without_extension(self):
        from repro.drivers.legacy import psmouse as drv

        rig = make_psmouse_rig()
        rig.device.intellimouse_capable = False
        rig.insmod()
        assert drv._state.psmouse.name == "PS/2 Mouse"
        assert drv._state.psmouse.pktsize == 3

    def test_movement_events(self):
        from repro.drivers.legacy import psmouse as drv

        rig = make_psmouse_rig()
        rig.insmod()
        events = []
        drv._state.input_dev.sink = lambda evs: events.extend(evs)
        rig.device.move(10, -4, buttons=0b101)
        assert (drv.EV_REL, drv.REL_X, 10) in events
        assert (drv.EV_REL, drv.REL_Y, -4) in events
        assert (drv.EV_KEY, drv.BTN_LEFT, 1) in events
        assert (drv.EV_KEY, drv.BTN_MIDDLE, 1) in events

    def test_rate_and_resolution_programmed(self):
        rig = make_psmouse_rig()
        rig.insmod()
        assert rig.device.sample_rate == 100
        assert rig.device.resolution == 3  # 200 dpi -> code 3
        assert rig.device.reporting

    def test_disconnect_disables_reporting(self):
        rig = make_psmouse_rig()
        rig.insmod()
        rig.rmmod()
        assert not rig.device.reporting


class TestE1000PhyDiagnostics:
    def _hw(self):
        rig = make_e1000_rig()
        rig.insmod()
        from repro.drivers.legacy import e1000_main

        return rig, e1000_main._state.adapter.hw

    def test_cable_length_m88(self):
        from repro.drivers.legacy import e1000_hw

        rig, hw = self._hw()
        ret, lo, hi = e1000_hw.e1000_get_cable_length(hw)
        assert ret == 0
        assert (lo, hi) in e1000_hw.M88_CABLE_LENGTH

    def test_polarity_normal(self):
        from repro.drivers.legacy import e1000_hw

        rig, hw = self._hw()
        ret, reversed_ = e1000_hw.e1000_check_polarity(hw)
        assert ret == 0
        assert reversed_ == 0  # model reports normal polarity

    def test_downshift_detection(self):
        from repro.drivers.legacy import e1000_hw

        rig, hw = self._hw()
        ret, downshift = e1000_hw.e1000_check_downshift(hw)
        assert ret == 0
        assert downshift in (0, 1)
        # Flip the downshift bit in the model and observe it.
        rig.device.phy_regs[0x11] |= 0x0020
        ret, downshift = e1000_hw.e1000_check_downshift(hw)
        assert (ret, downshift) == (0, 1)

    def test_mdi_validation(self):
        from repro.drivers.legacy import e1000_hw

        rig, hw = self._hw()
        hw.autoneg = 0
        hw.mdix = 1
        assert e1000_hw.e1000_validate_mdi_setting(hw) != 0
        hw.autoneg = 1
        assert e1000_hw.e1000_validate_mdi_setting(hw) == 0

    def test_phy_info_includes_cable_length(self):
        from repro.drivers.legacy import e1000_hw

        rig, hw = self._hw()
        assert e1000_hw.e1000_phy_get_info(hw) == 0
        assert hw.phy_info.cable_length >= 0

    def test_smartspeed_cycle_on_igp(self):
        from repro.drivers.legacy import e1000_hw
        from repro.workloads import make_e1000_rig as mk

        rig = mk()
        rig.device.phy_regs[2] = 0x02A8  # IGP01 id
        rig.device.phy_regs[3] = 0x0380
        rig.insmod()
        from repro.drivers.legacy import e1000_main

        hw = e1000_main._state.adapter.hw
        assert hw.phy_type == e1000_hw.E1000_PHY_IGP
        # Force a downshift indication (IGP path reads PHY_STATUS; the
        # M88-style bit is ignored, so smartspeed sees no downshift and
        # stays idle).
        assert e1000_hw.e1000_smartspeed(hw) == 0
        assert hw.smart_speed == 0
        # Simulate an in-progress smartspeed cycle and run it out.
        hw.smart_speed = 1
        for _ in range(e1000_hw.SMART_SPEED_MAX + 1):
            assert e1000_hw.e1000_smartspeed(hw) == 0
        assert hw.smart_speed == 0  # gigabit advertisement restored
        adv = rig.device.phy_regs[0x09]
        assert adv & 0x0300
