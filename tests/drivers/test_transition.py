"""Incremental conversion: the section 5.3 migration workflow."""

import pytest

from repro.drivers.decaf.plumbing import DecafPlumbing
from repro.drivers.decaf.transition import (
    TransitionError,
    TransitionTable,
)
from repro.kernel import make_kernel


@pytest.fixture
def table(kernel):
    from repro.core.marshal import MarshalPlan

    plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())
    return TransitionTable(plumbing)


class TestTransitionTable:
    def test_starts_in_library(self, table):
        table.register("check_media", lambda tp: 1)
        assert table.binding("check_media") == "library"
        assert table.conversion_progress() == (0, 1)

    def test_convert_requires_decaf_impl(self, table):
        table.register("check_media", lambda tp: 1)
        with pytest.raises(TransitionError):
            table.convert("check_media")
        table.add_decaf_implementation("check_media", lambda tp: 1)
        table.convert("check_media")
        assert table.binding("check_media") == "decaf"
        assert table.conversion_progress() == (1, 1)

    def test_dispatch_follows_binding(self, table):
        calls = []
        table.register("f", lambda: calls.append("c") or 1,
                        lambda: calls.append("java") or 1)
        table.call("f")
        table.convert("f")
        table.call("f")
        assert calls == ["c", "java"]
        assert table.library_calls == 1
        assert table.decaf_calls == 1

    def test_domains_tracked(self, table):
        domains = table.plumbing.domains
        seen = {}
        table.register("f", lambda: seen.setdefault("c", domains.current),
                        lambda: seen.setdefault("j", domains.current))
        table.call("f")
        table.convert("f")
        table.call("f")
        assert seen == {"c": "driver-lib", "j": "decaf"}

    def test_revert_after_bug(self, table):
        table.register("f", lambda: "good", lambda: "buggy")
        table.convert("f")
        assert table.call("f") == "buggy"
        table.revert("f")
        assert table.call("f") == "good"

    def test_decaf_calls_cross_the_language_boundary(self, table):
        table.register("f", lambda: 0, lambda: 0)
        before = table.plumbing.xpc.lang_crossings
        table.call("f")             # library: no language crossing
        assert table.plumbing.xpc.lang_crossings == before
        table.convert("f")
        table.call("f")             # decaf: one crossing
        assert table.plumbing.xpc.lang_crossings == before + 1

    def test_unknown_function_rejected(self, table):
        with pytest.raises(TransitionError):
            table.call("nope")


class TestCompareMethodology:
    def test_matching_implementations_pass(self, table):
        table.register("f", lambda x: x * 2, lambda x: x + x)
        assert table.compare("f", 21) == 42

    def test_divergence_detected(self, table):
        table.register("f", lambda x: x * 2, lambda x: x * 3)
        with pytest.raises(TransitionError, match="diverges"):
            table.compare("f", 1)

    def test_key_projection(self, table):
        table.register("f", lambda: {"v": 1, "noise": "a"},
                        lambda: {"v": 1, "noise": "b"})
        result = table.compare("f", key=lambda r: r["v"])
        assert result["v"] == 1


class TestIncrementalDriverMigration:
    def test_function_by_function_against_real_hardware(self):
        """The paper's E1000 methodology in miniature: start with all
        user functions in C, convert leaf-first, comparing each
        against the original on the live device model."""
        from repro.core.marshal import MarshalPlan
        from repro.devices import EthernetLink, Rtl8139Device
        from repro.drivers.legacy import rtl8139 as legacy
        from repro.drivers.linuxapi import LinuxApi

        kernel = make_kernel()
        link = EthernetLink(kernel, bits_per_second=100_000_000)
        nic = Rtl8139Device(kernel, link)
        kernel.pci.add_function(nic.pci)
        kernel.pci.request_regions(nic.pci, "t")
        legacy.linux = LinuxApi(kernel)
        legacy._state.__init__()

        tp = legacy.rtl8139_private()
        tp.ioaddr = nic.pci.resource_start(0)

        plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())
        table = TransitionTable(plumbing)
        rt = plumbing.decaf_rt

        # C versions (the freshly-split driver library)...
        table.register("read_mac", lambda: legacy.read_mac_address(tp) or
                       list(tp.mac_addr))
        table.register("read_bmsr", lambda: legacy.mdio_read(tp, 1))

        # ...then decaf rewrites, one at a time, compared before converting.
        table.add_decaf_implementation(
            "read_mac",
            lambda: [rt.inb(tp.ioaddr + i) for i in range(6)])
        assert table.compare("read_mac") == list(nic.mac)
        table.convert("read_mac")

        table.add_decaf_implementation(
            "read_bmsr", lambda: rt.inw(tp.ioaddr + legacy.BMSR))
        assert table.compare("read_bmsr") == table.call("read_bmsr")
        table.convert("read_bmsr")

        assert table.conversion_progress() == (2, 2)
        assert table.unconverted() == []
