"""The five decaf drivers: behaviour, crossings, and Decaf invariants."""

import struct

import pytest

from repro.kernel import SkBuff
from tests.conftest import xmit_all
from repro.kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from repro.kernel.usb import usb_sndbulkpipe
from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)


class TestDecafRtl8139:
    def test_probe_via_xpc(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        assert rig.crossings() > 0
        assert rig.netdev().dev_addr == rig.device.mac

    def test_data_path_never_crosses(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        before = rig.crossings()
        sent, got = [], []
        rig.link.peer_rx = lambda f: sent.append(f)
        rig.kernel.net.rx_sink = lambda d, s: got.append(s)
        xmit_all(rig, dev, [bytes(500)] * 30)
        for i in range(30):
            rig.link.inject(bytes(600))
        rig.kernel.run_for_ms(10)
        assert len(sent) == 30 and len(got) == 30
        assert rig.crossings() == before  # zero crossings on data path

    def test_link_watch_upcalls_from_worker(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        before = rig.crossings()
        rig.kernel.run_for_s(5)
        assert rig.crossings() > before  # deferred-timer upcalls ran

    def test_init_slower_than_native(self):
        native = make_8139too_rig(decaf=False)
        native.insmod()
        decaf = make_8139too_rig(decaf=True)
        decaf.insmod()
        assert decaf.init_latency_ns > 3 * native.init_latency_ns

    def test_set_mac_address_through_decaf(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        new_mac = bytes(range(6))
        assert dev.set_mac_address(dev, new_mac) == 0
        # The decaf driver wrote the device's IDR registers.
        assert bytes(rig.device.regs[0:6]) == new_mac


class TestDecafE1000:
    def test_probe_and_open(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        assert rig.kernel.net.dev_open(dev) == 0
        assert dev.dev_addr == rig.device.mac

    def test_config_space_snapshot_crosses_per_dword(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        # 64 dwords read via individual downcalls -> many crossings.
        assert rig.crossings() >= 64
        adapter = rig.module.instance.adapter
        assert len(adapter.config_space) == 64
        assert adapter.config_space[0] & 0xFFFF == 0x8086

    def test_watchdog_runs_in_decaf_driver(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_s(5)
        assert rig.module.instance.decaf.watchdog_runs >= 2
        assert dev.netif_carrier_ok()

    def test_exception_surfaces_as_errno(self):
        """A decaf exception crosses the boundary as a negative errno --
        and a bad EEPROM is *detected*, unlike the legacy driver which
        drops init_hw's error on the floor."""
        rig = make_e1000_rig(decaf=True)
        rig.device.eeprom[3] ^= 0xFFFF
        ret = rig.kernel.modules.insmod(rig.module)
        assert ret < 0

    def test_driver_library_programs_rings(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        lib = rig.module.instance.library
        assert lib.calls >= 4  # configure_tx/rctl/rx/alloc_rx_buffers

    def test_param_validation_via_classes(self):
        rig = make_e1000_rig(decaf=True, options={"TxDescriptors": 100000,
                                                  "RxDescriptors": 128})
        rig.insmod()
        adapter = rig.module.instance.adapter
        assert adapter.tx_ring.count == 256   # invalid -> default
        assert adapter.rx_ring.count == 128   # valid -> applied

    def test_diagnostics_still_served_by_nucleus(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(50)
        assert rig.module.instance.diag_test() == [0, 0, 0, 0, 0]

    def test_data_path_never_crosses(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(60)
        before = rig.crossings()
        for _ in range(50):
            rig.kernel.net.dev_queue_xmit(dev, SkBuff(bytes(1000)))
        for _ in range(50):
            rig.link.inject(bytes(1000))
        rig.kernel.run_for_ms(10)
        assert rig.crossings() == before


class TestDecafEns1371:
    def test_requires_mutex_sound_library(self):
        from repro.kernel import make_kernel
        from repro.devices import Ens1371Device
        from repro.drivers.decaf import ens1371_nucleus

        kernel = make_kernel(sound_use_mutex=False)
        card = Ens1371Device(kernel)
        kernel.pci.add_function(card.pci)
        assert kernel.modules.insmod(ens1371_nucleus.make_module()) != 0

    def test_playback_through_decaf_ops(self):
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        sound = rig.kernel.sound
        ss = sound.cards[0].pcms[0].playback
        before = rig.crossings()
        assert sound.pcm_open(ss) == 0
        assert sound.pcm_hw_params(ss, 44100, 2, 2, 4096, 4) == 0
        assert sound.pcm_prepare(ss) == 0
        assert sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_START) == 0
        written = sound.pcm_write(ss, 44100 * 4)
        assert written == 44100 * 4
        assert sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_STOP) == 0
        assert sound.pcm_close(ss) == 0
        start_stop_crossings = rig.crossings() - before
        # Paper: the decaf driver was called 15 times during playback,
        # all at start and end.  Same shape: a handful, not per-period.
        assert 4 <= start_stop_crossings <= 20
        assert ss.runtime.periods_elapsed > 30

    def test_mixer_controls_registered_per_downcall(self):
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        card = rig.kernel.sound.cards[0]
        assert len(card.controls) >= 20
        assert rig.crossings() >= len(card.controls)

    def test_pointer_op_stays_kernel(self):
        """snd_pcm_period_elapsed calls pointer in irq context; if it
        upcalled, the context rules would kill the run."""
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        sound = rig.kernel.sound
        ss = sound.cards[0].pcms[0].playback
        sound.pcm_open(ss)
        sound.pcm_hw_params(ss, 44100, 2, 2, 4096, 4)
        sound.pcm_prepare(ss)
        sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_START)
        in_period = rig.crossings()
        rig.kernel.run_for_ms(500)  # ~20 period interrupts
        assert rig.crossings() == in_period
        assert ss.runtime.periods_elapsed >= 15


class TestDecafUhci:
    def test_enumerates_and_transfers(self):
        rig = make_uhci_rig(decaf=True)
        rig.insmod()
        dev = rig.kernel.usb.devices[0]
        disk = rig.extra["disk"]
        payload = bytes([7]) * 512
        cmd = struct.pack("<BBHI", 1, 0, 1, 3) + payload
        st_, _n = rig.kernel.usb.usb_bulk_msg(dev, usb_sndbulkpipe(dev, 2), cmd)
        assert st_ == 0
        assert disk.blocks[3] == payload

    def test_urb_path_never_crosses(self):
        rig = make_uhci_rig(decaf=True)
        rig.insmod()
        dev = rig.kernel.usb.devices[0]
        before = rig.crossings()
        for i in range(5):
            cmd = struct.pack("<BBHI", 1, 0, 1, i) + bytes(512)
            rig.kernel.usb.usb_bulk_msg(dev, usb_sndbulkpipe(dev, 2), cmd)
        assert rig.crossings() == before

    def test_suspend_resume(self):
        rig = make_uhci_rig(decaf=True)
        rig.insmod()
        nucleus = rig.module.instance
        from repro.drivers.legacy import uhci_hcd as legacy

        uhci = legacy._state.uhci
        assert nucleus.plumbing.upcall(
            nucleus.decaf.suspend, args=[(uhci, type(uhci))]) == 0
        assert rig.device.sts & 0x20  # halted
        assert nucleus.plumbing.upcall(
            nucleus.decaf.resume, args=[(uhci, type(uhci))]) == 0
        rig.kernel.run_for_ms(5)
        assert not rig.device.sts & 0x20


class TestDecafPsmouse:
    def test_detection_runs_in_decaf(self):
        from repro.drivers.legacy import psmouse as legacy

        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        assert legacy._state.psmouse.name == "IntelliMouse"
        assert legacy._state.psmouse.pktsize == 4
        # Paper: 24 crossings for psmouse init; each PS/2 command is one.
        assert 15 <= rig.crossings() <= 35

    def test_interrupt_decode_stays_kernel(self):
        from repro.drivers.legacy import psmouse as legacy

        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        before = rig.crossings()
        events = []
        legacy._state.input_dev.sink = lambda evs: events.extend(evs)
        for _ in range(100):
            rig.device.move(1, 1)
        assert rig.crossings() == before
        assert len(events) > 0

    def test_failed_mouse_probe_raises_and_unwinds(self):
        class DeadMouse:
            def handle_byte(self, port, byte):
                pass  # never answers

        from repro.kernel import make_kernel
        from repro.drivers.decaf import psmouse_nucleus

        kernel = make_kernel()
        port = kernel.input.new_serio_port()
        port.attach_device(DeadMouse())
        ret = kernel.modules.insmod(psmouse_nucleus.make_module())
        assert ret < 0
        assert kernel.input.devices == []  # nothing half-registered


class TestE1000ComboLock:
    def test_watchdog_acquires_in_user_mode(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_s(3)
        lock = rig.module.instance.adapter_lock
        assert lock.sem_acquisitions >= 1   # watchdog, user mode
        assert not lock.held

    def test_reinit_holds_lock_and_watchdog_defers(self):
        """While the decaf driver holds the adapter combolock during a
        reinit, the kernel-side watchdog tick defers instead of
        sleeping on the semaphore (section 3.1.3's deferral)."""
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(100)
        nucleus = rig.module.instance

        # Slow down the reinit so watchdog ticks land inside it.
        orig_down = nucleus.k_down

        def slow_down(adapter):
            # Sleep BEFORE stopping the watchdog (k_down cancels it),
            # so ticks land while the decaf driver holds the lock.
            rig.kernel.msleep(4500)  # spans >2 watchdog periods
            return orig_down(adapter)

        nucleus.k_down = slow_down
        try:
            nucleus.stub_tx_timeout(dev)  # -> decaf reinit_locked
        finally:
            nucleus.k_down = orig_down
        assert nucleus.watchdog_skips >= 1
        assert not nucleus.adapter_lock.held
        # Driver still alive afterwards.
        rig.kernel.run_for_s(3)
        assert dev.netif_carrier_ok()


class TestDecafPhyDiagnostics:
    def _hw(self):
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        return rig, rig.module.instance.decaf.hw

    def test_cable_length_matches_legacy(self):
        from repro.drivers.legacy import e1000_hw as legacy_hw
        from repro.workloads import make_e1000_rig as mk

        # Legacy measurement.
        lrig = mk()
        lrig.insmod()
        from repro.drivers.legacy import e1000_main

        ret, lo, hi = legacy_hw.e1000_get_cable_length(
            e1000_main._state.adapter.hw)
        assert ret == 0
        # Decaf measurement on an identical device.
        drig, hw = self._hw()
        assert hw.get_cable_length() == (lo, hi)

    def test_polarity_and_downshift(self):
        rig, hw = self._hw()
        assert hw.check_polarity() is False
        assert hw.check_downshift() is False
        rig.device.phy_regs[0x11] |= 0x0020 | 0x0002
        assert hw.check_downshift() is True
        assert hw.check_polarity() is True

    def test_mdi_validation_raises(self):
        from repro.drivers.decaf.exceptions import ConfigException

        rig, hw = self._hw()
        hw.hw.autoneg = 0
        hw.hw.mdix = 1
        with pytest.raises(ConfigException):
            hw.validate_mdi_setting()

    def test_phy_info_carries_diagnostics(self):
        rig, hw = self._hw()
        hw.phy_get_info()
        assert hw.hw.phy_info.cable_length >= 0
        assert hw.hw.phy_info.downshift in (0, 1)
