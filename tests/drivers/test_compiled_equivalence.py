"""Compiled/interpreted loop equivalence: same schedule, same bytes.

The loop compiler (``compiled=True``, the default) replaces the NIC
drivers' rx/tx ring loops with per-ring pre-bound closures.  The
contract is *observational identity*: for the same seeded workload
schedule, both loop modes must produce byte-identical payload streams
(per queue), identical device and stack counters, identical virtual
time and CPU accounting, and an identical dmesg.

Every config runs the deterministic netperf-recv generator through both
modes and diffs a deep snapshot.  Configs cover both NICs, both
interrupt schemes, the legacy and decaf drivers, and single-queue vs
4-CPU/4-queue SMP (where steering and per-vector affinity are live).
"""

import hashlib

import pytest

from repro.workloads.netperf import netperf_recv
from repro.workloads.rigs import make_8139too_rig, make_e1000_rig

# Virtual seconds per run: enough for thousands of frames through every
# ring wrap / coalescing / pending-queue edge, small enough for CI.
DURATION_S = 0.02
MSG_BYTES = 256
BURST = 32

CONFIGS = [
    # (id, factory kwargs minus `compiled`)
    ("e1000-irq-uni",
     lambda compiled: make_e1000_rig(irq_mode="irq", compiled=compiled)),
    ("e1000-irq-smp4",
     lambda compiled: make_e1000_rig(irq_mode="irq", nr_cpus=4,
                                     num_queues=4, compiled=compiled)),
    ("e1000-napi-uni",
     lambda compiled: make_e1000_rig(irq_mode="napi", compiled=compiled)),
    ("e1000-napi-smp4",
     lambda compiled: make_e1000_rig(irq_mode="napi", nr_cpus=4,
                                     num_queues=4, compiled=compiled)),
    ("e1000-napi-decaf",
     lambda compiled: make_e1000_rig(decaf=True, irq_mode="napi",
                                     compiled=compiled)),
    ("rtl8139-napi-uni",
     lambda compiled: make_8139too_rig(irq_mode="napi",
                                       rx_coalesce_ns=100_000,
                                       compiled=compiled)),
    ("rtl8139-napi-smp4",
     lambda compiled: make_8139too_rig(irq_mode="napi", nr_cpus=4,
                                       rx_coalesce_ns=100_000,
                                       compiled=compiled)),
    ("rtl8139-irq-uni",
     lambda compiled: make_8139too_rig(irq_mode="irq", compiled=compiled)),
    ("rtl8139-napi-decaf",
     lambda compiled: make_8139too_rig(decaf=True, irq_mode="napi",
                                       rx_coalesce_ns=100_000,
                                       compiled=compiled)),
]


def _snapshot(make_rig, compiled):
    rig = make_rig(compiled)
    rig.insmod()
    digests = {}

    def sink_extra(_dev, skb):
        q = getattr(skb, "queue", 0)
        d = digests.get(q)
        if d is None:
            d = digests[q] = hashlib.sha256()
        d.update(skb.data)

    result = netperf_recv(rig, duration_s=DURATION_S, msg_bytes=MSG_BYTES,
                          sink_extra=sink_extra, burst=BURST)
    kernel = rig.kernel
    dev = rig.netdev()
    return {
        "digests": {q: d.hexdigest() for q, d in sorted(digests.items())},
        "packets": result.packets,
        "bytes": result.bytes_moved,
        "napi_polls": result.napi_polls,
        "napi_pkts_per_poll": dict(result.napi_pkts_per_poll),
        "dev_stats": dev.stats.snapshot(),
        "nic_frames": rig.device.frames_received,
        "irq_delivered": kernel.irq.delivered,
        "irq_spurious": kernel.irq.spurious,
        "clock_ns": kernel.clock.now_ns,
        "busy_ns": kernel.cpu.busy_ns,
        "by_category": dict(kernel.cpu._by_category),
        "dmesg": list(kernel.dmesg()),
    }


@pytest.mark.parametrize("cfg_id,make_rig", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_compiled_loops_are_equivalent(cfg_id, make_rig):
    interpreted = _snapshot(make_rig, compiled=False)
    compiled = _snapshot(make_rig, compiled=True)
    assert interpreted["packets"] > 0
    # Key-by-key so a failure names the diverging observable.
    for key in interpreted:
        assert compiled[key] == interpreted[key], (
            "%s diverges between loop modes in %s" % (key, cfg_id))
