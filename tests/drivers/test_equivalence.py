"""Native/decaf equivalence: the converted driver behaves identically.

The paper's migration story depends on the decaf driver being a
behaviour-preserving rewrite; these tests drive both stacks through
the same scenario and compare what the *device* and the *application*
observe.
"""

import struct

import pytest

from repro.kernel import SkBuff
from repro.kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from repro.kernel.usb import usb_sndbulkpipe
from tests.conftest import xmit_all
from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)


def _nic_scenario(rig):
    rig.insmod()
    dev = rig.netdev()
    assert rig.kernel.net.dev_open(dev) == 0
    rig.kernel.run_for_ms(60)
    sent, got = [], []
    rig.link.peer_rx = lambda f: sent.append(f)
    rig.kernel.net.rx_sink = lambda d, s: got.append(s.data)
    xmit_all(rig, dev, [bytes([i]) * (100 + 7 * i) for i in range(25)])
    for i in range(25):
        rig.link.inject(bytes([0x40 + i]) * (80 + 5 * i))
    rig.kernel.run_for_ms(20)
    stats = dev.stats.snapshot()
    mac = dev.dev_addr
    rig.kernel.net.dev_close(dev)
    return {"sent": sent, "got": got, "stats": stats, "mac": mac}


@pytest.mark.parametrize("make_rig", [make_8139too_rig, make_e1000_rig],
                         ids=["8139too", "e1000"])
def test_nic_behaviour_identical(make_rig):
    native = _nic_scenario(make_rig(decaf=False))
    decaf = _nic_scenario(make_rig(decaf=True))
    assert native["mac"] == decaf["mac"]
    assert native["sent"] == decaf["sent"]
    assert native["got"] == decaf["got"]
    for key in ("tx_packets", "rx_packets", "tx_bytes", "rx_bytes"):
        assert native["stats"][key] == decaf["stats"][key], key


def _sound_scenario(rig):
    rig.insmod()
    sound = rig.kernel.sound
    ss = sound.cards[0].pcms[0].playback
    assert sound.pcm_open(ss) == 0
    assert sound.pcm_hw_params(ss, 44100, 2, 2, 4096, 4) == 0
    assert sound.pcm_prepare(ss) == 0
    assert sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_START) == 0
    written = sound.pcm_write(ss, 44100 * 4)
    sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_STOP)
    sound.pcm_close(ss)
    return {
        "written": written,
        "periods": ss.runtime.periods_elapsed,
        "device_irqs": rig.device.period_interrupts,
        "rate": rig.device.src_ram[0x75 % 128],
        "codec_master": rig.device.codec_regs[0x02],
    }


def test_sound_behaviour_identical():
    native = _sound_scenario(make_ens1371_rig(decaf=False))
    decaf = _sound_scenario(make_ens1371_rig(decaf=True))
    assert native == decaf


def _usb_scenario(rig):
    rig.insmod()
    dev = rig.kernel.usb.devices[0]
    for i in range(8):
        payload = bytes([i]) * 512
        cmd = struct.pack("<BBHI", 1, 0, 1, i) + payload
        status, _n = rig.kernel.usb.usb_bulk_msg(
            dev, usb_sndbulkpipe(dev, 2), cmd)
        assert status == 0
    return dict(rig.extra["disk"].blocks)


def test_usb_disk_contents_identical():
    native = _usb_scenario(make_uhci_rig(decaf=False))
    decaf = _usb_scenario(make_uhci_rig(decaf=True))
    assert native == decaf


def _mouse_scenario(rig):
    rig.insmod()
    events = []
    rig.kernel.input.devices[0].sink = lambda evs: events.extend(evs)
    moves = [(3, -2, 1), (-7, 5, 0), (127, -127, 4), (1, 1, 2)]
    for dx, dy, buttons in moves:
        rig.device.move(dx, dy, buttons=buttons, wheel=1)
    return {
        "events": events,
        "rate": rig.device.sample_rate,
        "resolution": rig.device.resolution,
        "id": rig.device.device_id,
    }


def test_mouse_behaviour_identical():
    native = _mouse_scenario(make_psmouse_rig(decaf=False))
    decaf = _mouse_scenario(make_psmouse_rig(decaf=True))
    assert native == decaf
