"""Lock hold-time tracing: matched pairs, monotone timestamps.

Satellite (d): SpinLock / Mutex / ComboLock emit one ``lock.held``
span per acquire/release pair, with virtual timestamps that are
monotone and consistent (``ts + dur == release time``), including when
callbacks re-enter ``run_until``.
"""

from repro.core.combolock import ComboLock
from repro.core.domains import DECAF, DomainManager
from repro.kernel.locks import Mutex, SpinLock
from repro.trace import Tracer


def lock_spans(tracer):
    return [ev for ev in tracer.events if ev["name"] == "lock.held"]


class TestSpinLock:
    def test_matched_pair_with_hold_time(self, kernel):
        tracer = Tracer(kernel).install()
        lock = SpinLock(kernel, "l")
        lock.lock()
        t0 = kernel.clock.now_ns
        kernel.consume(700, busy=True)
        lock.unlock()
        tracer.uninstall()
        (ev,) = lock_spans(tracer)
        assert ev["args"] == {"lock": "l", "kind": "spin"}
        assert ev["ts"] == t0
        assert ev["dur"] == 700
        assert ev["ts"] + ev["dur"] == kernel.clock.now_ns

    def test_hold_histogram_records(self, kernel):
        tracer = Tracer(kernel).install()
        lock = SpinLock(kernel, "l")
        for _ in range(3):
            with lock:
                kernel.consume(100, busy=True)
        tracer.uninstall()
        h = tracer.metrics.histogram("lock.hold_ns|spin")
        assert h.count == 3
        assert h.max == 100

    def test_tracer_installed_mid_hold_skips_unmatched_release(self, kernel):
        lock = SpinLock(kernel, "l")
        lock.lock()
        tracer = Tracer(kernel).install()
        lock.unlock()  # acquire was untraced: no half-span
        tracer.uninstall()
        assert lock_spans(tracer) == []

    def test_untraced_locking_is_clean(self, kernel):
        lock = SpinLock(kernel, "l")
        with lock:
            pass
        assert lock._acquired_ns is None


class TestMutex:
    def test_matched_pair(self, kernel):
        tracer = Tracer(kernel).install()
        m = Mutex(kernel, "m")
        with m:
            kernel.consume(50, busy=True)
        tracer.uninstall()
        (ev,) = lock_spans(tracer)
        assert ev["args"]["kind"] == "mutex"
        assert ev["dur"] == 50


class TestComboLock:
    def test_kernel_spin_mode(self, kernel):
        tracer = Tracer(kernel).install()
        lock = ComboLock(kernel, DomainManager(), "combo")
        with lock:
            kernel.consume(80, busy=True)
        tracer.uninstall()
        (ev,) = lock_spans(tracer)
        assert ev["args"] == {"lock": "combo", "kind": "combo-spin"}
        assert ev["dur"] == 80

    def test_user_sem_mode(self, kernel):
        tracer = Tracer(kernel).install()
        domains = DomainManager()
        lock = ComboLock(kernel, domains, "combo")
        domains.push(DECAF)
        with lock:
            pass
        domains.pop(DECAF)
        tracer.uninstall()
        (ev,) = lock_spans(tracer)
        assert ev["args"]["kind"] == "combo-sem"


class TestNestedRunUntil:
    def test_spans_monotone_under_reentrant_events(self, kernel):
        """A lock held around run_until still yields one well-formed
        span per pair, and the stream's release times are monotone."""
        tracer = Tracer(kernel).install()
        outer = SpinLock(kernel, "outer")
        inner = Mutex(kernel, "inner")

        def work():
            with inner:
                kernel.consume(40, busy=True)

        kernel.events.schedule_after(1_000, work, name="nested")
        kernel.run_for_ns(500)
        with outer:
            kernel.consume(10, busy=True)
        # The pending event fires inside this run_until window.
        kernel.run_for_ns(5_000)
        with outer:
            pass
        tracer.uninstall()

        spans = lock_spans(tracer)
        names = [ev["args"]["lock"] for ev in spans]
        assert names == ["outer", "inner", "outer"]
        ends = [ev["ts"] + ev["dur"] for ev in spans]
        assert ends == sorted(ends)  # emitted at release: monotone
        for ev in spans:
            assert ev["dur"] >= 0
            assert ev["ts"] >= 0
