"""IrqController.rebind_irq: in-place handler swaps and teardown restore.

Regression coverage for the compiled-datapath lifecycle: ``e1000_up``
rebinds the line straight to its compiled interrupt handler and
``e1000_down`` restores the generic one, so a rig torn down mid-run
must leave the line exactly as ``request_irq`` built it -- and a second
up/down cycle must rebind cleanly rather than double-binding.
"""

import pytest

from repro.kernel import IRQ_HANDLED
from repro.kernel.errors import SimulationError
from repro.workloads import make_e1000_rig, netperf_recv


class TestRebindUnit:
    def test_swaps_handler_keeps_line_state(self, kernel):
        def generic(i, d):
            return IRQ_HANDLED

        def compiled(i, d):
            return IRQ_HANDLED

        assert kernel.irq.request_irq(5, generic, "eth", "cookie") == 0
        kernel.irq.rebind_irq(5, compiled)
        line = kernel.irq._line(5)
        assert line.handler is compiled
        assert line.name == "eth"
        assert line.dev_id == "cookie"

    def test_rebind_keeps_pending_and_masks(self, kernel):
        fired = []
        kernel.irq.request_irq(5, lambda i, d: IRQ_HANDLED, "eth")
        kernel.irq.disable_irq(5)
        kernel.irq.raise_irq(5)            # latches pending on the mask
        kernel.irq.rebind_irq(5, lambda i, d: fired.append(i) or IRQ_HANDLED)
        kernel.irq.enable_irq(5)
        assert fired == [5]                # new handler got the latched irq

    def test_rebind_free_line_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.irq.rebind_irq(5, lambda i, d: IRQ_HANDLED)
        kernel.irq.request_irq(5, lambda i, d: IRQ_HANDLED, "eth")
        kernel.irq.free_irq(5)
        with pytest.raises(SimulationError):
            kernel.irq.rebind_irq(5, lambda i, d: IRQ_HANDLED)


class TestCompiledRigLifecycle:
    def _line(self, rig):
        return rig.kernel.irq._line(rig.device.pci.irq)

    def test_midrun_teardown_restores_generic_handler(self):
        """``e1000_down`` on a compiled rig (the tx_timeout/reinit
        teardown, no free_irq) must restore the handler request_irq
        bound, not leave a compiled closure over dead rings."""
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig(decaf=False, compiled=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(50)                      # link up, mid-run
        line = self._line(rig)
        assert line.handler is e1000_main._state.compiled_intr
        assert line.handler is not e1000_main.e1000_intr

        e1000_main.e1000_down(dev.priv)                # torn down
        assert line.handler is e1000_main.e1000_intr   # restored
        assert line.name is not None                   # still requested

    def test_second_setup_rebinds_instead_of_double_binding(self):
        """The down/up reinit cycle must rebind in place: a second
        request_irq on the never-freed line would return -EBUSY, and a
        stale compiled handler would poll torn-down rings."""
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig(decaf=False, compiled=True)
        rig.insmod()
        dev = rig.netdev()
        rig.kernel.net.dev_open(dev)
        rig.kernel.run_for_ms(50)
        stale = e1000_main._state.compiled_intr
        assert stale is not None

        e1000_main.e1000_reinit_locked(dev.priv)       # down + up
        line = self._line(rig)
        assert line.handler is e1000_main._state.compiled_intr
        assert line.handler is not stale               # fresh closure
        delivered_before = rig.kernel.irq.delivered
        result = netperf_recv(rig, duration_s=0.02)    # traffic flows
        assert result.packets > 0
        assert rig.kernel.irq.delivered > delivered_before

    def test_full_close_frees_line_and_reopen_rebinds(self):
        """ifdown frees the line entirely (restore happens first, so
        free_irq sees the generic binding); a fresh open re-requests
        without -EBUSY and the compiled path comes back."""
        from repro.drivers.legacy import e1000_main

        rig = make_e1000_rig(decaf=False, compiled=True)
        rig.insmod()
        line = self._line(rig)
        first = netperf_recv(rig, duration_s=0.02)     # opens + closes
        assert first.packets > 0
        assert line.handler is None                    # fully freed

        second = netperf_recv(rig, duration_s=0.02)    # reopen: no -EBUSY
        assert second.packets > 0
        assert line.handler is None                    # freed again
