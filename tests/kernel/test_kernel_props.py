"""Property-based invariants of the simulated kernel."""

from hypothesis import given, settings, strategies as st

from repro.kernel import make_kernel


op = st.one_of(
    st.tuples(st.just("consume_busy"), st.integers(0, 10_000_000)),
    st.tuples(st.just("consume_idle"), st.integers(0, 10_000_000)),
    st.tuples(st.just("msleep"), st.integers(0, 5)),
    st.tuples(st.just("udelay"), st.integers(0, 500)),
    st.tuples(st.just("schedule"), st.integers(0, 5_000_000)),
    st.tuples(st.just("run_for"), st.integers(0, 20_000_000)),
)


class TestKernelInvariants:
    @given(ops=st.lists(op, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_clock_monotonic_and_busy_bounded(self, ops):
        kernel = make_kernel()
        kernel.cpu.start_window()
        fired = []
        last = kernel.now_ns()
        for kind, arg in ops:
            if kind == "consume_busy":
                kernel.consume(arg, busy=True)
            elif kind == "consume_idle":
                kernel.consume(arg, busy=False)
            elif kind == "msleep":
                kernel.msleep(arg)
            elif kind == "udelay":
                kernel.udelay(arg)
            elif kind == "schedule":
                kernel.events.schedule_after(
                    arg, lambda: fired.append(kernel.now_ns()))
            elif kind == "run_for":
                kernel.run_for_ns(arg)
            now = kernel.now_ns()
            assert now >= last
            last = now
        # Busy time never exceeds elapsed time.
        assert kernel.cpu.window_busy_ns() <= max(
            kernel.cpu.window_elapsed_ns(), kernel.cpu.window_busy_ns())
        assert kernel.cpu.utilization() <= 1.0
        # Events fired in nondecreasing timestamp order.
        assert fired == sorted(fired)

    @given(delays=st.lists(st.integers(0, 1_000_000), min_size=1,
                           max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_all_scheduled_events_eventually_fire(self, delays):
        kernel = make_kernel()
        fired = []
        for i, delay in enumerate(delays):
            kernel.events.schedule_after(delay,
                                         lambda i=i: fired.append(i))
        kernel.run_for_ns(max(delays) + 1)
        assert sorted(fired) == list(range(len(delays)))

    @given(depth=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_nested_sleeps_terminate(self, depth):
        kernel = make_kernel()
        trace = []

        def sleeper(level):
            if level == 0:
                trace.append(kernel.now_ns())
                return
            kernel.events.schedule_after(
                1000, lambda: sleeper(level - 1))
            kernel.msleep(1)

        sleeper(depth)
        kernel.run_for_ms(depth * 2 + 5)
        assert trace  # innermost eventually ran
