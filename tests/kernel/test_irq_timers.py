"""Interrupt controller, timers, and deferred work."""

import pytest

from repro.kernel import IRQ_HANDLED, IRQ_NONE, KernelTimer, WorkItem
from repro.kernel.errors import EBUSY


class TestIrqController:
    def test_request_and_raise(self, kernel):
        fired = []
        assert kernel.irq.request_irq(4, lambda i, d: fired.append((i, d)) or IRQ_HANDLED, "t", "cookie") == 0
        kernel.irq.raise_irq(4)
        assert fired == [(4, "cookie")]

    def test_double_request_busy(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "a")
        assert kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "b") == -EBUSY

    def test_free_then_rerequest(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "a")
        kernel.irq.free_irq(4)
        assert kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "b") == 0

    def test_disable_latches_pending(self, kernel):
        fired = []
        kernel.irq.request_irq(4, lambda i, d: fired.append(1) or IRQ_HANDLED, "t")
        kernel.irq.disable_irq(4)
        kernel.irq.raise_irq(4)
        kernel.irq.raise_irq(4)
        assert fired == []
        kernel.irq.enable_irq(4)
        assert fired == [1]  # coalesced into one delivery

    def test_disable_nests(self, kernel):
        fired = []
        kernel.irq.request_irq(4, lambda i, d: fired.append(1) or IRQ_HANDLED, "t")
        kernel.irq.disable_irq(4)
        kernel.irq.disable_irq(4)
        kernel.irq.raise_irq(4)
        kernel.irq.enable_irq(4)
        assert fired == []
        kernel.irq.enable_irq(4)
        assert fired == [1]

    def test_handler_runs_in_irq_context(self, kernel):
        contexts = []
        kernel.irq.request_irq(
            4, lambda i, d: contexts.append(kernel.context.in_irq()) or IRQ_HANDLED, "t"
        )
        kernel.irq.raise_irq(4)
        assert contexts == [True]
        assert not kernel.context.in_irq()

    def test_spurious_counted(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_NONE, "t")
        kernel.irq.raise_irq(4)
        assert kernel.irq.spurious == 1

    def test_unhandled_line_spurious(self, kernel):
        kernel.irq.raise_irq(7)
        assert kernel.irq.spurious == 1


class TestKernelTimer:
    def test_fires_at_expiry(self, kernel):
        fired = []
        t = KernelTimer(kernel, lambda d: fired.append(kernel.now_ns()))
        t.mod_timer_after(2_000_000)
        kernel.run_for_ms(5)
        assert fired == [2_000_000]

    def test_del_timer_cancels(self, kernel):
        fired = []
        t = KernelTimer(kernel, lambda d: fired.append(1))
        t.mod_timer_after(1_000_000)
        assert t.del_timer() is True
        kernel.run_for_ms(5)
        assert fired == []

    def test_mod_timer_rearms(self, kernel):
        fired = []
        t = KernelTimer(kernel, lambda d: fired.append(kernel.now_ns()))
        t.mod_timer_after(5_000_000)
        t.mod_timer_after(1_000_000)  # re-arm earlier
        kernel.run_for_ms(10)
        assert fired == [1_000_000]

    def test_periodic_rearm_from_handler(self, kernel):
        fired = []

        def handler(_d):
            fired.append(kernel.now_ns())
            if len(fired) < 3:
                t.mod_timer_after(1_000_000)

        t = KernelTimer(kernel, handler)
        t.mod_timer_after(1_000_000)
        kernel.run_for_ms(10)
        assert fired == [1_000_000, 2_000_000, 3_000_000]

    def test_timer_runs_in_softirq_context(self, kernel):
        contexts = []
        t = KernelTimer(kernel, lambda d: contexts.append(
            kernel.context.in_softirq()))
        t.mod_timer_after(1000)
        kernel.run_for_ms(1)
        assert contexts == [True]

    def test_timer_cannot_sleep(self, kernel):
        from repro.kernel import SleepInAtomicError

        caught = []

        def handler(_d):
            try:
                kernel.msleep(1)
            except SleepInAtomicError:
                caught.append(True)

        t = KernelTimer(kernel, handler)
        t.mod_timer_after(1000)
        kernel.run_for_ms(1)
        assert caught == [True]

    def test_data_passed(self, kernel):
        got = []
        t = KernelTimer(kernel, lambda d: got.append(d), data="payload")
        t.mod_timer_after(1000)
        kernel.run_for_ms(1)
        assert got == ["payload"]


class TestWorkqueue:
    def test_work_runs_in_process_context(self, kernel):
        seen = []
        work = WorkItem(kernel, lambda d: seen.append(
            kernel.context.in_atomic()))
        kernel.workqueue.schedule_work(work)
        kernel.workqueue.flush()
        assert seen == [False]

    def test_work_may_sleep(self, kernel):
        seen = []

        def body(_d):
            kernel.msleep(2)
            seen.append(kernel.now_ns())

        work = WorkItem(kernel, body)
        kernel.workqueue.schedule_work(work)
        kernel.workqueue.flush()
        assert seen and seen[0] >= 2_000_000

    def test_double_schedule_is_noop(self, kernel):
        work = WorkItem(kernel, lambda d: None)
        assert kernel.workqueue.schedule_work(work) is True
        assert kernel.workqueue.schedule_work(work) is False

    def test_cancel(self, kernel):
        seen = []
        work = WorkItem(kernel, lambda d: seen.append(1))
        kernel.workqueue.schedule_work(work)
        assert kernel.workqueue.cancel_work(work) is True
        kernel.run_for_ms(10)
        assert seen == []

    def test_flush_ignores_periodic_timers(self, kernel):
        """flush() must not run forever chasing a self-rearming timer."""
        t = KernelTimer(kernel, lambda d: t.mod_timer_after(1_000_000))
        t.mod_timer_after(1_000_000)
        work = WorkItem(kernel, lambda d: None)
        kernel.workqueue.schedule_work(work)
        kernel.workqueue.flush()  # must terminate
        assert work.executed == 1

    def test_timer_deferral_pattern(self, kernel):
        """The nuclear-runtime pattern: timer fires -> work item runs
        in process context where sleeping is legal."""
        result = []

        def work_body(_d):
            kernel.msleep(1)  # would crash in timer context
            result.append("ran")

        work = WorkItem(kernel, work_body)
        timer = KernelTimer(kernel,
                            lambda d: kernel.workqueue.schedule_work(work))
        timer.mod_timer_after(1_000_000)
        kernel.run_for_ms(10)
        assert result == ["ran"]
