"""Timer-wheel edge cases: slot boundaries, front-memo churn, irq arming.

The wheel buckets timers by ``time_ns >> 16`` (65.536us slots) and
memoizes the earliest live timer.  Both are pure lookup optimizations,
so the edges where they could leak into behaviour -- deadlines
straddling a slot boundary, cancelling or re-arming the exact timer the
memo points at, and zero-delay arming from interrupt context -- must
stay observably identical to a plain sorted queue.
"""

from repro.kernel.context import HARDIRQ, PROCESS, SOFTIRQ
from repro.kernel.events import Event, EventQueue, TimerWheel
from repro.kernel.timers import KernelTimer
from repro.kernel.vtime import VirtualClock

SLOT = 1 << TimerWheel.SHIFT  # 65_536 ns


def _drain(queue, clock):
    fired = []
    while True:
        nxt = queue.peek_time()
        if nxt is None:
            return fired
        ev = queue.pop_due(nxt)
        clock._set(max(clock.now_ns, ev.time_ns))
        fired.append(ev)
        ev.callback()


class TestSlotBoundary:
    def test_adjacent_ns_across_slot_edge_fire_in_order(self, kernel):
        """SLOT-1 and SLOT hash to different buckets; order stays exact."""
        seen = []
        kernel.events.schedule_timer_at(SLOT, lambda: seen.append("hi"))
        kernel.events.schedule_timer_at(SLOT - 1, lambda: seen.append("lo"))
        assert kernel.events.peek_time() == SLOT - 1
        kernel.run_until(2 * SLOT)
        assert seen == ["lo", "hi"]

    def test_exact_slot_multiple_lands_in_its_own_bucket(self, kernel):
        """A deadline of exactly k*SLOT is the first entry of bucket k,
        not the last entry of bucket k-1."""
        ev = kernel.events.schedule_timer_at(7 * SLOT, lambda: None)
        wheel = kernel.events._wheel
        assert ev.seq in wheel._buckets[7]
        assert 6 not in wheel._buckets or ev.seq not in wheel._buckets[6]

    def test_later_armed_timer_in_earlier_slot_wins_peek(self, kernel):
        """Arming order and slot order disagree; peek follows time."""
        kernel.events.schedule_timer_at(5 * SLOT + 3, lambda: None)
        kernel.events.schedule_timer_at(2 * SLOT + 9, lambda: None)
        assert kernel.events.peek_time() == 2 * SLOT + 9

    def test_dense_spread_across_many_slots_fires_sorted(self, kernel):
        """Deadlines scattered on both sides of 32 slot edges dispatch
        in strict time order."""
        seen = []
        times = []
        for k in range(1, 33):
            for off in (-1, 0, 1):
                t = k * SLOT + off
                times.append(t)
                kernel.events.schedule_timer_at(
                    t, lambda t=t: seen.append(t))
        kernel.run_until(40 * SLOT)
        assert seen == sorted(times)


class TestFrontMemoChurn:
    def test_cancel_memoized_front_advances_to_next(self, kernel):
        queue = kernel.events
        first = queue.schedule_timer_at(100, lambda: None)
        queue.schedule_timer_at(SLOT + 50, lambda: None)
        # peek populates the memo with `first`...
        assert queue.peek_time() == 100
        assert queue._wheel._front is first
        # ...cancelling it must invalidate the memo, not serve it stale.
        first.cancel()
        assert queue.peek_time() == SLOT + 50

    def test_rearm_memoized_front_to_later_deadline(self, kernel):
        """The watchdog pattern applied to the wheel's own memo: the
        front timer is pushed back past another timer."""
        fired = []
        front = KernelTimer(kernel, lambda _d: fired.append("front"))
        other = KernelTimer(kernel, lambda _d: fired.append("other"))
        front.mod_timer(1_000)
        other.mod_timer(2_000)
        assert kernel.events.peek_time() == 1_000
        front.mod_timer(3 * SLOT)  # cancel + re-add, now sorts last
        kernel.run_until(4 * SLOT)
        assert fired == ["other", "front"]

    def test_readding_same_event_object_invalidates_memo(self):
        """`add` must notice the re-added event *is* the memoized front
        and drop the memo: its deadline may have changed."""
        wheel = TimerWheel()
        ev = Event(100, 0, lambda: None, PROCESS, "t")
        other = Event(200, 1, lambda: None, PROCESS, "u")
        wheel.add(ev)
        wheel.add(other)
        assert wheel.peek_event() is ev  # memo now points at ev
        wheel.discard(ev)
        ev.time_ns = 500  # re-arm later than `other`
        wheel.add(ev)
        assert wheel.peek_event() is other

    def test_new_earlier_timer_updates_memo_in_place(self, kernel):
        """Adding a timer that sorts before the memoized front must not
        leave peek serving the old front."""
        queue = kernel.events
        queue.schedule_timer_at(9_000, lambda: None)
        assert queue.peek_time() == 9_000  # memo set
        queue.schedule_timer_at(4_000, lambda: None)
        assert queue.peek_time() == 4_000

    def test_churn_storm_on_front_keeps_wheel_consistent(self, kernel):
        """Cancel/re-arm the front 500 times, then fire: exactly one
        live timer remains and it fires once, on time."""
        fired = []
        timer = KernelTimer(kernel, lambda _d: fired.append(kernel.now_ns()))
        for i in range(500):
            timer.mod_timer(1_000 + i)  # always the front
            kernel.events.peek_time()   # force the memo onto it
        assert len(kernel.events._wheel) == 1
        kernel.run_until(SLOT)
        assert fired == [1_499]
        assert len(kernel.events._wheel) == 0


def test_seeded_random_churn_matches_reference(rng):
    """Randomized add/cancel churn (shared seeded ``rng`` fixture, so
    the run is reproducible) against a reference sorted list."""
    clock = VirtualClock()
    queue = EventQueue(clock)
    live = {}
    fired = []
    for i in range(400):
        if live and rng.random() < 0.4:
            key = rng.choice(list(live))
            live.pop(key).cancel()
        else:
            t = rng.randrange(0, 6 * SLOT)
            ev = queue.schedule_timer_at(t, lambda t=t: fired.append(t))
            live[i] = ev
    expected = sorted(ev.time_ns for ev in live.values())
    _drain(queue, clock)
    assert fired == expected
    assert len(queue) == 0


class TestIrqContextArming:
    def test_zero_delay_arm_from_hardirq_runs_after_handler(self, kernel):
        """A timer armed with delay 0 from hardirq context fires at the
        same virtual instant but strictly after the handler returns."""
        trace = []

        def inner():
            trace.append(("inner", kernel.now_ns(),
                          kernel.context.in_irq()))

        def handler():
            trace.append(("irq", kernel.now_ns()))
            kernel.events.schedule_timer_after(0, inner)
            trace.append(("irq-done", kernel.now_ns()))

        kernel.events.schedule_timer_at(1_000, handler, context=HARDIRQ,
                                        name="irq")
        kernel.run_until(2_000)
        assert trace == [("irq", 1_000), ("irq-done", 1_000),
                         ("inner", 1_000, False)]

    def test_zero_delay_never_travels_backwards(self, kernel):
        kernel.run_until(5_000)
        ev = kernel.events.schedule_timer_after(0, lambda: None)
        assert ev.time_ns == 5_000
        ev2 = kernel.events.schedule_timer_after(-123, lambda: None)
        assert ev2.time_ns == 5_000

    def test_softirq_timer_armed_from_hardirq_keeps_context(self, kernel):
        """The canonical irq -> bottom-half handoff: context is the
        *declared* one when the callback runs, not the arming one."""
        seen = []

        def bottom_half():
            seen.append((kernel.context.in_softirq(),
                         kernel.context.in_irq()))

        def handler():
            kernel.events.schedule_timer_after(
                0, bottom_half, context=SOFTIRQ, name="bh")

        kernel.events.schedule_timer_at(500, handler, context=HARDIRQ)
        kernel.run_until(1_000)
        assert seen == [(True, False)]

    def test_zero_delay_storm_preserves_fifo(self):
        """50 zero-delay timers armed inside one handler fire in arming
        order at the same timestamp (shared seq counter)."""
        clock = VirtualClock()
        queue = EventQueue(clock)
        seen = []

        def handler():
            for i in range(50):
                queue.schedule_timer_after(0, lambda i=i: seen.append(i))

        queue.schedule_timer_at(100, handler)
        _drain(queue, clock)
        assert seen == list(range(50))
        assert clock.now_ns == 100
