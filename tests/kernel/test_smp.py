"""SMP semantics: CPU-targeted events, busy windows, per-CPU
accounting, IRQ affinity, and the per-CPU scheduler-lock lockdep
classes (including the cross-CPU AB/BA canary)."""

import pytest

from repro.kernel import MAX_CPUS, make_kernel
from repro.kernel.errors import SimulationError

MS = 1_000_000


@pytest.fixture
def smp_kernel():
    return make_kernel(nr_cpus=4)


def test_nr_cpus_validation():
    with pytest.raises(SimulationError):
        make_kernel(nr_cpus=0)
    with pytest.raises(SimulationError):
        make_kernel(nr_cpus=MAX_CPUS + 1)
    assert make_kernel(nr_cpus=1).nr_cpus == 1
    assert len(make_kernel(nr_cpus=MAX_CPUS).cpus) == MAX_CPUS


def test_single_cpu_consume_advances_clock(kernel):
    """Classic semantics: on one CPU, consume inside an event advances
    the global clock synchronously (no busy-window deferral)."""
    seen = {}

    def work():
        kernel.consume(2 * MS, category="work")
        seen["end_ns"] = kernel.clock.now_ns

    kernel.events.schedule_after(0, work)
    kernel.run_for_ms(5)
    assert seen["end_ns"] == 2 * MS
    assert kernel.cpus[0].acct.category_ns("work") == 2 * MS


def test_targeted_events_overlap_in_virtual_time(smp_kernel):
    """1 ms of work on each of 4 CPUs finishes after ~1 ms, not 4."""
    kernel = smp_kernel
    for cpu in range(4):
        kernel.events.schedule_after(
            0, lambda: kernel.consume(1 * MS, category="work"), cpu=cpu)
    kernel.run_for_ms(3)
    for vcpu in kernel.cpus:
        assert vcpu.acct.category_ns("work") == 1 * MS
        assert vcpu.busy_until_ns == 1 * MS
    # Aggregate accounting still sees all 4 ms of charged work.
    assert kernel.cpu.category_ns("work") == 4 * MS


def test_same_cpu_events_serialize(smp_kernel):
    """Two events targeted at one CPU run back-to-back: the second is
    pushed past the first's busy window."""
    kernel = smp_kernel
    starts = []

    def work():
        starts.append(kernel.clock.now_ns)
        kernel.consume(1 * MS, category="work")

    kernel.events.schedule_after(0, work, cpu=2)
    kernel.events.schedule_after(0, work, cpu=2)
    kernel.run_for_ms(5)
    assert starts == [0, 1 * MS]
    assert kernel.cpus[2].busy_until_ns == 2 * MS


def test_untargeted_events_keep_classic_semantics(smp_kernel):
    """cpu=None events run on CPU 0 with a synchronous clock, even on
    an SMP kernel (compat for all pre-SMP code paths)."""
    kernel = smp_kernel
    seen = {}

    def work():
        seen["cpu"] = kernel.current_cpu.index
        kernel.consume(1 * MS)
        seen["end_ns"] = kernel.clock.now_ns

    kernel.events.schedule_after(0, work)
    kernel.run_for_ms(3)
    assert seen == {"cpu": 0, "end_ns": 1 * MS}


def test_charge_lands_on_current_cpu(smp_kernel):
    kernel = smp_kernel

    def work():
        kernel.charge(500, category="softirq")

    kernel.events.schedule_after(0, work, cpu=3)
    kernel.run_for_ms(1)
    assert kernel.cpus[3].acct.category_ns("softirq") == 500
    assert kernel.cpus[0].acct.category_ns("softirq") == 0
    assert kernel.cpu.category_ns("softirq") == 500


def test_irq_affinity_delivers_on_target_cpu(smp_kernel):
    kernel = smp_kernel
    seen = []

    def handler(irq, dev_id):
        seen.append(kernel.current_cpu.index)
        return 1

    kernel.request_irq(9, handler, "affine")
    kernel.irq.set_affinity(9, 2)
    assert kernel.irq.affinity_of(9) == 2
    kernel.irq.raise_irq(9)
    kernel.run_for_ms(1)
    assert seen == [2]


def test_smp_schedule_is_seed_reproducible():
    """The same targeted schedule replayed on a fresh kernel produces
    the identical interleaving and final clock."""

    def run():
        kernel = make_kernel(nr_cpus=4)
        log = []

        def work(cpu, i):
            log.append((kernel.clock.now_ns, cpu, i))
            kernel.consume((1 + (cpu + i) % 3) * 100_000)

        for i in range(12):
            cpu = (i * 5) % 4
            kernel.events.schedule_after(
                (i % 4) * 50_000, lambda c=cpu, i=i: work(c, i), cpu=cpu)
        kernel.run_for_ms(10)
        return log, kernel.clock.now_ns, [v.busy_until_ns
                                          for v in kernel.cpus]

    assert run() == run()


# -- per-CPU scheduler locks under lockdep ---------------------------------


def test_per_cpu_locks_are_distinct_classes(smp_kernel):
    names = {v.rq_lock.name for v in smp_kernel.cpus}
    names |= {v.softirq_lock.name for v in smp_kernel.cpus}
    assert names == (
        {"cpu%d/rq" % i for i in range(4)}
        | {"cpu%d/softirq" % i for i in range(4)})


def test_cross_cpu_ab_ba_reported(smp_kernel):
    """The canary: taking cpu0/rq -> cpu1/rq on one CPU and
    cpu1/rq -> cpu0/rq on another closes a cycle in the (global)
    order graph even though each CPU's held stack never sees both
    orders -- lockdep must report the inversion."""
    kernel = smp_kernel
    kernel.enable_lockdep()
    a = kernel.cpus[0].rq_lock
    b = kernel.cpus[1].rq_lock

    def ab():
        with a:
            with b:
                pass

    def ba():
        with b:
            with a:
                pass

    kernel.events.schedule_after(0, ab, cpu=0)
    kernel.events.schedule_after(100, ba, cpu=1)
    kernel.run_for_ms(1)
    reports = kernel.lockdep.by_kind("lock-order-inversion")
    assert len(reports) == 1
    assert "cpu0/rq" in reports[0].message
    assert "cpu1/rq" in reports[0].message


def test_parallel_holds_alone_are_clean(smp_kernel):
    """Each CPU holding its own rq lock concurrently is not an
    inversion -- held stacks are per CPU."""
    kernel = smp_kernel
    kernel.enable_lockdep()

    def hold(i):
        lock = kernel.cpus[i].rq_lock
        with lock:
            kernel.consume(100_000)

    for i in range(4):
        kernel.events.schedule_after(0, lambda i=i: hold(i), cpu=i)
    kernel.run_for_ms(1)
    assert not kernel.lockdep.reports
