"""Per-CPU SkbPool shards: CPU-local allocation, recycle-to-owner,
shared-arena fallback, and the per-CPU hit-rate counters surfaced in
WorkloadResult."""

from repro.kernel import make_kernel


def test_shard_recycles_to_owning_arena():
    kernel = make_kernel(nr_cpus=2)
    shared = kernel.net.get_skb_pool()
    shard = kernel.net.get_skb_pool(cpu=1)
    assert shard is not shared
    assert shard.fallback is shared

    skb = shard.alloc(512)
    assert shard.hits == 1 and shared.hits == 0
    skb.recycle()
    # The slot returns to the shard that handed it out, never to the
    # shared pool -- buffers don't migrate between arenas.
    assert shard.recycles == 1
    assert shared.recycles == 0


def test_exhausted_shard_falls_back_to_shared_arena():
    kernel = make_kernel(nr_cpus=2)
    shared = kernel.net.get_skb_pool()
    shard = kernel.net.get_skb_pool(cpu=0)

    held = [shard.alloc(256) for _ in range(shard.count)]
    assert shard.hits == shard.count and shard.misses == 0

    spill = shard.alloc(256)
    assert shard.misses == 1
    assert shared.hits == 1
    # The spilled skb belongs to the shared arena: recycling it must
    # credit the shared pool, not the exhausted shard.
    spill.recycle()
    assert shared.recycles == 1
    assert shard.recycles == 0
    held[0].recycle()
    assert shard.recycles == 1


def test_fallback_chain_ends_in_private_buffer():
    kernel = make_kernel(nr_cpus=2)
    shared = kernel.net.get_skb_pool()
    shard = kernel.net.get_skb_pool(cpu=0)
    held = [shard.alloc(64) for _ in range(shard.count)]
    held += [shared.alloc(64) for _ in range(shared.count)]

    skb = shard.alloc(64)
    assert shard.misses == 1 and shared.misses == 1
    assert skb._pool is None  # private bytearray skb
    skb.recycle()  # no-op, never corrupts an arena free list
    assert shared.recycles == 0 and shard.recycles == 0


def test_alloc_rx_skb_selects_current_cpu_shard():
    kernel = make_kernel(nr_cpus=2)
    kernel.net.get_skb_pool()  # shared pool exists up front
    allocated = []

    def rx_work():
        allocated.append(kernel.net.alloc_rx_skb(1500))

    kernel.events.schedule_after(0, rx_work, cpu=1)
    kernel.run_for_ms(1)
    assert allocated
    shard = kernel.net.cpu_skb_pools[1]
    assert shard.hits == 1
    assert 0 not in kernel.net.cpu_skb_pools


def test_skb_pool_stats_reports_every_arena():
    kernel = make_kernel(nr_cpus=4)
    kernel.net.get_skb_pool(cpu=2).alloc(100)
    kernel.net.get_skb_pool(cpu=0)
    stats = kernel.net.skb_pool_stats()
    assert set(stats) == {"shared", "cpu0", "cpu2"}
    assert stats["cpu2"] == {"hits": 1, "misses": 0, "recycles": 0}


def test_workload_result_surfaces_per_cpu_hit_rates():
    """An SMP multi-queue receive run reports a hit rate per shard."""
    from repro.workloads.netperf import netperf_recv
    from repro.workloads.rigs import make_e1000_rig

    rig = make_e1000_rig(irq_mode="napi", nr_cpus=2, num_queues=2)
    rig.insmod()
    result = netperf_recv(rig, duration_s=0.02)
    assert result.packets > 0
    rates = result.skb_pool_cpu_hit_rates
    assert rates, "no per-shard hit rates reported"
    assert set(rates) <= {"shared", "cpu0", "cpu1"}
    # Steady-state rx allocates CPU-locally: every shard that saw
    # traffic ran essentially all-hits.
    for label, rate in rates.items():
        if label != "shared":
            assert rate > 0.9, (label, rate)
    assert "skb_pool_cpu_hit_rates" in result.row()
