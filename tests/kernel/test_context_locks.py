"""Execution-context rules and locking primitives."""

import pytest

from repro.kernel import (
    DeadlockError,
    Mutex,
    Semaphore,
    SleepInAtomicError,
    SpinLock,
)


class TestContextRules:
    def test_process_context_may_sleep(self, kernel):
        kernel.context.might_sleep()  # no raise

    def test_spinlock_makes_context_atomic(self, kernel):
        lock = SpinLock(kernel, "t")
        lock.lock()
        assert kernel.context.in_atomic()
        with pytest.raises(SleepInAtomicError):
            kernel.msleep(1)
        lock.unlock()
        assert not kernel.context.in_atomic()

    def test_irq_context_forbids_sleep(self, kernel):
        caught = []

        def handler(irq, dev_id):
            try:
                kernel.msleep(1)
            except SleepInAtomicError:
                caught.append(True)
            return 1

        kernel.irq.request_irq(5, handler, "t")
        kernel.irq.raise_irq(5)
        assert caught == [True]

    def test_udelay_legal_in_atomic(self, kernel):
        lock = SpinLock(kernel, "t")
        with lock:
            kernel.udelay(10)  # busy-wait is fine

    def test_gfp_kernel_forbidden_in_atomic(self, kernel):
        lock = SpinLock(kernel, "t")
        with lock:
            with pytest.raises(SleepInAtomicError):
                kernel.memory.kmalloc(64)

    def test_gfp_atomic_allowed_in_atomic(self, kernel):
        from repro.kernel import GFP_ATOMIC

        lock = SpinLock(kernel, "t")
        with lock:
            alloc = kernel.memory.kmalloc(64, GFP_ATOMIC)
        assert alloc is not None
        kernel.memory.kfree(alloc)

    def test_context_name_reporting(self, kernel):
        assert kernel.context.current_context() == "process"
        kernel.context.enter_irq()
        assert kernel.context.current_context() == "hardirq"
        kernel.context.exit_irq()
        kernel.context.enter_softirq()
        assert kernel.context.current_context() == "softirq"
        kernel.context.exit_softirq()


class TestSpinLock:
    def test_lock_unlock(self, kernel):
        lock = SpinLock(kernel, "t")
        lock.lock()
        assert lock.held
        lock.unlock()
        assert not lock.held

    def test_self_deadlock_detected(self, kernel):
        lock = SpinLock(kernel, "t")
        lock.lock()
        with pytest.raises(DeadlockError):
            lock.lock()

    def test_unlock_unheld_raises(self, kernel):
        lock = SpinLock(kernel, "t")
        with pytest.raises(DeadlockError):
            lock.unlock()

    def test_irqsave_masks_interrupts(self, kernel):
        fired = []
        kernel.irq.request_irq(3, lambda i, d: fired.append(1) or 1, "t")
        lock = SpinLock(kernel, "t")
        lock.lock_irqsave()
        kernel.irq.raise_irq(3)
        assert fired == []  # latched, not delivered
        lock.unlock_irqrestore()
        assert fired == [1]  # delivered on unmask

    def test_context_manager(self, kernel):
        lock = SpinLock(kernel, "t")
        with lock:
            assert lock.held
        assert not lock.held

    def test_acquisition_count(self, kernel):
        lock = SpinLock(kernel, "t")
        for _ in range(3):
            with lock:
                pass
        assert lock.acquisitions == 3


class TestMutex:
    def test_basic(self, kernel):
        m = Mutex(kernel, "t")
        with m:
            assert m.held
        assert not m.held

    def test_acquire_in_atomic_rejected(self, kernel):
        m = Mutex(kernel, "t")
        spin = SpinLock(kernel, "s")
        with spin:
            with pytest.raises(SleepInAtomicError):
                m.lock()

    def test_blocking_allowed_while_held(self, kernel):
        m = Mutex(kernel, "t")
        with m:
            kernel.msleep(1)  # legal: mutexes don't make context atomic

    def test_recursive_detected(self, kernel):
        m = Mutex(kernel, "t")
        m.lock()
        with pytest.raises(DeadlockError):
            m.lock()


class TestSemaphore:
    def test_down_up(self, kernel):
        sem = Semaphore(kernel, count=2)
        sem.down()
        sem.down()
        assert sem.count == 0
        sem.up()
        assert sem.count == 1

    def test_down_at_zero_raises(self, kernel):
        sem = Semaphore(kernel, count=1)
        sem.down()
        with pytest.raises(DeadlockError):
            sem.down()

    def test_trylock(self, kernel):
        sem = Semaphore(kernel, count=1)
        assert sem.down_trylock() is True
        assert sem.down_trylock() is False

    def test_down_sleeps_so_atomic_rejected(self, kernel):
        sem = Semaphore(kernel, count=1)
        spin = SpinLock(kernel, "s")
        with spin:
            with pytest.raises(SleepInAtomicError):
                sem.down()
