"""printk ring buffer, dmesg filtering, and the printk tracepoint."""

import pytest

from repro.kernel import make_kernel
from repro.kernel.core import DEFAULT_LOG_CAPACITY, Kernel
from repro.trace import Tracer


class TestRingBuffer:
    def test_entries_carry_virtual_time_and_level(self, kernel):
        kernel.run_for_ns(1234)
        kernel.printk("hello", level="warn")
        (entry,) = kernel.dmesg()
        assert entry == (1234, "warn", "hello")

    def test_default_level_is_info(self, kernel):
        kernel.printk("x")
        assert kernel.dmesg()[0][1] == "info"

    def test_capacity_bounds_and_counts_drops(self):
        k = Kernel(log_capacity=3)
        for i in range(5):
            k.printk("m%d" % i)
        assert [m for _t, _l, m in k.dmesg()] == ["m2", "m3", "m4"]
        assert k.log_dropped == 2

    def test_default_capacity(self, kernel):
        for i in range(DEFAULT_LOG_CAPACITY + 10):
            kernel.printk("m%d" % i)
        assert len(kernel.dmesg()) == DEFAULT_LOG_CAPACITY
        assert kernel.log_dropped == 10

    def test_dmesg_level_floor(self, kernel):
        kernel.printk("d", level="debug")
        kernel.printk("i", level="info")
        kernel.printk("w", level="warn")
        kernel.printk("e", level="err")
        assert [m for _t, _l, m in kernel.dmesg(level="warn")] == ["w", "e"]
        assert len(kernel.dmesg(level="debug")) == 4

    def test_dmesg_rejects_unknown_level(self, kernel):
        with pytest.raises(ValueError):
            kernel.dmesg(level="loud")


class TestCompat:
    def test_log_lines_keeps_pair_shape(self, kernel):
        """Pre-ring consumers iterate (time_ns, message) pairs."""
        kernel.run_for_ns(10)
        kernel.printk("a")
        kernel.printk("b", level="err")
        assert kernel.log_lines == [(10, "a"), (10, "b")]


class TestPrintkTracepoint:
    def test_printk_emits_instant(self, kernel):
        tracer = Tracer(kernel).install()
        try:
            kernel.printk("traced", level="warn")
        finally:
            tracer.uninstall()
        (ev,) = [e for e in tracer.events if e["name"] == "printk"]
        assert ev["args"] == {"level": "warn", "msg": "traced"}

    def test_untraced_printk_emits_nothing(self, kernel):
        kernel.printk("quiet")  # no tracer installed; must not raise
        assert kernel.tracer is None


class TestRingAtCapacity:
    """Wraparound behavior: eviction order, filtered views, and
    health-plane writers logging while the ring is evicting."""

    def test_eviction_is_strictly_oldest_first(self):
        k = Kernel(log_capacity=4)
        for i in range(10):
            k.printk("m%d" % i)
        # Every eviction dropped the numerically-lowest survivor.
        assert [m for _t, _l, m in k.dmesg()] == ["m6", "m7", "m8", "m9"]
        assert k.log_dropped == 6

    def test_interleaved_levels_evict_by_age_not_severity(self):
        """Eviction is pure FIFO: an old error goes before a new debug."""
        k = Kernel(log_capacity=3)
        k.printk("old-error", level="err")
        k.printk("mid", level="debug")
        k.printk("new1")
        k.printk("new2")
        assert [m for _t, _l, m in k.dmesg()] == ["mid", "new1", "new2"]

    def test_dmesg_level_filter_after_wraparound(self):
        """The severity floor applies to survivors only -- filtered
        views see the post-eviction ring, not ghosts of dropped lines."""
        k = Kernel(log_capacity=4)
        k.printk("early-warn", level="warn")   # will be evicted
        for i in range(4):
            k.printk("info%d" % i)
        k.printk("late-warn", level="warn")
        assert [m for _t, _l, m in k.dmesg(level="warn")] == ["late-warn"]
        assert len(k.dmesg()) == 4
        assert k.log_dropped == 2

    def test_health_writers_log_through_eviction(self):
        """Watchdog fires printk into a full ring: the warning lands,
        eviction counts, and the flight recorder keeps its own copy
        even after the printk line ages out of the ring."""
        from repro.health import HealthPlane

        k = Kernel(log_capacity=3)
        plane = HealthPlane(k, watchdogs=False).install()
        try:
            for i in range(3):
                k.printk("fill%d" % i)
            k.printk("health: watchdog hung_task on eth0", level="warn")
            assert k.log_dropped == 1
            assert any("watchdog" in m for _t, _l, m in k.dmesg())
            # Age the warning out of the printk ring entirely.
            for i in range(3):
                k.printk("later%d" % i)
            assert not any("watchdog" in m for _t, _l, m in k.dmesg())
            # The flight ring is independent of printk eviction.
            flight_msgs = [args.get("msg", "") for _t, _c, name, args
                           in plane.flight.ring if name == "printk"]
            assert any("watchdog" in m for m in flight_msgs)
        finally:
            plane.uninstall()

    def test_dump_snapshots_ring_mid_eviction(self):
        """A crash dump taken while the ring is at capacity carries
        exactly the surviving tail."""
        from repro.health import HealthPlane

        k = Kernel(log_capacity=2)
        plane = HealthPlane(k, watchdogs=False).install()
        try:
            for i in range(5):
                k.printk("m%d" % i)
            report = plane.dump("mid-eviction")
            assert [e["msg"] for e in report["dmesg"]] == ["m3", "m4"]
            assert report["kstat"]["kernel.log_dropped"] == 3
        finally:
            plane.uninstall()
