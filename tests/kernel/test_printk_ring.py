"""printk ring buffer, dmesg filtering, and the printk tracepoint."""

import pytest

from repro.kernel import make_kernel
from repro.kernel.core import DEFAULT_LOG_CAPACITY, Kernel
from repro.trace import Tracer


class TestRingBuffer:
    def test_entries_carry_virtual_time_and_level(self, kernel):
        kernel.run_for_ns(1234)
        kernel.printk("hello", level="warn")
        (entry,) = kernel.dmesg()
        assert entry == (1234, "warn", "hello")

    def test_default_level_is_info(self, kernel):
        kernel.printk("x")
        assert kernel.dmesg()[0][1] == "info"

    def test_capacity_bounds_and_counts_drops(self):
        k = Kernel(log_capacity=3)
        for i in range(5):
            k.printk("m%d" % i)
        assert [m for _t, _l, m in k.dmesg()] == ["m2", "m3", "m4"]
        assert k.log_dropped == 2

    def test_default_capacity(self, kernel):
        for i in range(DEFAULT_LOG_CAPACITY + 10):
            kernel.printk("m%d" % i)
        assert len(kernel.dmesg()) == DEFAULT_LOG_CAPACITY
        assert kernel.log_dropped == 10

    def test_dmesg_level_floor(self, kernel):
        kernel.printk("d", level="debug")
        kernel.printk("i", level="info")
        kernel.printk("w", level="warn")
        kernel.printk("e", level="err")
        assert [m for _t, _l, m in kernel.dmesg(level="warn")] == ["w", "e"]
        assert len(kernel.dmesg(level="debug")) == 4

    def test_dmesg_rejects_unknown_level(self, kernel):
        with pytest.raises(ValueError):
            kernel.dmesg(level="loud")


class TestCompat:
    def test_log_lines_keeps_pair_shape(self, kernel):
        """Pre-ring consumers iterate (time_ns, message) pairs."""
        kernel.run_for_ns(10)
        kernel.printk("a")
        kernel.printk("b", level="err")
        assert kernel.log_lines == [(10, "a"), (10, "b")]


class TestPrintkTracepoint:
    def test_printk_emits_instant(self, kernel):
        tracer = Tracer(kernel).install()
        try:
            kernel.printk("traced", level="warn")
        finally:
            tracer.uninstall()
        (ev,) = [e for e in tracer.events if e["name"] == "printk"]
        assert ev["args"] == {"level": "warn", "msg": "traced"}

    def test_untraced_printk_emits_nothing(self, kernel):
        kernel.printk("quiet")  # no tracer installed; must not raise
        assert kernel.tracer is None
