"""Virtual clock, CPU accounting, and the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel import make_kernel, SimulationError
from repro.kernel.events import EventQueue
from repro.kernel.vtime import CpuAccounting, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now_ns == 0
        assert clock.now_s == 0.0

    def test_advances(self):
        clock = VirtualClock()
        clock._set(1_500_000)
        assert clock.now_ns == 1_500_000
        assert clock.now_ms == 1.5

    def test_never_goes_backwards(self):
        clock = VirtualClock()
        clock._set(100)
        with pytest.raises(SimulationError):
            clock._set(99)

    def test_unit_properties_consistent(self):
        clock = VirtualClock()
        clock._set(2_000_000_000)
        assert clock.now_s == 2.0
        assert clock.now_ms == 2000.0
        assert clock.now_us == 2_000_000.0


class TestCpuAccounting:
    def test_charge_accumulates(self):
        clock = VirtualClock()
        cpu = CpuAccounting(clock)
        cpu.charge(100, "a")
        cpu.charge(50, "b")
        assert cpu.busy_ns == 150
        assert cpu.category_ns("a") == 100
        assert cpu.category_ns("b") == 50

    def test_negative_charge_rejected(self):
        cpu = CpuAccounting(VirtualClock())
        with pytest.raises(SimulationError):
            cpu.charge(-1)

    def test_utilization_window(self):
        kernel = make_kernel()
        kernel.cpu.start_window()
        kernel.consume(600, busy=True)
        kernel.consume(400, busy=False)
        assert kernel.cpu.window_elapsed_ns() == 1000
        assert kernel.cpu.utilization() == pytest.approx(0.6)

    def test_empty_window_is_zero(self):
        kernel = make_kernel()
        kernel.cpu.start_window()
        assert kernel.cpu.utilization() == 0.0

    def test_utilization_capped_at_one(self):
        kernel = make_kernel()
        kernel.cpu.start_window()
        kernel.cpu.charge(10_000)  # busy without advancing time
        kernel.run_for_ns(100)
        assert kernel.cpu.utilization() == 1.0


class TestEventQueue:
    def test_fires_in_time_order(self, kernel):
        seen = []
        kernel.events.schedule_at(300, lambda: seen.append(3))
        kernel.events.schedule_at(100, lambda: seen.append(1))
        kernel.events.schedule_at(200, lambda: seen.append(2))
        kernel.run_until(1000)
        assert seen == [1, 2, 3]

    def test_equal_times_fifo(self, kernel):
        seen = []
        for i in range(10):
            kernel.events.schedule_at(500, lambda i=i: seen.append(i))
        kernel.run_until(500)
        assert seen == list(range(10))

    def test_cancelled_events_do_not_fire(self, kernel):
        seen = []
        ev = kernel.events.schedule_at(100, lambda: seen.append("x"))
        ev.cancel()
        kernel.run_until(1000)
        assert seen == []

    def test_past_deadline_runs_now(self, kernel):
        kernel.run_until(1000)
        seen = []
        kernel.events.schedule_at(1, lambda: seen.append(kernel.now_ns()))
        kernel.run_until(1000)  # no time passes
        assert seen == [1000]

    def test_event_scheduling_event(self, kernel):
        seen = []

        def first():
            kernel.events.schedule_after(50, lambda: seen.append("second"))

        kernel.events.schedule_at(100, first)
        kernel.run_until(200)
        assert seen == ["second"]

    def test_clock_set_to_event_time(self, kernel):
        times = []
        kernel.events.schedule_at(123, lambda: times.append(kernel.now_ns()))
        kernel.run_until(1000)
        assert times == [123]
        assert kernel.now_ns() == 1000

    def test_nested_run_until(self, kernel):
        """An event handler may sleep, nesting the event loop."""
        seen = []

        def sleeper():
            kernel.msleep(1)
            seen.append(kernel.now_ns())

        kernel.events.schedule_at(1000, sleeper)
        kernel.events.schedule_at(500_000, lambda: seen.append("mid"))
        kernel.run_for_ms(10)
        assert seen == ["mid", 1_001_000]

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                    max_size=50))
    def test_property_any_schedule_fires_sorted(self, times):
        clock = VirtualClock()
        queue = EventQueue(clock)
        fired = []
        for t in times:
            queue.schedule_at(t, lambda t=t: fired.append(t))
        while True:
            nxt = queue.peek_time()
            if nxt is None:
                break
            ev = queue.pop_due(nxt)
            clock._set(max(clock.now_ns, ev.time_ns))
            ev.callback()
        assert fired == sorted(times)


class TestDelays:
    def test_msleep_advances_clock(self, kernel):
        kernel.msleep(5)
        assert kernel.clock.now_ms == 5.0

    def test_udelay_charges_cpu(self, kernel):
        kernel.cpu.start_window()
        kernel.udelay(100)
        assert kernel.cpu.window_busy_ns() == 100_000

    def test_msleep_is_idle_time(self, kernel):
        kernel.cpu.start_window()
        kernel.msleep(1)
        assert kernel.cpu.window_busy_ns() == 0

    def test_consume_processes_due_events(self, kernel):
        seen = []
        kernel.events.schedule_after(500, lambda: seen.append(1))
        kernel.consume(1000)
        assert seen == [1]
