"""Regression tests for kernel bugs surfaced by hotplug churn.

Each test fails on the pre-fix code:

* ``IrqController.free_irq`` leaked the line's disable depth, affinity
  target, and latched local-pending bit into the next owner.
* ``Workqueue.flush`` looped forever on a self-rescheduling item and
  raised ``ValueError`` (empty ``max()``) when every unwaited item's
  event was cancelled under it.
* ``IrqController._dispatch`` rolled spurious interrupts into the
  ``delivered`` total and the per-line count.
* ``SkBuff.recycle`` (and the drivers' inlined copies) left ``skb.dev``
  set on the pooled per-slot header, pinning a hot-unplugged device's
  whole object graph until the slot was reused.
"""

import pytest

from repro.kernel import IRQ_HANDLED, IRQ_NONE, WorkItem, make_kernel


class TestFreeIrqResetsLineState:
    def test_free_while_disabled_then_rerequest_delivers(self, kernel):
        """A line freed while masked must deliver for its next owner."""
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "old")
        kernel.irq.disable_irq(4)
        kernel.irq.disable_irq(4)       # nested: depth 2 at free time
        kernel.irq.raise_irq(4)         # latched on the masked line
        kernel.irq.free_irq(4)

        fired = []
        assert kernel.irq.request_irq(
            4, lambda i, d: fired.append(i) or IRQ_HANDLED, "new") == 0
        kernel.irq.raise_irq(4)
        assert fired == [4], "new owner inherited the old mask depth"

    def test_free_drops_latched_pending(self, kernel):
        """The old owner's latched interrupt must not replay."""
        hits = []
        kernel.irq.request_irq(
            4, lambda i, d: hits.append(i) or IRQ_HANDLED, "old")
        kernel.irq.disable_irq(4)
        kernel.irq.raise_irq(4)
        kernel.irq.free_irq(4)
        fired = []
        kernel.irq.request_irq(
            4, lambda i, d: fired.append(i) or IRQ_HANDLED, "new")
        kernel.irq.raise_irq(4)
        # Exactly the new owner's one raise -- no ghost delivery.
        assert fired == [4]
        assert hits == []

    def test_free_clears_affinity(self):
        kernel = make_kernel(nr_cpus=2)
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "old")
        kernel.irq.set_affinity(4, 1)
        kernel.irq.free_irq(4)
        assert kernel.irq.affinity_of(4) is None

        # Without the leaked affinity the next owner's delivery is the
        # classic synchronous dispatch, not a cross-CPU event.
        fired = []
        kernel.irq.request_irq(
            4, lambda i, d: fired.append(i) or IRQ_HANDLED, "new")
        kernel.irq.raise_irq(4)
        assert fired == [4]

    def test_free_clears_local_pending(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "old")
        kernel.irq.local_irq_disable()
        kernel.irq.raise_irq(4)         # parked in the local-pending set
        kernel.irq.free_irq(4)
        spurious_before = kernel.irq.spurious
        kernel.irq.local_irq_enable()
        # The freed line's parked interrupt is gone, not delivered
        # spuriously into a handler-less line.
        assert kernel.irq.spurious == spurious_before


class TestWorkqueueFlushTermination:
    def test_flush_bounds_self_rescheduling_item(self, kernel):
        runs = []

        def rearm(_data):
            runs.append(1)
            kernel.workqueue.schedule_work(item, delay_ns=1_000_000)

        item = WorkItem(kernel, rearm, None, name="rearm")
        kernel.workqueue.schedule_work(item)
        kernel.workqueue.flush()        # pre-fix: never returns
        assert len(runs) >= 1
        kernel.workqueue.cancel_work(item)

    def test_flush_with_cancelled_event_terminates(self, kernel):
        item = WorkItem(kernel, lambda _d: None, None, name="ghost")
        kernel.workqueue.schedule_work(item)
        # Cancel the backing event only: the item stays in the pending
        # set, the shape that made the pre-fix flush call max(()).
        item._event.cancel()
        kernel.workqueue.flush()        # pre-fix: ValueError
        kernel.workqueue.cancel_work(item)

    def test_flush_empty_queue_is_noop(self, kernel):
        kernel.workqueue.flush()


class TestKstatUnregisterBoundMethod:
    def test_bound_method_provider_unregisters(self, kernel):
        """``obj.method`` is a fresh object per access; unregister must
        match by equality or every driver remove leaks a provider."""

        class Driver:
            def _kstat(self):
                return {"x": 1}

        drv = Driver()
        before = len(kernel.kstat._providers)
        kernel.kstat.register("drv", drv._kstat)
        kernel.kstat.unregister("drv", drv._kstat)
        assert len(kernel.kstat._providers) == before

    def test_unregister_is_instance_scoped(self, kernel):
        class Driver:
            def __init__(self, tag):
                self.tag = tag

            def _kstat(self):
                return {"tag": self.tag}

        a, b = Driver(1), Driver(2)
        kernel.kstat.register("drv", a._kstat)
        kernel.kstat.register("drv", b._kstat)
        kernel.kstat.unregister("drv", a._kstat)
        snap = kernel.kstat.snapshot()
        assert snap.get("drv.tag") == 2


class TestSkbRecycleDropsDeviceRef:
    def test_recycle_clears_dev(self, kernel):
        """A recycled pooled skb must not keep its device alive: the
        pool caches the header per slot, so a stale ``dev`` outlives
        hot-unplug by up to ``count`` packets."""
        skb = kernel.net.get_skb_pool().alloc(128)
        skb.dev = object()
        skb.recycle()
        assert skb.dev is None

    def test_napi_delivery_clears_dev(self, kernel):
        """netif_receive_skb inlines recycle; it must clear dev too."""
        import weakref

        class FakeDev:
            pass

        dev = FakeDev()
        ref = weakref.ref(dev)
        skb = kernel.net.get_skb_pool().alloc(128)
        kernel.net.netif_receive_skb(dev, skb)
        kernel.net.flush_rx_batch()
        del dev
        import gc
        gc.collect()
        assert ref() is None, "pooled header pinned the removed device"


class TestSpuriousInterruptAccounting:
    def test_declined_interrupt_not_counted_delivered(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_NONE, "decliner")
        before = dict(kernel.irq._kstat())
        kernel.irq.raise_irq(4)
        kernel.irq.raise_irq(4)
        after = dict(kernel.irq._kstat())
        assert after["spurious"] == before["spurious"] + 2
        assert after["delivered"] == before["delivered"]
        assert after["line4.count"] == before["line4.count"]

    def test_handled_interrupt_counted_once(self, kernel):
        kernel.irq.request_irq(4, lambda i, d: IRQ_HANDLED, "h")
        before = dict(kernel.irq._kstat())
        kernel.irq.raise_irq(4)
        after = dict(kernel.irq._kstat())
        assert after["delivered"] == before["delivered"] + 1
        assert after["spurious"] == before["spurious"]
        assert after["line4.count"] == before["line4.count"] + 1

    def test_kstat_totals_partition(self, kernel):
        """delivered + spurious account for every raise, disjointly."""
        state = {"accept": True}

        def handler(i, d):
            return IRQ_HANDLED if state["accept"] else IRQ_NONE

        kernel.irq.request_irq(4, handler, "mixed")
        base = dict(kernel.irq._kstat())
        for accept in (True, False, True, False, False):
            state["accept"] = accept
            kernel.irq.raise_irq(4)
        snap = dict(kernel.irq._kstat())
        assert snap["delivered"] - base["delivered"] == 2
        assert snap["spurious"] - base["spurious"] == 3
        assert snap["line4.count"] - base["line4.count"] == 2
