"""The indexed timer wheel behind ``schedule_timer_at``/``_after``.

Timers (watchdog, ITR throttle, TX-completion pumps) are cancelled and
re-armed far more often than they fire; the wheel makes each of those
O(1) *true* removals instead of leaving cancelled debris in the global
heap.  Bucketing must not change observable behaviour: expiry times stay
exact and FIFO order for equal timestamps holds across both stores.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.events import EventQueue, TimerWheel
from repro.kernel.timers import KernelTimer
from repro.kernel.vtime import VirtualClock


class TestWheelExactness:
    def test_fires_at_exact_time_not_bucket_edge(self, kernel):
        """Slot granularity is 65.536us, but expiry is exact."""
        seen = []
        kernel.events.schedule_timer_at(
            100_123, lambda: seen.append(kernel.now_ns()))
        kernel.run_until(1_000_000)
        assert seen == [100_123]

    def test_same_bucket_fires_in_time_order(self, kernel):
        seen = []
        # 300ns apart: same 2**16ns bucket, distinct expiry times.
        kernel.events.schedule_timer_at(10_600, lambda: seen.append("b"))
        kernel.events.schedule_timer_at(10_300, lambda: seen.append("a"))
        kernel.run_until(1_000_000)
        assert seen == ["a", "b"]

    def test_equal_times_fifo_across_heap_and_wheel(self, kernel):
        """Heap events and wheel timers share one seq counter."""
        seen = []
        kernel.events.schedule_at(500, lambda: seen.append("heap1"))
        kernel.events.schedule_timer_at(500, lambda: seen.append("wheel1"))
        kernel.events.schedule_at(500, lambda: seen.append("heap2"))
        kernel.events.schedule_timer_at(500, lambda: seen.append("wheel2"))
        kernel.run_until(500)
        assert seen == ["heap1", "wheel1", "heap2", "wheel2"]

    def test_past_deadline_clamped_to_now(self, kernel):
        kernel.run_until(1000)
        seen = []
        kernel.events.schedule_timer_at(1, lambda: seen.append(kernel.now_ns()))
        kernel.run_until(1000)
        assert seen == [1000]

    def test_peek_time_takes_min_across_stores(self, kernel):
        kernel.events.schedule_at(700, lambda: None)
        kernel.events.schedule_timer_at(300, lambda: None)
        assert kernel.events.peek_time() == 300


class TestWheelCancel:
    def test_cancel_is_true_removal(self, kernel):
        evs = [kernel.events.schedule_timer_at(1000 + i, lambda: None)
               for i in range(10)]
        assert len(kernel.events) == 10
        for ev in evs[:7]:
            ev.cancel()
        assert len(kernel.events) == 3
        # The wheel itself holds exactly the three live entries.
        assert len(kernel.events._wheel) == 3

    def test_cancelled_timer_does_not_fire(self, kernel):
        seen = []
        ev = kernel.events.schedule_timer_at(100, lambda: seen.append("x"))
        ev.cancel()
        kernel.run_until(1000)
        assert seen == []

    def test_cancel_front_bucket_advances_peek(self, kernel):
        first = kernel.events.schedule_timer_at(100, lambda: None)
        kernel.events.schedule_timer_at(5_000_000, lambda: None)
        assert kernel.events.peek_time() == 100
        first.cancel()
        assert kernel.events.peek_time() == 5_000_000

    def test_rearm_churn_leaves_no_debris(self, kernel):
        """The watchdog pattern: hundreds of re-arms per actual fire."""
        timer = KernelTimer(kernel, lambda _d: None, name="watchdog")
        for i in range(1, 1001):
            timer.mod_timer(2_000_000_000 + i)
        # One live entry; the 1000 cancelled ones are really gone.
        assert len(kernel.events._wheel) == 1
        assert timer.pending

    def test_rearm_fires_once_at_latest_deadline(self, kernel):
        fired = []
        timer = KernelTimer(kernel, lambda _d: fired.append(kernel.now_ns()))
        timer.mod_timer(1_000)
        timer.mod_timer(50_000)
        timer.mod_timer(200_000)
        kernel.run_until(1_000_000)
        assert fired == [200_000]
        assert timer.fired == 1

    def test_del_timer_reports_pending(self, kernel):
        timer = KernelTimer(kernel, lambda _d: None)
        assert timer.del_timer() is False
        timer.mod_timer_after(1000)
        assert timer.del_timer() is True
        assert timer.del_timer() is False

    def test_self_rearming_timer(self, kernel):
        """A timer may re-arm itself from its own callback (watchdog)."""
        fired = []

        def tick(_data):
            fired.append(kernel.now_ns())
            if len(fired) < 5:
                timer.mod_timer_after(100_000)

        timer = KernelTimer(kernel, tick)
        timer.mod_timer_after(100_000)
        kernel.run_for_ms(10)
        assert fired == [100_000 * i for i in range(1, 6)]


class TestWheelDirect:
    def test_empty_peek_is_none(self):
        wheel = TimerWheel()
        assert wheel.peek_event() is None
        assert len(wheel) == 0

    def test_discard_is_idempotent(self, kernel):
        ev = kernel.events.schedule_timer_at(100, lambda: None)
        wheel = kernel.events._wheel
        wheel.discard(ev)
        wheel.discard(ev)  # second discard must not corrupt counters
        assert len(wheel) == 0
        assert wheel.peek_event() is None


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**9), st.booleans()),
    min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_property_mixed_stores_fire_sorted(spec):
    """Any mix of heap events and wheel timers dispatches in time order."""
    clock = VirtualClock()
    queue = EventQueue(clock)
    fired = []
    for t, use_wheel in spec:
        cb = lambda t=t: fired.append(t)  # noqa: E731
        if use_wheel:
            queue.schedule_timer_at(t, cb)
        else:
            queue.schedule_at(t, cb)
    while True:
        nxt = queue.peek_time()
        if nxt is None:
            break
        ev = queue.pop_due(nxt)
        clock._set(max(clock.now_ns, ev.time_ns))
        ev.callback()
    assert fired == sorted(t for t, _w in spec)


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**8),
              st.integers(min_value=0, max_value=4)),
    min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_property_cancel_subset_survivors_fire(spec):
    """Cancelling any subset leaves exactly the survivors, in order."""
    clock = VirtualClock()
    queue = EventQueue(clock)
    fired = []
    events = []
    for t, kind in spec:
        cb = lambda t=t: fired.append(t)  # noqa: E731
        ev = (queue.schedule_timer_at(t, cb) if kind % 2
              else queue.schedule_at(t, cb))
        events.append((ev, t, kind >= 3))  # kind 3,4 -> cancel
    survivors = []
    for ev, t, do_cancel in events:
        if do_cancel:
            ev.cancel()
        else:
            survivors.append(t)
    while True:
        nxt = queue.peek_time()
        if nxt is None:
            break
        ev = queue.pop_due(nxt)
        clock._set(max(clock.now_ns, ev.time_ns))
        ev.callback()
    assert fired == sorted(survivors)
    assert len(queue) == 0
