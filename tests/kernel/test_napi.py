"""NAPI core: softirq budget loop, masking protocol, zero-copy skb pool."""

import pytest

from repro.kernel import SimulationError, make_kernel
from repro.kernel.netdev import NetDevice, SkbPool


class _FakeNic:
    """A device-side stand-in: a ring the poll callback drains."""

    def __init__(self, kernel, core, irq=9):
        self.kernel = kernel
        self.core = core
        self.irq = irq
        self.ring = []
        self.drained = []
        self.complete_on_empty = True
        dev = NetDevice(kernel, "fake0")
        dev.irq = irq
        self.dev = dev
        self.napi = core.register(dev, self.poll, weight=16, irq=irq)
        core.enable(self.napi)

    def rx(self, n):
        self.ring.extend(range(len(self.ring), len(self.ring) + n))
        # Device interrupt: mask sources and schedule (handler side).
        self.core.schedule(self.napi)

    def poll(self, napi, budget):
        work = 0
        while self.ring and work < budget:
            self.drained.append(self.ring.pop(0))
            work += 1
        if not self.ring and self.complete_on_empty:
            self.core.complete(napi)
        return work


@pytest.fixture
def core(kernel):
    return kernel.net.napi


class TestNapiProtocol:
    def test_poll_runs_in_softirq_context(self, kernel, core):
        contexts = []
        dev = NetDevice(kernel, "n0")

        def poll(napi, budget):
            contexts.append(kernel.context.in_softirq())
            core.complete(napi)
            return 0

        napi = core.register(dev, poll)
        core.enable(napi)
        core.schedule(napi)
        kernel.run_for_ms(1)
        assert contexts == [True]

    def test_schedule_masks_irq_line_until_complete(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(3)
        assert kernel.irq.irq_disabled(nic.irq)
        kernel.run_for_ms(1)
        assert nic.drained == [0, 1, 2]
        assert not kernel.irq.irq_disabled(nic.irq)

    def test_poll_with_unmasked_line_is_an_error(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(1)
        # A buggy driver re-enabling the line before poll runs.
        kernel.irq.enable_irq(nic.irq)
        with pytest.raises(SimulationError):
            kernel.run_for_ms(1)

    def test_schedule_is_idempotent_while_scheduled(self, kernel, core):
        nic = _FakeNic(kernel, core)
        assert core.schedule(nic.napi) is True
        assert core.schedule(nic.napi) is False
        assert core.schedules == 1
        # The line was masked exactly once; one complete unmasks it.
        kernel.run_for_ms(1)
        assert not kernel.irq.irq_disabled(nic.irq)

    def test_disabled_context_cannot_be_scheduled(self, kernel, core):
        nic = _FakeNic(kernel, core)
        core.disable(nic.napi)
        assert core.schedule(nic.napi) is False
        kernel.run_for_ms(1)
        assert nic.drained == []

    def test_disable_mid_schedule_suppresses_poll(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(5)
        core.disable(nic.napi)
        kernel.run_for_ms(1)
        assert nic.drained == []
        assert not kernel.irq.irq_disabled(nic.irq)


class TestBudgetLoop:
    def test_one_schedule_drains_burst_up_to_weight(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(10)  # below weight 16: one poll drains everything
        kernel.run_for_ms(1)
        assert nic.drained == list(range(10))
        assert core.polls == 1
        assert core.packets_per_poll == {10: 1}

    def test_weight_limits_single_poll_rerun_until_empty(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(40)  # weight 16 -> 3 polls (16+16+8) within one softirq
        kernel.run_for_ms(1)
        assert nic.drained == list(range(40))
        assert core.polls == 3
        assert core.softirq_runs == 1
        assert core.budget_exhaustions == 0

    def test_budget_exhaustion_reraises_softirq(self, kernel, core):
        nic = _FakeNic(kernel, core)
        nic.rx(core.budget + 50)
        kernel.run_for_ms(1)
        assert nic.drained == list(range(core.budget + 50))
        assert core.budget_exhaustions >= 1
        assert core.softirq_runs >= 2  # punted to a fresh softirq
        assert not kernel.irq.irq_disabled(nic.irq)

    def test_softirq_charges_cpu(self, kernel, core):
        nic = _FakeNic(kernel, core)
        kernel.cpu.start_window()
        nic.rx(1)
        kernel.run_for_ms(1)
        assert kernel.cpu.category_ns("softirq") == \
            kernel.costs.softirq_ns * core.softirq_runs


class TestBatchedDelivery:
    def test_batched_charge_equals_per_packet_total(self):
        """flush_rx_batch charges exactly what N netif_rx calls would."""
        k_batch, k_per = make_kernel(), make_kernel()
        sizes = [60, 1500, 300, 9, 1024]
        dev_b = NetDevice(k_batch, "b0")
        dev_p = NetDevice(k_per, "p0")
        from repro.kernel.netdev import SkBuff

        for n in sizes:
            k_batch.net.netif_receive_skb(dev_b, SkBuff(bytes(n)))
        k_batch.net.flush_rx_batch()
        for n in sizes:
            k_per.net.netif_rx(dev_p, SkBuff(bytes(n)))
        assert k_batch.cpu.category_ns("netstack") == pytest.approx(
            k_per.cpu.category_ns("netstack"), abs=len(sizes))
        assert k_batch.net.stack_rx_packets == k_per.net.stack_rx_packets
        assert k_batch.net.stack_rx_bytes == k_per.net.stack_rx_bytes

    def test_flush_without_batch_is_free(self, kernel):
        kernel.cpu.start_window()
        kernel.net.flush_rx_batch()
        assert kernel.cpu.window_busy_ns() == 0


class TestSkbPool:
    def test_alloc_is_zero_copy_view_of_arena(self, kernel):
        pool = SkbPool(kernel, buf_size=256, count=4)
        skb = pool.alloc(100)
        assert type(skb.data) is memoryview
        skb.data[0:4] = b"\xAA\xBB\xCC\xDD"
        # The write landed in the pooled DMA arena, not a private copy.
        assert bytes(pool.region.data[0:4]) == b"\xAA\xBB\xCC\xDD"
        assert pool.hits == 1

    def test_recycle_returns_slot_fifo(self, kernel):
        pool = SkbPool(kernel, buf_size=64, count=2)
        a = pool.alloc(10)
        b = pool.alloc(10)
        slot_a = a._slot
        a.recycle()
        b.recycle()
        # FIFO: the next two allocs reuse slots in recycle order.
        c = pool.alloc(10)
        assert c._slot == slot_a
        assert pool.recycles == 2

    def test_recycle_is_idempotent(self, kernel):
        pool = SkbPool(kernel, buf_size=64, count=2)
        skb = pool.alloc(10)
        skb.recycle()
        skb.recycle()  # second call is a no-op, slot not double-freed
        assert len(pool._free) == 2
        assert pool.recycles == 1

    def test_exhaustion_falls_back_to_private_buffer(self, kernel):
        pool = SkbPool(kernel, buf_size=64, count=2)
        skbs = [pool.alloc(10) for _ in range(3)]
        assert pool.hits == 2
        assert pool.misses == 1
        assert skbs[2]._pool is None  # fallback: recycle is a no-op
        skbs[2].recycle()
        assert len(pool._free) == 0

    def test_oversize_request_is_a_miss(self, kernel):
        pool = SkbPool(kernel, buf_size=64, count=2)
        skb = pool.alloc(1500)
        assert pool.misses == 1
        assert len(skb) == 1500
        assert pool.hit_rate == 0.0

    def test_hit_rate(self, kernel):
        pool = SkbPool(kernel, buf_size=2048, count=8)
        for _ in range(6):
            pool.alloc(100).recycle()
        pool.alloc(4096)  # miss
        assert pool.hit_rate == pytest.approx(6 / 7)

    def test_non_pooled_skb_recycle_noop(self, kernel):
        from repro.kernel.netdev import SkBuff

        skb = SkBuff(b"abc")
        skb.recycle()  # must not raise
        assert skb.tobytes() == b"abc"

    def test_core_pool_is_lazy_and_shared(self, kernel):
        assert kernel.net.skb_pool is None
        pool = kernel.net.get_skb_pool()
        assert kernel.net.get_skb_pool() is pool
