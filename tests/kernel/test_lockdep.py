"""Lockdep canaries: each seeded violation class must be detected, and
a clean traced netperf run must finish with zero reports."""

import pytest

from repro.kernel import Mutex, SpinLock
from repro.kernel.context import HARDIRQ
from repro.kernel.errors import SleepInAtomicError


@pytest.fixture
def lockdep_kernel(kernel):
    kernel.enable_lockdep()
    return kernel


def test_enable_is_idempotent(lockdep_kernel):
    first = lockdep_kernel.lockdep
    assert lockdep_kernel.enable_lockdep() is first
    assert lockdep_kernel.context.lockdep is first


def test_sleep_under_spinlock_reported(lockdep_kernel):
    spin = SpinLock(lockdep_kernel, name="canary-spin")
    mutex = Mutex(lockdep_kernel, name="canary-mutex")
    spin.lock()
    with pytest.raises(SleepInAtomicError):
        mutex.lock()
    spin.unlock()
    reports = lockdep_kernel.lockdep.by_kind("sleep-in-atomic")
    assert len(reports) == 1
    assert "canary-spin" in reports[0].message
    # The violating path repeated still yields one deduplicated report.
    spin.lock()
    with pytest.raises(SleepInAtomicError):
        mutex.lock()
    spin.unlock()
    assert len(lockdep_kernel.lockdep.by_kind("sleep-in-atomic")) == 1


def test_msleep_under_spinlock_reported(lockdep_kernel):
    spin = SpinLock(lockdep_kernel, name="msleep-spin")
    with spin:
        with pytest.raises(SleepInAtomicError):
            lockdep_kernel.msleep(1)
    assert lockdep_kernel.lockdep.by_kind("sleep-in-atomic")


def test_ab_ba_order_inversion_reported(lockdep_kernel):
    a = SpinLock(lockdep_kernel, name="lock-a")
    b = SpinLock(lockdep_kernel, name="lock-b")
    with a:
        with b:
            pass
    assert not lockdep_kernel.lockdep.reports
    with b:
        with a:
            pass
    reports = lockdep_kernel.lockdep.by_kind("lock-order-inversion")
    assert len(reports) == 1
    assert "lock-a" in reports[0].message
    assert "lock-b" in reports[0].message
    # Repeats of the same inversion stay a single report.
    with b:
        with a:
            pass
    assert len(lockdep_kernel.lockdep.by_kind("lock-order-inversion")) == 1


def test_three_lock_cycle_reported(lockdep_kernel):
    a = SpinLock(lockdep_kernel, name="cycle-a")
    b = SpinLock(lockdep_kernel, name="cycle-b")
    c = SpinLock(lockdep_kernel, name="cycle-c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    assert not lockdep_kernel.lockdep.reports
    with c:
        with a:
            pass
    assert lockdep_kernel.lockdep.by_kind("lock-order-inversion")


def test_mutex_in_hardirq_reported(lockdep_kernel):
    kernel = lockdep_kernel
    mutex = Mutex(kernel, name="irq-mutex")
    failures = []

    def handler(irq, dev_id):
        try:
            mutex.lock()
        except SleepInAtomicError as exc:
            failures.append(exc)
        return 1

    kernel.request_irq(5, handler, "canary")
    kernel.irq.raise_irq(5)
    assert failures, "mutex_lock in hardirq must raise"
    reports = kernel.lockdep.by_kind("mutex-in-hardirq")
    assert len(reports) == 1
    assert "irq-mutex" in reports[0].message


def test_irq_unsafe_spinlock_reported(lockdep_kernel):
    kernel = lockdep_kernel
    lock = SpinLock(kernel, name="shared-lock")

    def handler(irq, dev_id):
        with lock:
            pass
        return 1

    kernel.request_irq(6, handler, "canary")
    kernel.irq.raise_irq(6)          # lock observed in hardirq
    with lock:                       # ... and with irqs enabled
        pass
    assert kernel.lockdep.by_kind("irq-unsafe-lock")


def test_irqsave_spinlock_is_clean(lockdep_kernel):
    """The correct pattern -- irqsave outside, plain inside the handler
    (irqs are masked there) -- must not be reported."""
    kernel = lockdep_kernel
    lock = SpinLock(kernel, name="safe-lock")

    def handler(irq, dev_id):
        with lock:
            pass
        return 1

    kernel.request_irq(7, handler, "canary")
    kernel.irq.raise_irq(7)
    lock.lock_irqsave()
    lock.unlock_irqrestore()
    assert not lockdep_kernel.lockdep.reports


def test_hardirq_entry_with_irq_lock_held_reported(lockdep_kernel):
    """Holding a handler's lock with irqs enabled when the irq fires is
    the canonical single-CPU deadlock; the entry check reports it."""
    kernel = lockdep_kernel
    lock = SpinLock(kernel, name="entry-lock")

    def handler(irq, dev_id):
        if not lock.held:  # a real handler would spin; here it would raise
            with lock:
                pass
        return 1

    kernel.request_irq(8, handler, "canary")
    kernel.irq.raise_irq(8)  # teaches lockdep the lock is irq-taken
    kernel.lockdep.reports.clear()
    kernel.lockdep._seen.clear()
    with lock:
        kernel.irq.raise_irq(8)
    assert kernel.lockdep.by_kind("irq-unsafe-lock")


def test_spinlock_context_still_enforced(lockdep_kernel):
    """Lockdep observes; the hard single-CPU rules still raise."""
    from repro.kernel.errors import DeadlockError

    spin = SpinLock(lockdep_kernel, name="dead")
    spin.lock()
    with pytest.raises(DeadlockError):
        spin.lock()
    spin.unlock()


def test_clean_traced_netperf_run_has_zero_reports():
    """Acceptance: a full traced netperf over the decaf NAPI datapath,
    with lockdep enabled, completes with an empty report list."""
    from repro.workloads import make_e1000_rig, netperf_send

    rig = make_e1000_rig(decaf=True)
    lockdep = rig.kernel.enable_lockdep()
    rig.insmod()
    result = netperf_send(rig, duration_s=0.2, trace=True)
    assert result.packets > 0
    assert lockdep.checks > 0, "lockdep must actually observe the run"
    assert lockdep.reports == []


def test_clean_legacy_rtl8139_run_has_zero_reports():
    from repro.workloads import make_8139too_rig, netperf_send

    rig = make_8139too_rig(decaf=False)
    lockdep = rig.kernel.enable_lockdep()
    rig.insmod()
    result = netperf_send(rig, duration_s=0.05)
    assert result.packets > 0
    assert lockdep.checks > 0
    assert lockdep.reports == []
