"""Memory manager and module loader."""

import pytest

from repro.kernel import GFP_ATOMIC, KernelModule, MemoryLeakError, SimulationError


class TestKmalloc:
    def test_alloc_free(self, kernel):
        alloc = kernel.memory.kmalloc(128, owner="t")
        assert alloc is not None
        assert kernel.memory.used_bytes == 128
        kernel.memory.kfree(alloc)
        assert kernel.memory.used_bytes == 0

    def test_double_free_detected(self, kernel):
        alloc = kernel.memory.kmalloc(64)
        kernel.memory.kfree(alloc)
        with pytest.raises(SimulationError):
            kernel.memory.kfree(alloc)

    def test_kfree_none_is_noop(self, kernel):
        kernel.memory.kfree(None)

    def test_fault_injection(self, kernel):
        kernel.memory.fail_next = 2
        assert kernel.memory.kmalloc(64) is None
        assert kernel.memory.kmalloc(64, GFP_ATOMIC) is None
        assert kernel.memory.kmalloc(64) is not None

    def test_exhaustion(self):
        from repro.kernel import make_kernel

        kernel = make_kernel()
        kernel.memory._total = 1000
        assert kernel.memory.kmalloc(2000) is None

    def test_live_allocations_by_owner(self, kernel):
        a = kernel.memory.kmalloc(10, owner="drv-a")
        kernel.memory.kmalloc(10, owner="drv-b")
        live = kernel.memory.live_allocations(owner="drv-a")
        assert live == [a]


class TestDma:
    def test_regions_do_not_overlap(self, kernel):
        r1 = kernel.memory.dma_alloc_coherent(8192)
        r2 = kernel.memory.dma_alloc_coherent(4096)
        assert r1.dma_addr + len(r1.data) <= r2.dma_addr

    def test_dma_find_interior_address(self, kernel):
        region = kernel.memory.dma_alloc_coherent(8192)
        found, offset = kernel.memory.dma_find(region.dma_addr + 5000)
        assert found is region
        assert offset == 5000

    def test_dma_find_miss(self, kernel):
        found, offset = kernel.memory.dma_find(0x123)
        assert found is None

    def test_device_visibility(self, kernel):
        """A DMA region is shared memory: device-side writes are seen
        by the 'CPU' and vice versa."""
        region = kernel.memory.dma_alloc_coherent(64)
        region.data[0:4] = b"ABCD"
        found, off = kernel.memory.dma_find(region.dma_addr)
        assert bytes(found.data[0:4]) == b"ABCD"

    def test_free(self, kernel):
        region = kernel.memory.dma_alloc_coherent(4096)
        kernel.memory.dma_free_coherent(region)
        assert kernel.memory.dma_find(region.dma_addr)[0] is None
        with pytest.raises(SimulationError):
            kernel.memory.dma_free_coherent(region)


class _OkModule(KernelModule):
    name = "ok"

    def init_module(self, kernel):
        kernel.consume(1_000_000)
        return 0

    def cleanup_module(self, kernel):
        pass


class _LeakyModule(KernelModule):
    name = "leaky"

    def init_module(self, kernel):
        self.alloc = kernel.memory.kmalloc(64, owner="leaky")
        return 0

    def cleanup_module(self, kernel):
        pass  # forgets to free


class TestModuleLoader:
    def test_insmod_measures_latency(self, kernel):
        assert kernel.modules.insmod(_OkModule()) == 0
        latency = kernel.modules.last_init_latency_ns
        assert latency >= 1_000_000 + kernel.costs.insmod_base_ns

    def test_double_insmod_busy(self, kernel):
        from repro.kernel.errors import EBUSY

        kernel.modules.insmod(_OkModule())
        assert kernel.modules.insmod(_OkModule()) == -EBUSY

    def test_rmmod(self, kernel):
        kernel.modules.insmod(_OkModule())
        kernel.modules.rmmod("ok")
        assert "ok" not in kernel.modules.loaded

    def test_rmmod_detects_leaks(self, kernel):
        kernel.modules.insmod(_LeakyModule())
        with pytest.raises(MemoryLeakError):
            kernel.modules.rmmod("leaky")

    def test_rmmod_leak_check_optional(self, kernel):
        kernel.modules.insmod(_LeakyModule())
        kernel.modules.rmmod("leaky", check_leaks=False)
