"""PCI bus, I/O space, network core, sound core, USB core, input core."""

import pytest

from repro.kernel import (
    NETDEV_TX_OK,
    NetDevice,
    PciBar,
    PciDriver,
    PciFunction,
    SkBuff,
    SimulationError,
)


class _Regs:
    """Trivial I/O handler: a register file backed by a dict."""

    def __init__(self):
        self.values = {}

    def read(self, offset, size):
        return self.values.get(offset, 0)

    def write(self, offset, value, size):
        self.values[offset] = value


def _function(io_base=0x1000, mmio=False, vendor=0x1234, device=0x5678):
    return PciFunction(
        vendor_id=vendor, device_id=device, irq=5,
        bars=[PciBar(io_base, 0x100, is_mmio=mmio, handler=_Regs())],
    )


class TestPciBus:
    def test_probe_on_register(self, kernel):
        func = _function()
        kernel.pci.add_function(func)
        probed = []

        class Driver(PciDriver):
            name = "t"
            id_table = ((0x1234, 0x5678),)

            def probe(self, k, pdev):
                probed.append(pdev)
                return 0

            def remove(self, k, pdev):
                pass

        assert kernel.pci.register_driver(Driver()) == 1
        assert probed == [func]
        assert func.driver is not None

    def test_probe_on_hotplug(self, kernel):
        probed = []

        class Driver(PciDriver):
            name = "t"
            id_table = ((0x1234, 0x5678),)

            def probe(self, k, pdev):
                probed.append(pdev)
                return 0

            def remove(self, k, pdev):
                pass

        kernel.pci.register_driver(Driver())
        func = _function()
        kernel.pci.add_function(func)
        assert probed == [func]

    def test_no_match_no_probe(self, kernel):
        class Driver(PciDriver):
            name = "t"
            id_table = ((0x9999, 0x9999),)

            def probe(self, k, pdev):
                raise AssertionError("should not probe")

            def remove(self, k, pdev):
                pass

        kernel.pci.add_function(_function())
        assert kernel.pci.register_driver(Driver()) == 0

    def test_enable_sets_command_bits(self, kernel):
        func = _function()
        kernel.pci.add_function(func)
        kernel.pci.enable_device(func)
        assert func.enabled
        assert kernel.pci.read_config_word(func, 0x04) & 0x3

    def test_request_release_regions(self, kernel):
        func = _function()
        kernel.pci.add_function(func)
        assert kernel.pci.request_regions(func, "t") == 0
        # Double-claim of the same range fails.
        func2 = _function()
        kernel.pci.add_function(func2)
        assert kernel.pci.request_regions(func2, "t2") != 0
        kernel.pci.release_regions(func)
        assert kernel.pci.request_regions(func2, "t2") == 0

    def test_config_space_roundtrip(self, kernel):
        func = _function()
        kernel.pci.write_config_dword(func, 0x40, 0xDEADBEEF)
        assert kernel.pci.read_config_dword(func, 0x40) == 0xDEADBEEF

    def test_vendor_device_in_config(self, kernel):
        func = _function()
        assert kernel.pci.read_config_word(func, 0x00) == 0x1234
        assert kernel.pci.read_config_word(func, 0x02) == 0x5678


class TestIoSpace:
    def test_port_roundtrip(self, kernel):
        func = _function(io_base=0x2000)
        kernel.pci.add_function(func)
        kernel.pci.request_regions(func, "t")
        kernel.io.outl(0xCAFEBABE, 0x2010)
        assert kernel.io.inl(0x2010) == 0xCAFEBABE
        assert kernel.io.inb(0x2010) == 0xBE & 0xFF

    def test_unclaimed_access_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.io.inb(0x9999)

    def test_access_advances_clock(self, kernel):
        func = _function(io_base=0x2000)
        kernel.pci.add_function(func)
        kernel.pci.request_regions(func, "t")
        t0 = kernel.now_ns()
        kernel.io.inb(0x2000)
        assert kernel.now_ns() == t0 + kernel.costs.port_io_ns

    def test_mmio_cheaper_than_port(self, kernel):
        assert kernel.costs.mmio_ns < kernel.costs.port_io_ns


class TestNetworkCore:
    def _dev(self, kernel):
        dev = NetDevice(kernel, "eth%d")
        dev.open = lambda d: 0
        dev.stop = lambda d: 0
        sent = []
        dev.hard_start_xmit = lambda skb, d: sent.append(skb) or NETDEV_TX_OK
        dev._sent = sent
        return dev

    def test_register_names_device(self, kernel):
        dev = self._dev(kernel)
        assert kernel.net.register_netdev(dev) == 0
        assert dev.name == "eth0"
        dev2 = self._dev(kernel)
        dev2.name = "eth%d"
        kernel.net.register_netdev(dev2)
        assert dev2.name == "eth1"

    def test_xmit_requires_up(self, kernel):
        dev = self._dev(kernel)
        kernel.net.register_netdev(dev)
        assert kernel.net.dev_queue_xmit(dev, SkBuff(b"x")) < 0
        kernel.net.dev_open(dev)
        dev.netif_start_queue()
        assert kernel.net.dev_queue_xmit(dev, SkBuff(b"x")) == NETDEV_TX_OK

    def test_stopped_queue_returns_busy(self, kernel):
        from repro.kernel import NETDEV_TX_BUSY

        dev = self._dev(kernel)
        kernel.net.register_netdev(dev)
        kernel.net.dev_open(dev)
        dev.netif_stop_queue()
        assert kernel.net.dev_queue_xmit(dev, SkBuff(b"x")) == NETDEV_TX_BUSY

    def test_netif_rx_counts_and_sinks(self, kernel):
        dev = self._dev(kernel)
        got = []
        kernel.net.rx_sink = lambda d, s: got.append((d, s))
        skb = SkBuff(b"hello")
        kernel.net.netif_rx(dev, skb)
        assert kernel.net.stack_rx_packets == 1
        assert got[0][1] is skb

    def test_carrier_and_wakeups(self, kernel):
        dev = self._dev(kernel)
        dev.netif_carrier_on()
        assert dev.netif_carrier_ok()
        dev.netif_stop_queue()
        dev.netif_wake_queue()
        assert dev.tx_queue_wakeups == 1


class TestSoundCore:
    def test_card_registration(self, kernel):
        from repro.kernel import SndCard

        card = SndCard(kernel, "t")
        assert kernel.sound.snd_card_register(card) == 0
        assert card in kernel.sound.cards
        kernel.sound.snd_card_free(card)
        assert card not in kernel.sound.cards

    def test_ctl_add_rejects_duplicates(self, kernel):
        from repro.kernel import SndCard

        card = SndCard(kernel, "t")
        assert kernel.sound.snd_ctl_add(card, "Master") == 0
        assert kernel.sound.snd_ctl_add(card, "Master") != 0

    def test_spinlock_library_forbids_sleeping_trigger(self, kernel):
        """The stock sound library holds a spinlock across driver ops:
        a trigger that sleeps crashes -- the paper's section 3.1.3."""
        from repro.kernel import SleepInAtomicError, SndCard

        card = SndCard(kernel, "t")
        pcm = card.new_pcm("p")

        class Ops:
            @staticmethod
            def trigger(substream, cmd):
                kernel.msleep(1)
                return 0

        pcm.playback.ops = Ops
        with pytest.raises(SleepInAtomicError):
            kernel.sound.pcm_trigger(pcm.playback, 1)

    def test_mutex_library_allows_sleeping_trigger(self, mutex_kernel):
        from repro.kernel import SndCard

        kernel = mutex_kernel
        card = SndCard(kernel, "t")
        pcm = card.new_pcm("p")

        class Ops:
            @staticmethod
            def trigger(substream, cmd):
                kernel.msleep(1)
                return 0

        pcm.playback.ops = Ops
        assert kernel.sound.pcm_trigger(pcm.playback, 1) == 0


class TestInputCore:
    def test_serio_byte_delivery_in_irq_context(self, kernel):
        port = kernel.input.new_serio_port()
        seen = []

        class Model:
            def handle_byte(self, p, byte):
                p.deliver(byte ^ 0xFF)

        port.attach_device(Model())
        port.open(lambda p, byte, flags: seen.append(
            (byte, kernel.context.in_irq())))
        port.write(0x0F)
        assert seen == [(0xF0, True)]

    def test_input_dev_event_batching(self, kernel):
        from repro.kernel.input import EV_REL, REL_X, InputDev

        dev = InputDev(kernel, "t")
        batches = []
        dev.sink = lambda evs: batches.append(evs)
        dev.input_report_rel(REL_X, 5)
        dev.input_report_rel(REL_X, 0)  # zero motion suppressed
        dev.input_sync()
        assert batches == [[(EV_REL, REL_X, 5)]]
        assert dev.events_reported == 1
