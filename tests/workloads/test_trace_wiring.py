"""trace= plumbing through all four workload rigs.

Every Table 3 workload accepts ``trace=``: a path exports a
Perfetto-loadable JSON, the result carries ``trace_summary``, and the
tracer is uninstalled afterwards (the kernel returns to the zero-cost
path).
"""

import json

from repro.workloads import (
    make_8139too_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
    mpg123_play,
    move_and_click,
    netperf_send,
    tar_to_flash,
)


def check_traced(kernel, result, path):
    assert kernel.tracer is None, "tracer must be uninstalled at finish"
    assert result.trace_summary["events"] > 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"], "export must hold events"
    assert doc["otherData"]["trace_summary"] == result.trace_summary
    return doc


class TestTraceWiring:
    def test_netperf(self, tmp_path):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        path = tmp_path / "netperf.json"
        result = netperf_send(rig, duration_s=0.05, trace=str(path))
        doc = check_traced(rig.kernel, result, path)
        spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
        assert any(ev["cat"] == "irq" for ev in spans)

    def test_mpg123(self, tmp_path):
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        path = tmp_path / "mpg123.json"
        result = mpg123_play(rig, duration_s=0.2, trace=str(path))
        check_traced(rig.kernel, result, path)

    def test_mouse(self, tmp_path):
        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        path = tmp_path / "mouse.json"
        result = move_and_click(rig, duration_s=0.2, trace=str(path))
        check_traced(rig.kernel, result, path)

    def test_tar_usb(self, tmp_path):
        rig = make_uhci_rig(decaf=True)
        rig.insmod()
        path = tmp_path / "tar.json"
        result = tar_to_flash(rig, archive_bytes=64 * 1024, trace=str(path))
        check_traced(rig.kernel, result, path)

    def test_untraced_has_empty_summary(self):
        rig = make_8139too_rig()
        rig.insmod()
        result = netperf_send(rig, duration_s=0.05)
        assert result.trace_summary == {}


class TestRowFormat:
    def test_row_compacts_pkts_per_poll_and_surfaces_extras(self):
        from repro.workloads.result import WorkloadResult

        r = WorkloadResult(
            name="w",
            napi_pkts_per_poll={1: 10, 4: 50, 64: 3},
            extra={"transactions": 7, "rig": object(), "note": "ok"},
        )
        row = r.row()
        assert row["napi_pkts_per_poll"] == "p50=4/max=64"
        assert row["transactions"] == 7
        assert row["note"] == "ok"
        assert "rig" not in row  # non-scalar extras stay out

    def test_row_dash_when_no_polls(self):
        from repro.workloads.result import WorkloadResult

        assert WorkloadResult(name="w").row()["napi_pkts_per_poll"] == "-"

    def test_extra_cannot_shadow_core_column(self):
        from repro.workloads.result import WorkloadResult

        r = WorkloadResult(name="w", extra={"crossings": 999})
        assert r.row()["crossings"] == 0  # core field wins
