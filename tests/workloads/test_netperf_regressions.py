"""Regression: netperf_send must not busy-spin on a wedged device.

If a driver stops its transmit queue and the event queue is empty,
nothing can ever restart the queue.  The old loop called
``events.peek_time()``, got None, ran to ``end_ns`` and reported the hang
as a quiet mostly-idle run.  It must raise instead.
"""

import pytest

from repro.kernel import NETDEV_TX_OK, make_kernel
from repro.kernel.netdev import NetDevice
from repro.workloads.netperf import netperf_send


class _FakeRig:
    """Just enough of a Rig for netperf_*: one kernel, one netdev."""

    def __init__(self, kernel, dev):
        self.kernel = kernel
        self.dev = dev
        self.init_latency_ns = 0
        self.supervisor = None

    def netdev(self):
        return self.dev

    def crossings(self):
        return 0

    def lang_crossings(self):
        return 0

    def deferred_stats(self):
        return {"calls": 0, "coalesced": 0, "flushes": 0}

    def fault_stats(self):
        return (0, 0, 0)

    def recovery_pending(self):
        sup = self.supervisor
        return bool(sup is not None and sup.recovery_pending())


def _make_rig(xmit):
    kernel = make_kernel()
    dev = NetDevice(kernel, "eth0")
    dev.hard_start_xmit = xmit
    kernel.net.register_netdev(dev)
    dev.netif_start_queue()
    return _FakeRig(kernel, dev)


class TestWedgedQueue:
    def test_stopped_queue_with_no_events_raises(self):
        """A driver that stops the queue and loses its completion."""
        state = {}

        def xmit(skb, dev):
            dev.netif_stop_queue()  # ...and no event will ever wake it
            return NETDEV_TX_OK

        rig = _make_rig(xmit)
        state["rig"] = rig
        with pytest.raises(RuntimeError, match="wedged"):
            netperf_send(rig, duration_s=0.01)

    def test_tx_busy_with_no_events_raises(self):
        """NETDEV_TX_BUSY with nothing pending is the same dead end."""
        from repro.kernel import NETDEV_TX_BUSY

        def xmit(skb, dev):
            return NETDEV_TX_BUSY

        rig = _make_rig(xmit)
        with pytest.raises(RuntimeError, match="wedged"):
            netperf_send(rig, duration_s=0.01)

    def test_stopped_queue_with_pending_wake_completes(self):
        """Flow control with a live completion event works as before."""
        sent = {"n": 0}

        def xmit(skb, dev):
            sent["n"] += 1
            dev.netif_stop_queue()
            dev._kernel.events.schedule_after(
                10_000, dev.netif_wake_queue, name="txdone")
            return NETDEV_TX_OK

        rig = _make_rig(xmit)
        result = netperf_send(rig, duration_s=0.001)
        assert result.packets == sent["n"]
        assert result.packets > 10  # ~one packet per 10us completion
