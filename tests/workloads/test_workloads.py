"""Workloads: Table 3's measurement machinery (short virtual runs)."""

import pytest

from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
    mpg123_play,
    move_and_click,
    netperf_recv,
    netperf_send,
    netperf_udp_rr,
    tar_to_flash,
)


class TestNetperfSend:
    def test_e1000_send_saturates_gigabit(self):
        rig = make_e1000_rig()
        rig.insmod()
        result = netperf_send(rig, duration_s=0.3)
        assert result.throughput_mbps > 900
        assert 0.02 < result.cpu_utilization < 0.5

    def test_8139too_send_saturates_100m(self):
        rig = make_8139too_rig()
        rig.insmod()
        result = netperf_send(rig, duration_s=0.3)
        assert result.throughput_mbps > 90
        assert result.throughput_mbps <= 100

    def test_decaf_matches_native_throughput(self):
        """Table 3's headline: relative performance ~= 1.00."""
        native = make_e1000_rig(decaf=False)
        native.insmod()
        rn = netperf_send(native, duration_s=0.3)
        decaf = make_e1000_rig(decaf=True)
        decaf.insmod()
        rd = netperf_send(decaf, duration_s=0.3)
        assert rd.throughput_mbps / rn.throughput_mbps > 0.99

    def test_data_path_does_not_invoke_decaf(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        result = netperf_send(rig, duration_s=0.3)
        # Link-watch may fire 0 times in 0.3 s; data path itself: zero.
        assert result.decaf_invocations <= 1


class TestNetperfRecv:
    def test_e1000_recv_near_line_rate(self):
        rig = make_e1000_rig()
        rig.insmod()
        result = netperf_recv(rig, duration_s=0.3)
        assert result.throughput_mbps > 850

    def test_recv_costs_more_cpu_than_send(self):
        """Paper: E1000 recv 20% vs send 2.8% -- receive pays the
        copies."""
        rig_s = make_e1000_rig()
        rig_s.insmod()
        send = netperf_send(rig_s, duration_s=0.3)
        rig_r = make_e1000_rig()
        rig_r.insmod()
        recv = netperf_recv(rig_r, duration_s=0.3)
        assert recv.cpu_utilization > send.cpu_utilization

    def test_no_packets_dropped_at_line_rate(self):
        rig = make_e1000_rig()
        rig.insmod()
        netperf_recv(rig, duration_s=0.3)
        assert rig.device.rx_no_buffer == 0


class TestNetperfUdp:
    def test_udp_rr_completes_transactions(self):
        rig = make_e1000_rig()
        rig.insmod()
        result = netperf_udp_rr(rig, duration_s=0.2)
        assert result.extra["transactions"] > 100


class TestMpg123:
    def test_realtime_bound(self):
        rig = make_ens1371_rig()
        rig.insmod()
        result = mpg123_play(rig, duration_s=3.0)
        # Playback of N seconds takes ~N virtual seconds.
        assert result.duration_s == pytest.approx(3.0, rel=0.2)
        assert result.cpu_utilization < 0.05

    def test_decaf_invocations_only_at_start_stop(self):
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        result = mpg123_play(rig, duration_s=3.0)
        assert 4 <= result.decaf_invocations <= 20
        assert result.extra["periods_elapsed"] > 60


class TestTarUsb:
    def test_bandwidth_limited_by_usb11(self):
        rig = make_uhci_rig()
        rig.insmod()
        result = tar_to_flash(rig, archive_bytes=256 * 1024)
        # USB 1.1 bulk moves ~1.2 MB/s; 256 KB takes ~0.2 s or more.
        assert result.duration_s > 0.15
        assert result.extra["disk_blocks_written"] >= 512

    def test_decaf_duration_matches_native(self):
        native = make_uhci_rig()
        native.insmod()
        rn = tar_to_flash(native, archive_bytes=128 * 1024)
        decaf = make_uhci_rig(decaf=True)
        decaf.insmod()
        rd = tar_to_flash(decaf, archive_bytes=128 * 1024)
        assert rd.duration_s == pytest.approx(rn.duration_s, rel=0.05)
        assert rd.decaf_invocations == 0


class TestMouse:
    def test_events_flow(self):
        rig = make_psmouse_rig()
        rig.insmod()
        result = move_and_click(rig, duration_s=5)
        assert result.extra["input_events"] > 100
        assert result.cpu_utilization < 0.01

    def test_decaf_not_invoked_by_movement(self):
        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        result = move_and_click(rig, duration_s=5)
        assert result.decaf_invocations == 0


class TestInitLatency:
    @pytest.mark.parametrize("make_rig", [
        make_8139too_rig, make_e1000_rig, make_ens1371_rig,
        make_uhci_rig, make_psmouse_rig,
    ], ids=["8139too", "e1000", "ens1371", "uhci", "psmouse"])
    def test_decaf_init_slower(self, make_rig):
        native = make_rig(decaf=False)
        native.insmod()
        decaf = make_rig(decaf=True)
        decaf.insmod()
        assert decaf.init_latency_ns > 2 * native.init_latency_ns
