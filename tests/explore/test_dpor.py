"""Soundness of the trace-theoretic enumeration in repro.explore.dpor.

The load-bearing claims, each verified against brute force at small n:

* ``explored + pruned == total`` -- nothing is silently dropped.
* The canonical filter admits **exactly one** representative per
  Mazurkiewicz class (the class being the closure of the order under
  adjacent independent swaps, computed by BFS).
* Pruning is exact: the classes of the canonical orders partition the
  full ``n!`` permutation space.
"""

import random
from itertools import permutations
from math import factorial

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.dpor import (
    DependencyRelation,
    canonical_orders,
    enumerate_orders,
    is_canonical,
    trace_class,
)

RESOURCES = ["lock:rtnl", "lock:tx", "irq:11", "irq:12", "serio:0", "chan"]


def _random_deps(rng, n):
    footprints = [
        {rng.choice(RESOURCES) for _ in range(rng.randrange(3))}
        for _ in range(n)
    ]
    return DependencyRelation(footprints)


class TestEnumerationInvariant:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 5))
    def test_explored_plus_pruned_is_total(self, seed, n):
        deps = _random_deps(random.Random(seed), n)
        result = enumerate_orders(deps)
        assert result.explored + result.pruned == result.total
        assert result.total == factorial(n)
        assert result.explored == len(result.orders)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 5))
    def test_exactly_one_canonical_per_class(self, seed, n):
        deps = _random_deps(random.Random(seed), n)
        covered = set()
        for order in canonical_orders(deps):
            cls = trace_class(order, deps)
            # This order is the only canonical member of its class, and
            # the lexicographically least one.
            assert sum(1 for w in cls if is_canonical(w, deps)) == 1
            assert order == min(cls)
            assert not (cls & covered)  # classes are disjoint
            covered |= cls
        # ... and together the classes cover every permutation.
        assert len(covered) == factorial(n)


class TestKnownConfigurations:
    def test_two_dependent_groups(self):
        # Events {0,1,3,4} share an irq line, {2,5} share the channel.
        # Classes are determined by the relative order within each
        # group: 4! * 2! = 48, each of size C(6,2) = 15.
        fps = [{"irq:11"}, {"irq:11"}, {"chan"},
               {"irq:11"}, {"irq:11"}, {"chan"}]
        deps = DependencyRelation(fps)
        result = enumerate_orders(deps)
        assert result.explored == factorial(4) * factorial(2) == 48
        assert result.total == factorial(6) == 720
        for order in result.orders[:5]:
            assert len(trace_class(order, deps)) == 15

    def test_all_independent_collapses_to_one(self):
        deps = DependencyRelation([{"irq:%d" % i} for i in range(5)])
        result = enumerate_orders(deps)
        assert result.explored == 1
        assert result.orders == [tuple(range(5))]
        assert result.ratio == factorial(5)

    def test_all_dependent_prunes_nothing(self):
        deps = DependencyRelation([{"chan"}] * 4)
        result = enumerate_orders(deps)
        assert result.explored == result.total == factorial(4)
        assert result.pruned == 0
        assert result.ratio == 1.0

    def test_single_event(self):
        result = enumerate_orders(DependencyRelation([{"chan"}]))
        assert (result.explored, result.pruned, result.total) == (1, 0, 1)


class TestDependencyRelation:
    def test_dependence_is_footprint_intersection(self):
        deps = DependencyRelation([{"lock:a", "irq:3"}, {"irq:3"}, {"chan"}])
        assert deps.dependent(0, 1)
        assert deps.independent(0, 2)
        assert deps.independent(1, 2)
        assert deps.shared(0, 1) == ["irq:3"]
        assert deps.dependent_pairs() == [(0, 1)]

    def test_empty_footprint_commutes_with_everything(self):
        deps = DependencyRelation([set(), {"chan"}, {"chan"}])
        assert deps.independent(0, 1)
        assert deps.independent(0, 2)
        assert deps.dependent(1, 2)
        # Only the relative order of the two chan events matters.
        assert enumerate_orders(deps).explored == 2
