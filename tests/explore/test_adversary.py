"""Adversarial-XPC containment: every mutation lands as errno/recovery.

The threat model: the user half is compromised and replays captured
crossings with mutated marshaled payloads.  The PR-4 boundary must
contain every mutation -- checked errno or supervised recovery -- never
a kernel-side unchecked exception, hang, or lockdep report.  CI runs the
full corpus over all five nuclei; here a bounded sweep keeps the same
zero-violation contract in tier-1, plus unit coverage of the corpus and
sampling mechanics.
"""

import pytest

from repro.core.xpc import XpcChannel
from repro.explore.adversary import (
    MUTATIONS,
    _attack_points,
    _probe_hook,
    run_adversary,
)

SAMPLE = bytes(range(64))


class TestMutationCorpus:
    def test_corpus_covers_the_issue_taxonomy(self):
        names = [name for name, _fn in MUTATIONS]
        assert any(n.startswith("trunc") for n in names)  # truncation
        assert "extend-garbage" in names  # oversized
        assert any(n.startswith("argc") for n in names)  # field counts
        assert "forge-identity" in names  # stale/forged handles
        assert any(n.startswith("stomp") for n in names)  # range stomps
        assert len(MUTATIONS) >= 15

    def test_mutations_are_pure_and_detectably_different(self):
        for name, fn in MUTATIONS:
            out = fn(SAMPLE)
            assert isinstance(out, bytes), name
            assert fn(SAMPLE) == out, "%s is not deterministic" % name
            assert out != SAMPLE, "%s is a no-op on a 64-byte wire" % name

    def test_short_payload_stomps_degrade_to_no_ops(self):
        # The sweep counts these as skipped; they must not corrupt the
        # payload some other way.
        for name, fn in MUTATIONS:
            out = fn(b"\x01\x02")
            assert isinstance(out, bytes), name
            assert len(out) <= 18, name  # extend-garbage adds 16


class TestAttackPointSampling:
    def test_under_cap_attacks_everything(self):
        assert _attack_points(5, 24) == [0, 1, 2, 3, 4]

    def test_over_cap_spreads_evenly(self):
        points = _attack_points(100, 10)
        assert len(points) == 10
        assert points[0] == 0
        assert points == sorted(set(points))
        assert all(0 <= p < 100 for p in points)
        assert points[-1] >= 90  # reaches the tail, not just the head

    def test_empty(self):
        assert _attack_points(0, 24) == []


class TestProbeHookSeam:
    def test_hook_installed_and_restored(self):
        assert XpcChannel.default_corrupt_hook is None
        fn = lambda data, direction: data  # noqa: E731
        with _probe_hook(fn):
            assert XpcChannel.default_corrupt_hook is fn
        assert XpcChannel.default_corrupt_hook is None

    def test_hook_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with _probe_hook(lambda data, direction: data):
                raise RuntimeError("boom")
        assert XpcChannel.default_corrupt_hook is None


class TestContainment:
    """Bounded live sweeps; CI runs the full-corpus versions."""

    def test_e1000_scenario_phase_contained(self):
        rep = run_adversary("e1000", depth=2, max_points=2, timeout_s=60)
        assert rep.attacks > 0
        assert rep.ok, rep.violations[:3]
        assert rep.contained == rep.attacks
        assert rep.crossings_captured > 0

    def test_psmouse_probe_phase_contained(self):
        # psmouse crosses XPC only during probe: the probe-phase sweep
        # is the only non-vacuous attack surface for it.
        rep = run_adversary("psmouse", depth=2, max_points=2, timeout_s=60)
        assert rep.probe_crossings_captured > 0
        assert rep.probe_crossings_attacked > 0
        assert rep.attacks > 0
        assert rep.ok, rep.violations[:3]
        # Probe-time containment means clean errno or clean absorb.
        assert rep.contained_errno + rep.contained_absorbed > 0

    def test_report_json_shape(self):
        rep = run_adversary("8139too", depth=2, max_points=1, timeout_s=60)
        data = rep.to_json()
        assert data["violations"] == []
        assert data["attacks"] == (data["contained_recovered"]
                                   + data["contained_errno"]
                                   + data["contained_absorbed"])
        assert data["corpus"] == [name for name, _fn in MUTATIONS]
