"""End-to-end exploration: footprints, pruning ratios, fault axis.

The acceptance criteria this file pins down:

* For the two NIC families the depth-6 schedule space is explored
  exhaustively modulo pruning -- ``explored + pruned == total`` -- with
  a pruning ratio of at least 3x.
* Enumerated fault placements are not vacuous: an ``xpc_raise`` armed
  at a reachable placement actually fires and is recovered.
* The W1C ack-register normalization that exploration surfaced (decaf
  timing legally coalesces two interrupt acks into one) is unit-tested
  directly against ``write_footprint``.
"""

import json

import pytest

from repro.conformance.runner import (
    ACK_W1C_REGS,
    DifferentialRunner,
    write_footprint,
)
from repro.conformance.scenario import Scenario
from repro.explore.dpor import DependencyRelation, enumerate_orders
from repro.explore.explorer import Explorer, base_events, write_report
from repro.explore.footprint import capture_footprints


@pytest.fixture(scope="module")
def runner():
    return DifferentialRunner()


def _depth6_enum(runner, driver):
    scenario = Scenario(driver, 0, "strict", base_events(driver, 6, 0))
    footprints, crossings = capture_footprints(runner, scenario)
    return enumerate_orders(DependencyRelation(footprints)), crossings


class TestPruningRatio:
    @pytest.mark.parametrize("driver", ["e1000", "8139too"])
    def test_depth6_at_least_3x_and_exhaustive(self, runner, driver):
        enum, _crossings = _depth6_enum(runner, driver)
        assert enum.explored + enum.pruned == enum.total == 720
        assert enum.ratio >= 3.0, (
            "%s: pruning ratio %.2f below the 3x acceptance floor"
            % (driver, enum.ratio))

    def test_footprints_are_stable_across_probes(self, runner):
        # The dependency relation feeds soundness: if footprints were
        # nondeterministic the canonical set would be meaningless.
        a, _ = _depth6_enum(runner, "e1000")
        b, _ = _depth6_enum(runner, "e1000")
        assert a.orders == b.orders


class TestExplorerRun:
    @pytest.fixture(scope="class")
    def report(self):
        return Explorer("e1000", depth=4, minimize=False).run()

    def test_state_accounting_invariant(self, report):
        assert (report.states_explored + report.states_pruned
                == report.states_total)
        # The explorer replays exactly the explored states.
        assert report.pairs_run == report.states_explored

    def test_no_findings_on_the_clean_pair(self, report):
        assert report.ok, json.dumps(report.findings[:2], indent=2)

    def test_fault_axis_reachable_not_vacuous(self, report):
        assert report.fault_reachable >= 1

    def test_report_serializes(self, report, tmp_path):
        path = write_report(report, str(tmp_path))
        data = json.loads(open(path).read())
        states = data["states"]
        assert (states["explored"] + states["pruned_redundant"]
                + states["pruned_unreachable"] == states["total"])
        assert data["driver"] == "e1000"

    def test_depth_bounds_enforced(self):
        with pytest.raises(ValueError):
            Explorer("e1000", depth=0)
        with pytest.raises(ValueError):
            Explorer("e1000", depth=9)


class TestFaultAxisFires:
    @pytest.mark.parametrize("driver", ["e1000", "8139too"])
    def test_enumerated_placement_fires_and_recovers(self, runner, driver):
        scenario = Scenario(
            driver, 0, "faulty", base_events(driver, 4, 0),
            faults=[{"kind": "xpc_raise", "at": 1}])
        obs = runner.run_one(scenario, decaf=True)
        counters = obs["counters"]
        assert counters["faults_fired"] >= 1
        assert counters["recoveries"] >= 1
        assert not counters["gave_up"]


class TestAckW1cNormalization:
    """Two acks of {ROK} and {TOK} vs one coalesced ack of {ROK|TOK}."""

    def test_8139_isr_is_registered_w1c(self):
        assert 0x3E in ACK_W1C_REGS["8139too"]

    def test_split_and_coalesced_acks_compare_equal(self):
        split = [("w", "8139too", 0x3E, 2, 0x0001),
                 ("w", "8139too", 0x3E, 2, 0x0004)]
        coalesced = [("w", "8139too", 0x3E, 2, 0x0005)]
        assert (write_footprint(split)["8139too"][0x3E]
                == write_footprint(coalesced)["8139too"][0x3E]
                == [0x0005])

    def test_non_ack_registers_keep_write_sequences(self):
        trace = [("w", "8139too", 0x44, 4, 1), ("w", "8139too", 0x44, 4, 2),
                 ("r", "8139too", 0x44, 4, 2)]
        assert write_footprint(trace)["8139too"][0x44] == [1, 2]

    def test_distinct_acked_bits_still_diverge(self):
        # Normalization is an OR-union, not an erasure: acking a bit
        # only one variant acked remains a divergence.
        a = [("w", "8139too", 0x3E, 2, 0x0001)]
        b = [("w", "8139too", 0x3E, 2, 0x0003)]
        assert (write_footprint(a)["8139too"][0x3E]
                != write_footprint(b)["8139too"][0x3E])
