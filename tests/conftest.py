"""Shared fixtures for the test suite."""

import random

import pytest

from repro.kernel import make_kernel

try:
    from hypothesis import settings as _hypothesis_settings

    # Determinism audit: property tests draw the same examples on every
    # run, so a red CI is reproducible locally with no shrink-database
    # or wall-clock coupling.
    _hypothesis_settings.register_profile("deterministic",
                                          derandomize=True, deadline=None)
    _hypothesis_settings.load_profile("deterministic")
except ImportError:  # pragma: no cover - hypothesis is optional
    pass


@pytest.fixture
def rng():
    """A seeded RNG: tests that need randomness share this instead of
    the global ``random`` module, so runs are reproducible."""
    return random.Random(0xDECAF)


@pytest.fixture
def kernel():
    """A fresh fully-wired simulated kernel."""
    return make_kernel()


@pytest.fixture
def mutex_kernel():
    """A kernel with the paper's mutex-based sound library."""
    return make_kernel(sound_use_mutex=True)


def xmit_all(rig, dev, frames):
    """Send every frame, pumping virtual time when the queue is full."""
    from repro.kernel import NETDEV_TX_OK, SkBuff

    for frame in frames:
        for _attempt in range(10_000):
            if not dev.netif_queue_stopped():
                if rig.kernel.net.dev_queue_xmit(dev, SkBuff(frame)) == NETDEV_TX_OK:
                    break
            nxt = rig.kernel.events.peek_time()
            if nxt is None:
                raise AssertionError("queue stuck with no pending events")
            rig.kernel.run_until(nxt)
        else:
            raise AssertionError("could not transmit after 10k attempts")
