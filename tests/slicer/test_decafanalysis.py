"""Future-work extensions: decaf-source analysis and entry-point specs."""

import pytest

from repro.drivers.decaf.e1000_decaf import E1000DecafDriver
from repro.drivers.decaf.e1000_hw_decaf import E1000Hw
from repro.drivers.decaf.ens1371_decaf import Ens1371DecafDriver
from repro.slicer import DRIVER_CONFIGS, build_call_graph, partition_driver
from repro.slicer.decafanalysis import (
    analyze_decaf_accesses,
    entry_point_spec,
    merge_accesses,
    parse_entry_point_spec,
)


class TestDecafSourceAnalysis:
    def test_finds_fields_the_decaf_code_touches(self):
        accesses = analyze_decaf_accesses(
            [E1000DecafDriver], {"adapter": "e1000_adapter"})
        adapter = accesses.get("e1000_adapter")
        assert adapter is not None
        # watchdog writes link_speed/link_duplex on the twin.
        assert "link_speed" in adapter.writes
        assert "link_duplex" in adapter.writes
        # init writes config_space.
        assert "config_space" in adapter.writes

    def test_follows_nested_chains(self):
        accesses = analyze_decaf_accesses(
            [E1000DecafDriver], {"adapter": "e1000_adapter"})
        hw = accesses.get("e1000_hw")
        assert hw is not None
        assert "mac_addr" in hw.all  # adapter.hw.mac_addr in set_mac

    def test_ens1371_chip_fields(self):
        accesses = analyze_decaf_accesses(
            [Ens1371DecafDriver], {"chip": "ensoniq"})
        chip = accesses.get("ensoniq")
        assert chip is not None
        assert "sctrl" in chip.writes
        assert "ctrl" in chip.writes
        assert "port" in chip.reads

    def test_merge_unions_reads_and_writes(self):
        from repro.core.marshal import FieldAccess

        a = {"s": FieldAccess(reads={"x"})}
        b = {"s": FieldAccess(writes={"y"}), "t": FieldAccess(reads={"z"})}
        merged = merge_accesses(a, b)
        assert merged["s"].reads == {"x"}
        assert merged["s"].writes == {"y"}
        assert merged["t"].reads == {"z"}

    def test_no_xvar_needed_for_visible_fields(self):
        """The point of the extension: a field only the decaf driver
        touches is picked up without a DECAF_XVAR annotation."""
        from repro.slicer.accessanalysis import analyze_field_accesses

        config = DRIVER_CONFIGS["e1000"]
        modules = config.load_modules()
        graph = build_call_graph(modules)
        partition = partition_driver(graph, config)
        legacy = analyze_field_accesses(modules, partition.user_funcs,
                                        config.type_hints)
        decaf = analyze_decaf_accesses(
            [E1000DecafDriver, E1000Hw],
            {"adapter": "e1000_adapter", "hw": "e1000_hw"})
        merged = merge_accesses(legacy, decaf)
        # watchdog_runs-adjacent fields written only in decaf code are
        # present after the merge.
        assert "link_speed" in merged["e1000_adapter"].writes


class TestEntryPointSpec:
    @pytest.fixture(scope="class")
    def spec(self):
        config = DRIVER_CONFIGS["8139too"]
        graph = build_call_graph(config.load_modules())
        partition = partition_driver(graph, config)
        return entry_point_spec("8139too", partition, config.type_hints)

    def test_sections_present(self, spec):
        assert "[user-entry-points]" in spec
        assert "[kernel-entry-points]" in spec
        assert "[marshaled-types]" in spec

    def test_entry_points_listed_with_types(self, spec):
        assert "rtl8139_open(dev)" in spec
        assert "rtl8139_chip_reset(tp: rtl8139_private)" in spec
        assert "linux.request_irq" in spec

    def test_round_trip(self, spec):
        parsed = parse_entry_point_spec(spec)
        assert "rtl8139_open" in parsed["user-entry-points"]
        assert "rtl8139_chip_reset" in parsed["kernel-entry-points"]
        assert "rtl8139_private" in parsed["marshaled-types"]

    def test_spec_covers_every_entry_point(self, spec):
        config = DRIVER_CONFIGS["8139too"]
        graph = build_call_graph(config.load_modules())
        partition = partition_driver(graph, config)
        parsed = parse_entry_point_spec(spec)
        assert set(parsed["user-entry-points"]) == partition.user_entry_points
