"""DriverSlicer: call graph, partitioning, access analysis, codegen."""

import ast

import pytest

from repro.drivers.legacy import e1000_hw, e1000_main, rtl8139
from repro.slicer import (
    DRIVER_CONFIGS,
    build_call_graph,
    conversion_report,
    count_annotations,
    generate_stubs,
    generate_xdr_spec,
    partition_driver,
    split_driver_source,
)
from repro.slicer.accessanalysis import analyze_field_accesses, build_marshal_plan
from repro.slicer.xdrgen import driver_struct_classes


@pytest.fixture(scope="module")
def rtl_graph():
    return build_call_graph([rtl8139])


@pytest.fixture(scope="module")
def rtl_partition(rtl_graph):
    return partition_driver(rtl_graph, DRIVER_CONFIGS["8139too"])


class TestCallGraph:
    def test_functions_discovered(self, rtl_graph):
        assert "rtl8139_open" in rtl_graph.functions
        assert "rtl8139_interrupt" in rtl_graph.functions

    def test_direct_call_edges(self, rtl_graph):
        callees = rtl_graph.callees("rtl8139_interrupt")
        assert "rtl8139_rx" in callees
        assert "rtl8139_tx_interrupt" in callees

    def test_kernel_api_edges(self, rtl_graph):
        info = rtl_graph.functions["rtl8139_open"]
        assert "request_irq" in info.kernel_calls
        assert "dma_alloc_coherent" in info.kernel_calls

    def test_reference_edges(self, rtl_graph):
        info = rtl_graph.functions["rtl8139_init_one"]
        assert "rtl8139_open" in info.references  # dev.open = rtl8139_open

    def test_loc_counted(self, rtl_graph):
        assert rtl_graph.functions["rtl8139_open"].loc > 5
        assert rtl_graph.total_loc() > 200

    def test_cross_module_calls(self):
        graph = build_call_graph([e1000_main, e1000_hw])
        info = graph.functions["e1000_probe"]
        assert "e1000_set_mac_type" in info.driver_calls

    def test_struct_classes_recorded(self, rtl_graph):
        assert "rtl8139_private" in rtl_graph.struct_classes


class TestPartition:
    def test_roots_in_kernel(self, rtl_partition):
        assert "rtl8139_interrupt" in rtl_partition.kernel_funcs
        assert "rtl8139_start_xmit" in rtl_partition.kernel_funcs

    def test_reachability_pulls_helpers(self, rtl_partition):
        # interrupt -> rx -> rx_err -> hw_start: all kernel.
        assert "rtl8139_rx" in rtl_partition.kernel_funcs
        assert "rtl8139_hw_start" in rtl_partition.kernel_funcs

    def test_management_code_moves_out(self, rtl_partition):
        for name in ("rtl8139_open", "rtl8139_close", "rtl8139_init_one",
                     "rtl8139_thread", "mdio_read"):
            assert name in rtl_partition.user_funcs, name

    def test_user_entry_points(self, rtl_partition):
        assert "rtl8139_open" in rtl_partition.user_entry_points
        assert "rtl8139_thread" in rtl_partition.user_entry_points

    def test_kernel_entry_points_include_api(self, rtl_partition):
        assert "linux.request_irq" in rtl_partition.kernel_entry_points
        assert "rtl8139_chip_reset" in rtl_partition.kernel_entry_points

    def test_unknown_root_rejected(self, rtl_graph):
        from repro.slicer.config import SliceConfig

        config = SliceConfig("x", ("rtl8139",), ("no_such_function",))
        with pytest.raises(ValueError):
            partition_driver(rtl_graph, config)

    def test_majority_of_functions_leave_kernel(self):
        """Paper: >75% of functions move out for 4 of 5 drivers."""
        for name in ("8139too", "e1000", "ens1371", "psmouse"):
            report = conversion_report(DRIVER_CONFIGS[name])
            assert report["user_fraction"] > 0.5, name

    def test_uhci_stays_mostly_kernel(self):
        """Paper: only 4% of uhci-hcd could move to Java."""
        report = conversion_report(DRIVER_CONFIGS["uhci_hcd"])
        e1000 = conversion_report(DRIVER_CONFIGS["e1000"])
        assert report["user_fraction"] < e1000["user_fraction"]

    def test_pinned_functions_stay_kernel(self):
        report = conversion_report(DRIVER_CONFIGS["e1000"])
        part = report["partition"]
        for name in ("e1000_intr_test", "e1000_test_intr_handler"):
            assert name in part.kernel_funcs, name


class TestAccessAnalysis:
    def test_reads_and_writes_separated(self):
        config = DRIVER_CONFIGS["e1000"]
        report = conversion_report(config)
        plan = report["marshal_plan"]
        access = plan._accesses["e1000_hw"]
        assert "device_id" in access.all
        assert "mac_addr" in access.writes

    def test_nested_write_marks_container(self):
        config = DRIVER_CONFIGS["e1000"]
        report = conversion_report(config)
        access = report["marshal_plan"]._accesses["e1000_adapter"]
        assert "tx_ring" in access.writes  # adapter.tx_ring.count = ...

    def test_extra_access_merges(self):
        plan = build_marshal_plan(
            {}, extra_access=[("e1000_adapter", "itr", "RW")]
        )
        access = plan._accesses["e1000_adapter"]
        assert "itr" in access.reads and "itr" in access.writes


class TestAnnotations:
    def test_counts(self):
        total, per_struct = count_annotations([e1000_main, e1000_hw])
        assert total >= 5
        assert per_struct["e1000_adapter"] >= 3  # netdev, pdev, config_space

    def test_xvar_detection(self):
        import textwrap
        import types

        from repro.slicer.annotations import find_xvar_annotations

        src = textwrap.dedent('''
            def entry_point(adapter):
                DECAF_RWVAR("rx_csum")
                return 0

            def DECAF_RWVAR(name):
                pass
        ''')
        module = types.ModuleType("fake_drv")
        module.__dict__["__source__"] = src
        import unittest.mock as mock

        with mock.patch("inspect.getsource", return_value=src):
            found = find_xvar_annotations([module])
        assert ("entry_point", "RW", "rx_csum") in found


class TestXdrGen:
    def test_figure3_array_rewrite(self):
        spec = generate_xdr_spec(driver_struct_classes([e1000_main]))
        # The generated wrapper struct from Fig. 3.
        assert "struct array64_uint32_t {" in spec
        assert "uint32_t array[64];" in spec
        assert "array64_uint32_t_ptr config_space;" in spec

    def test_long_long_becomes_hyper(self):
        spec = generate_xdr_spec(driver_struct_classes([e1000_main]))
        assert "unsigned hyper tx_packets;" in spec

    def test_opaque_pointer_commented(self):
        spec = generate_xdr_spec(driver_struct_classes([e1000_main]))
        assert "opaque kernel pointer" in spec

    def test_embedded_struct_reference(self):
        spec = generate_xdr_spec(driver_struct_classes([e1000_main]))
        assert "struct e1000_tx_ring_autoxdr_c tx_ring;" in spec


class TestStubGen:
    def test_generated_source_parses(self, rtl_partition):
        source = generate_stubs("8139too", rtl_partition, [rtl8139],
                                DRIVER_CONFIGS["8139too"].type_hints)
        ast.parse(source)  # must be valid Python

    def test_generated_stubs_execute(self, kernel, rtl_partition):
        """The generated stub module is real code: exec it and drive a
        call through the resulting stub."""
        from repro.core import DomainManager, Xpc, XpcChannel
        from repro.drivers.legacy.rtl8139 import rtl8139_private

        source = generate_stubs("8139too", rtl_partition, [rtl8139],
                                DRIVER_CONFIGS["8139too"].type_hints)
        namespace = {}
        exec(compile(source, "<stubs>", "exec"), namespace)
        channel = XpcChannel(Xpc(kernel), DomainManager())

        calls = []

        class UserImpl:
            @staticmethod
            def rtl8139_open(tp):
                calls.append(tp.msg_enable)
                return 0

        stubs = namespace["make_stubs"](channel, UserImpl, None)
        assert "rtl8139_open" in stubs
        tp = rtl8139_private(msg_enable=5)
        channel.kernel_tracker.register(tp)
        assert stubs["rtl8139_open"](tp) == 0
        assert calls == [5]
        assert channel.xpc.kernel_user_crossings == 1

    def test_stub_per_entry_point(self, rtl_partition):
        source = generate_stubs("8139too", rtl_partition, [rtl8139],
                                DRIVER_CONFIGS["8139too"].type_hints)
        for entry in rtl_partition.user_entry_points:
            assert ("def %s_stub" % entry) in source


class TestSplitter:
    def test_both_trees_parse(self, rtl_partition):
        trees = split_driver_source([rtl8139], rtl_partition)
        nucleus_src, library_src = trees["rtl8139"]
        ast.parse(nucleus_src)
        ast.parse(library_src)

    def test_each_function_in_exactly_one_tree(self, rtl_partition):
        trees = split_driver_source([rtl8139], rtl_partition)
        nucleus_src, library_src = trees["rtl8139"]
        nucleus_funcs = {n.name for n in ast.parse(nucleus_src).body
                         if isinstance(n, ast.FunctionDef)}
        library_funcs = {n.name for n in ast.parse(library_src).body
                         if isinstance(n, ast.FunctionDef)}
        assert nucleus_funcs == rtl_partition.kernel_funcs
        assert library_funcs == rtl_partition.user_funcs
        assert not nucleus_funcs & library_funcs

    def test_definitions_survive_in_both(self, rtl_partition):
        """Structs, constants and comments appear in both copies
        (section 3.2.1: readable patched source, shared definitions)."""
        trees = split_driver_source([rtl8139], rtl_partition)
        nucleus_src, library_src = trees["rtl8139"]
        for text in ("class rtl8139_private", "RX_BUF_LEN", "ISR_ROK"):
            assert text in nucleus_src
            assert text in library_src

    def test_moved_functions_marked(self, rtl_partition):
        trees = split_driver_source([rtl8139], rtl_partition)
        nucleus_src, _library_src = trees["rtl8139"]
        assert "[DriverSlicer] rtl8139_open moved to the driver library" \
            in nucleus_src


class TestConversionReport:
    def test_table2_shape(self):
        report = conversion_report(DRIVER_CONFIGS["8139too"])
        assert report["total_loc"] > 0
        assert report["nucleus_funcs"] + report["decaf_funcs"] \
            + report["library_funcs"] == len(report["graph"].functions)
        assert report["annotations"] >= 1

    def test_partial_conversion_accounting(self):
        """Functions not yet converted stay counted in the library."""
        report = conversion_report(DRIVER_CONFIGS["8139too"],
                                   decaf_converted={"rtl8139_open"})
        assert report["decaf_funcs"] == 1
        assert report["library_funcs"] > 0


class TestJavaClassGeneration:
    def test_class_per_struct(self):
        from repro.slicer.xdrgen import generate_java_classes

        classes = generate_java_classes(driver_struct_classes([e1000_main]))
        assert "e1000_adapter" in classes
        assert "e1000_tx_ring" in classes

    def test_public_container_fields(self):
        """Paper: 'containers of public fields for every element of the
        original C structures'."""
        from repro.slicer.xdrgen import generate_java_classes
        from repro.drivers.legacy.e1000_main import e1000_adapter

        classes = generate_java_classes(driver_struct_classes([e1000_main]))
        src = classes["e1000_adapter"]
        for field in e1000_adapter.fields():
            assert ("public" in src) and (" %s;" % field.name in src), \
                field.name

    def test_type_mapping(self):
        from repro.slicer.xdrgen import generate_java_classes

        classes = generate_java_classes(driver_struct_classes([e1000_main]))
        src = classes["e1000_adapter"]
        assert "public int msg_enable;" in src
        assert "public e1000_tx_ring tx_ring;" in src
        assert "public long[] config_space;" in src
        assert "opaque kernel pointer" in src

    def test_no_methods_generated(self):
        """The generated classes 'do not take advantage of Java
        language features' -- pure field containers."""
        from repro.slicer.xdrgen import generate_java_classes

        classes = generate_java_classes(driver_struct_classes([e1000_main]))
        for src in classes.values():
            assert "(" not in src.split("public class", 1)[1].replace(
                "(jrpcgen)", "")
