"""Hostile-payload regression tests for the marshaling boundary.

The wire a kernel-side decode consumes comes from the *user* half of a
split driver -- after a compromise, every word of it is attacker
-controlled (the adversarial-XPC mode in ``repro.explore.adversary``
replays exactly these corruptions live).  Each test here encodes a valid
payload, forges one aspect of it, and asserts the decoder fails with a
checked :class:`MarshalError` -- never an IndexError, struct.error, or a
multi-gigabyte allocation.  These fail if any of the bounds checks in
``repro.core.marshal`` are reverted.

The pinning tests cover the kernel-owned field defense: resource handles
(``e1000_hw.hw_addr`` etc.) are excluded from the user->kernel field
lists entirely, so a poisoned twin value cannot even be *addressed* on
the wire, full copy or delta.
"""

import pytest

from repro.core import (
    CStruct,
    Exp,
    FieldAccess,
    MarshalCodec,
    MarshalError,
    Opaque,
    Ptr,
    Str,
    U8,
    U32,
    U64,
)
from repro.core.marshal import (
    MarshalPlan,
    TAG_BACKREF,
    TAG_OBJ,
    TO_KERNEL,
    TO_USER,
    XdrBuffer,
)

# Wire layout of a top-level object record (see marshal.py):
#   u32 tag, u64 identity, u32 type_id, payload...
_HDR = 4 + 8 + 4


class h_scalars(CStruct):
    FIELDS = [("a", U32), ("b", U64), ("c", U8)]


class h_str(CStruct):
    FIELDS = [("label", Str(16))]


class h_exp(CStruct):
    FIELDS = [("count", U32), ("vals", Ptr(U32), Exp("count"))]


class h_mix(CStruct):
    FIELDS = [
        ("a", U32),
        ("label", Str(8)),
        ("opq", Ptr("h_mix"), Opaque()),
        ("next", Ptr("h_mix")),
    ]


def _encode(obj, cls, delta=False):
    codec = MarshalCodec(MarshalPlan())
    wire = bytes(codec.encode(obj, cls, TO_USER, delta=delta))
    return codec, wire


def _patch(wire, offset, word):
    buf = XdrBuffer()
    buf.put_u32(word)
    return wire[:offset] + bytes(buf.data) + wire[offset + 4:]


class TestTruncation:
    def test_every_truncation_is_a_checked_underrun(self):
        obj = h_mix(a=7, label="hey", opq=0x1234, next=h_mix(a=9))
        codec, wire = _encode(obj, h_mix)
        for cut in range(len(wire)):
            with pytest.raises(MarshalError):
                codec.decode(wire[:cut], h_mix, TO_USER)

    def test_empty_wire(self):
        codec = MarshalCodec(MarshalPlan())
        with pytest.raises(MarshalError):
            codec.decode(b"", h_scalars, TO_USER)


class TestForgedLengths:
    def test_forged_exp_array_length_fails_fast(self):
        # Payload: count u32 @_HDR, then TAG_ARRAY @+4, length @+8.
        codec, wire = _encode(h_exp(count=2, vals=[1, 2]), h_exp)
        forged = _patch(wire, _HDR + 8, 0xFFFFFFFF)
        # Must raise before allocating a 4 GiB list one u32 at a time.
        with pytest.raises(MarshalError):
            codec.decode(forged, h_exp, TO_USER)

    def test_forged_string_length_fails_fast(self):
        codec, wire = _encode(h_str(label="abcd"), h_str)
        forged = _patch(wire, _HDR, 0xFFFFFFFF)  # string length word
        with pytest.raises(MarshalError):
            codec.decode(forged, h_str, TO_USER)

    def test_invalid_utf8_string_is_checked(self):
        codec, wire = _encode(h_str(label="abcd"), h_str)
        # Stomp the 4 string payload bytes (after the length word).
        forged = wire[:_HDR + 4] + b"\xff\xff\xff\xff" + wire[_HDR + 8:]
        with pytest.raises(MarshalError, match="utf-8"):
            codec.decode(forged, h_str, TO_USER)


class TestForgedStructure:
    def test_bad_backref_index(self):
        codec = MarshalCodec(MarshalPlan())
        buf = XdrBuffer()
        buf.put_u32(TAG_BACKREF)
        buf.put_u32(7)  # nothing decoded yet: any index is out of range
        with pytest.raises(MarshalError, match="backref"):
            codec.decode(bytes(buf.data), h_scalars, TO_USER)

    def test_unknown_type_id(self):
        codec = MarshalCodec(MarshalPlan())
        buf = XdrBuffer()
        buf.put_u32(TAG_OBJ)
        buf.put_u64(0x4000_0000)
        buf.put_u32(999_999)
        with pytest.raises(MarshalError, match="type id"):
            codec.decode(bytes(buf.data), h_scalars, TO_USER)

    def test_argument_count_mismatch(self):
        codec = MarshalCodec(MarshalPlan())
        wire, _nfields = codec.encode_args([(h_scalars(), h_scalars)],
                                           TO_USER)
        with pytest.raises(MarshalError, match="argument count"):
            codec.decode_args(bytes(wire), [h_scalars, h_scalars], TO_USER)


class TestForgedDelta:
    def test_forged_delta_count_is_rejected(self):
        # Fresh instances are fully dirty: the delta carries all fields.
        codec, wire = _encode(h_scalars(a=1, b=2, c=3), h_scalars,
                              delta=True)
        forged = _patch(wire, _HDR, 50_000)  # delta field count word
        with pytest.raises(MarshalError, match="delta field count"):
            codec.decode(forged, h_scalars, TO_USER, delta=True)

    def test_forged_delta_index_is_rejected(self):
        codec, wire = _encode(h_scalars(a=1, b=2, c=3), h_scalars,
                              delta=True)
        forged = _patch(wire, _HDR + 4, 99)  # first field-index word
        with pytest.raises(MarshalError, match="delta field index"):
            codec.decode(forged, h_scalars, TO_USER, delta=True)


class TestKernelOwnedPinning:
    def test_pinned_field_dropped_from_to_kernel_lists(self):
        plan = MarshalPlan()
        plan.set_access(
            "h_scalars", FieldAccess(reads=("a", "b"), writes=("a", "b")))
        plan.pin("h_scalars", "b")
        to_kernel = [f.name for f in plan.fields_for(h_scalars, TO_KERNEL)]
        to_user = [f.name for f in plan.fields_for(h_scalars, TO_USER)]
        # Liveness says "b" marshals both ways; the pin overrides the
        # user->kernel direction only.
        assert to_kernel == ["a"]
        assert "b" in to_user

    def test_poisoned_pinned_field_never_reaches_kernel_object(self):
        plan = MarshalPlan()
        plan.set_access(
            "h_scalars", FieldAccess(reads=("a", "b"), writes=("a", "b")))
        plan.pin("h_scalars", "b")
        codec = MarshalCodec(plan)
        kernel_obj = h_scalars(a=1, b=0xF0000000)

        twin = codec.decode(
            bytes(codec.encode(kernel_obj, h_scalars, TO_USER)),
            h_scalars, TO_USER)
        twin.b = 0xFFFFFFFF  # compromised user half stomps the handle
        twin.a = 42

        class _Resolve:
            def resolve(self, identity, struct_cls, type_id):
                return kernel_obj, False

            def register(self, *a):
                pass

        for delta in (False, True):
            wire = bytes(codec.encode(twin, h_scalars, TO_KERNEL,
                                      delta=delta))
            codec.decode(wire, h_scalars, TO_KERNEL, ctx=_Resolve(),
                         delta=delta)
        assert kernel_obj.a == 42  # live data still flows back
        assert kernel_obj.b == 0xF0000000  # the handle did not budge

    def test_e1000_slice_plan_pins_hw_addr(self):
        from repro.drivers.decaf.plumbing import slice_plan
        from repro.drivers.legacy.e1000_hw import e1000_hw

        plan = slice_plan("e1000")
        access = plan.access_for(e1000_hw)
        # The slicer's liveness analysis sees legacy probe code write
        # hw_addr, so without the pin it would marshal user->kernel.
        assert "hw_addr" in access.writes
        names = [f.name for f in plan.fields_for(e1000_hw, TO_KERNEL)]
        assert "hw_addr" not in names
        assert "hw_addr" in [
            f.name for f in plan.fields_for(e1000_hw, TO_USER)]
