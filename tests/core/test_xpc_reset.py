"""reset_counters must cover every counter Xpc.__init__ defines.

Satellite (c): the reset is introspective (``vars()``), so this test
sets *every* numeric attribute to a sentinel and asserts the reset
zeroes them all -- a counter added to ``__init__`` later can never be
forgotten.
"""

from repro.core.xpc import Xpc
from repro.kernel import make_kernel


def numeric_counters(xpc):
    return {
        attr: value
        for attr, value in vars(xpc).items()
        if not attr.startswith("_")
        and attr != "kernel"
        and not isinstance(value, bool)
        and isinstance(value, (int, float))
    }


class TestResetCounters:
    def test_every_init_counter_is_reset(self):
        xpc = Xpc(make_kernel())
        counters = numeric_counters(xpc)
        # The seed set must at least be there (sanity on introspection).
        for expected in ("kernel_user_crossings", "lang_crossings",
                         "bytes_marshaled", "upcalls", "downcalls",
                         "deferred_calls", "deferred_coalesced",
                         "deferred_flushes", "deferred_errors",
                         "deferred_dropped"):
            assert expected in counters, expected
        for i, attr in enumerate(counters):
            setattr(xpc, attr, i + 17)
        xpc.reset_counters()
        after = numeric_counters(xpc)
        assert set(after) == set(counters)
        assert all(value == 0 for value in after.values()), after

    def test_reset_leaves_kernel_reference(self):
        kernel = make_kernel()
        xpc = Xpc(kernel)
        xpc.reset_counters()
        assert xpc.kernel is kernel
