"""XDR marshaling: selective fields, recursion, identity, properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Array,
    CStruct,
    Exp,
    FieldAccess,
    I32,
    MarshalCodec,
    MarshalError,
    Opaque,
    Ptr,
    Str,
    Struct,
    U8,
    U16,
    U32,
    U64,
)
from repro.core.marshal import MarshalPlan, TO_KERNEL, TO_USER, TransferContext


class m_inner(CStruct):
    FIELDS = [("count", U32), ("flag", U8)]


class m_node(CStruct):
    FIELDS = [("value", I32), ("next", Ptr("m_node"))]


class m_thing(CStruct):
    FIELDS = [
        ("a", U32),
        ("b", I32),
        ("wide", U64),
        ("label", Str(16)),
        ("arr", Array(U16, 3)),
        ("inner", Struct(m_inner)),
        ("node", Ptr(m_node)),
        ("raw", Ptr("m_thing"), Opaque()),
        ("exp_arr", Ptr(U32), Exp("ETH_ALEN")),
    ]


def roundtrip(obj, struct_cls, plan=None, direction=TO_USER):
    codec = MarshalCodec(plan)
    data = codec.encode(obj, struct_cls, direction)
    return codec.decode(data, struct_cls, direction), codec, data


class TestBasicRoundtrip:
    def test_scalars_and_strings(self):
        t = m_thing(a=7, b=-9, wide=2**40, label="hello")
        out, _codec, _data = roundtrip(t, m_thing)
        assert out is not t
        assert (out.a, out.b, out.wide, out.label) == (7, -9, 2**40, "hello")

    def test_arrays(self):
        t = m_thing(arr=[1, 2, 3])
        out, _c, _d = roundtrip(t, m_thing)
        assert out.arr == [1, 2, 3]

    def test_embedded_struct(self):
        t = m_thing()
        t.inner.count = 42
        t.inner.flag = 1
        out, _c, _d = roundtrip(t, m_thing)
        assert out.inner.count == 42
        assert out.inner.flag == 1
        assert out.inner is not t.inner

    def test_null_pointer(self):
        out, _c, _d = roundtrip(m_thing(), m_thing)
        assert out.node is None

    def test_linked_structure(self):
        t = m_thing()
        t.node = m_node(value=1, next=m_node(value=2))
        out, _c, _d = roundtrip(t, m_thing)
        assert out.node.value == 1
        assert out.node.next.value == 2
        assert out.node.next.next is None

    def test_exp_array(self):
        t = m_thing(exp_arr=[10, 20, 30])
        out, _c, _d = roundtrip(t, m_thing)
        assert out.exp_arr == [10, 20, 30]

    def test_string_truncated_to_capacity(self):
        t = m_thing(label="x" * 100)
        out, _c, _d = roundtrip(t, m_thing)
        assert out.label == "x" * 16

    def test_type_mismatch_rejected(self):
        t = m_thing()
        t.node = m_inner()  # wrong type for the field
        codec = MarshalCodec()
        with pytest.raises(MarshalError):
            codec.encode(t, m_thing, TO_USER)


class TestRecursionAndSharing:
    def test_cycle(self):
        n = m_node(value=5)
        n.next = n
        codec = MarshalCodec()
        data = codec.encode(n, m_node, TO_USER)
        out = codec.decode(data, m_node, TO_USER)
        assert out.next is out
        assert codec.backrefs == 1

    def test_two_element_cycle(self):
        a = m_node(value=1)
        b = m_node(value=2)
        a.next = b
        b.next = a
        codec = MarshalCodec()
        out = codec.decode(codec.encode(a, m_node, TO_USER), m_node, TO_USER)
        assert out.next.next is out

    def test_diamond_marshaled_once(self):
        """Two parameters referencing a third marshal it once (3.2.3)."""
        shared = m_node(value=99)
        t1 = m_thing(node=shared)
        t2 = m_thing(node=shared)
        codec = MarshalCodec()
        data, nfields = codec.encode_args(
            [(t1, m_thing), (t2, m_thing)], TO_USER
        )
        out1, out2 = codec.decode_args(data, [m_thing, m_thing], TO_USER)
        assert out1.node is out2.node
        assert codec.backrefs == 1
        assert nfields > 0

    def test_pointer_to_embedded_child(self):
        """A pointer elsewhere in the graph to an embedded struct
        resolves to the same decoded child object."""

        class holder(CStruct):
            FIELDS = [("owner", Ptr(m_thing)), ("alias", Ptr(m_inner))]

        t = m_thing()
        t.inner.count = 5
        h = holder(owner=t, alias=t.inner)
        codec = MarshalCodec()
        out = codec.decode(codec.encode(h, holder, TO_USER), holder, TO_USER)
        assert out.alias is out.owner.inner


class TestSelectiveMarshaling:
    def plan(self):
        plan = MarshalPlan()
        plan.set_access("m_thing", FieldAccess(reads={"a"}, writes={"b"}))
        return plan

    def test_to_user_copies_reads_and_writes(self):
        t = m_thing(a=1, b=2, wide=3)
        codec = MarshalCodec(self.plan())
        out = codec.decode(codec.encode(t, m_thing, TO_USER), m_thing, TO_USER)
        assert out.a == 1 and out.b == 2
        assert out.wide == 0  # not accessed by user code: not copied

    def test_to_kernel_copies_only_writes(self):
        t = m_thing(a=1, b=2)
        codec = MarshalCodec(self.plan())
        out = codec.decode(codec.encode(t, m_thing, TO_KERNEL),
                           m_thing, TO_KERNEL)
        assert out.b == 2
        assert out.a == 0  # read-only for user code: no copy back

    def test_selective_smaller_than_full(self):
        t = m_thing(a=1, b=2, wide=3, label="x" * 16)
        full = MarshalCodec().encode(t, m_thing, TO_USER)
        selective = MarshalCodec(self.plan()).encode(t, m_thing, TO_USER)
        assert len(selective) < len(full)


class TestOpaque:
    def test_opaque_crosses_as_handle(self):
        class Ctx(TransferContext):
            def __init__(self):
                self.handles = {}

            def handle_of(self, obj):
                handle = id(obj)
                self.handles[handle] = obj
                return handle

            def object_of(self, handle):
                return self.handles.get(handle)

        ctx = Ctx()
        secret = m_inner(count=7)
        t = m_thing(raw=secret)
        codec = MarshalCodec()
        data = codec.encode(t, m_thing, TO_USER, ctx=ctx)
        out = codec.decode(data, m_thing, TO_USER, ctx=ctx)
        assert out.raw is secret  # restored, never marshaled


scalar_values = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestProperties:
    @given(a=st.integers(0, 2**32 - 1), b=scalar_values,
           wide=st.integers(0, 2**64 - 1),
           label=st.text(alphabet=st.characters(codec="ascii",
                                                exclude_characters="\x00"),
                         max_size=16),
           arr=st.lists(st.integers(0, 2**16 - 1), min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_values(self, a, b, wide, label, arr):
        t = m_thing(a=a, b=b, wide=wide, label=label, arr=arr)
        out, _c, _d = roundtrip(t, m_thing)
        assert out.a == a
        assert out.b == b
        assert out.wide == wide
        assert out.label == label
        assert out.arr == arr

    @given(values=st.lists(scalar_values, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_linked_list(self, values):
        head = None
        for v in reversed(values):
            head = m_node(value=v, next=head)
        out, codec, _d = roundtrip(head, m_node)
        got = []
        cursor = out
        while cursor is not None:
            got.append(cursor.value)
            cursor = cursor.next
        assert got == values

    @given(fields=st.sets(st.sampled_from(["a", "b", "wide", "label"]),
                          min_size=0, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_only_planned_fields_cross(self, fields):
        plan = MarshalPlan()
        plan.set_access("m_thing", FieldAccess(reads=fields))
        t = m_thing(a=1, b=2, wide=3, label="abc")
        codec = MarshalCodec(plan)
        out = codec.decode(codec.encode(t, m_thing, TO_USER), m_thing, TO_USER)
        for name, expected in (("a", 1), ("b", 2), ("wide", 3),
                               ("label", "abc")):
            if name in fields:
                assert getattr(out, name) == expected
            else:
                default = "" if name == "label" else 0
                assert getattr(out, name) == default

    @given(data=st.binary(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_garbage_input_never_crashes_uncontrolled(self, data):
        codec = MarshalCodec()
        try:
            codec.decode(data, m_thing, TO_USER)
        except (MarshalError, Exception):
            pass  # must not hang or corrupt interpreter state


class TestDeterminism:
    def test_encode_is_deterministic(self):
        t = m_thing(a=3, b=-4, wide=5, label="abc", arr=[1, 2, 3])
        t.node = m_node(value=9)
        codec = MarshalCodec()
        assert codec.encode(t, m_thing, TO_USER) == \
            codec.encode(t, m_thing, TO_USER)

    @given(a=st.integers(0, 2**32 - 1), b=scalar_values)
    @settings(max_examples=25, deadline=None)
    def test_twin_of_twin_is_fixed_point(self, a, b):
        """Marshal(Marshal(x)) == Marshal(x): a second transfer of the
        twin carries the same bytes (up to the identity header)."""
        t = m_thing(a=a, b=b)
        codec = MarshalCodec()
        twin = codec.decode(codec.encode(t, m_thing, TO_USER),
                            m_thing, TO_USER)
        twin2 = codec.decode(codec.encode(twin, m_thing, TO_USER),
                             m_thing, TO_USER)
        assert (twin2.a, twin2.b) == (a, b)
