"""Marshaling edge cases: backrefs, dedup, registries, compiled codecs.

Exercises the corners of the fast path: circular and diamond-shaped
graphs (TAG_BACKREF), shared-seen deduplication across the parameters
of one call, type-registry scoping, plan caching, and byte-identity of
the compiled codec against the uncached per-field baseline.
"""

from repro.core import (
    CStruct,
    FieldAccess,
    I32,
    MarshalCodec,
    MarshalPlan,
    Opaque,
    Ptr,
    Str,
    Struct,
    TypeIds,
    TypeRegistry,
    U8,
    U16,
    U32,
    U64,
)
from repro.core.cstruct import Array, Exp
from repro.core.marshal import (
    OP_FIELD,
    OP_PACK,
    TO_KERNEL,
    TO_USER,
    compile_field_ops,
    pack_format_for,
)


class me_node(CStruct):
    FIELDS = [("value", I32), ("next", Ptr("me_node"))]


class me_pair(CStruct):
    FIELDS = [("left", Ptr(me_node)), ("right", Ptr(me_node)), ("tag", U32)]


class me_inner(CStruct):
    FIELDS = [("count", U32)]


class me_rich(CStruct):
    FIELDS = [
        ("a", U32),
        ("b", I32),
        ("c", U8),
        ("d", U16),
        ("wide", U64),
        ("label", Str(12)),
        ("arr", Array(U16, 4)),
        ("inner", Struct(me_inner)),
        ("node", Ptr(me_node)),
        ("secret", Ptr("me_rich"), Opaque()),
        ("exp_arr", Ptr(U32), Exp("ETH_ALEN")),
    ]


def _registry_codec(plan=None, compiled=True):
    return MarshalCodec(plan, type_ids=TypeRegistry(), compiled=compiled)


class TestBackrefs:
    def test_circular_list_of_three(self):
        a, b, c = me_node(value=1), me_node(value=2), me_node(value=3)
        a.next, b.next, c.next = b, c, a
        codec = _registry_codec()
        out = codec.decode(codec.encode(a, me_node, TO_USER),
                           me_node, TO_USER)
        assert out.next.value == 2
        assert out.next.next.value == 3
        assert out.next.next.next is out      # closed the cycle
        assert codec.backrefs == 1

    def test_diamond_within_one_argument(self):
        shared = me_node(value=7)
        p = me_pair(left=shared, right=shared, tag=1)
        codec = _registry_codec()
        out = codec.decode(codec.encode(p, me_pair, TO_USER),
                           me_pair, TO_USER)
        assert out.left is out.right
        assert codec.backrefs == 1

    def test_same_struct_passed_twice_dedups(self):
        """encode_args shares the seen-table: the second occurrence of
        the same object is one backref, not a second copy."""
        obj = me_rich(a=1, wide=2, label="dup")
        codec = _registry_codec()
        twice, _n2 = codec.encode_args(
            [(obj, me_rich), (obj, me_rich)], TO_USER
        )
        once, _n1 = codec.encode_args([(obj, me_rich)], TO_USER)
        # The duplicate costs tag + index, not another payload.
        assert len(twice) == len(once) + 8
        out1, out2 = codec.decode_args(twice, [me_rich, me_rich], TO_USER)
        assert out1 is out2

    def test_backref_shared_across_different_parameters(self):
        shared = me_node(value=9)
        p1 = me_pair(left=shared, tag=1)
        p2 = me_pair(right=shared, tag=2)
        codec = _registry_codec()
        data, _n = codec.encode_args([(p1, me_pair), (p2, me_pair)], TO_USER)
        out1, out2 = codec.decode_args(data, [me_pair, me_pair], TO_USER)
        assert out1.left is out2.right


class TestTypeRegistry:
    def test_registries_are_independent(self):
        r1, r2 = TypeRegistry(), TypeRegistry()
        assert r1.id_of(me_node) == 1
        assert r2.id_of(me_pair) == 1   # numbering restarts per registry
        assert r1.id_of(me_pair) == 2
        assert r1.struct_for(2) is me_pair
        assert r2.struct_for(1) is me_pair

    def test_reset(self):
        reg = TypeRegistry()
        reg.id_of(me_node)
        reg.id_of(me_pair)
        assert len(reg) == 2
        reg.reset()
        assert len(reg) == 0
        assert reg.id_of(me_pair) == 1

    def test_default_facade_is_shared_and_resettable(self):
        first = TypeIds.id_of(me_node)
        assert TypeIds.struct_for(first) is me_node
        TypeIds.reset()
        assert TypeIds.id_of(me_pair) == 1

    def test_channel_owns_private_registry(self, kernel):
        from repro.core import DomainManager, Xpc, XpcChannel

        ch1 = XpcChannel(Xpc(kernel), DomainManager())
        ch2 = XpcChannel(Xpc(kernel), DomainManager())
        assert ch1.type_ids is not ch2.type_ids
        assert ch1.codec.type_ids is ch1.type_ids
        # Different registration orders cannot collide across channels.
        assert ch1.type_ids.id_of(me_node) == 1
        assert ch2.type_ids.id_of(me_pair) == 1


class TestPlanCache:
    def test_cached_matches_uncached(self):
        plan = MarshalPlan()
        plan.set_access("me_rich", FieldAccess(reads={"a", "label"},
                                               writes={"b"}))
        for direction in (TO_USER, TO_KERNEL):
            cached = plan.fields_for(me_rich, direction)
            uncached = plan.uncached_fields_for(me_rich, direction)
            assert [f.name for f in cached] == [f.name for f in uncached]

    def test_fields_for_is_cached(self):
        plan = MarshalPlan()
        assert plan.fields_for(me_rich, TO_USER) is \
            plan.fields_for(me_rich, TO_USER)
        assert plan.compiled_ops_for(me_rich, TO_USER) is \
            plan.compiled_ops_for(me_rich, TO_USER)

    def test_set_access_invalidates_cache(self):
        plan = MarshalPlan()
        assert len(plan.fields_for(me_rich, TO_USER)) == len(me_rich.fields())
        plan.set_access("me_rich", FieldAccess(reads={"a"}))
        assert [f.name for f in plan.fields_for(me_rich, TO_USER)] == ["a"]
        ops = plan.compiled_ops_for(me_rich, TO_USER)
        assert len(ops) == 1 and ops[0][0] == OP_PACK


class TestCompiledOps:
    def test_scalar_runs_collapse(self):
        ops = compile_field_ops(me_rich.fields())
        # a,b,c,d,wide form one packed run; the rest are field ops.
        assert ops[0][0] == OP_PACK
        assert ops[0][1] == ("a", "b", "c", "d", "wide")
        assert ops[0][3].format == "<IiIIQ"
        assert all(op[0] == OP_FIELD for op in ops[1:])

    def test_pack_format_report(self):
        assert pack_format_for(me_rich.fields()) == "<IiIIQ"

    def test_compiled_and_baseline_wire_identical(self):
        obj = me_rich(a=1, b=-2, c=250, d=40000, wide=2**50,
                      label="bytes", arr=[1, 2, 3, 4], exp_arr=[5, 6])
        obj.inner.count = 3
        obj.node = me_node(value=4, next=me_node(value=5))
        for accesses in (
            None,
            FieldAccess(reads={"a", "wide", "inner", "node"},
                        writes={"b", "label"}),
        ):
            plan = MarshalPlan()
            if accesses is not None:
                plan.set_access("me_rich", accesses)
            registry = TypeRegistry()
            fast = MarshalCodec(plan, type_ids=registry)
            slow = MarshalCodec(plan, type_ids=registry, compiled=False)
            for direction in (TO_USER, TO_KERNEL):
                assert fast.encode(obj, me_rich, direction) == \
                    slow.encode(obj, me_rich, direction), direction

    def test_baseline_decodes_compiled_bytes(self):
        obj = me_rich(a=9, b=-9, wide=77, label="x")
        registry = TypeRegistry()
        fast = MarshalCodec(type_ids=registry)
        slow = MarshalCodec(type_ids=registry, compiled=False)
        out = slow.decode(fast.encode(obj, me_rich, TO_USER),
                          me_rich, TO_USER)
        assert (out.a, out.b, out.wide, out.label) == (9, -9, 77, "x")

    def test_encode_args_field_count_is_per_call(self):
        """The (data, nfields) pair counts this call only -- repeated
        calls return the same count, not a running total."""
        obj = me_rich(a=1)
        codec = _registry_codec()
        _d1, n1 = codec.encode_args([(obj, me_rich)], TO_USER)
        _d2, n2 = codec.encode_args([(obj, me_rich)], TO_USER)
        assert n1 == n2 > 0
        assert codec.fields_marshaled == n1 + n2  # lifetime stat still grows
