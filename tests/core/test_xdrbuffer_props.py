"""Property-based tests for the XDR wire buffer and codec internals."""

from hypothesis import given, settings, strategies as st

from repro.core import I16, I32, I64, U8, U16, U32, U64
from repro.core.marshal import XdrBuffer

SCALARS = {
    "u8": (U8, st.integers(0, 2**8 - 1)),
    "u16": (U16, st.integers(0, 2**16 - 1)),
    "u32": (U32, st.integers(0, 2**32 - 1)),
    "u64": (U64, st.integers(0, 2**64 - 1)),
    "i16": (I16, st.integers(-(2**15), 2**15 - 1)),
    "i32": (I32, st.integers(-(2**31), 2**31 - 1)),
    "i64": (I64, st.integers(-(2**63), 2**63 - 1)),
}

scalar_item = st.sampled_from(sorted(SCALARS)).flatmap(
    lambda key: st.tuples(st.just(key), SCALARS[key][1])
)


class TestXdrBufferProperties:
    @given(items=st.lists(scalar_item, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_scalar_sequences_roundtrip(self, items):
        buf = XdrBuffer()
        for key, value in items:
            buf.put_scalar(SCALARS[key][0], value)
        out = XdrBuffer(bytes(buf.data))
        for key, value in items:
            assert out.get_scalar(SCALARS[key][0]) == value

    @given(blobs=st.lists(st.binary(max_size=40), max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_bytes_roundtrip_with_alignment(self, blobs):
        buf = XdrBuffer()
        for blob in blobs:
            buf.put_bytes(blob)
        assert len(buf.data) % 4 == 0  # XDR alignment invariant
        out = XdrBuffer(bytes(buf.data))
        for blob in blobs:
            assert out.get_bytes() == blob

    @given(mixed=st.lists(
        st.one_of(
            st.tuples(st.just("u32"), st.integers(0, 2**32 - 1)),
            st.tuples(st.just("bytes"), st.binary(max_size=16)),
        ), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_mixed_sequences(self, mixed):
        buf = XdrBuffer()
        for kind, value in mixed:
            if kind == "u32":
                buf.put_u32(value)
            else:
                buf.put_bytes(value)
        out = XdrBuffer(bytes(buf.data))
        for kind, value in mixed:
            if kind == "u32":
                assert out.get_u32() == value
            else:
                assert out.get_bytes() == value

    @given(value=st.integers(-(2**70), 2**70))
    @settings(max_examples=50, deadline=None)
    def test_clamping_is_idempotent(self, value):
        for ctype, _strategy in SCALARS.values():
            clamped = ctype.clamp(value)
            assert ctype.clamp(clamped) == clamped

    @given(value=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_u64_wider_than_u32(self, value):
        buf = XdrBuffer()
        buf.put_scalar(U64, value)
        assert len(buf.data) == 8
        buf2 = XdrBuffer()
        buf2.put_scalar(U32, value)
        assert len(buf2.data) == 4
