"""Object trackers, domains, XPC channels, combolocks, runtimes."""

import gc

import pytest

from repro.core import (
    ComboLock,
    CStruct,
    DomainManager,
    I32,
    KernelObjectTracker,
    Ptr,
    Struct,
    U32,
    UserObjectTracker,
    Xpc,
    XpcChannel,
)
from repro.core.domains import DECAF, DRIVER_LIB, KERNEL
from repro.core.marshal import TypeIds
from repro.kernel import DeadlockError, SleepInAtomicError, SpinLock


class t_leaf(CStruct):
    FIELDS = [("v", U32)]


class t_outer(CStruct):
    FIELDS = [("first", Struct(t_leaf)), ("n", I32), ("peer", Ptr("t_outer"))]


class TestKernelTracker:
    def test_register_lookup(self):
        tracker = KernelObjectTracker()
        obj = t_leaf()
        tracker.register(obj)
        assert tracker.lookup(obj.c_addr) is obj
        assert tracker.hits == 1

    def test_miss(self):
        tracker = KernelObjectTracker()
        assert tracker.lookup(0x123) is None
        assert tracker.hits == 0

    def test_remove(self):
        tracker = KernelObjectTracker()
        obj = t_leaf()
        tracker.register(obj)
        tracker.remove(obj.c_addr)
        assert tracker.lookup(obj.c_addr) is None


class TestUserTracker:
    def test_same_address_different_types(self):
        """One C pointer, two Java objects: type id disambiguates
        (paper section 3.1.2)."""
        tracker = UserObjectTracker()
        outer = t_outer()
        j_outer, j_leaf = t_outer(), t_leaf()
        outer_tid = TypeIds.id_of(t_outer)
        leaf_tid = TypeIds.id_of(t_leaf)
        addr = outer.c_addr  # == outer.first.c_addr (first member)
        tracker.associate(addr, outer_tid, j_outer)
        tracker.associate(addr, leaf_tid, j_leaf)
        assert tracker.xlate_c_to_j(addr, outer_tid) is j_outer
        assert tracker.xlate_c_to_j(addr, leaf_tid) is j_leaf

    def test_reverse_translation(self):
        tracker = UserObjectTracker()
        j = t_leaf()
        tracker.associate(0x1000, 7, j)
        assert tracker.xlate_j_to_c(j) == (0x1000, 7)

    def test_disassociate(self):
        tracker = UserObjectTracker()
        j = t_leaf()
        tracker.associate(0x1000, 7, j)
        assert tracker.disassociate(j) == (0x1000, 7)
        assert tracker.xlate_c_to_j(0x1000, 7) is None

    def test_weak_reference_auto_release(self):
        """The paper's sketched GC extension: dropping the Java object
        removes the tracker entry and fires the release hook."""
        tracker = UserObjectTracker()
        released = []
        tracker.release_hook = lambda addr, tid: released.append((addr, tid))
        j = t_leaf()
        tracker.associate(0x2000, 9, j, weak=True)
        assert tracker.xlate_c_to_j(0x2000, 9) is j
        del j
        gc.collect()
        assert released == [(0x2000, 9)]
        assert tracker.auto_released == 1
        assert tracker.xlate_c_to_j(0x2000, 9) is None

    def test_strong_entries_survive_gc(self):
        tracker = UserObjectTracker()
        j = t_leaf()
        tracker.associate(0x2000, 9, j, weak=False)
        ident = id(j)
        del j
        gc.collect()
        assert tracker.xlate_c_to_j(0x2000, 9) is not None
        assert id(tracker.xlate_c_to_j(0x2000, 9)) == ident


class TestDomains:
    def test_push_pop(self):
        dm = DomainManager()
        assert dm.current == KERNEL
        dm.push(DECAF)
        assert dm.current == DECAF
        assert dm.in_user()
        dm.pop(DECAF)
        assert dm.in_kernel()

    def test_entered_context_manager(self):
        dm = DomainManager()
        with dm.entered(DRIVER_LIB):
            assert dm.current == DRIVER_LIB
        assert dm.current == KERNEL

    def test_transition_count(self):
        dm = DomainManager()
        with dm.entered(DECAF):
            with dm.entered(KERNEL):
                pass
        assert dm.transitions == 2


class TestXpcChannel:
    def make_channel(self, kernel):
        dm = DomainManager()
        xpc = Xpc(kernel)
        return XpcChannel(xpc, dm), xpc, dm

    def test_upcall_identity_preserved(self, kernel):
        channel, xpc, _dm = self.make_channel(kernel)
        obj = t_outer(n=3)
        channel.kernel_tracker.register(obj)
        ids = []
        for _ in range(3):
            channel.upcall(lambda twin: ids.append(id(twin)),
                           args=[(obj, t_outer)])
        assert len(set(ids)) == 1

    def test_upcall_writes_propagate_back(self, kernel):
        channel, _xpc, _dm = self.make_channel(kernel)
        obj = t_outer(n=1)
        channel.kernel_tracker.register(obj)

        def mutate(twin):
            twin.n = 42

        channel.upcall(mutate, args=[(obj, t_outer)])
        assert obj.n == 42

    def test_upcall_from_atomic_context_rejected(self, kernel):
        channel, _xpc, _dm = self.make_channel(kernel)
        obj = t_outer()
        channel.kernel_tracker.register(obj)
        lock = SpinLock(kernel, "t")
        with lock:
            with pytest.raises(SleepInAtomicError):
                channel.upcall(lambda twin: 0, args=[(obj, t_outer)])

    def test_crossing_counters(self, kernel):
        channel, xpc, _dm = self.make_channel(kernel)
        obj = t_outer()
        channel.kernel_tracker.register(obj)
        channel.upcall(lambda t: 0, args=[(obj, t_outer)])
        channel.downcall(lambda t: 0, args=[(obj, t_outer)])
        assert xpc.kernel_user_crossings == 2
        assert xpc.upcalls == 1 and xpc.downcalls == 1
        assert xpc.bytes_marshaled > 0

    def test_crossing_costs_advance_clock(self, kernel):
        channel, _xpc, _dm = self.make_channel(kernel)
        obj = t_outer()
        channel.kernel_tracker.register(obj)
        t0 = kernel.now_ns()
        channel.upcall(lambda t: 0, args=[(obj, t_outer)])
        assert kernel.now_ns() - t0 >= 2 * kernel.costs.xpc_thread_dispatch_ns

    def test_direct_call_no_kernel_crossing(self, kernel):
        channel, xpc, _dm = self.make_channel(kernel)
        assert channel.direct_call(lambda x: x + 1, 41) == 42
        assert xpc.kernel_user_crossings == 0
        assert xpc.lang_crossings == 1

    def test_scalar_extras_passed(self, kernel):
        channel, _xpc, _dm = self.make_channel(kernel)
        obj = t_outer()
        channel.kernel_tracker.register(obj)
        got = []
        channel.upcall(lambda twin, a, b: got.append((a, b)),
                       args=[(obj, t_outer)], extra=(7, "s"))
        assert got == [(7, "s")]

    def test_user_born_object_canonicalized(self, kernel):
        """A Java-born object passed to the kernel gets a kernel twin;
        later passes reuse it."""
        channel, _xpc, dm = self.make_channel(kernel)
        with dm.entered(DECAF):
            java_obj = t_outer(n=5)
        seen = []
        channel.downcall(lambda twin: seen.append(twin),
                         args=[(java_obj, t_outer)])
        channel.downcall(lambda twin: seen.append(twin),
                         args=[(java_obj, t_outer)])
        assert seen[0] is seen[1]
        assert seen[0] is not java_obj
        assert seen[0].n == 5


class TestComboLock:
    def test_kernel_acquisition_is_spinlock(self, kernel):
        dm = DomainManager()
        lock = ComboLock(kernel, dm, "t")
        lock.acquire()
        assert lock.mode == "kernel-spin"
        assert kernel.context.in_atomic()
        lock.release()
        assert not kernel.context.in_atomic()
        assert lock.spin_acquisitions == 1

    def test_user_acquisition_is_semaphore(self, kernel):
        dm = DomainManager()
        lock = ComboLock(kernel, dm, "t")
        with dm.entered(DECAF):
            lock.acquire()
            assert lock.mode == "user-sem"
            kernel.msleep(1)  # legal: semaphore mode doesn't spin
            lock.release()
        assert lock.sem_acquisitions == 1

    def test_kernel_contends_with_user_holder(self, kernel):
        dm = DomainManager()
        lock = ComboLock(kernel, dm, "t")
        with dm.entered(DECAF):
            lock.acquire()
        with pytest.raises(DeadlockError):
            lock.acquire()  # kernel side would sleep forever (1 thread)
        assert lock.kernel_waits_on_user == 1

    def test_kernel_wait_on_user_checked_against_atomic(self, kernel):
        dm = DomainManager()
        lock = ComboLock(kernel, dm, "t")
        with dm.entered(DECAF):
            lock.acquire()
        spin = SpinLock(kernel, "s")
        with spin:
            with pytest.raises(SleepInAtomicError):
                lock.acquire()


class TestRuntimes:
    def test_nuclear_runtime_masks_device_irq_during_upcall(self, kernel):
        from repro.core.runtime import NuclearRuntime

        dm = DomainManager()
        xpc = Xpc(kernel)
        channel = XpcChannel(xpc, dm)
        nuclear = NuclearRuntime(kernel, dm, channel, irq_line=6)
        fired = []
        kernel.irq.request_irq(6, lambda i, d: fired.append(1) or 1, "t")

        def user_func():
            kernel.irq.raise_irq(6)  # device interrupts mid-upcall
            assert fired == []       # masked while decaf code runs
            return 0

        nuclear.upcall(user_func)
        assert fired == [1]  # delivered after the upcall returns

    def test_decaf_runtime_shared_object_lifecycle(self, kernel):
        from repro.core.runtime import DecafRuntime

        dm = DomainManager()
        xpc = Xpc(kernel)
        channel = XpcChannel(xpc, dm)
        rt = DecafRuntime(kernel, dm, channel)
        used0 = kernel.memory.used_bytes
        obj = rt.new_shared(t_outer, weak=True)
        assert kernel.memory.used_bytes > used0
        del obj
        gc.collect()
        assert kernel.memory.used_bytes == used0  # finalizer freed it

    def test_decaf_runtime_explicit_free(self, kernel):
        from repro.core.runtime import DecafRuntime

        dm = DomainManager()
        channel = XpcChannel(Xpc(kernel), dm)
        rt = DecafRuntime(kernel, dm, channel)
        used0 = kernel.memory.used_bytes
        obj = rt.new_shared(t_outer, weak=False)
        rt.free_shared(obj)
        assert kernel.memory.used_bytes == used0

    def test_jvm_startup_charged_once(self, kernel):
        from repro.core.runtime import DecafRuntime

        dm = DomainManager()
        channel = XpcChannel(Xpc(kernel), dm)
        rt = DecafRuntime(kernel, dm, channel)
        t0 = kernel.now_ns()
        rt.start()
        startup = kernel.now_ns() - t0
        assert startup == kernel.costs.jvm_startup_ns
        rt.start()
        assert kernel.now_ns() - t0 == startup  # second start free
