"""Property-based round-trip tests for every registered CStruct codec.

Two properties over randomized instances of every struct the legacy
drivers register:

* **Byte identity**: encode -> decode -> encode reproduces the original
  wire bytes exactly.  The re-encode runs against a tracker-backed
  context (like the XPC channel's user side), so the decoded twin
  translates back to the identity it arrived under -- the ``xlate_j_to_c``
  direction of Fig. 2.

* **Delta reconstruction**: decoding a twin, marking it clean, dirtying
  a random subset of scalar/string fields, and delta-marshaling it back
  into the original object leaves the two graphs equal -- the delta wire
  carries enough to reconstruct the mutation, and nothing it carries
  corrupts the rest.

Randomness is seed-driven (hypothesis supplies the seed) so failures
shrink to a small integer and replay deterministically.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# Importing the legacy driver modules registers their structs.
import repro.drivers.legacy.e1000_main  # noqa: F401
import repro.drivers.legacy.ens1371  # noqa: F401
import repro.drivers.legacy.psmouse  # noqa: F401
import repro.drivers.legacy.rtl8139  # noqa: F401
import repro.drivers.legacy.uhci_hcd  # noqa: F401
from repro.core.cstruct import (
    Array,
    Exp,
    Null,
    Opaque,
    Ptr,
    Str,
    Struct,
    StructRegistry,
)
from repro.core.marshal import (
    MarshalCodec,
    MarshalPlan,
    TO_USER,
    TransferContext,
)

STRUCTS = [cls for _, cls in sorted(StructRegistry.all_structs().items())]
STRUCT_IDS = [cls.__name__ for cls in STRUCTS]

ALPHA = "abcdefghijklmnopqrstuvwxyz0123456789_"


def _is_ref_ptr(field):
    """Pointer field that marshals an object graph (not opaque/exp/null)."""
    return (
        isinstance(field.ctype, Ptr)
        and field.annotation(Opaque) is None
        and field.annotation(Exp) is None
        and field.annotation(Null) is None
    )


class EchoCtx(TransferContext):
    """The channel's tracker pair folded into one context.

    Decode remembers wire-identity -> twin; re-encoding the twin maps it
    back to the identity it arrived under, exactly how the user-side
    object tracker keeps kernel addresses canonical across round trips.
    """

    def __init__(self):
        self.by_identity = {}
        self.by_twin = {}

    def resolve(self, identity, struct_cls, type_id):
        obj = self.by_identity.get(identity)
        if obj is not None:
            return obj, False
        obj = struct_cls()
        self.by_identity[identity] = obj
        self.by_twin[id(obj)] = identity
        return obj, True

    def register(self, identity, struct_cls, type_id, obj):
        self.by_identity.setdefault(identity, obj)
        self.by_twin.setdefault(id(obj), identity)

    def identity_of(self, obj):
        return self.by_twin.get(id(obj), obj.c_addr)

    def handle_of(self, obj):
        if obj is None:
            return 0
        if isinstance(obj, int):
            return obj
        return id(obj)

    def object_of(self, handle):
        return handle


class GraphCtx(TransferContext):
    """Resolve wire identities against an existing object graph.

    The kernel tracker's address aliasing reduced to a dict: a delta
    decoded with this context lands in the original objects rather than
    allocating twins.
    """

    def __init__(self, roots):
        self.objects = {}
        for root in roots:
            self._index(root)

    def _index(self, obj):
        if obj is None or obj.c_addr in self.objects:
            return
        self.objects[obj.c_addr] = obj
        for field in obj.fields():
            if isinstance(field.ctype, Struct) or _is_ref_ptr(field):
                self._index(getattr(obj, field.name))

    def resolve(self, identity, struct_cls, type_id):
        return self.objects[identity], False

    def handle_of(self, obj):
        if obj is None:
            return 0
        if isinstance(obj, int):
            return obj
        return id(obj)

    def object_of(self, handle):
        return handle


def fill_random(obj, rng, depth=0):
    """Randomize every field of ``obj`` in place (recursing into graphs)."""
    for field in obj.fields():
        ct = field.ctype
        if isinstance(ct, Struct):
            fill_random(getattr(obj, field.name), rng, depth)
        elif isinstance(ct, Str):
            n = rng.randrange(ct.length + 1)
            setattr(
                obj, field.name,
                "".join(rng.choice(ALPHA) for _ in range(n)),
            )
        elif isinstance(ct, Array):
            setattr(
                obj, field.name,
                [ct.elem.clamp(rng.getrandbits(64)) for _ in range(ct.length)],
            )
        elif isinstance(ct, Ptr):
            if field.annotation(Null) is not None:
                setattr(obj, field.name, None)
            elif field.annotation(Opaque) is not None:
                setattr(obj, field.name, rng.getrandbits(32))
            elif field.annotation(Exp) is not None:
                if rng.random() < 0.3:
                    setattr(obj, field.name, None)
                else:
                    setattr(
                        obj, field.name,
                        [rng.getrandbits(32)
                         for _ in range(rng.randrange(4))],
                    )
            elif depth >= 2 or rng.random() < 0.5:
                setattr(obj, field.name, None)
            else:
                child = ct.resolve()()
                fill_random(child, rng, depth + 1)
                setattr(obj, field.name, child)
        else:
            setattr(obj, field.name, ct.clamp(rng.getrandbits(64)))


def clear_graph_dirty(obj, seen=None):
    if seen is None:
        seen = set()
    if obj is None or id(obj) in seen:
        return
    seen.add(id(obj))
    obj.clear_dirty()
    for field in obj.fields():
        if isinstance(field.ctype, Struct) or _is_ref_ptr(field):
            clear_graph_dirty(getattr(obj, field.name), seen)


def assert_graphs_equal(a, b, seen=None):
    if seen is None:
        seen = set()
    assert (a is None) == (b is None)
    if a is None or (id(a), id(b)) in seen:
        return
    seen.add((id(a), id(b)))
    assert type(a) is type(b)
    for field in a.fields():
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if isinstance(field.ctype, Struct) or _is_ref_ptr(field):
            assert_graphs_equal(va, vb, seen)
        elif (isinstance(field.ctype, Ptr)
                and field.annotation(Null) is not None):
            pass  # dropped at the boundary by design
        else:
            assert va == vb, "%s.%s: %r != %r" % (
                type(a).__name__, field.name, va, vb)


@pytest.mark.parametrize("compiled", [True, False], ids=["compiled", "interp"])
@pytest.mark.parametrize("struct_cls", STRUCTS, ids=STRUCT_IDS)
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_encode_decode_encode_byte_identical(struct_cls, compiled, seed):
    rng = random.Random(seed)
    obj = struct_cls()
    fill_random(obj, rng)
    # An empty plan marshals every field in both directions, so the
    # property covers the full codec for each struct.
    codec = MarshalCodec(MarshalPlan(), compiled=compiled)
    ctx = EchoCtx()
    wire1 = codec.encode(obj, struct_cls, TO_USER, ctx=ctx)
    twin = codec.decode(wire1, struct_cls, TO_USER, ctx=ctx)
    wire2 = codec.encode(twin, struct_cls, TO_USER, ctx=ctx)
    assert bytes(wire2) == bytes(wire1)


@pytest.mark.parametrize("struct_cls", STRUCTS, ids=STRUCT_IDS)
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_delta_of_random_dirty_subset_reconstructs(struct_cls, seed):
    rng = random.Random(seed)
    obj = struct_cls()
    fill_random(obj, rng)
    codec = MarshalCodec(MarshalPlan())
    echo = EchoCtx()
    wire = codec.encode(obj, struct_cls, TO_USER, ctx=echo)
    twin = codec.decode(wire, struct_cls, TO_USER, ctx=echo)

    # The channel marks twins clean after each transfer; mimic that,
    # then dirty a random subset of scalar/string fields.
    clear_graph_dirty(twin)
    mutable = [
        f for f in struct_cls.fields()
        if isinstance(f.ctype, Str)
        or not isinstance(f.ctype, (Struct, Ptr, Array, Str))
    ]
    subset = (rng.sample(mutable, rng.randrange(len(mutable) + 1))
              if mutable else [])
    for f in subset:
        if isinstance(f.ctype, Str):
            n = rng.randrange(f.ctype.length + 1)
            setattr(twin, f.name,
                    "".join(rng.choice(ALPHA) for _ in range(n)))
        else:
            setattr(twin, f.name, f.ctype.clamp(rng.getrandbits(64)))

    delta = codec.encode(twin, struct_cls, TO_USER, ctx=echo, delta=True)
    back = codec.decode(delta, struct_cls, TO_USER, ctx=GraphCtx([obj]),
                        delta=True)
    assert back is obj  # identity resolved to the original, not a twin
    assert_graphs_equal(obj, twin)


def test_registry_covers_all_five_drivers():
    """The parametrization above spans every driver family's structs."""
    names = set(STRUCT_IDS)
    assert {"e1000_adapter", "rtl8139_private", "ensoniq",
            "psmouse_struct", "uhci_hcd_state"} <= names
    assert len(names) >= 12
