"""C-struct type system."""

import pytest

from repro.core import (
    Array,
    CStruct,
    Exp,
    I16,
    I32,
    Null,
    Opaque,
    Ptr,
    Str,
    Struct,
    StructRegistry,
    U8,
    U16,
    U32,
    U64,
)


class point(CStruct):
    FIELDS = [("x", I32), ("y", I32)]


class wrapper(CStruct):
    FIELDS = [
        ("head", Struct(point)),       # first member: same address
        ("tag", U16),
        ("tail", Struct(point)),
        ("name", Str(8)),
        ("values", Array(U8, 4)),
        ("next", Ptr("wrapper")),
        ("secret", Ptr("point"), Opaque()),
        ("lengths", Ptr(U32), Exp("ETH_ALEN")),
    ]


class TestScalars:
    def test_sizes(self):
        assert U8.size == 1 and U16.size == 2 and U32.size == 4 and U64.size == 8

    def test_clamp_unsigned(self):
        assert U8.clamp(0x1FF) == 0xFF
        assert U16.clamp(-1) == 0xFFFF

    def test_clamp_signed(self):
        assert I16.clamp(0x8000) == -0x8000
        assert I32.clamp(-5) == -5

    def test_xdr_names(self):
        assert U32.xdr_type() == "unsigned int"
        assert U64.xdr_type() == "unsigned hyper"
        assert I32.xdr_type() == "int"


class TestLayout:
    def test_sizeof(self):
        assert point.sizeof() == 8
        # head(8) + tag(2) + tail(8) + name(8) + values(4) + 3 pointers(24)
        assert wrapper.sizeof() == 8 + 2 + 8 + 8 + 4 + 24

    def test_field_offsets_monotonic(self):
        offsets = [f.offset for f in wrapper.fields()]
        assert offsets == sorted(offsets)

    def test_defaults(self):
        w = wrapper()
        assert w.tag == 0
        assert w.name == ""
        assert w.values == [0, 0, 0, 0]
        assert w.next is None
        assert isinstance(w.head, point)

    def test_kwargs_constructor(self):
        p = point(x=1, y=-2)
        assert (p.x, p.y) == (1, -2)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(AttributeError):
            point(z=1)


class TestAddresses:
    def test_unique_addresses(self):
        a, b = point(), point()
        assert a.c_addr != b.c_addr

    def test_first_member_shares_address(self):
        """The aliasing the user-level tracker disambiguates: a struct
        embedded as first member has the outer struct's address."""
        w = wrapper()
        assert w.head.c_addr == w.c_addr

    def test_later_member_offset_address(self):
        w = wrapper()
        field = wrapper.field("tail")
        assert w.tail.c_addr == w.c_addr + field.offset


class TestRegistry:
    def test_lookup_by_name(self):
        assert StructRegistry.get("point") is point

    def test_ptr_resolution(self):
        field = wrapper.field("next")
        assert field.ctype.resolve() is wrapper

    def test_annotations_found(self):
        assert wrapper.field("secret").annotation(Opaque) is not None
        assert wrapper.field("lengths").annotation(Exp).expr == "ETH_ALEN"
        assert wrapper.field("next").annotation(Opaque) is None
