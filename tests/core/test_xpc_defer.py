"""XPC fast path: deferred notifications, delta return trips, handles.

Covers the batched one-way crossing queue (coalescing, sync-point
flush, atomic-context legality, cost accounting), the dirty-field
delta return path (a field written by neither side must not cross
back), and the opaque-handle table (weak entries, release on close).
"""

import gc

import pytest

from repro.core import (
    CStruct,
    DomainManager,
    I32,
    Opaque,
    Ptr,
    Struct,
    U32,
    Xpc,
    XpcChannel,
)
from repro.kernel import SleepInAtomicError, SpinLock


class xd_leaf(CStruct):
    FIELDS = [("v", U32)]


class xd_state(CStruct):
    FIELDS = [
        ("n", I32),
        ("m", I32),
        ("first", Struct(xd_leaf)),
        ("peer", Ptr("xd_state")),
        ("secret", Ptr(xd_leaf), Opaque()),
    ]


def make_channel(kernel):
    dm = DomainManager()
    xpc = Xpc(kernel)
    return XpcChannel(xpc, dm), xpc


class TestDeferredNotifications:
    def test_coalesce_and_single_crossing(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state(n=1)
        channel.kernel_tracker.register(obj)
        seen = []

        def tick(twin):
            seen.append(twin.n)

        for i in range(5):
            obj.n = i
            channel.defer(tick, args=[(obj, xd_state)])
        assert xpc.deferred_calls == 5
        assert xpc.deferred_coalesced == 4
        assert channel.pending_deferred() == 1
        assert xpc.kernel_user_crossings == 0   # nothing crossed yet

        assert channel.flush_deferred() == 1
        assert seen == [4]                      # only the latest tick ran
        assert xpc.kernel_user_crossings == 1
        assert xpc.deferred_flushes == 1

    def test_distinct_funcs_batch_in_one_crossing(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []
        funcs = [lambda twin, i=i: ran.append(i) for i in range(3)]
        for func in funcs:
            channel.defer(func, args=[(obj, xd_state)])
        assert channel.pending_deferred() == 3
        assert channel.flush_deferred() == 3
        assert ran == [0, 1, 2]
        assert xpc.kernel_user_crossings == 1   # the whole batch, once

    def test_batch_cheaper_than_individual_upcalls(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        funcs = [lambda twin, i=i: None for i in range(3)]
        for func in funcs:
            channel.defer(func, args=[(obj, xd_state)])
        t0 = kernel.now_ns()
        channel.flush_deferred()
        elapsed = kernel.now_ns() - t0
        # One thread dispatch for the batch; three upcalls would pay
        # two dispatches each.
        assert elapsed < 2 * kernel.costs.xpc_thread_dispatch_ns

    def test_defer_legal_in_atomic_context_flush_is_not(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []
        lock = SpinLock(kernel, "t")
        with lock:
            channel.defer(lambda twin: ran.append(1),
                          args=[(obj, xd_state)])  # queue only: legal
            with pytest.raises(SleepInAtomicError):
                channel.flush_deferred()
        assert ran == []
        channel.flush_deferred()                  # process context: fine
        assert ran == [1]

    def test_upcall_is_a_sync_point(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []
        channel.defer(lambda twin: ran.append("deferred"),
                      args=[(obj, xd_state)])
        channel.upcall(lambda twin: ran.append("upcall"),
                       args=[(obj, xd_state)])
        assert ran == ["upcall", "deferred"]   # drained after the call
        assert channel.pending_deferred() == 0
        assert xpc.kernel_user_crossings == 2  # upcall + one batch

    def test_downcall_is_a_sync_point(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []
        channel.defer(lambda twin: ran.append("deferred"),
                      args=[(obj, xd_state)])
        channel.downcall(lambda twin: ran.append("downcall"),
                         args=[(obj, xd_state)])
        assert ran == ["downcall", "deferred"]

    def test_handler_error_swallowed_and_counted(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []

        def boom(twin):
            raise RuntimeError("notification handler died")

        channel.defer(boom, args=[(obj, xd_state)])
        channel.defer(lambda twin: ran.append(1), args=[(obj, xd_state)])
        assert channel.flush_deferred() == 2
        assert xpc.deferred_errors == 1
        assert ran == [1]                      # later items still run

    def test_handler_may_downcall_without_recursion(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        ran = []

        def notif(twin):
            channel.downcall(lambda t: ran.append("down"),
                             args=[(obj, xd_state)])

        channel.defer(notif, args=[(obj, xd_state)])
        channel.flush_deferred()
        assert ran == ["down"]
        assert xpc.deferred_flushes == 1       # no reentrant second flush

    def test_close_drops_pending(self, kernel):
        channel, xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)
        channel.defer(lambda twin: None, args=[(obj, xd_state)])
        channel.close()
        assert channel.pending_deferred() == 0
        assert xpc.deferred_dropped == 1
        channel.close()                        # idempotent
        assert xpc.deferred_dropped == 1


class TestDeltaReturnTrips:
    def test_unwritten_field_does_not_cross_back(self, kernel):
        """A field written by neither side must not cross back: the
        return trip would otherwise clobber concurrent kernel-side
        state with the twin's stale forward-copy."""
        channel, _xpc = make_channel(kernel)
        obj = xd_state(n=1, m=10)
        channel.kernel_tracker.register(obj)

        def func(twin):
            obj.m = 99   # kernel-side write while user code runs
            twin.n = 2   # user writes only n

        channel.upcall(func, args=[(obj, xd_state)])
        assert obj.n == 2     # written by user: crossed back
        assert obj.m == 99    # untouched by user: kernel value survives

    def test_written_embedded_field_crosses_back(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)

        def func(twin):
            twin.first.v = 7   # in-place write on the embedded child

        channel.upcall(func, args=[(obj, xd_state)])
        assert obj.first.v == 7

    def test_new_object_attached_by_user_crosses_fully(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_state()
        channel.kernel_tracker.register(obj)

        def func(twin):
            twin.peer = xd_state(n=7)

        channel.upcall(func, args=[(obj, xd_state)])
        assert obj.peer is not None
        assert obj.peer.n == 7

    def test_downcall_return_is_delta_too(self, kernel):
        channel, _xpc = make_channel(kernel)
        # Shared pair, as runtime.new_shared sets it up: a user object
        # associated with its registered kernel twin.
        java_obj = xd_state(n=1, m=10)
        kernel_twin = xd_state()
        channel.kernel_tracker.register(kernel_twin)
        channel.user_tracker.associate(
            kernel_twin.c_addr, channel.type_ids.id_of(xd_state), java_obj
        )

        def kfunc(twin):
            twin.n = 5       # kernel writes n only
            java_obj.m = 77  # user-side write while kernel runs

        channel.downcall(kfunc, args=[(java_obj, xd_state)])
        assert java_obj.n == 5
        assert java_obj.m == 77   # not clobbered by the return trip

    def test_return_bytes_shrink_with_delta(self, kernel):
        """The delta return trip moves fewer bytes than the forward
        transfer of the same struct."""
        channel, xpc = make_channel(kernel)
        obj = xd_state(n=1, m=2)
        channel.kernel_tracker.register(obj)
        channel.upcall(lambda twin: None, args=[(obj, xd_state)])
        forward_and_back = xpc.bytes_marshaled
        # A no-write call's return trip is just headers: well under
        # half the round-trip bytes belong to the return leg.
        assert forward_and_back < 2 * (forward_and_back / 2 + 40)
        skipped = channel.codec.delta_fields_skipped
        assert skipped >= 4   # n, m, peer, secret stayed home


class TestHandleTable:
    def test_round_trip_restores_kernel_object(self, kernel):
        channel, _xpc = make_channel(kernel)
        secret = xd_leaf(v=9)
        obj = xd_state(secret=secret)
        channel.kernel_tracker.register(obj)
        crossing = {}

        def func(twin):
            crossing["handle"] = twin.secret
            twin.secret = twin.secret   # hand the same handle back

        channel.upcall(func, args=[(obj, xd_state)])
        assert isinstance(crossing["handle"], int)   # user sees no object
        assert obj.secret is secret                  # kernel got it back

    def test_weak_entry_released_by_gc(self, kernel):
        channel, _xpc = make_channel(kernel)
        obj = xd_leaf(v=1)
        handle = channel.handle_of(obj)
        assert channel.object_of(handle) is obj
        assert channel.handle_count() == 1
        del obj
        gc.collect()
        assert channel.handle_count() == 0           # no leak

    def test_non_weakrefable_falls_back_to_strong(self, kernel):
        channel, _xpc = make_channel(kernel)
        payload = [1, 2, 3]                          # lists have no weakrefs
        handle = channel.handle_of(payload)
        assert channel.object_of(handle) is payload
        assert channel.handle_count() == 1

    def test_release_on_close(self, kernel):
        channel, _xpc = make_channel(kernel)
        keep = [xd_leaf(v=i) for i in range(5)]
        for obj in keep:
            channel.handle_of(obj)
        channel.handle_of([1, 2])
        assert channel.handle_count() == 6
        channel.close()
        assert channel.handle_count() == 0
