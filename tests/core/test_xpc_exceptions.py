"""XPC exception safety: a raising callee must not corrupt state."""

import pytest

from repro.core import CStruct, DomainManager, U32, Xpc, XpcChannel
from repro.core.domains import DECAF, KERNEL
from repro.drivers.decaf.exceptions import (
    DriverException,
    HardwareException,
    errno_of,
)
from repro.drivers.decaf.plumbing import DecafPlumbing
from repro.core.marshal import MarshalPlan


class x_state(CStruct):
    FIELDS = [("v", U32)]


@pytest.fixture
def channel(kernel):
    return XpcChannel(Xpc(kernel), DomainManager())


class TestXpcExceptionSafety:
    def test_domain_stack_restored_after_upcall_raise(self, channel):
        obj = x_state()
        channel.kernel_tracker.register(obj)

        def boom(twin):
            raise RuntimeError("user code crashed")

        with pytest.raises(RuntimeError):
            channel.upcall(boom, args=[(obj, x_state)])
        assert channel.domains.current == KERNEL
        assert channel.domains.depth == 1

    def test_domain_stack_restored_after_downcall_raise(self, channel):
        obj = x_state()
        channel.kernel_tracker.register(obj)
        channel.domains.push(DECAF)

        def boom(twin):
            raise RuntimeError("kernel entry crashed")

        with pytest.raises(RuntimeError):
            channel.downcall(boom, args=[(obj, x_state)])
        assert channel.domains.current == DECAF
        channel.domains.pop(DECAF)

    def test_channel_usable_after_exception(self, channel):
        obj = x_state(v=1)
        channel.kernel_tracker.register(obj)

        def boom(twin):
            twin.v = 99
            raise RuntimeError("late crash")

        with pytest.raises(RuntimeError):
            channel.upcall(boom, args=[(obj, x_state)])
        # Writes before the crash are NOT propagated (no return
        # marshal), matching RPC semantics.
        assert obj.v == 1
        # The channel still works.
        ret = channel.upcall(lambda twin: twin.v, args=[(obj, x_state)])
        assert ret == 1

    def test_plumbing_translates_driver_exceptions(self, kernel):
        plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())

        def boom():
            raise HardwareException("dead device", errno=19)

        ret = plumbing.upcall(boom)
        assert ret == -19

    def test_plumbing_contains_foreign_exceptions(self, kernel):
        # A non-DriverException escaping the decaf half is a driver
        # *bug*; the failure boundary converts it to an errno and marks
        # the driver failed instead of letting it unwind kernel code.
        plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())

        def boom():
            raise ValueError("a genuine bug, not a driver error")

        ret = plumbing.upcall(boom)
        assert ret == errno_of(ValueError())
        assert plumbing.channel.failed
        assert plumbing.xpc.boundary_faults == 1

    def test_errno_mapping(self):
        assert errno_of(HardwareException("x", errno=5)) == -5
        assert errno_of(DriverException("y")) == -5
        assert errno_of(ValueError()) == -5

    def test_downcall_checked_raises_typed_exception(self, kernel):
        plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())

        def failing_kernel_entry():
            return -12  # -ENOMEM

        with pytest.raises(DriverException) as excinfo:
            plumbing.downcall_checked(failing_kernel_entry)
        assert excinfo.value.errno == 12
