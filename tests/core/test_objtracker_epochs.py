"""Tracker epochs across restarts: stale finalizers must never free
a successor's twins.

``UserObjectTracker.clear()`` (called by ``reset_user_side`` on every
supervised restart) bumps an epoch that disarms finalizers belonging to
the dead driver instance.  Without it, the GC of generation-N objects
would evict entries a generation-N+1 driver re-created at the same
``(c_addr, type_id)`` keys -- a use-after-free of live twin handles.
These tests pin the epoch discipline at unit level and then across two
real supervised restarts.
"""

import gc

import pytest

from repro.core import CStruct, U32, UserObjectTracker
from repro.faults import FaultPlan, FaultSpec
from repro.workloads import make_psmouse_rig, move_and_click


class t_twin(CStruct):
    FIELDS = [("v", U32)]


class Handle:
    """Stand-in for a user-level ('Java') driver object."""


TYPE_ID = "codec:t_twin"


class TestEpochUnit:
    def test_clear_bumps_epoch_once_per_call(self):
        tracker = UserObjectTracker()
        start = tracker._epoch
        tracker.clear()
        tracker.clear()
        assert tracker._epoch == start + 2

    def test_stale_finalizer_is_disarmed_by_clear(self):
        """GC of a pre-restart object must not evict the post-restart
        association living at the same key."""
        released = []
        tracker = UserObjectTracker()
        tracker.release_hook = lambda addr, tid: released.append(addr)

        old = Handle()
        tracker.associate(0x1000, TYPE_ID, old, weak=True)
        tracker.clear()  # restart: old generation's entries dropped

        new = Handle()
        tracker.associate(0x1000, TYPE_ID, new, weak=True)
        del old
        gc.collect()

        assert tracker.xlate_c_to_j(0x1000, TYPE_ID) is new
        assert tracker.auto_released == 0
        assert released == []

    def test_middle_generation_finalizers_stay_dead(self):
        """Two restarts: objects from *both* earlier generations may be
        collected in any order without touching the live generation."""
        released = []
        tracker = UserObjectTracker()
        tracker.release_hook = lambda addr, tid: released.append(addr)

        gen1 = [Handle() for _ in range(4)]
        for i, obj in enumerate(gen1):
            tracker.associate(0x2000 + i, TYPE_ID, obj, weak=True)
        tracker.clear()  # restart #1

        gen2 = [Handle() for _ in range(4)]
        for i, obj in enumerate(gen2):
            tracker.associate(0x2000 + i, TYPE_ID, obj, weak=True)
        tracker.clear()  # restart #2

        gen3 = [Handle() for _ in range(4)]
        for i, obj in enumerate(gen3):
            tracker.associate(0x2000 + i, TYPE_ID, obj, weak=True)

        del gen1, gen2
        gc.collect()

        assert len(tracker) == 4
        for i, obj in enumerate(gen3):
            assert tracker.xlate_c_to_j(0x2000 + i, TYPE_ID) is obj
        assert tracker.auto_released == 0
        assert released == []

    def test_live_generation_finalizer_still_releases(self):
        """The epoch guard must not break the feature it guards: GC of
        a *current* generation object does release its twin."""
        released = []
        tracker = UserObjectTracker()
        tracker.release_hook = lambda addr, tid: released.append(addr)

        obj = Handle()
        tracker.associate(0x3000, TYPE_ID, obj, weak=True)
        del obj
        gc.collect()

        assert tracker.auto_released == 1
        assert released == [0x3000]
        assert len(tracker) == 0

    def test_explicit_disassociate_then_gc_is_not_a_double_free(self):
        """An explicitly released handle must not be released again by
        its finalizer: the hook frees the kernel twin, and freeing it
        twice corrupts the kernel-side tracker."""
        released = []
        tracker = UserObjectTracker()
        tracker.release_hook = lambda addr, tid: released.append(addr)

        obj = Handle()
        tracker.associate(0x4000, TYPE_ID, obj, weak=True)
        tracker.disassociate(obj)
        del obj
        gc.collect()

        assert released == []
        assert tracker.auto_released == 0


class TestEpochAcrossSupervisedRestarts:
    @pytest.fixture(scope="class")
    def twice_recovered_rig(self):
        """A decaf psmouse that faults and recovers twice: the 1 Hz
        resync poll blows up on its first and second post-arming runs."""
        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        rig.supervise()
        rig.inject_faults(FaultPlan([
            FaultSpec("xpc_raise", callsite="resync_check", at=1),
            FaultSpec("xpc_raise", callsite="resync_check", at=2),
        ]))
        result = move_and_click(rig, duration_s=4.0, trace=True)
        return rig, result

    def test_two_restarts_bump_epoch_twice(self, twice_recovered_rig):
        rig, result = twice_recovered_rig
        assert result.recoveries == 2
        assert not rig.supervisor.gave_up
        assert rig.channel.user_tracker._epoch == 2

    def test_no_stale_release_after_restarts(self, twice_recovered_rig):
        """Collecting the dead generations' garbage releases nothing:
        every finalizer armed before a restart is epoch-disarmed."""
        rig, _result = twice_recovered_rig
        before = rig.channel.user_tracker.auto_released
        gc.collect()
        assert rig.channel.user_tracker.auto_released == before

    def test_driver_is_live_after_two_restarts(self, twice_recovered_rig):
        """The restarted instance's own twins work: the mouse still
        turns movement into input events through the new user half."""
        rig, result = twice_recovered_rig
        assert not rig.channel.failed
        assert result.extra["input_events"] > 0
