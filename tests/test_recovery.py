"""Supervised recovery: the ISSUE's acceptance criterion, end to end.

An unchecked exception is injected (via the deterministic fault
harness) into each of the four decaf drivers *mid-workload*.  The
exception must never propagate past the XPC boundary: the supervisor
quiesces, restarts the user half, replays the configuration log, and
the workload runs to completion.  Recoveries and lost work surface in
the WorkloadResult row and as ``recovery.*`` tracepoints.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
    move_and_click,
    mpg123_play,
    netperf_send,
    tar_to_flash,
)
from repro.workloads.netperf import _wait_for_progress


def _supervised(make_rig, callsite, at=1):
    rig = make_rig(decaf=True)
    rig.insmod()
    rig.supervise()
    rig.inject_faults(FaultPlan([
        FaultSpec("xpc_raise", callsite=callsite, at=at),
    ]))
    return rig


def _assert_recovered(rig, result, driver):
    assert result.faults_injected == 1
    assert result.recoveries == 1
    counters = result.trace_summary["counters"]
    assert counters["recovery.faults|%s" % driver] == 1
    assert counters["recovery.recoveries|%s" % driver] == 1
    assert counters["fault.injected|%s" % driver] == 1
    # The channel is healthy again and the fault left dmesg evidence.
    assert not rig.channel.failed
    assert not rig.supervisor.gave_up
    assert any("driver restarted" in message
               for _ns, message in rig.kernel.log_lines)


class TestMidWorkloadRecovery:
    """One test per decaf driver: fault mid-workload, finish anyway."""

    def test_e1000_recovers_during_netperf_send(self):
        # The watchdog notification flush (an async crossing with no
        # caller to retry for) blows up ~2 s into the stream.
        rig = _supervised(make_e1000_rig, "watchdog")
        result = netperf_send(rig, duration_s=4.0, trace=True)
        _assert_recovered(rig, result, "e1000")
        assert result.packets > 0
        assert result.throughput_mbps > 0

    def test_rtl8139_recovers_during_netperf_send(self):
        # The link-watch thread upcall (a sync crossing: the plumbing
        # recovers and retries, the caller never sees the fault).
        rig = _supervised(make_8139too_rig, "thread")
        result = netperf_send(rig, duration_s=4.0, trace=True)
        _assert_recovered(rig, result, "8139too")
        assert result.packets > 0

    def test_ens1371_recovers_during_playback(self):
        # The START trigger itself faults; recovery happens *inside*
        # the trigger upcall and the retry returns success, so playback
        # proceeds from the first sample.
        rig = _supervised(make_ens1371_rig, "playback_trigger")
        result = mpg123_play(rig, duration_s=2.0, trace=True)
        _assert_recovered(rig, result, "ens1371")
        assert result.bytes_moved > 0

    def test_psmouse_recovers_during_move_and_click(self):
        # The 1 Hz resync health poll faults; the replayed connect
        # re-detects and re-enables the mouse, dropping the samples
        # that arrived while reporting was off.
        rig = _supervised(make_psmouse_rig, "resync_check")
        result = move_and_click(rig, duration_s=3.0, trace=True)
        _assert_recovered(rig, result, "psmouse")
        assert result.packets > 0
        assert result.extra["input_events"] > 0

    def test_uhci_recovers_during_tar(self):
        # The root-hub status poll faults.  uhci's data path is
        # kernel-resident (the 4%-converted split), so the archive
        # lands complete with zero lost work.
        rig = _supervised(make_uhci_rig, "rh_status_check")
        result = tar_to_flash(rig, trace=True)
        _assert_recovered(rig, result, "uhci_hcd")
        assert result.bytes_moved == 2 * 1024 * 1024
        assert result.packets_lost == 0


class TestRecoveryBudget:
    def test_supervisor_gives_up_past_budget(self):
        # Three deterministic faults against a budget of two: the
        # third recovery attempt is refused and the driver stays
        # FAILED -- but the kernel-resident data path keeps running,
        # so the workload still finishes.
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        rig.supervise(max_recoveries=2)
        rig.inject_faults(FaultPlan([
            FaultSpec("xpc_raise", callsite="thread", at=1),
            FaultSpec("xpc_raise", callsite="thread", at=2),
            FaultSpec("xpc_raise", callsite="thread", at=3),
        ]))
        result = netperf_send(rig, duration_s=8.0)
        assert result.faults_injected == 3
        assert result.recoveries == 2
        assert rig.supervisor.gave_up
        assert rig.channel.failed
        assert result.packets > 0
        assert any("giving up" in message
                   for _ns, message in rig.kernel.log_lines)


class TestUnsupervisedContainment:
    def test_fault_is_contained_even_without_supervisor(self):
        # No supervisor attached: the boundary still contains the
        # fault (fail-fast, no recovery), and the periodic health poll
        # that would inject it never runs -- so arm the fault on the
        # open upcall instead.
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        rig.inject_faults(FaultPlan([
            FaultSpec("xpc_raise", callsite="open"),
        ]))
        dev = rig.netdev()
        ret = rig.kernel.net.dev_open(dev)
        assert ret < 0
        assert rig.channel.failed
        assert rig.xpc.boundary_faults == 1


class TestWedgeDetection:
    """Satellite: a recovery outage must not read as a wedged device,
    and a genuinely wedged device must still fail loudly."""

    def test_genuine_wedge_still_raises(self, kernel):
        assert kernel.events.peek_time() is None  # precondition
        with pytest.raises(RuntimeError, match="wedged"):
            _wait_for_progress(kernel, kernel.clock.now_ns + 1, rig=None)

    def test_supervised_but_idle_rig_still_raises(self, kernel):
        class _IdleRig:
            @staticmethod
            def recovery_pending():
                return False

        assert kernel.events.peek_time() is None
        with pytest.raises(RuntimeError, match="wedged"):
            _wait_for_progress(kernel, kernel.clock.now_ns + 1, _IdleRig())

    def test_pending_recovery_suppresses_wedge_error(self, kernel):
        class _RecoveringRig:
            @staticmethod
            def recovery_pending():
                return True

        assert kernel.events.peek_time() is None
        before = kernel.clock.now_ns
        _wait_for_progress(kernel, before + 10_000_000, _RecoveringRig())
        # It waited for the recovery work item instead of raising.
        assert kernel.clock.now_ns == before + 1_000_000
