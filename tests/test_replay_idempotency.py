"""Replay-log idempotency when recovery races a deferred flush.

A fault surfacing in ``flush_deferred`` has no caller to retry for, so
the supervisor schedules an asynchronous restart work item.  If a sync
upcall hits the FAILED channel before that work item runs, the sync
path recovers first (so the caller's retry can proceed) and the work
item must then find a healthy channel and do *nothing* -- one fault,
one restart, one replay of the configuration log.  Double-replaying
would re-run probe/open against an already-configured device and
double-apply any non-idempotent side effects.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.workloads import make_e1000_rig, netperf_send


@pytest.fixture
def rig():
    r = make_e1000_rig(decaf=True)
    r.insmod()
    r.supervise()
    dev = r.netdev()
    assert r.kernel.net.dev_open(dev) == 0
    return r


def _fail_in_flush(rig):
    """Mark the channel FAILED the way a deferred-flush fault does:
    contained with no caller, async restart scheduled."""
    contained = rig.channel._contain(
        RuntimeError("injected flush fault"), "flush_deferred")
    assert contained
    assert rig.channel.failed


class TestSyncRecoveryPreemptsAsync:
    def test_one_fault_one_recovery_one_replay(self, rig):
        sup = rig.supervisor
        plumbing = rig.module.instance.plumbing
        log_len = len(plumbing.replay_log)
        assert log_len > 0  # probe/open were recorded

        _fail_in_flush(rig)
        assert sup._work_pending  # the async restart is queued

        # A sync caller hits the FAILED channel first and recovers
        # inline so its retry can go through.
        assert sup.recover() is True
        assert sup.recoveries == 1
        assert sup.replayed_ops == log_len

        # The queued work item now runs against a healthy channel: it
        # must not restart or replay again.
        rig.kernel.run_for_ms(10)
        assert sup.recoveries == 1
        assert sup.replayed_ops == log_len
        assert not rig.channel.failed

    def test_replay_leaves_the_log_unchanged(self, rig):
        """Replayed config ops re-record themselves through the same
        nucleus paths; latest-wins must keep the log's length, order
        and payloads identical -- else each recovery would compound."""
        plumbing = rig.module.instance.plumbing
        before = plumbing.replay_log.entries()

        _fail_in_flush(rig)
        assert rig.supervisor.recover() is True
        rig.kernel.run_for_ms(10)

        assert plumbing.replay_log.entries() == before

    def test_two_faults_replay_exactly_twice(self, rig):
        """N recoveries replay the log exactly N times, no matter how
        the async work items interleave."""
        sup = rig.supervisor
        plumbing = rig.module.instance.plumbing
        log_len = len(plumbing.replay_log)

        for expected in (1, 2):
            _fail_in_flush(rig)
            assert sup.recover() is True
            rig.kernel.run_for_ms(10)
            assert sup.recoveries == expected
            assert sup.replayed_ops == expected * log_len


class TestDeferredBatchNotReplayed:
    def test_pending_notifications_drop_once(self, rig):
        """Notifications queued before the fault belong to the dead
        half: they are dropped (and counted) exactly once, never
        delivered by the restarted instance."""
        plumbing = rig.module.instance.plumbing
        plumbing.notify("watchdog_tick", ())
        plumbing.notify("watchdog_tick", ())
        dropped_before = rig.xpc.deferred_dropped

        _fail_in_flush(rig)
        assert rig.supervisor.recover() is True

        dropped = rig.xpc.deferred_dropped - dropped_before
        assert dropped >= 1  # the batch died with its instance
        # Nothing stale left to flush into the new instance.
        assert plumbing.flush_notifications() == 0
        rig.kernel.run_for_ms(10)
        assert rig.xpc.deferred_dropped - dropped_before == dropped


class TestEndToEndFlushFault:
    def test_watchdog_flush_fault_replays_once(self):
        """The real async path: the e1000 watchdog's notification
        flush faults mid-netperf.  Exactly one restart, and the log is
        replayed exactly once per restart."""
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        sup = rig.supervise()
        rig.inject_faults(FaultPlan([
            FaultSpec("xpc_raise", callsite="watchdog", at=1),
        ]))
        result = netperf_send(rig, duration_s=4.0)

        assert result.faults_injected == 1
        assert sup.recoveries == 1
        # At fault time the log held exactly probe + open (netperf's
        # teardown later unrecords open, so don't compare against the
        # post-workload log).  One restart replays each exactly once.
        assert sup.replayed_ops == 2
        restarts = [m for _ns, m in rig.kernel.log_lines
                    if "restarting user-level driver half" in m]
        assert len(restarts) == 1
        assert not rig.channel.failed
        assert result.packets > 0
