"""Fault injection: error paths unwind correctly in both stacks.

The paper's motivation is that error paths are where driver bugs live;
these tests force allocation and hardware failures during
initialization and check both driver generations clean up.

Allocation faults are injected declaratively through the
:mod:`repro.faults` harness (``FaultPlan`` / ``Rig.inject_faults``),
which works identically against legacy and decaf rigs -- no
monkeypatching of driver internals.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.workloads import make_8139too_rig, make_e1000_rig


class TestAllocFailuresNative:
    def test_rtl8139_open_unwinds_on_ring_alloc_failure(self):
        rig = make_8139too_rig()
        rig.insmod()
        dev = rig.netdev()
        used_before = rig.kernel.memory.used_bytes
        # First 8139too-owned allocation after arming = the rx ring.
        rig.inject_faults(FaultPlan([
            FaultSpec("alloc_fail", at=1, owner="8139too"),
        ]))
        assert rig.kernel.net.dev_open(dev) != 0
        assert rig.injector.plan.fired == 1
        assert rig.kernel.memory.used_bytes == used_before  # no leak
        # Recovers on retry (the spec fires exactly once).
        assert rig.kernel.net.dev_open(dev) == 0

    def test_e1000_open_unwinds_on_rx_alloc_failure(self):
        rig = make_e1000_rig()
        rig.insmod()
        dev = rig.netdev()
        used_before = rig.kernel.memory.used_bytes
        # Open allocates tx desc (1), tx buffers (2), rx desc (3):
        # fail the rx descriptor allocation specifically.
        rig.inject_faults(FaultPlan([
            FaultSpec("alloc_fail", at=3, owner="e1000"),
        ]))
        assert rig.kernel.net.dev_open(dev) != 0
        assert rig.injector.plan.fired == 1
        assert rig.kernel.memory.used_bytes == used_before
        assert rig.kernel.net.dev_open(dev) == 0


class TestAllocFailuresDecaf:
    def test_decaf_open_figure4_unwind(self):
        """Figure 4's nested handlers: rx-resource failure frees the
        already-allocated tx resources and resets the chip."""
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        used_before = rig.kernel.memory.used_bytes
        rig.inject_faults(FaultPlan([
            FaultSpec("alloc_fail", at=3, owner="e1000"),
        ]))
        ret = rig.kernel.net.dev_open(dev)
        assert ret < 0  # exception crossed back as errno
        assert rig.injector.plan.fired == 1
        assert rig.kernel.memory.used_bytes == used_before
        # A checked DriverException is an error return, not a driver
        # failure: the boundary must not have tripped.
        assert not rig.channel.failed
        assert rig.kernel.net.dev_open(dev) == 0

    def test_decaf_rtl8139_open_unwinds_on_ring_alloc_failure(self):
        rig = make_8139too_rig(decaf=True)
        rig.insmod()
        dev = rig.netdev()
        used_before = rig.kernel.memory.used_bytes
        rig.inject_faults(FaultPlan([
            FaultSpec("alloc_fail", at=1, owner="8139too"),
        ]))
        assert rig.kernel.net.dev_open(dev) != 0
        assert rig.kernel.memory.used_bytes == used_before
        assert not rig.channel.failed
        assert rig.kernel.net.dev_open(dev) == 0

    def test_decaf_probe_failure_leaves_no_netdev(self):
        rig = make_e1000_rig(decaf=True)
        rig.device.eeprom[5] ^= 0xFFFF  # checksum broken
        assert rig.kernel.modules.insmod(rig.module) != 0
        assert rig.kernel.net.find("eth0") is None

    def test_decaf_irq_failure_unwinds(self):
        rig = make_8139too_rig(decaf=True)
        # Occupy the NIC's irq line so request_irq fails.
        rig.kernel.irq.request_irq(rig.device.irq,
                                   lambda i, d: 1, "squatter")
        ret = rig.kernel.modules.insmod(rig.module)
        assert ret == 0  # probe itself needs no irq
        dev = rig.netdev()
        used_before = rig.kernel.memory.used_bytes
        assert rig.kernel.net.dev_open(dev) != 0
        assert rig.kernel.memory.used_bytes == used_before


class TestHardwareFaults:
    def test_e1000_phy_timeout_native_swallowed_decaf_loud(self):
        """A PHY that never answers: the legacy probe *still succeeds*
        (init_hw's error is dropped at e1000_reset, as in 2.6.18);
        the decaf driver's PhyException fails the probe."""
        results = {}
        for decaf in (False, True):
            rig = make_e1000_rig(decaf=decaf)

            def dead_mdic(value, rig=rig):
                rig.device.regs[0x20] = 0  # never READY

            rig.device._write_mdic = dead_mdic
            results[decaf] = rig.kernel.modules.insmod(rig.module)
        assert results[False] == 0   # silent success (the bug class)
        assert results[True] != 0    # checked exception made it loud

    def test_legacy_swallows_init_hw_error_decaf_does_not(self):
        """The reproduction of the paper's core claim, caught live in
        this codebase during development: e1000_reset ignores
        e1000_init_hw's return (printk only), so a PHY failure during
        reset passes silently in the legacy driver; the decaf driver's
        exception propagates and probe fails loudly."""
        def break_phy(rig):
            # Valid EEPROM, but a PHY that answers with an unknown ID.
            rig.device.phy_regs[2] = 0x1234
            rig.device.phy_regs[3] = 0x5678

        legacy = make_e1000_rig(decaf=False)
        break_phy(legacy)
        assert legacy.kernel.modules.insmod(legacy.module) == 0  # silent!

        decaf = make_e1000_rig(decaf=True)
        break_phy(decaf)
        assert decaf.kernel.modules.insmod(decaf.module) != 0  # loud.
