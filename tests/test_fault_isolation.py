"""The XPC failure boundary and its satellite regressions.

Covers: the single-choke-point allocation fault accounting in
``kernel/memory.py``, exception containment at the XPC boundary
(fail-fast, counters, dmesg evidence), deferred-error recording in
``flush_deferred``, user-object-tracker staleness across a driver
restart, payload corruption, and register wedging.
"""

import pytest

from repro.core import CStruct, DomainManager, U32, Xpc, XpcChannel
from repro.core.marshal import MarshalPlan
from repro.core.objtracker import UserObjectTracker
from repro.core.xpc import DriverFailedError, FailurePolicy
from repro.drivers.decaf.exceptions import DriverException, errno_of
from repro.drivers.decaf.plumbing import DecafPlumbing


class f_state(CStruct):
    FIELDS = [("v", U32)]


def _policy_channel(kernel, on_fault=None):
    xpc = Xpc(kernel)
    channel = XpcChannel(xpc, DomainManager(), MarshalPlan())
    channel.failure_policy = FailurePolicy(
        checked=(DriverException,), on_fault=on_fault
    )
    return channel


class TestMemoryFaultAccounting:
    """Satellite: both alloc paths share one fault choke point."""

    def test_fail_next_spans_kmalloc_and_dma(self, kernel):
        mm = kernel.memory
        mm.fail_next = 2
        assert mm.kmalloc(64, owner="t") is None
        assert mm.dma_alloc_coherent(64, owner="t") is None
        # Exactly two failures: the budget is shared, not per-path.
        assert mm.fail_next == 0
        assert mm.kmalloc(64, owner="t") is not None
        assert mm.dma_alloc_coherent(64, owner="t") is not None

    def test_alloc_seq_counts_both_paths(self, kernel):
        mm = kernel.memory
        base = mm.alloc_seq
        mm.kmalloc(8, owner="t")
        mm.dma_alloc_coherent(8, owner="t")
        mm.kmalloc(8, owner="t")
        assert mm.alloc_seq == base + 3

    def test_fault_hook_sees_every_attempt(self, kernel):
        mm = kernel.memory
        seen = []
        mm.fault_hook = lambda seq, size, owner: (
            seen.append((size, owner)), size == 32)[1]
        assert mm.kmalloc(16, owner="a") is not None
        assert mm.dma_alloc_coherent(32, owner="b") is None  # hook fails it
        assert mm.kmalloc(32, owner="c") is None
        mm.fault_hook = None
        assert seen == [(16, "a"), (32, "b"), (32, "c")]

    def test_hook_fires_before_fail_next_is_spent(self, kernel):
        mm = kernel.memory
        mm.fault_hook = lambda seq, size, owner: True
        mm.fail_next = 1
        assert mm.kmalloc(8, owner="t") is None
        # The hook took the blame; the fail_next budget is untouched.
        assert mm.fail_next == 1
        mm.fault_hook = None


class TestFailureBoundary:
    def test_unchecked_exception_is_contained(self, kernel):
        channel = _policy_channel(kernel)
        obj = f_state(v=7)
        channel.kernel_tracker.register(obj)

        def buggy(twin):
            raise ZeroDivisionError("latent driver bug")

        with pytest.raises(DriverFailedError) as excinfo:
            channel.upcall(buggy, args=[(obj, f_state)])
        assert isinstance(excinfo.value.cause, ZeroDivisionError)
        assert channel.failed
        assert channel.xpc.boundary_faults == 1
        # Evidence lands in dmesg.
        assert any("driver FAILED" in message
                   for _ns, message in kernel.log_lines)

    def test_checked_exception_still_propagates(self, kernel):
        channel = _policy_channel(kernel)

        def protocol_error():
            raise DriverException("expected error", errno=19)

        with pytest.raises(DriverException):
            channel.upcall(protocol_error)
        assert not channel.failed
        assert channel.xpc.boundary_faults == 0

    def test_failed_channel_fails_fast(self, kernel):
        channel = _policy_channel(kernel)
        with pytest.raises(DriverFailedError):
            channel.upcall(lambda: 1 / 0)
        # Subsequent calls are rejected without crossing.
        crossings = channel.xpc.kernel_user_crossings
        for call in (channel.upcall, channel.downcall, channel.lang_call):
            with pytest.raises(DriverFailedError):
                call(lambda: 0)
        assert channel.xpc.kernel_user_crossings == crossings
        assert channel.xpc.failed_calls == 3

    def test_fault_hook_is_notified_once_per_fault(self, kernel):
        faults = []
        channel = _policy_channel(
            kernel, on_fault=lambda exc, cs: faults.append((exc, cs)))
        with pytest.raises(DriverFailedError):
            channel.upcall(lambda: 1 / 0)
        assert len(faults) == 1
        assert isinstance(faults[0][0], ZeroDivisionError)

    def test_bare_channel_keeps_raw_semantics(self, kernel):
        channel = XpcChannel(Xpc(kernel), DomainManager(), MarshalPlan())
        with pytest.raises(ZeroDivisionError):
            channel.upcall(lambda: 1 / 0)
        assert not channel.failed
        assert channel.xpc.boundary_faults == 0

    def test_reset_user_side_revives_the_channel(self, kernel):
        channel = _policy_channel(kernel)
        with pytest.raises(DriverFailedError):
            channel.upcall(lambda: 1 / 0)
        assert channel.failed
        channel.reset_user_side()
        assert not channel.failed
        assert channel.failure is None
        assert channel.upcall(lambda: 42) == 42

    def test_plumbing_reports_fault_errno_without_supervisor(self, kernel):
        plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())

        def buggy():
            raise KeyError("missing")

        ret = plumbing.upcall(buggy)
        assert ret == errno_of(KeyError())
        assert plumbing.channel.failed

    def test_payload_corruption_is_contained(self, kernel):
        channel = _policy_channel(kernel)
        obj = f_state(v=9)
        channel.kernel_tracker.register(obj)
        hits = {"n": 0}

        def corrupt(data, direction):
            hits["n"] += 1
            return data[: len(data) // 2]

        channel.corrupt_hook = corrupt
        with pytest.raises(DriverFailedError):
            channel.upcall(lambda twin: twin.v, args=[(obj, f_state)])
        assert hits["n"] >= 1
        assert channel.failed


class TestDeferredErrorRecording:
    """Satellite: flush_deferred must leave evidence, not swallow."""

    def test_bare_channel_records_and_continues(self, kernel):
        channel = XpcChannel(Xpc(kernel), DomainManager(), MarshalPlan())
        ran = []

        def boom():
            raise RuntimeError("handler bug")

        channel.defer(boom)
        channel.defer(lambda: ran.append(1))
        assert channel.flush_deferred() == 2
        # The error was counted, typed, and logged; later items ran.
        assert channel.xpc.deferred_errors == 1
        assert channel.xpc.deferred_error_types == {"RuntimeError": 1}
        assert isinstance(channel.last_deferred_error, RuntimeError)
        assert ran == [1]
        assert any("deferred notification" in message
                   for _ns, message in kernel.log_lines)

    def test_policy_channel_drops_batch_after_containment(self, kernel):
        channel = _policy_channel(kernel)
        ran = []

        def boom():
            raise RuntimeError("unchecked bug in a notification")

        channel.defer(boom)
        channel.defer(lambda: ran.append(1))
        channel.flush_deferred()
        # The driver FAILED mid-batch: the rest belongs to the dead
        # instance and is dropped, not executed.
        assert channel.failed
        assert ran == []
        assert channel.xpc.deferred_dropped == 1

    def test_failed_channel_drops_whole_queue(self, kernel):
        channel = _policy_channel(kernel)
        with pytest.raises(DriverFailedError):
            channel.upcall(lambda: 1 / 0)
        channel.defer(lambda: None)
        assert channel.flush_deferred() == 0
        assert channel.xpc.deferred_dropped == 1

    def test_checked_exception_in_flush_does_not_fail_driver(self, kernel):
        channel = _policy_channel(kernel)
        ran = []

        def protocol_error():
            raise DriverException("expected", errno=5)

        channel.defer(protocol_error)
        channel.defer(lambda: ran.append(1))
        channel.flush_deferred()
        assert not channel.failed
        assert ran == [1]
        assert channel.xpc.deferred_error_types == {"DriverException": 1}


class TestTrackerStaleness:
    """Satellite: user-tracker associations must not survive restarts."""

    def test_clear_prevents_stale_alias(self):
        tracker = UserObjectTracker()
        old = f_state()
        tracker.associate(0x1000, 1, old)
        tracker.clear()
        # A new driver instance's object lands at the same address.
        assert tracker.xlate_c_to_j(0x1000, 1) is None
        new = f_state()
        tracker.associate(0x1000, 1, new)
        assert tracker.xlate_c_to_j(0x1000, 1) is new

    def test_stale_finalizer_cannot_release_new_association(self):
        tracker = UserObjectTracker()
        old = f_state()
        tracker.associate(0x2000, 1, old, weak=True)
        finalizer = tracker._make_finalizer((0x2000, 1), id(old))
        tracker.clear()
        new = f_state()
        tracker.associate(0x2000, 1, new)
        # The dead instance's GC callback fires after the restart; it
        # must not evict the new instance's twin (epoch mismatch).
        finalizer(None)
        assert tracker.xlate_c_to_j(0x2000, 1) is new

    def test_channel_close_clears_user_tracker(self, kernel):
        channel = XpcChannel(Xpc(kernel), DomainManager(), MarshalPlan())
        channel.user_tracker.associate(0x3000, 1, f_state())
        channel.close()
        assert channel.user_tracker.xlate_c_to_j(0x3000, 1) is None

    def test_reset_user_side_clears_user_tracker(self, kernel):
        channel = _policy_channel(kernel)
        channel.user_tracker.associate(0x4000, 1, f_state())
        channel.reset_user_side()
        assert channel.user_tracker.xlate_c_to_j(0x4000, 1) is None


class TestRegisterWedge:
    def test_wedged_register_reads_forced_value_and_drops_writes(self, kernel):
        class _Handler:
            def __init__(self):
                self.value = 0xAB

            def read(self, offset, size):
                return self.value

            def write(self, offset, value, size):
                self.value = value

        handler = _Handler()
        region = kernel.io.register(0x100, 4, handler, "t", is_mmio=False)
        assert kernel.io.inb(0x100) == 0xAB
        kernel.io.wedge(0x100, value=0xFFFFFFFF)
        assert kernel.io.inb(0x100) == 0xFF  # masked to access width
        kernel.io.outb(0x12, 0x100)
        assert handler.value == 0xAB  # write dropped
        kernel.io.unwedge(0x100)
        assert kernel.io.inb(0x100) == 0xAB
        kernel.io.unregister(region)
