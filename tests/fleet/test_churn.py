"""Hotplug churn: repeated probe/remove cycles must not accumulate state.

Every driver family (legacy and decaf) rides through 50 remove ->
re-probe cycles on one kernel.  After a warmup the kernel-global
gauges -- device registries, live DMA allocations, pending events and
work items, kstat providers -- and traced Python memory must be flat:
a monotonic drift in any of them is a leak that a long-lived fleet
would hit at scale.
"""

import gc
import tracemalloc

import pytest

from repro.fleet import FAMILIES, FleetHarness, FleetSpec
from repro.fleet.isolate import ClonePool
from repro.kernel import make_kernel

CYCLES = 50
WARMUP = 10


def _gauges(kernel):
    """Kernel-global occupancy that churn must leave flat."""
    return {
        "net_devices": len(kernel.net.devices),
        "usb_devices": len(kernel.usb.devices),
        "sound_cards": len(kernel.sound.cards),
        "input_devices": len(kernel.input.devices),
        "dma_allocations": len(kernel.memory.live_allocations()),
        "pending_events": len(kernel.events),
        "pending_work": len(kernel.workqueue._pending),
        "kstat_providers": len(kernel.kstat._providers),
        "modules": len(kernel.modules.loaded),
    }


def _one_slot(kernel, pool, family, decaf):
    slot = FAMILIES[family](0, decaf=decaf)
    slot.attach(kernel, pool.acquire(family, decaf))
    return slot


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("decaf", [False, True],
                         ids=["legacy", "decaf"])
def test_churn_cycles_leave_kernel_flat(family, decaf):
    kernel = make_kernel(nr_cpus=2, nr_irqs=16, sound_use_mutex=True)
    pool = ClonePool()
    slot = _one_slot(kernel, pool, family, decaf)

    baseline = None
    traced_at_warmup = 0
    tracemalloc.start()
    try:
        for cycle in range(CYCLES):
            slot.probe()
            slot.tick()
            kernel.run_for_ms(2)
            slot.remove()
            if cycle == WARMUP - 1:
                baseline = _gauges(kernel)
                gc.collect()
                traced_at_warmup = tracemalloc.get_traced_memory()[0]
        assert slot.probes == CYCLES
        gc.collect()
        traced_at_end = tracemalloc.get_traced_memory()[0]
    finally:
        tracemalloc.stop()

    assert _gauges(kernel) == baseline, \
        "kernel gauges drifted over %d churn cycles" % CYCLES
    # Python-level memory after warmup must be flat too (small slack
    # for allocator noise; a real per-cycle leak across 40 cycles
    # dwarfs it).
    growth = traced_at_end - traced_at_warmup
    assert growth < 256 * 1024, \
        "traced memory grew %d bytes over %d post-warmup cycles" % (
            growth, CYCLES - WARMUP)


def test_mixed_fleet_concurrent_smoke():
    """A small mixed fleet probes, moves traffic, and tears down clean."""
    spec = FleetSpec(n_devices=10, decaf_fraction=0.5, nr_cpus=2,
                     duration_ms=30, fault_period_ms=0, seed=3)
    harness = FleetHarness(spec)
    harness.build()
    assert sum(1 for s in harness.slots if s.bound) == 10
    harness.run()
    assert sum(s.traffic_units for s in harness.slots) > 0
    harness.teardown()
    kernel = harness.kernel
    assert len(kernel.net.devices) == 0
    assert len(kernel.usb.devices) == 0
    assert len(kernel.sound.cards) == 0
    assert len(kernel.input.devices) == 0
    assert len(kernel.modules.loaded) == 0


def test_churned_slot_keeps_working_after_reprobe():
    """Traffic works identically on the re-probed instance."""
    kernel = make_kernel(nr_cpus=2, nr_irqs=16)
    pool = ClonePool()
    slot = _one_slot(kernel, pool, "e1000", decaf=True)
    slot.probe()
    first = slot.tick()
    kernel.run_for_ms(2)
    slot.remove()
    slot.probe()
    second = slot.tick()
    kernel.run_for_ms(2)
    slot.remove()
    assert first > 0
    assert second == first
