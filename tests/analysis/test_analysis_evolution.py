"""Case-study analyses (section 5) and evolution machinery (Table 4)."""

import pytest

from repro.analysis import (
    analyze_error_handling,
    count_exception_usage,
    count_module_loc,
    infrastructure_loc_report,
)
from repro.drivers.decaf import e1000_decaf, e1000_hw_decaf, e1000_param_decaf
from repro.drivers.legacy import e1000_ethtool, e1000_hw, e1000_main, e1000_param
from repro.evolution import (
    apply_patch_series,
    build_e1000_patch_series,
    extend_struct,
)

E1000_LEGACY = [e1000_main, e1000_hw, e1000_param, e1000_ethtool]


@pytest.fixture(scope="module")
def e1000_report():
    return analyze_error_handling(E1000_LEGACY)


class TestErrorHandlingAnalysis:
    def test_finds_ignored_errors(self, e1000_report):
        """The paper found 28 broken-error-handling cases in the real
        14 kLoC driver; ours is ~8x smaller and carries a proportional
        number of genuine ones."""
        assert e1000_report.ignored_count >= 10

    def test_known_case_detected(self, e1000_report):
        callees = {(i.function, i.callee) for i in e1000_report.ignored}
        # e1000_update_eeprom_checksum drops e1000_write_eeprom's result
        # in 2.6.18 -- one of the documented cases.
        assert ("e1000_update_eeprom_checksum", "e1000_write_eeprom") in callees

    def test_checked_call_not_flagged(self, e1000_report):
        """ret_val = f(); if ret_val: return ret_val is NOT ignored."""
        flagged = {(i.function, i.callee) for i in e1000_report.ignored}
        assert ("e1000_phy_reset", "e1000_write_phy_reg") not in flagged

    def test_error_returning_functions_identified(self, e1000_report):
        assert "e1000_read_phy_reg" in e1000_report.error_returning_functions
        assert "e1000_setup_link" in e1000_report.error_returning_functions

    def test_propagation_overhead_measured(self, e1000_report):
        """Paper: 675 lines (~8%) of e1000_hw.c were error plumbing.
        Same shape: a substantial single-digit-to-20% slice."""
        frac = e1000_report.propagation_fraction("e1000_hw")
        assert 0.05 < frac < 0.35

    def test_decaf_version_has_no_propagation_chains(self):
        decaf_report = analyze_error_handling([e1000_hw_decaf])
        assert decaf_report.propagation_lines == 0

    def test_decaf_chip_layer_is_smaller(self):
        """Exception conversion shrinks the chip layer (paper: -8%)."""
        legacy_loc = count_module_loc("repro.drivers.legacy.e1000_hw")
        decaf_loc = count_module_loc("repro.drivers.decaf.e1000_hw_decaf")
        assert decaf_loc < legacy_loc

    def test_exception_usage_counted(self):
        n, classes = count_exception_usage(
            [e1000_decaf, e1000_hw_decaf, e1000_param_decaf])
        assert n >= 10
        assert "PhyException" in classes


class TestInfrastructureLoc:
    def test_report_structure(self):
        report = infrastructure_loc_report()
        assert "Runtime support" in report
        assert "DriverSlicer" in report
        assert report["total"] > 1000

    def test_all_rows_nonzero(self):
        report = infrastructure_loc_report()
        for section in ("Runtime support", "DriverSlicer"):
            for row, loc in report[section].items():
                assert loc > 0, row


class TestEvolution:
    def test_series_is_deterministic(self):
        a = build_e1000_patch_series()
        b = build_e1000_patch_series()
        assert [(p.number, p.target, p.lines_changed) for p in a] == \
            [(p.number, p.target, p.lines_changed) for p in b]

    def test_320_patches(self):
        patches = build_e1000_patch_series()
        assert len(patches) == 320

    def test_table4_distribution(self):
        report, _plan = apply_patch_series(build_e1000_patch_series())
        rows = report.table4_rows()
        # Paper: 4690 decaf / 381 nucleus / 23 interface.
        assert rows["Decaf driver"] > 10 * rows["Driver nucleus"]
        assert rows["Driver nucleus"] > 10 * rows["User/kernel interface"]
        assert abs(rows["Decaf driver"] - 4690) / 4690 < 0.1
        assert abs(rows["Driver nucleus"] - 381) / 381 < 0.2

    def test_two_batches(self):
        patches = build_e1000_patch_series()
        r1, _ = apply_patch_series(patches, batches=(1,))
        r2, _ = apply_patch_series(patches, batches=(2,))
        full, _ = apply_patch_series(patches)
        assert r1.patches_applied + r2.patches_applied == full.patches_applied
        assert r1.decaf_lines + r2.decaf_lines == full.decaf_lines

    def test_interface_patch_extends_struct_for_real(self):
        from repro.drivers.legacy.e1000_main import e1000_adapter

        new_cls = extend_struct(e1000_adapter, "rx_csum_test", "U32")
        assert "rx_csum_test" in new_cls._fields_by_name
        # Old fields preserved, annotations included.
        assert "config_space" in new_cls._fields_by_name
        obj = new_cls()
        assert obj.rx_csum_test == 0

    def test_new_field_marshals_only_after_regen(self):
        """The 3.2.4 regeneration workflow: before the DECAF_XVAR
        annotation the new field does not cross; after regen it does."""
        from repro.core.marshal import MarshalCodec, MarshalPlan, TO_USER, FieldAccess
        from repro.drivers.legacy.e1000_main import e1000_adapter

        new_cls = extend_struct(e1000_adapter, "wol_test", "U32")
        obj = new_cls(wol_test=7, msg_enable=3)

        # Plan from before the patch: knows msg_enable, not wol_test.
        stale = MarshalPlan()
        stale.set_access(new_cls.__name__, FieldAccess(reads={"msg_enable"}))
        codec = MarshalCodec(stale)
        out = codec.decode(codec.encode(obj, new_cls, TO_USER),
                           new_cls, TO_USER)
        assert out.wol_test == 0  # not marshaled

        # Regenerated with the annotation.
        from repro.slicer.accessanalysis import build_marshal_plan

        regen = build_marshal_plan(
            {new_cls.__name__: FieldAccess(reads={"msg_enable"})},
            extra_access=[(new_cls.__name__, "wol_test", "RW")],
        )
        codec2 = MarshalCodec(regen)
        out2 = codec2.decode(codec2.encode(obj, new_cls, TO_USER),
                             new_cls, TO_USER)
        assert out2.wol_test == 7

    def test_interface_patches_verified_in_series(self):
        report, plan = apply_patch_series(build_e1000_patch_series())
        assert report.interface_patches == 8
        assert report.regenerations == 8
        # Every added field is in the final plan's access set.
        for new_cls, field_name, mode in report.new_fields:
            access = plan.access_for(new_cls)
            assert access is not None
            assert field_name in access.all
