"""tools/bench_trend.py: the BENCH_*.json floor/headroom aggregator."""

import importlib.util
import json
import os

import pytest

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                     "tools", "bench_trend.py")


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("bench_trend", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_benches(root, datapath_speedup=2.5, health_always_on=0.002):
    (root / "BENCH_datapath.json").write_text(json.dumps({
        "e1000_compiled": {"wall_speedup": datapath_speedup},
        "rtl8139_compiled": {"wall_speedup": 2.2},
        "e1000_recv": {"wall_speedup": 2.3},
        "rtl8139_recv": {"wall_speedup": 1.1},
    }))
    (root / "BENCH_trace.json").write_text(json.dumps({
        "netperf_recv_e1000": {"disabled_overhead_fraction": 0.002},
    }))
    (root / "BENCH_health.json").write_text(json.dumps({
        "netperf_recv_e1000": {
            "always_on_overhead_fraction": health_always_on,
            "sampler_overhead_fraction": 0.01,
        },
        "netperf_recv_rtl8139": {
            "always_on_overhead_fraction": health_always_on,
            "sampler_overhead_fraction": 0.02,
        },
    }))


def test_all_bounds_held(trend, tmp_path, capfd):
    _write_benches(tmp_path)
    assert trend.main(["--dir", str(tmp_path), "--fail"]) == 0
    out = capfd.readouterr().out
    assert "0 violation(s)" in out
    assert "VIOLATED" not in out


def test_floor_violation_fails(trend, tmp_path, capfd):
    _write_benches(tmp_path, datapath_speedup=1.5)   # under the 2.0 floor
    assert trend.main(["--dir", str(tmp_path), "--fail"]) == 1
    out = capfd.readouterr().out
    assert "VIOLATED" in out
    assert "1 violation(s)" in out
    # Without --fail the table still renders but the exit stays clean.
    assert trend.main(["--dir", str(tmp_path)]) == 0


def test_ceiling_violation_fails(trend, tmp_path):
    _write_benches(tmp_path, health_always_on=0.02)  # over the 1% ceiling
    assert trend.main(["--dir", str(tmp_path), "--fail"]) == 1


def test_missing_files_report_but_never_fail(trend, tmp_path, capfd):
    assert trend.main(["--dir", str(tmp_path), "--fail"]) == 0
    out = capfd.readouterr().out
    assert "(missing)" in out
    assert "%d missing" % len(trend.FLOORS) in out


def test_headroom_math(trend):
    assert trend._headroom(2.5, 2.0, "floor") == pytest.approx(0.25)
    assert trend._headroom(1.5, 2.0, "floor") == pytest.approx(-0.25)
    assert trend._headroom(0.005, 0.01, "ceiling") == pytest.approx(0.5)
    assert trend._headroom(0.02, 0.01, "ceiling") == pytest.approx(-1.0)


def test_tracked_metrics_exist_in_real_benches(trend):
    """The curated floors stay in sync with what the suites write."""
    root = os.path.join(os.path.dirname(_TOOL), os.pardir)
    rows = trend.collect(os.path.abspath(root))
    for fname, dotted, _bound, _kind, value, _headroom in rows:
        if os.path.exists(os.path.join(root, fname)):
            assert value is not None, "%s lacks %s" % (fname, dotted)
