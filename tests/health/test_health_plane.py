"""Health plane units: kstat registry, flight ring, profiler, watchdogs,
crash dumps, and the top/postmortem CLIs."""

import io
import json

import pytest

from repro.health import FlightRecorder, HealthPlane, KstatRegistry
from repro.health import postmortem, top
from repro.kernel import IRQ_HANDLED, make_kernel


@pytest.fixture
def health(kernel, tmp_path):
    plane = HealthPlane(kernel, dump_dir=str(tmp_path)).install()
    yield plane
    plane.uninstall()


# ---------------------------------------------------------------------------
# kstat registry
# ---------------------------------------------------------------------------

class TestKstat:
    def test_provider_values_prefixed(self):
        reg = KstatRegistry()
        reg.register("irq", lambda: {"line4.count": 7, "delivered": 9})
        snap = reg.snapshot()
        assert snap["irq.line4.count"] == 7
        assert snap["irq.delivered"] == 9

    def test_numeric_collisions_sum(self):
        """Two providers under one name aggregate, like /proc/interrupts
        summing per-CPU columns."""
        reg = KstatRegistry()
        reg.register("xpc", lambda: {"crossings": 10})
        reg.register("xpc", lambda: {"crossings": 32})
        assert reg.snapshot()["xpc.crossings"] == 42

    def test_bools_coerce_to_int(self):
        reg = KstatRegistry()
        reg.register("net", lambda: {"eth0.queue_stopped": True})
        assert reg.snapshot()["net.eth0.queue_stopped"] == 1

    def test_raising_provider_surfaces_error_entry(self):
        reg = KstatRegistry()

        def bad():
            raise RuntimeError("boom")

        reg.register("bad", bad)
        reg.register("good", lambda: {"ok": 1})
        snap = reg.snapshot()
        assert snap["good.ok"] == 1
        assert "RuntimeError" in snap["bad.error"]

    def test_explicit_counters_ride_along(self):
        reg = KstatRegistry()
        reg.inc("health.dumps_written")
        reg.inc("health.dumps_written", 2)
        assert reg.counter("health.dumps_written") == 3
        assert reg.snapshot()["health.dumps_written"] == 3

    def test_unregister(self):
        reg = KstatRegistry()
        provider = lambda: {"x": 1}  # noqa: E731
        reg.register("a", provider)
        reg.unregister("a", provider)
        assert reg.snapshot() == {}

    def test_delta_never_divides(self):
        before = {"a": 10, "b": 5, "gone": 3, "s": "text"}
        after = {"a": 15, "b": 5, "new": 2, "s": "other"}
        delta = KstatRegistry.delta(before, after)
        assert delta["a"] == 5
        assert "b" not in delta          # unchanged
        assert delta["new"] == 2         # appeared: delta from zero
        assert delta["gone"] == -3       # vanished: negated old value
        assert "s" not in delta          # non-numeric keys skipped

    def test_kernel_registers_core_counters(self, kernel):
        snap = kernel.kstat.snapshot()
        assert "kernel.nr_cpus" in snap
        assert "kernel.cpu0.busy_ns" in snap
        assert "irq.delivered" in snap
        assert "napi.polls" in snap


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_bounded_evicts_oldest(self, kernel):
        flight = FlightRecorder(kernel, capacity=3)
        for i in range(5):
            flight.note("ev%d" % i)
        assert [name for _ts, _cpu, name, _a in flight.ring] == \
            ["ev2", "ev3", "ev4"]
        assert flight.recorded == 5

    def test_note_stamps_virtual_time_and_cpu(self, kernel):
        flight = FlightRecorder(kernel)
        kernel.run_for_ns(500)
        flight.note("x", {"k": 1})
        ((ts, cpu, name, args),) = flight.ring
        assert (ts, cpu, name, args) == (500, 0, "x", {"k": 1})

    def test_printk_feeds_ring_when_untraced(self, kernel, health):
        kernel.printk("engine fire", level="warn")
        names = [name for _t, _c, name, _a in health.flight.ring]
        assert "printk" in names

    def test_tracer_mirrors_pre_filter(self, kernel, health):
        """A tracer's enable-filter must not starve the flight ring."""
        from repro.trace import Tracer

        tracer = Tracer(kernel, enable=["napi.poll"]).install()
        try:
            kernel.printk("filtered out of ktrace")  # printk not enabled
        finally:
            tracer.uninstall()
        assert not [e for e in tracer.events if e["name"] == "printk"]
        assert [r for r in health.flight.ring if r[2] == "printk"]


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------

class TestProfiler:
    def test_attributes_irq_frames(self, kernel, health):
        kernel.irq.request_irq(
            4, lambda i, d: kernel.consume(50_000, category="irq")
            or IRQ_HANDLED, "hog")
        prof = health.start_profiler(period_ns=1_000_000)
        for _ in range(40):
            kernel.run_for_ns(1_000_000)
            kernel.irq.raise_irq(4)
        assert prof.samples >= 39
        flame = prof.flame()
        assert any("irq" in key for key in flame)
        cats = prof.by_category()
        assert cats.get("cpu0.irq", 0) > 0

    def test_idle_kernel_samples_idle(self, kernel, health):
        prof = health.start_profiler(period_ns=1_000_000)
        kernel.run_for_ns(10_000_000)
        assert prof.idle_samples >= 9
        assert "cpu0;idle" in prof.stacks

    def test_uninstall_stops_ticking(self, kernel, health):
        prof = health.start_profiler(period_ns=1_000_000)
        kernel.run_for_ns(5_000_000)
        taken = prof.samples
        health.stop_profiler()
        kernel.run_for_ns(10_000_000)
        assert prof.samples == taken
        assert kernel.profiler is None


# ---------------------------------------------------------------------------
# watchdogs
# ---------------------------------------------------------------------------

class TestSoftLockup:
    def test_atomic_hog_fires_and_dumps(self, kernel, health):
        """An irq handler spinning 300 virtual ms trips the detector
        from the nested watchdog check."""
        kernel.irq.request_irq(
            4, lambda i, d: kernel.consume(300_000_000, category="irq")
            or IRQ_HANDLED, "spin")
        # Raise from inside an event so the hog runs as a dispatched
        # handler (the checker must nest inside it to observe the hog).
        kernel.events.schedule_after(1_000_000,
                                     lambda: kernel.irq.raise_irq(4))
        kernel.run_for_ns(400_000_000)
        assert health.watchdog.fires["soft_lockup"] == 1
        (event,) = health.watchdog.events
        assert event.kind == "soft_lockup"
        assert event.target == "cpu0"
        assert event.detail["busy_ns"] >= health.watchdog.soft_lockup_ns
        assert len(health.dumps) == 1
        assert any("watchdog soft_lockup" in msg
                   for _t, _l, msg in kernel.dmesg(level="warn"))

    def test_fires_once_per_episode(self, kernel, health):
        """The latch holds through one long hog (no fire storm), then
        clears so a second episode fires again."""
        kernel.irq.request_irq(
            4, lambda i, d: kernel.consume(500_000_000, category="irq")
            or IRQ_HANDLED, "spin")
        kernel.events.schedule_after(1_000_000,
                                     lambda: kernel.irq.raise_irq(4))
        kernel.run_for_ns(600_000_000)
        assert health.watchdog.fires["soft_lockup"] == 1
        kernel.run_for_ns(50_000_000)   # healthy gap clears the latch
        kernel.events.schedule_after(1_000_000,
                                     lambda: kernel.irq.raise_irq(4))
        kernel.run_for_ns(600_000_000)
        assert health.watchdog.fires["soft_lockup"] == 2

    def test_process_context_hog_is_not_a_lockup(self, kernel, health):
        """Preemptible process context may run long (a driver restart
        pays a JVM startup in one work item) without tripping."""
        kernel.events.schedule_after(
            1_000_000, lambda: kernel.consume(400_000_000))
        kernel.run_for_ns(500_000_000)
        assert health.watchdog.fires["soft_lockup"] == 0


# ---------------------------------------------------------------------------
# crash dumps + CLIs
# ---------------------------------------------------------------------------

class TestDumps:
    def test_dump_shape_and_file(self, kernel, health, tmp_path):
        kernel.printk("before the end", level="err")
        report = health.dump("unit-test", {"answer": 42})
        for key in ("reason", "ts_ns", "detail", "ring", "kstat",
                    "dmesg", "cpus", "watchdog", "prior_dumps"):
            assert key in report
        assert report["reason"] == "unit-test"
        assert report["detail"] == {"answer": 42}
        assert report["dmesg"][-1]["msg"] == "before the end"
        assert report["cpus"][0]["index"] == 0
        path = report["path"]
        with open(path) as fh:
            assert json.load(fh)["reason"] == "unit-test"

    def test_dump_sanitizes_arbitrary_args(self, kernel, health):
        health.flight.note("weird", {"exc": RuntimeError("x"),
                                     "dev": object()})
        report = health.dump("sanitize", {"obj": object()})
        json.dumps(report)  # must always be serializable

    def test_dump_count_bounded(self, kernel, health):
        for i in range(health.max_dumps + 5):
            health.dump("flood-%d" % i)
        assert len(health.dumps) == health.max_dumps
        assert kernel.kstat.counter("health.dumps_written") == \
            health.max_dumps + 5

    def test_postmortem_cli_parses_dump(self, kernel, health, capfd):
        kernel.printk("health: something broke", level="warn")
        report = health.dump("watchdog:hung_task", {"target": "eth0"})
        assert postmortem.main([report["path"]]) == 0
        out = capfd.readouterr().out
        assert "watchdog:hung_task" in out
        assert "target = eth0" in out

    def test_summary_shape(self, kernel, health):
        summary = health.summary()
        assert "kstat" in summary and "flight" in summary
        assert "watchdog_fires" in summary


class TestTopCli:
    def test_render_snapshot_file(self, kernel, tmp_path, capfd):
        snap_path = tmp_path / "snap.json"
        snap_path.write_text(json.dumps(kernel.kstat.snapshot()))
        assert top.main([str(snap_path)]) == 0
        out = capfd.readouterr().out
        assert "kernel" in out
        assert "per-cpu" in out

    def test_watch_mode_deltas_and_new(self, tmp_path, capfd):
        (tmp_path / "a.json").write_text(json.dumps({"x.n": 1, "gone": 5}))
        (tmp_path / "b.json").write_text(json.dumps({"x.n": 4, "new": 2}))
        assert top.main(["--watch", str(tmp_path / "a.json"),
                         str(tmp_path / "b.json")]) == 0
        out = capfd.readouterr().out
        assert "+3" in out
        assert "new" in out and "gone" in out

    def test_accepts_health_summary_wrapper(self, kernel, tmp_path, capfd):
        doc = {"kstat": kernel.kstat.snapshot(), "watchdog_fires": {}}
        path = tmp_path / "summary.json"
        path.write_text(json.dumps(doc))
        assert top.main([str(path)]) == 0
        assert "kernel" in capfd.readouterr().out


# ---------------------------------------------------------------------------
# install/uninstall hygiene
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_double_install_rejected(self, kernel):
        plane = HealthPlane(kernel).install()
        try:
            with pytest.raises(RuntimeError):
                HealthPlane(kernel).install()
        finally:
            plane.uninstall()

    def test_uninstall_disarms_watchdog(self, kernel):
        plane = HealthPlane(kernel).install()
        plane.uninstall()
        assert kernel.health is None
        before = plane.watchdog.checks
        kernel.run_for_ns(100_000_000)
        assert plane.watchdog.checks == before

    def test_smp_kernel_reports_all_cpus(self, tmp_path):
        kernel = make_kernel(nr_cpus=4)
        plane = HealthPlane(kernel, dump_dir=str(tmp_path)).install()
        try:
            report = plane.dump("smp")
            assert [c["index"] for c in report["cpus"]] == [0, 1, 2, 3]
            snap = kernel.kstat.snapshot()
            assert "kernel.cpu3.busy_ns" in snap
        finally:
            plane.uninstall()
