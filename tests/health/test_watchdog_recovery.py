"""Watchdog -> supervisor integration: a wedged decaf e1000 TX queue is
detected by the hung-task watchdog, the flight recorder dumps, and the
PR-4 supervisor restarts the driver -- deterministically across seeds.

The wedge is a ``reg_wedge`` fault on the e1000 TDT register: doorbell
writes vanish, so the device never sees new descriptors, TX completions
stop, the ring fills, and ``netif_stop_queue`` parks the queue forever.
That is the classic lost-interrupt/wedged-device signature the hung-TX
watchdog exists for.
"""

import json
import os

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.health import postmortem
from repro.workloads import make_e1000_rig, netperf_send

# e1000 BAR0 at 0xF0000000; TDT (TX descriptor tail doorbell) at 0x3818.
E1000_TDT = 0xF0000000 + 0x03818

HEALTH = {"hung_task_ns": 20_000_000,    # 20 virtual ms: fast test
          "period_ns": 5_000_000}


def _run_wedged(seed, dump_dir, duration_s=0.5):
    """One wedged send run; returns (result, rig)."""
    rig = make_e1000_rig(decaf=True,
                         health=dict(HEALTH, dump_dir=str(dump_dir)))
    kernel = rig.kernel
    rig.insmod()
    rig.supervise()
    injector = FaultInjector(
        rig, FaultPlan([FaultSpec("reg_wedge", addr=E1000_TDT)]))
    # Arm mid-send-window (the window opens after the ~1.2 s virtual
    # JVM startup insmod just paid); the seed varies the wedge moment.
    delay_ms = 150 + seed * 37
    kernel.events.schedule_after(delay_ms * 1_000_000, injector.arm,
                                 name="wedge-arm")
    # Un-wedge when the watchdog fires, as a repaired device would
    # start taking doorbells again -- recovery must then succeed.
    kernel.health.on_watchdog.append(
        lambda ev: injector.disarm() if ev.kind == "hung_task" else None)
    result = netperf_send(rig, duration_s=duration_s)
    return result, rig


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_wedged_tx_queue_detected_and_recovered(seed, tmp_path):
    result, rig = _run_wedged(seed, tmp_path)
    health = rig.kernel.health
    supervisor = rig.supervisor

    # Exactly one hung-task episode: detected once, not a fire storm,
    # and no spurious soft-lockup/xpc fires ride along.
    assert health.watchdog.fires["hung_task"] == 1
    assert health.watchdog.fires["soft_lockup"] == 0
    (event,) = [e for e in health.watchdog.events if e.kind == "hung_task"]
    assert event.target == rig.netdev().name
    assert event.detail["stalled_ns"] >= HEALTH["hung_task_ns"]

    # The supervisor recovered the driver exactly once and kept going.
    assert supervisor.wedges == 1
    assert supervisor.faults_seen == 1
    assert supervisor.recoveries == 1
    assert not supervisor.gave_up
    assert any("WedgedDriverError" in msg
               for _t, _l, msg in rig.kernel.dmesg(level="err"))

    # Traffic resumed after the restart: the run moved real packets
    # despite losing the wedge window and the restart outage.
    assert result.packets > 1000
    assert result.recoveries == 1

    # The WorkloadResult carries the health summary.
    assert result.health_summary["watchdog_fires"]["hung_task"] == 1
    assert result.health_summary["dumps"] >= 1

    # A flight-recorder dump landed on disk and postmortem parses it.
    dumps = sorted(p for p in os.listdir(tmp_path) if p.endswith(".json"))
    assert len(dumps) == 1
    path = os.path.join(tmp_path, dumps[0])
    with open(path) as fh:
        report = json.load(fh)
    assert report["reason"] == "watchdog:hung_task"
    assert report["detail"]["target"] == rig.netdev().name
    # The ring holds the story leading up to the fire.
    names = [entry["name"] for entry in report["ring"]]
    assert "health.watchdog" in names
    assert postmortem.main([path]) == 0


def test_recovery_is_deterministic(tmp_path):
    """Same seed, same virtual universe: two runs agree exactly."""
    a, rig_a = _run_wedged(2, tmp_path / "a")
    b, rig_b = _run_wedged(2, tmp_path / "b")
    assert a.packets == b.packets
    assert a.bytes_moved == b.bytes_moved
    assert rig_a.kernel.clock.now_ns == rig_b.kernel.clock.now_ns
    ev_a = [e.as_dict() for e in rig_a.kernel.health.watchdog.events]
    ev_b = [e.as_dict() for e in rig_b.kernel.health.watchdog.events]
    assert ev_a == ev_b


def test_seeds_wedge_at_different_times(tmp_path):
    """The three seeds exercise genuinely different wedge moments."""
    packets = set()
    for seed in (1, 2, 3):
        result, _rig = _run_wedged(seed, tmp_path / str(seed))
        packets.add(result.packets)
    assert len(packets) == 3
