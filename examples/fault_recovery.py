#!/usr/bin/env python3
"""Fault isolation + supervised recovery, end to end (section 4.1).

For each decaf driver, inject an unchecked exception mid-workload
through the deterministic fault harness, let the supervisor restart
the user-level half and replay its configuration log, and show the
workload completing anyway -- the paper's reliability story:

    driver fault -> contained at the XPC boundary -> quiesce ->
    restart user half -> replay config -> resume traffic

Run:  python examples/fault_recovery.py [driver] [trace.json]

``driver`` is one of e1000, 8139too, ens1371, psmouse, uhci_hcd
(default: all).  With ``trace.json`` the run is exported as a
Chrome/Perfetto trace whose ``recovery.*`` instants mark the outage.
"""

import sys

from repro.faults import FaultPlan, FaultSpec
from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
    move_and_click,
    mpg123_play,
    netperf_send,
    tar_to_flash,
)

# driver -> (rig builder, faulted callsite, workload runner)
SCENARIOS = {
    "e1000": (make_e1000_rig, "watchdog",
              lambda rig, trace: netperf_send(rig, duration_s=4.0,
                                              trace=trace)),
    "8139too": (make_8139too_rig, "thread",
                lambda rig, trace: netperf_send(rig, duration_s=4.0,
                                                trace=trace)),
    "ens1371": (make_ens1371_rig, "playback_trigger",
                lambda rig, trace: mpg123_play(rig, duration_s=2.0,
                                               trace=trace)),
    "psmouse": (make_psmouse_rig, "resync_check",
                lambda rig, trace: move_and_click(rig, duration_s=3.0,
                                                  trace=trace)),
    "uhci_hcd": (make_uhci_rig, "rh_status_check",
                 lambda rig, trace: tar_to_flash(rig, trace=trace)),
}


def run_one(driver, trace=True):
    make_rig, callsite, workload = SCENARIOS[driver]
    rig = make_rig(decaf=True)
    rig.insmod()
    rig.supervise()
    rig.inject_faults(FaultPlan([
        FaultSpec("xpc_raise", callsite=callsite),
    ]))
    result = workload(rig, trace)

    stats = rig.supervisor.stats()
    print("=== %s: fault at %r mid-%s ===" % (driver, callsite, result.name))
    print("   faults injected:  %d" % result.faults_injected)
    print("   recoveries:       %d" % result.recoveries)
    print("   work lost:        %d" % result.packets_lost)
    print("   outage:           %.3f ms (replayed %d config ops)"
          % (stats["outage_ms"], stats["replayed_ops"]))
    print("   workload result:  %d packets, %.3f MB moved"
          % (result.packets, result.bytes_moved / 1e6))
    for _ns, message in rig.kernel.log_lines:
        if "recovery" in message or "fault-inject" in message:
            print("   dmesg: %s" % message)
    assert result.recoveries == 1, "expected exactly one recovery"
    assert not rig.channel.failed, "driver should be healthy again"
    return result


def main(argv):
    drivers = [argv[1]] if len(argv) > 1 else list(SCENARIOS)
    trace = argv[2] if len(argv) > 2 else True
    for driver in drivers:
        run_one(driver, trace=trace)
        print()


if __name__ == "__main__":
    main(sys.argv)
