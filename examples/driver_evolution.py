#!/usr/bin/env python3
"""Driver evolution: replaying E1000's 2.6.18.1 -> 2.6.27 history.

Applies the 320-patch series in the paper's two batches, prints the
Table 4 breakdown, and then walks one interface patch through the full
section 3.2.4 regeneration workflow: extend the shared struct, add the
DECAF_XVAR access, regenerate the marshaling plan, and show the new
field crossing the kernel/user boundary (and not crossing before).

Run:  python examples/driver_evolution.py
"""

from repro.core.marshal import FieldAccess, MarshalCodec, MarshalPlan, TO_USER
from repro.drivers.legacy.e1000_main import e1000_adapter
from repro.evolution import (
    apply_patch_series,
    build_e1000_patch_series,
    extend_struct,
)
from repro.slicer.accessanalysis import build_marshal_plan


def main():
    patches = build_e1000_patch_series()
    print("synthetic patch series: %d patches, e.g." % len(patches))
    for patch in patches[:5]:
        print("   #%03d [%s] %s (%d lines)"
              % (patch.number, patch.target, patch.title,
                 patch.lines_changed))

    for batches, label in (((1,), "batch 1 (pre-2.6.22)"),
                           ((2,), "batch 2 (post-2.6.22)"),
                           ((1, 2), "full series")):
        report, _plan = apply_patch_series(patches, batches=batches)
        rows = report.table4_rows()
        print("\n%s: %d patches" % (label, report.patches_applied))
        print("   driver nucleus:        %5d lines (paper: 381)"
              % rows["Driver nucleus"])
        print("   decaf driver:          %5d lines (paper: 4690)"
              % rows["Decaf driver"])
        print("   user/kernel interface: %5d lines (paper: 23)"
              % rows["User/kernel interface"])

    print("\n=== one interface patch, in full ===")
    print("patch: add e1000_adapter.rx_csum (RW), as 2.6.19 did")
    new_cls = extend_struct(e1000_adapter, "rx_csum", "U32")
    adapter = new_cls(rx_csum=1, msg_enable=7)

    stale_plan = MarshalPlan()
    stale_plan.set_access(new_cls.__name__,
                          FieldAccess(reads={"msg_enable"}))
    codec = MarshalCodec(stale_plan)
    twin = codec.decode(codec.encode(adapter, new_cls, TO_USER),
                        new_cls, TO_USER)
    print("before regeneration: twin.rx_csum = %d (field not marshaled)"
          % twin.rx_csum)

    regen_plan = build_marshal_plan(
        {new_cls.__name__: FieldAccess(reads={"msg_enable"})},
        extra_access=[(new_cls.__name__, "rx_csum", "RW")],
    )
    codec = MarshalCodec(regen_plan)
    twin = codec.decode(codec.encode(adapter, new_cls, TO_USER),
                        new_cls, TO_USER)
    print("after DECAF_RWVAR(rx_csum) + regen: twin.rx_csum = %d"
          % twin.rx_csum)
    print("\nThe decaf driver and nucleus compile separately; only the "
          "marshaling code was regenerated (section 3.2.4).")


if __name__ == "__main__":
    main()
