#!/usr/bin/env python3
"""Writing a brand-new driver as a decaf driver from day one.

The paper's migration path ends with new development happening at user
level: "Developers can also implement new user-level functionality in
Java."  This example builds a tiny driver for a hypothetical
sensor/LED PCI gadget entirely against the public API -- no legacy C
version ever exists:

* a register-level device model (temperature register, LED control,
  threshold alarm interrupt);
* a ~40-line driver nucleus: the alarm interrupt handler plus two
  kernel entry points;
* the decaf driver: probe, threshold configuration, and an alarm
  policy -- all at user level, with checked exceptions.

Run:  python examples/new_decaf_driver.py
"""

from repro.core.cstruct import CStruct, U32
from repro.core.marshal import MarshalPlan, FieldAccess
from repro.drivers.decaf.exceptions import ConfigException, HardwareException
from repro.drivers.decaf.plumbing import DecafPlumbing
from repro.kernel import IRQ_HANDLED, make_kernel
from repro.kernel.pci import PciBar, PciFunction

# -- registers of the (hypothetical) sensor gadget --------------------------

REG_TEMP = 0x00       # current temperature, 0.1 degC units
REG_THRESHOLD = 0x04  # alarm threshold
REG_LED = 0x08        # 1 = on
REG_STATUS = 0x0C     # bit0: alarm pending (write 1 to clear)


class SensorDevice:
    """Device model: temperature drifts upward; crossing the threshold
    raises the alarm interrupt."""

    def __init__(self, kernel, irq=12, io_base=0xA000):
        self._kernel = kernel
        self.irq = irq
        self.temp = 215  # 21.5 degC
        self.threshold = 0xFFFFFFFF
        self.led = 0
        self.status = 0
        self.pci = PciFunction(0x1DEC, 0x0001, irq,
                               [PciBar(io_base, 0x10, False, self)],
                               name="sensor")

    def read(self, offset, size):
        return {REG_TEMP: self.temp, REG_THRESHOLD: self.threshold,
                REG_LED: self.led, REG_STATUS: self.status}.get(offset, 0)

    def write(self, offset, value, size):
        if offset == REG_THRESHOLD:
            self.threshold = value
        elif offset == REG_LED:
            self.led = value & 1
        elif offset == REG_STATUS:
            self.status &= ~value

    def heat(self, delta):
        self.temp += delta
        if self.temp >= self.threshold and not self.status & 1:
            self.status |= 1
            self._kernel.irq.raise_irq(self.irq)


# -- shared state struct (would be annotated for DriverSlicer) ---------------

class sensor_state(CStruct):
    FIELDS = [("io_base", U32), ("threshold", U32), ("alarms", U32)]


# -- the driver nucleus: interrupt handler + kernel entry points -------------

class SensorNucleus:
    def __init__(self, kernel, device):
        self.kernel = kernel
        self.device = device
        plan = MarshalPlan()
        plan.set_access("sensor_state", FieldAccess(
            reads={"io_base", "threshold"},
            writes={"io_base", "threshold", "alarms"}))
        self.plumbing = DecafPlumbing(kernel, "sensor", irq_line=device.irq,
                                      plan=plan)
        self.state = sensor_state()
        self.plumbing.channel.kernel_tracker.register(self.state)
        self.decaf = SensorDecafDriver(self.plumbing.decaf_rt, self)
        self.alarm_work = None

    def load(self):
        self.kernel.pci.enable_device(self.device.pci)
        self.kernel.pci.request_regions(self.device.pci, "sensor")
        self.kernel.request_irq(self.device.irq, self.irq_handler, "sensor")
        self.plumbing.decaf_rt.start()
        return self.plumbing.upcall(self.decaf.probe,
                                    args=[(self.state, sensor_state)])

    def irq_handler(self, irq, dev_id):
        # High priority: ack and defer the policy to user level.
        self.kernel.io.outl(1, self.state.io_base + REG_STATUS)
        from repro.kernel import WorkItem

        work = WorkItem(self.kernel, self._alarm_work, name="sensor-alarm")
        self.kernel.workqueue.schedule_work(work)
        return IRQ_HANDLED

    def _alarm_work(self, _data):
        self.plumbing.upcall(self.decaf.alarm,
                             args=[(self.state, sensor_state)])

    # kernel entry point used by the decaf driver
    def k_resource_start(self):
        return self.device.pci.resource_start(0)


# -- the decaf driver: all policy at user level, with exceptions --------------

class SensorDecafDriver:
    def __init__(self, rt, nucleus):
        self.rt = rt
        self.nucleus = nucleus

    def probe(self, state):
        state.io_base = self.nucleus.plumbing.downcall_checked(
            self.nucleus.k_resource_start)
        temp = self.rt.inl(state.io_base + REG_TEMP)
        if temp == 0:
            raise HardwareException("sensor reads zero: not present?")
        self.set_threshold(state, 300)  # alarm at 30.0 degC
        return 0

    def set_threshold(self, state, tenths):
        if not 0 < tenths < 1000:
            raise ConfigException("threshold %d out of range" % tenths)
        state.threshold = tenths
        self.rt.outl(tenths, state.io_base + REG_THRESHOLD)

    def alarm(self, state):
        """Alarm policy: light the LED and back the threshold off."""
        state.alarms += 1
        self.rt.outl(1, state.io_base + REG_LED)
        self.set_threshold(state, state.threshold + 50)
        return 0


def main():
    kernel = make_kernel()
    device = SensorDevice(kernel)
    kernel.pci.add_function(device.pci)

    nucleus = SensorNucleus(kernel, device)
    assert nucleus.load() == 0
    print("sensor decaf driver loaded; threshold %.1f degC, "
          "crossings so far: %d"
          % (device.threshold / 10,
             nucleus.plumbing.xpc.kernel_user_crossings))

    print("heating the sensor...")
    for _ in range(12):
        device.heat(10)
        kernel.run_for_ms(10)

    print("temperature now %.1f degC" % (device.temp / 10))
    print("alarms handled at user level: %d" % nucleus.state.alarms)
    print("LED on: %s, threshold backed off to %.1f degC"
          % (bool(device.led), device.threshold / 10))
    assert nucleus.state.alarms >= 1
    assert device.led == 1
    print("\nEverything above the interrupt ack ran in the decaf driver -- "
          "a new driver with no C version ever written.")


if __name__ == "__main__":
    main()
