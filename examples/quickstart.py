#!/usr/bin/env python3
"""Quickstart: boot a simulated machine, load a decaf driver, move data.

Builds the E1000 rig twice -- once with the legacy kernel-only driver,
once with the Decaf split driver -- runs a short netperf-style send on
each, and prints what the paper's Table 3 measures: throughput parity,
init-latency cost, and where the crossings went.

Run:  python examples/quickstart.py
"""

from repro.workloads import make_e1000_rig, netperf_send


def run(decaf):
    rig = make_e1000_rig(decaf=decaf)
    rig.insmod()
    result = netperf_send(rig, duration_s=1.0)
    return rig, result


def main():
    print("Decaf Drivers quickstart: E1000 on a simulated gigabit link\n")

    native_rig, native = run(decaf=False)
    decaf_rig, decaf = run(decaf=True)

    print("%-28s %14s %14s" % ("", "native", "decaf"))
    print("%-28s %13.1f %14.1f" % ("throughput (Mb/s)",
                                   native.throughput_mbps,
                                   decaf.throughput_mbps))
    print("%-28s %13.1f%% %13.1f%%" % ("CPU utilization",
                                       100 * native.cpu_utilization,
                                       100 * decaf.cpu_utilization))
    print("%-28s %13.2fs %13.2fs" % ("driver init latency",
                                     native.init_latency_s,
                                     decaf.init_latency_s))
    print("%-28s %14d %14d" % ("kernel/user crossings",
                               0, decaf.kernel_user_crossings))
    print("%-28s %14s %14d" % ("decaf calls during workload",
                               "-", decaf.decaf_invocations))

    ratio = decaf.throughput_mbps / native.throughput_mbps
    print("\nRelative performance: %.3f "
          "(paper reports 0.99-1.00 across drivers)" % ratio)
    print("The data path never leaves the kernel; initialization pays "
          "for XPC and marshaling.")


if __name__ == "__main__":
    main()
