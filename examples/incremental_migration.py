#!/usr/bin/env python3
"""Incremental migration: converting a driver one function at a time.

The paper's section 5.3 methodology: every user-level function starts
as the original C code staged in the driver library; decaf rewrites
are added leaf-first, each validated against the C version on the live
device before the binding is flipped.  A buggy rewrite is caught by
the comparison and reverted.

Run:  python examples/incremental_migration.py
"""

from repro.core.marshal import MarshalPlan
from repro.devices import EthernetLink, Rtl8139Device
from repro.drivers.decaf.plumbing import DecafPlumbing
from repro.drivers.decaf.transition import TransitionError, TransitionTable
from repro.drivers.legacy import rtl8139 as legacy
from repro.drivers.linuxapi import LinuxApi
from repro.kernel import make_kernel


def main():
    kernel = make_kernel()
    link = EthernetLink(kernel, bits_per_second=100_000_000)
    nic = Rtl8139Device(kernel, link)
    kernel.pci.add_function(nic.pci)
    kernel.pci.request_regions(nic.pci, "migration-demo")
    legacy.linux = LinuxApi(kernel)
    legacy._state.__init__()

    tp = legacy.rtl8139_private()
    tp.ioaddr = nic.pci.resource_start(0)

    plumbing = DecafPlumbing(kernel, "8139too", plan=MarshalPlan())
    table = TransitionTable(plumbing)
    rt = plumbing.decaf_rt

    # Step 0: the freshly split driver -- all user functions in C.
    table.register("read_mac",
                   lambda: legacy.read_mac_address(tp) or list(tp.mac_addr))
    table.register("check_media",
                   lambda: 1 if not legacy.RTL_R8(tp, legacy.MSR)
                   & legacy.MSR_LINKB else 0)
    table.register("read_config1",
                   lambda: legacy.inl if False else
                   legacy.RTL_R8(tp, legacy.CONFIG1))
    print("after splitting: %d/%d functions converted, library holds %s"
          % (*table.conversion_progress(), table.unconverted()))

    # Step 1: convert read_mac, validating against the C version first.
    table.add_decaf_implementation(
        "read_mac", lambda: [rt.inb(tp.ioaddr + i) for i in range(6)])
    mac = table.compare("read_mac")
    table.convert("read_mac")
    print("read_mac converted (validated: %s)"
          % ":".join("%02x" % b for b in mac))

    # Step 2: a BUGGY rewrite of check_media -- caught by compare().
    table.add_decaf_implementation(
        "check_media",
        lambda: 1 if rt.inb(tp.ioaddr + legacy.MSR) & legacy.MSR_LINKB
        else 0)  # inverted sense!
    try:
        table.compare("check_media")
    except TransitionError as exc:
        print("buggy rewrite caught before conversion: %s" % exc)

    # Fix it and convert.
    table.add_decaf_implementation(
        "check_media",
        lambda: 0 if rt.inb(tp.ioaddr + legacy.MSR) & legacy.MSR_LINKB
        else 1)
    table.compare("check_media")
    table.convert("check_media")
    print("check_media converted after the fix")

    print("migration status: %d/%d converted, remaining in C: %s"
          % (*table.conversion_progress(), table.unconverted()))
    print("calls so far: %d through the library, %d through the decaf "
          "driver" % (table.library_calls, table.decaf_calls))


if __name__ == "__main__":
    main()
