#!/usr/bin/env python3
"""MP3 playback through the decaf sound driver (the paper's mpg123 run).

Demonstrates the sound-specific parts of the Decaf story:

* the decaf ens1371 refuses to load on a stock kernel whose sound
  library holds spinlocks across driver ops (section 3.1.3), and runs
  on the mutex-based library;
* during playback, the decaf driver is invoked only at start/stop (the
  paper counted 15 calls); the per-period interrupt path stays in the
  driver nucleus.

Run:  python examples/sound_playback.py
"""

from repro.devices import Ens1371Device
from repro.kernel import make_kernel
from repro.drivers.decaf import ens1371_nucleus
from repro.workloads import make_ens1371_rig, mpg123_play


def main():
    print("1) Decaf sound driver on the STOCK (spinlock) sound library:")
    kernel = make_kernel(sound_use_mutex=False)
    card = Ens1371Device(kernel)
    kernel.pci.add_function(card.pci)
    ret = kernel.modules.insmod(ens1371_nucleus.make_module())
    print("   insmod -> %d (refused; upcalls under a spinlock would "
          "sleep in atomic context)" % ret)
    for _t, message in kernel.log_lines:
        print("   printk: %s" % message)

    print("\n2) On the paper's mutex-based sound library:")
    rig = make_ens1371_rig(decaf=True)
    rig.insmod()
    print("   insmod ok, init latency %.2fs, %d crossings"
          % (rig.init_latency_ns / 1e9, rig.crossings()))

    result = mpg123_play(rig, duration_s=10.0)
    print("\n   played 10 s of 256 Kbps MP3 (44.1 kHz stereo PCM)")
    print("   periods elapsed:        %d" % result.extra["periods_elapsed"])
    print("   device interrupts:      %d" % result.extra["device_interrupts"])
    print("   decaf-driver calls:     %d  (paper: 15, all at start/end)"
          % result.decaf_invocations)
    print("   CPU utilization:        %.2f%%  (paper: 0.1%%)"
          % (100 * result.cpu_utilization))
    print("   mixer controls:         %d registered via one downcall each"
          % len(rig.kernel.sound.cards[0].controls))


if __name__ == "__main__":
    main()
