#!/usr/bin/env python3
"""Run the DriverSlicer pipeline on a legacy driver, end to end.

This is the paper's conversion workflow (section 3.2) on the 8139too
driver:

1. build the call graph from the driver source;
2. partition from the critical roots (interrupt handler, transmit);
3. analyze which struct fields the user-level half touches;
4. generate the XDR interface spec (with the Figure 3 array rewrite);
5. generate the XPC stub module (and actually execute a stub);
6. split the source into the two patched trees.

Run:  python examples/convert_driver.py
"""

from repro.core import DomainManager, Xpc, XpcChannel
from repro.drivers.legacy import rtl8139
from repro.slicer import (
    DRIVER_CONFIGS,
    build_call_graph,
    generate_stubs,
    generate_xdr_spec,
    partition_driver,
    split_driver_source,
)
from repro.slicer.accessanalysis import analyze_field_accesses
from repro.slicer.xdrgen import driver_struct_classes


def main():
    config = DRIVER_CONFIGS["8139too"]
    modules = config.load_modules()

    print("=== 1. call graph ===")
    graph = build_call_graph(modules)
    print("functions: %d, total LoC: %d" % (len(graph.functions),
                                            graph.total_loc()))

    print("\n=== 2. partition (critical roots: %s) ===" %
          ", ".join(config.critical_roots))
    partition = partition_driver(graph, config)
    print("driver nucleus (%d functions):" % len(partition.kernel_funcs))
    for name in sorted(partition.kernel_funcs):
        reason = partition.reasons.get(name, "reachable from a root")
        print("   %-28s %s" % (name, reason))
    print("user level (%d functions): %s ..." % (
        len(partition.user_funcs),
        ", ".join(sorted(partition.user_funcs)[:6])))

    print("\n=== 3. field-access analysis ===")
    accesses = analyze_field_accesses(modules, partition.user_funcs,
                                      config.type_hints)
    for struct, access in sorted(accesses.items()):
        print("   %-18s reads=%s writes=%s" % (
            struct, sorted(access.reads), sorted(access.writes)))

    print("\n=== 4. XDR interface spec (excerpt) ===")
    spec = generate_xdr_spec(driver_struct_classes([rtl8139]))
    print("\n".join(spec.splitlines()[:20]))

    print("\n=== 4b. generated Java classes (jrpcgen output) ===")
    from repro.slicer import generate_java_classes

    java = generate_java_classes(driver_struct_classes([rtl8139]))
    print("\n".join(java["rtl8139_private"].splitlines()[:10]))
    print("   ... (%d classes generated)" % len(java))

    print("\n=== 5. generated stubs ===")
    stub_source = generate_stubs("8139too", partition, modules,
                                 config.type_hints)
    print("generated %d lines; executing the rtl8139_open stub..."
          % len(stub_source.splitlines()))

    namespace = {}
    exec(compile(stub_source, "<stubs>", "exec"), namespace)
    from repro.kernel import make_kernel

    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())

    class UserImpl:
        @staticmethod
        def rtl8139_open(tp):
            print("   ... decaf rtl8139_open invoked with twin %r" % tp)
            return 0

    stubs = namespace["make_stubs"](channel, UserImpl, None)
    tp = rtl8139.rtl8139_private(msg_enable=7)
    channel.kernel_tracker.register(tp)
    ret = stubs["rtl8139_open"](tp)
    print("   stub returned %d after %d kernel/user crossing(s)"
          % (ret, channel.xpc.kernel_user_crossings))

    print("\n=== 6. split source trees ===")
    trees = split_driver_source(modules, partition)
    nucleus_src, library_src = trees["rtl8139"]
    print("nucleus tree: %5d lines" % len(nucleus_src.splitlines()))
    print("library tree: %5d lines" % len(library_src.splitlines()))
    marker = next(line for line in nucleus_src.splitlines()
                  if "DriverSlicer" in line)
    print("example patch marker: %s" % marker.strip())


if __name__ == "__main__":
    main()
