#!/usr/bin/env python3
"""The section 5.1 case study, live: broken error handling in C,
checked exceptions in the decaf driver.

Part 1 runs the static analysis that finds ignored error returns in
the legacy E1000 (the paper found 28).

Part 2 demonstrates one of them end to end: a PHY that stops answering
during initialization.  The legacy driver loads *successfully* --
``e1000_reset`` drops ``e1000_init_hw``'s error on the floor, exactly
as 2.6.18 did -- while the decaf driver's PhyException propagates and
the probe fails loudly.

Run:  python examples/error_handling_study.py
"""

from repro.analysis import analyze_error_handling, count_exception_usage
from repro.drivers.decaf import e1000_decaf, e1000_hw_decaf, e1000_param_decaf
from repro.drivers.legacy import (
    e1000_ethtool,
    e1000_hw,
    e1000_main,
    e1000_param,
)
from repro.workloads import make_e1000_rig


def static_analysis():
    print("=== Part 1: static analysis of the legacy E1000 ===")
    report = analyze_error_handling(
        [e1000_main, e1000_hw, e1000_param, e1000_ethtool])
    print("ignored/mishandled error returns: %d (paper found 28 in the "
          "8x-larger real driver)" % report.ignored_count)
    for case in report.ignored:
        print("   %s:%d  %s() drops %s()'s return"
              % (case.module, case.lineno, case.function, case.callee))
    frac = report.propagation_fraction("e1000_hw")
    print("error-propagation plumbing in the chip layer: %d lines (%.0f%%)"
          % (report.propagation_by_module["e1000_hw"], 100 * frac))
    n, classes = count_exception_usage(
        [e1000_decaf, e1000_hw_decaf, e1000_param_decaf])
    print("decaf functions rewritten with exceptions: %d, using %s"
          % (n, ", ".join(sorted(classes))))


def live_demo():
    print("\n=== Part 2: a dead PHY at probe time ===")

    def break_phy(rig):
        def dead_mdic(value, rig=rig):
            rig.device.regs[0x20] = 0  # MDIC never READY

        rig.device._write_mdic = dead_mdic

    legacy = make_e1000_rig(decaf=False)
    break_phy(legacy)
    ret = legacy.kernel.modules.insmod(legacy.module)
    print("legacy driver: insmod -> %d  "
          "(SUCCEEDS despite the dead PHY: the error is printk'd and "
          "dropped)" % ret)
    for _t, message in legacy.kernel.log_lines:
        if "Error" in message:
            print("   printk: %s" % message)

    decaf = make_e1000_rig(decaf=True)
    break_phy(decaf)
    ret = decaf.kernel.modules.insmod(decaf.module)
    print("decaf driver:  insmod -> %d  "
          "(FAILS: PhyException propagated across XPC as -EIO)" % ret)
    print("\nChecked exceptions make the failure impossible to ignore -- "
          "the compiler-enforced version of the paper's argument.")


if __name__ == "__main__":
    static_analysis()
    live_demo()
