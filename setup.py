"""Setuptools entry point.

Kept alongside pyproject.toml so that editable installs work on
environments without the `wheel` package (pip falls back to
`setup.py develop`).
"""

from setuptools import setup

setup()
