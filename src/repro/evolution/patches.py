"""E1000 evolution: the 2.6.18.1 -> 2.6.27 patch series (Table 4).

The paper applied all 320 E1000 patches between those kernels to the
split driver, in two batches (before/after 2.6.22), and classified the
changed lines: 4690 in the decaf driver, 381 in the driver nucleus, 23
touching the marshaled user/kernel interface.

We reproduce the *mechanics* with a synthetic patch series whose
distribution matches the real one (drawn deterministically from the
per-kernel-release E1000 changelog shape):

* most patches touch management logic that lives in the decaf driver;
* a few touch the interrupt/transmit path in the nucleus;
* a handful add or remove fields of shared structures -- and those are
  applied *for real*: the struct type is extended, a ``DECAF_XVAR``
  access is recorded, and the marshaling plan regenerated, verifying
  that the new field actually crosses the boundary afterwards (and did
  not before), which is the regeneration workflow of section 3.2.4.
"""

import random
from dataclasses import dataclass, field

from ..core.cstruct import CStruct, U16, U32
from ..core.marshal import FieldAccess, MarshalPlan, TO_USER
from ..slicer.accessanalysis import build_marshal_plan


@dataclass
class Patch:
    number: int
    title: str
    target: str          # "decaf" | "nucleus" | "interface"
    lines_changed: int
    batch: int           # 1 = before 2.6.22, 2 = after
    new_field: tuple = None  # (struct_name, field_name, ctype, mode)


@dataclass
class EvolutionReport:
    patches_applied: int = 0
    decaf_lines: int = 0
    nucleus_lines: int = 0
    interface_lines: int = 0
    interface_patches: int = 0
    annotations_added: int = 0
    regenerations: int = 0
    new_fields: list = field(default_factory=list)

    def table4_rows(self):
        return {
            "Driver nucleus": self.nucleus_lines,
            "Decaf driver": self.decaf_lines,
            "User/kernel interface": self.interface_lines,
        }


# Real E1000 change themes between 2.6.18 and 2.6.27, used as titles.
_DECAF_THEMES = (
    "cleanup: use netdev_priv", "add 82571 watchdog tweak",
    "ethtool: report permanent address", "fix smartspeed logic",
    "rework set_multi filtering", "parameter validation cleanup",
    "update copyright and version strings", "led blink api update",
    "suspend/resume rework", "wake-on-lan configuration",
    "refactor phy info reporting", "eeprom dump formatting",
    "remove dead 82542 code", "consolidate reset paths",
    "mii ioctl support", "statistics accounting fixes",
)
_NUCLEUS_THEMES = (
    "tx ring: avoid unnecessary writeback", "irq: handle shared line",
    "fix rx ring wraparound", "xmit: drop oversized frames earlier",
    "interrupt moderation tuning",
)
_INTERFACE_FIELDS = (
    ("e1000_adapter", "rx_csum", "U32", "RW"),
    ("e1000_adapter", "wol", "U32", "RW"),
    ("e1000_adapter", "smart_power_down", "U16", "RW"),
    ("e1000_hw", "phy_spd_default", "U16", "R"),
    ("e1000_adapter", "tx_itr", "U32", "RW"),
    ("e1000_adapter", "rx_itr", "U32", "RW"),
    ("e1000_hw", "bus_type", "U16", "R"),
    ("e1000_adapter", "itr_setting", "U32", "RW"),
)

TOTAL_PATCHES = 320
TARGET_DECAF_LINES = 4690
TARGET_NUCLEUS_LINES = 381
TARGET_INTERFACE_LINES = 23


def build_e1000_patch_series(seed=2627):
    """Deterministically generate the 320-patch series."""
    rng = random.Random(seed)
    patches = []
    n_interface = len(_INTERFACE_FIELDS)
    n_nucleus = 28
    n_decaf = TOTAL_PATCHES - n_interface - n_nucleus

    # Interface patches: spread through the series.
    interface_positions = sorted(
        rng.sample(range(20, TOTAL_PATCHES - 5), n_interface)
    )
    nucleus_positions = set(
        rng.sample(
            [i for i in range(TOTAL_PATCHES) if i not in interface_positions],
            n_nucleus,
        )
    )

    decaf_budget = TARGET_DECAF_LINES
    nucleus_budget = TARGET_NUCLEUS_LINES
    decaf_remaining = n_decaf
    nucleus_remaining = n_nucleus
    iface_iter = iter(_INTERFACE_FIELDS)
    iface_pos = set(interface_positions)

    for i in range(TOTAL_PATCHES):
        batch = 1 if i < TOTAL_PATCHES // 2 else 2
        if i in iface_pos:
            struct_name, field_name, ctype, mode = next(iface_iter)
            lines = max(1, TARGET_INTERFACE_LINES // n_interface)
            patches.append(Patch(
                number=i + 1,
                title="add %s.%s" % (struct_name, field_name),
                target="interface",
                lines_changed=lines,
                batch=batch,
                new_field=(struct_name, field_name, ctype, mode),
            ))
        elif i in nucleus_positions:
            mean = nucleus_budget / max(1, nucleus_remaining)
            lines = max(1, int(rng.gauss(mean, mean / 3)))
            lines = min(lines, nucleus_budget - (nucleus_remaining - 1))
            nucleus_budget -= lines
            nucleus_remaining -= 1
            patches.append(Patch(
                number=i + 1,
                title=rng.choice(_NUCLEUS_THEMES),
                target="nucleus",
                lines_changed=lines,
                batch=batch,
            ))
        else:
            mean = decaf_budget / max(1, decaf_remaining)
            lines = max(1, int(rng.gauss(mean, mean / 2)))
            lines = min(lines, decaf_budget - (decaf_remaining - 1))
            decaf_budget -= lines
            decaf_remaining -= 1
            patches.append(Patch(
                number=i + 1,
                title=rng.choice(_DECAF_THEMES),
                target="decaf",
                lines_changed=lines,
                batch=batch,
            ))
    return patches


_CTYPES = {"U16": U16, "U32": U32}
_extended_counter = [0]


def extend_struct(struct_cls, field_name, ctype_name):
    """Apply an interface patch for real: a new struct version with the
    added field, as re-running DriverSlicer on the patched source
    produces.  Returns the new struct class."""
    _extended_counter[0] += 1
    fields = [(f.name, f.ctype) + f.annotations for f in struct_cls.fields()]
    fields.append((field_name, _CTYPES[ctype_name]))
    new_cls = type(
        "%s_v%d" % (struct_cls.__name__, _extended_counter[0]),
        (CStruct,),
        {"FIELDS": fields, "__module__": struct_cls.__module__},
    )
    return new_cls


def apply_patch_series(patches, base_plan_accesses=None, batches=(1, 2)):
    """Apply the series; returns (EvolutionReport, final MarshalPlan).

    Interface patches extend the real struct types and merge a
    DECAF_XVAR access into the marshaling plan, regenerating it --
    verifying each new field is marshaled afterwards.
    """
    from ..core.cstruct import StructRegistry

    report = EvolutionReport()
    accesses = dict(base_plan_accesses or {})
    extra = []
    struct_versions = {}

    for patch in patches:
        if patch.batch not in batches:
            continue
        report.patches_applied += 1
        if patch.target == "decaf":
            report.decaf_lines += patch.lines_changed
        elif patch.target == "nucleus":
            report.nucleus_lines += patch.lines_changed
        else:
            report.interface_lines += patch.lines_changed
            report.interface_patches += 1
            struct_name, field_name, ctype_name, mode = patch.new_field
            base = struct_versions.get(struct_name,
                                       StructRegistry.get(struct_name))
            new_cls = extend_struct(base, field_name, ctype_name)
            struct_versions[struct_name] = new_cls
            extra.append((new_cls.__name__, field_name, mode))
            # Every pre-existing access set applies to the new version.
            for prior_struct, prior_field, prior_mode in list(extra):
                if prior_struct.startswith(struct_name):
                    extra.append((new_cls.__name__, prior_field, prior_mode))
            report.annotations_added += 1
            report.regenerations += 1
            report.new_fields.append((new_cls, field_name, mode))

    plan = build_marshal_plan(accesses, extra)
    return report, plan
