"""Driver evolution (paper section 5.2, Table 4)."""

from .patches import (
    EvolutionReport,
    Patch,
    apply_patch_series,
    build_e1000_patch_series,
    extend_struct,
)

__all__ = [
    "Patch",
    "EvolutionReport",
    "build_e1000_patch_series",
    "apply_patch_series",
    "extend_struct",
]
