"""Decaf Drivers: a full-system reproduction in Python.

Reproduces "Decaf: Moving Device Drivers to a Modern Language"
(Renzelmann & Swift, USENIX ATC 2009): the Decaf architecture (XPC,
object trackers, XDR marshaling, combolocks, runtimes), the
DriverSlicer tool, five converted drivers, and the simulated kernel
and hardware they run on.

Package map:

* :mod:`repro.kernel` -- the simulated Linux kernel substrate;
* :mod:`repro.devices` -- register-level device models;
* :mod:`repro.core` -- the Decaf architecture itself;
* :mod:`repro.slicer` -- DriverSlicer;
* :mod:`repro.drivers` -- legacy and decaf drivers;
* :mod:`repro.analysis` -- the case-study analyses;
* :mod:`repro.evolution` -- the Table 4 patch machinery;
* :mod:`repro.workloads` -- the Table 3 workloads and rigs.

Quick start::

    from repro.workloads import make_e1000_rig, netperf_send
    rig = make_e1000_rig(decaf=True)
    rig.insmod()
    print(netperf_send(rig, duration_s=1.0).row())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
