"""Declarative fault plans."""


class InjectedFault(Exception):
    """An injected *unchecked* exception -- a simulated latent bug.

    Deliberately not a DriverException: the failure boundary must treat
    it as a driver failure, not as protocol.
    """


FAULT_KINDS = ("alloc_fail", "xpc_raise", "reg_wedge", "payload_corrupt")


class FaultSpec:
    """One fault: what to break, and at which deterministic occurrence.

    ``at`` is 1-based: the fault fires at the Nth event matching the
    spec's filters and never again, so a retried operation succeeds --
    the transient-fault model recovery is designed for.
    """

    def __init__(self, kind, at=1, callsite=None, owner=None,
                 addr=None, value=0xFFFFFFFF, message=None):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (one of %s)"
                             % (kind, ", ".join(FAULT_KINDS)))
        if kind == "reg_wedge" and addr is None:
            raise ValueError("reg_wedge needs addr=")
        if at < 1:
            raise ValueError("at= is 1-based")
        self.kind = kind
        self.at = at
        self.callsite = callsite  # substring filter on crossing callsite
        self.owner = owner        # substring filter on allocation owner
        self.addr = addr          # wedged register address
        self.value = value        # value a wedged register reads back
        self.message = message or self.describe()
        self.seen = 0             # matching events observed
        self.fired = 0            # times the fault actually struck

    def describe(self):
        where = self.callsite or self.owner or (
            "0x%x" % self.addr if self.addr is not None else "any")
        return "%s@%s#%d" % (self.kind, where, self.at)

    def hit(self):
        """Count one matching event; True when this is the firing one."""
        self.seen += 1
        if self.seen == self.at:
            self.fired += 1
            return True
        return False


class FaultPlan:
    """A named, ordered collection of fault specs."""

    def __init__(self, specs, name="fault-plan"):
        self.specs = list(specs)
        self.name = name

    @property
    def fired(self):
        return sum(spec.fired for spec in self.specs)

    def by_kind(self, *kinds):
        return [spec for spec in self.specs if spec.kind in kinds]

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)
