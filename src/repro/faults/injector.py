"""Arm a fault plan against a rig."""

from .plan import InjectedFault


class FaultInjector:
    """Applies one :class:`FaultPlan` to one rig, uniformly.

    Memory and register faults hook kernel subsystems, so they hit
    legacy and decaf drivers identically.  XPC faults hook the decaf
    channel; on a legacy rig they are inert -- there is no boundary to
    fault, which is itself the comparison the paper draws.
    """

    def __init__(self, rig, plan):
        self.rig = rig
        self.plan = plan
        self.armed = False

    def _channel(self):
        if not self.rig.decaf:
            return None
        instance = getattr(self.rig.module, "instance", None)
        if instance is None:
            return None
        return instance.plumbing.channel

    def arm(self):
        if self.armed:
            return self
        kernel = self.rig.kernel
        if self.plan.by_kind("alloc_fail"):
            kernel.memory.fault_hook = self._on_alloc
        for spec in self.plan.by_kind("reg_wedge"):
            # Wedging is environmental, not event-counted: the register
            # is dead from now on (until disarm).
            kernel.io.wedge(spec.addr, value=spec.value)
            spec.fired += 1
            self._trace(spec, where="0x%x" % spec.addr)
        channel = self._channel()
        if channel is not None:
            if self.plan.by_kind("xpc_raise"):
                channel.inject_hook = self._on_crossing
            if self.plan.by_kind("payload_corrupt"):
                channel.corrupt_hook = self._on_payload
        self.armed = True
        return self

    def disarm(self):
        if not self.armed:
            return
        kernel = self.rig.kernel
        if kernel.memory.fault_hook == self._on_alloc:
            kernel.memory.fault_hook = None
        for spec in self.plan.by_kind("reg_wedge"):
            kernel.io.unwedge(spec.addr)
        channel = self._channel()
        if channel is not None:
            if channel.inject_hook == self._on_crossing:
                channel.inject_hook = None
            if channel.corrupt_hook == self._on_payload:
                channel.corrupt_hook = None
        self.armed = False

    def _trace(self, spec, where=""):
        kernel = self.rig.kernel
        kernel.printk(
            "fault-inject %s: %s fired (%s)"
            % (self.rig.name, spec.kind, spec.message),
            level="warn",
        )
        tracer = kernel.tracer
        if tracer is not None:
            tracer.instant("fault.inject", {
                "driver": self.rig.name, "kind": spec.kind,
                "spec": spec.message, "where": where,
            })
            tracer.metrics.inc("fault.injected|%s" % self.rig.name)

    # -- hook targets -----------------------------------------------------------

    def _on_alloc(self, seq, size, owner):
        for spec in self.plan.by_kind("alloc_fail"):
            if spec.owner is not None and spec.owner not in owner:
                continue
            if spec.hit():
                self._trace(spec, where="%s alloc #%d (%d bytes)"
                                        % (owner, seq, size))
                return True
        return False

    def _on_crossing(self, kind, callsite):
        for spec in self.plan.by_kind("xpc_raise"):
            if spec.callsite is not None and spec.callsite not in callsite:
                continue
            if spec.hit():
                self._trace(spec, where="%s %s" % (kind, callsite))
                raise InjectedFault(
                    "injected fault at %s %s (%s)"
                    % (kind, callsite, spec.message)
                )

    def _on_payload(self, data, direction):
        for spec in self.plan.by_kind("payload_corrupt"):
            if spec.hit():
                self._trace(spec, where="payload %d bytes" % len(data))
                # Truncate to half: the decode must fail loudly, which
                # the boundary then contains as a driver fault.
                return data[: len(data) // 2]
        return data
