"""Deterministic fault injection for the driver pairs.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec`
entries; a :class:`FaultInjector` arms one plan against one rig.  The
same plan applies to a legacy and a decaf rig alike -- that uniformity
is the point: the experiment is *what happens after the fault*, and it
must be the fault that is held constant.

Kinds:

* ``alloc_fail`` -- fail the Nth matching memory allocation
  (``kernel.memory`` choke point; ``owner=`` filters by allocation
  owner, so "the driver's Nth allocation" is deterministic).
* ``xpc_raise`` -- raise :class:`InjectedFault` (unchecked) at the Nth
  matching kernel->user crossing (``callsite=`` substring filter).
  Models a latent bug in the user-level half; inert on legacy rigs,
  which have no boundary to fault.
* ``reg_wedge`` -- wedge a device register: reads return a forced value
  (default all-ones, the classic dead-device signature), writes are
  dropped.  Surfaces as checked timeouts in both driver flavors.
* ``payload_corrupt`` -- mangle the Nth marshaled payload in flight;
  the decode error is a boundary fault.  Decaf rigs only.
"""

from .plan import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault
from .injector import FaultInjector

__all__ = [
    "FAULT_KINDS", "FaultInjector", "FaultPlan", "FaultSpec",
    "InjectedFault",
]
