"""Seeded scenario generation.

A :class:`Scenario` is a JSON-able value: driver name, seed, mode, and
an ordered list of events, each a dict with a virtual-time offset
``"t"`` (ns after setup) and family-specific parameters.  Everything
the runner replays is in the scenario -- no hidden state -- so a
scenario can be serialized into a repro script and replayed elsewhere.

Generation is deterministic: ``random.Random`` is seeded with a string
(CPython hashes str seeds with sha512, immune to hash randomization),
so the same (driver, seed, mode) triple yields the same schedule in
every process.
"""

import random

from ..kernel.vtime import NSEC_PER_MSEC

#: The four driver pairs the conformance sweep covers by default.
#: ``uhci_hcd`` is supported but excluded from the default set: its
#: bulk-storage scenario exercises the same XPC machinery at several
#: times the cost.
DRIVERS = ("e1000", "8139too", "ens1371", "psmouse")

ALL_DRIVERS = DRIVERS + ("uhci_hcd",)

FAMILY = {
    "e1000": "net",
    "8139too": "net",
    "ens1371": "sound",
    "psmouse": "input",
    "uhci_hcd": "usb",
}

MODES = ("strict", "faulty")


class Scenario:
    """One deterministic schedule for one driver pair."""

    __slots__ = ("driver", "seed", "mode", "events", "faults")

    def __init__(self, driver, seed, mode, events, faults=None):
        if driver not in FAMILY:
            raise ValueError("unknown driver %r (one of %s)"
                             % (driver, ", ".join(ALL_DRIVERS)))
        if mode not in MODES:
            raise ValueError("unknown mode %r" % mode)
        self.driver = driver
        self.seed = seed
        self.mode = mode
        self.events = list(events)
        self.faults = list(faults or [])

    @property
    def family(self):
        return FAMILY[self.driver]

    def to_json(self):
        return {
            "driver": self.driver,
            "seed": self.seed,
            "mode": self.mode,
            "events": self.events,
            "faults": self.faults,
        }

    @classmethod
    def from_json(cls, data):
        return cls(data["driver"], data["seed"], data["mode"],
                   data["events"], data.get("faults"))

    def replace_events(self, events):
        """A copy with a different event list (minimization)."""
        return Scenario(self.driver, self.seed, self.mode, events,
                       self.faults)

    def describe(self):
        return "%s seed=%d mode=%s events=%d faults=%d" % (
            self.driver, self.seed, self.mode, len(self.events),
            len(self.faults))


def _frame(rng, size):
    """A deterministic pseudo-random Ethernet-ish payload."""
    return bytes(rng.randrange(256) for _ in range(size))


class ScenarioGenerator:
    """Expands (driver, seed, mode) into a :class:`Scenario`."""

    def __init__(self, seed):
        self.seed = seed

    def _rng(self, driver, mode):
        return random.Random("conformance:%s:%d:%s"
                             % (driver, self.seed, mode))

    def generate(self, driver, mode="strict"):
        rng = self._rng(driver, mode)
        family = FAMILY[driver]
        build = getattr(self, "_gen_%s" % family)
        events = build(rng, driver, mode)
        faults = self._gen_faults(rng, driver) if mode == "faulty" else []
        return Scenario(driver, self.seed, mode, events, faults)

    #: Per-driver ranges for "fire on the Nth post-arming crossing",
    #: calibrated against each driver's *minimum* post-arming crossing
    #: budget across seeds 0-24 (e1000 7, 8139too 4, ens1371 14,
    #: psmouse 5) so the fault always lands inside the scenario.  The
    #: budgets differ wildly: the rtl8139's link-watch period exceeds
    #: the scenario so only config ops cross, while the mouse crosses
    #: once per resync-poll second (which is why faulty input scenarios
    #: stretch their event spacing to seconds).  Exactly one fault per
    #: scenario: recovery itself crosses the boundary dozens of times,
    #: so a second armed occurrence count tends to land mid-recovery
    #: and trips the supervisor's give-up backoff rather than modeling
    #: a fresh failure.
    XPC_AT_RANGES = {
        "e1000": (2, 8),
        "8139too": (2, 5),
        "ens1371": (3, 15),
        "psmouse": (1, 6),
        "uhci_hcd": (1, 3),
    }

    def _gen_faults(self, rng, driver):
        """One fault spec, armed on the decaf rig only.

        ``xpc_raise`` with an occurrence count is the most portable
        fault -- every decaf driver crosses the boundary -- but the Nth
        crossing only lands mid-scenario if N fits the driver's
        post-arming crossing budget (see :data:`XPC_AT_RANGES`).
        """
        lo, hi = self.XPC_AT_RANGES[driver]
        return [{"kind": "xpc_raise", "at": rng.randrange(lo, hi)}]

    # -- network (e1000 / 8139too) ----------------------------------------

    def _gen_net(self, rng, driver, mode="strict"):
        events = []
        t = 0
        for _ in range(rng.randrange(6, 13)):
            t += rng.randrange(1, 6) * NSEC_PER_MSEC
            kind = rng.choice(
                ("tx_burst", "tx_burst", "rx_burst", "rx_burst",
                 "irq_storm", "config_mac", "set_multi", "config_mtu",
                 "ifdown_up"))
            if kind == "config_mtu" and driver != "e1000":
                kind = "set_multi"  # 8139too has no change_mtu op
            if kind in ("tx_burst", "rx_burst"):
                frames = [
                    _frame(rng, rng.randrange(60, 400)).hex()
                    for _ in range(rng.randrange(1, 9))
                ]
                events.append({"t": t, "kind": kind, "frames": frames})
            elif kind == "irq_storm":
                # Back-to-back minimum-size frames, injected with no
                # virtual-time gap: every arrival races the previous
                # interrupt's handling.
                events.append({
                    "t": t, "kind": "irq_storm",
                    "count": rng.randrange(12, 33),
                    "frame": _frame(rng, 60).hex(),
                })
            elif kind == "config_mac":
                mac = bytearray(rng.randrange(256) for _ in range(6))
                mac[0] = (mac[0] | 0x02) & 0xFE  # locally administered
                events.append({"t": t, "kind": "config_mac",
                               "addr": bytes(mac).hex()})
            elif kind == "config_mtu":
                events.append({"t": t, "kind": "config_mtu",
                               "mtu": rng.randrange(600, 1601)})
            elif kind == "set_multi":
                events.append({"t": t, "kind": "set_multi"})
            else:
                events.append({"t": t, "kind": "ifdown_up",
                               "down_ms": rng.randrange(1, 4)})
        return events

    # -- sound (ens1371) ---------------------------------------------------

    def _gen_sound(self, rng, driver, mode="strict"):
        events = []
        t = 0
        for _ in range(rng.randrange(2, 5)):
            t += rng.randrange(1, 4) * NSEC_PER_MSEC
            rate = rng.choice((8000, 22050, 44100, 48000))
            events.append({
                "t": t,
                "kind": "pcm_cycle",
                "rate": rate,
                "channels": 2,
                "sample_bytes": 2,
                "period_frames": rng.choice((2048, 4096)),
                "periods": 4,
                "write_frames": rng.randrange(rate // 8, rate // 2),
            })
        return events

    # -- input (psmouse) ---------------------------------------------------

    def _gen_input(self, rng, driver, mode="strict"):
        events = []
        t = 0
        for _ in range(rng.randrange(8, 21)):
            if mode == "faulty":
                # The decaf mouse only crosses the boundary on its 1 Hz
                # resync poll, so faulty scenarios must span several
                # seconds of virtual time for an occurrence-count fault
                # to have any crossing to land on.
                t += rng.randrange(400, 801) * NSEC_PER_MSEC
            else:
                t += rng.randrange(0, 3) * NSEC_PER_MSEC
            events.append({
                "t": t,
                "kind": "move",
                "dx": rng.randrange(-127, 128),
                "dy": rng.randrange(-127, 128),
                "buttons": rng.randrange(0, 8),
                "wheel": rng.randrange(-2, 3),
            })
        return events

    # -- usb storage (uhci_hcd) --------------------------------------------

    def _gen_usb(self, rng, driver, mode="strict"):
        events = []
        t = 0
        for _ in range(rng.randrange(4, 11)):
            if mode == "faulty":
                # uhci's data path is kernel-resident (the 4% split):
                # post-arming the decaf half only crosses on its 1 Hz
                # root-hub status poll, so faulty scenarios must span
                # seconds -- same reasoning as the mouse resync poll.
                t += rng.randrange(400, 801) * NSEC_PER_MSEC
            else:
                t += rng.randrange(1, 4) * NSEC_PER_MSEC
            blocks = rng.randrange(1, 4)
            events.append({
                "t": t,
                "kind": "bulk_write",
                "lba": rng.randrange(0, 64),
                "blocks": blocks,
                "payload": _frame(rng, 512 * blocks).hex(),
            })
        return events
