"""Divergence minimization and repro emission.

When a scenario diverges, the whole schedule is rarely needed to show
it.  :func:`minimize_scenario` is ddmin over the event list: split into
chunks, try dropping each chunk (and each complement), recurse at finer
granularity while the divergence persists.  The result is a 1-minimal
schedule -- removing any single surviving event makes the divergence
disappear -- which, serialized by :func:`write_repro_script`, becomes a
standalone reproduction a human can run and read.
"""

from .observe import canonical_json


def ddmin(items, still_fails):
    """Classic delta-debugging minimization.

    ``still_fails(subset)`` must be deterministic (it is: scenarios are
    replayed, not re-generated).  Returns a 1-minimal sublist.
    """
    items = list(items)
    if not items or not still_fails(items):
        return items
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [items[i:i + chunk]
                   for i in range(0, len(items), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            complement = [ev for j, s in enumerate(subsets) if j != i
                          for ev in s]
            if complement and still_fails(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if len(subsets) > 2 and still_fails(subset):
                items = subset
                granularity = 2
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def minimize_scenario(runner, scenario, max_runs=64):
    """Shrink ``scenario.events`` while the pair still diverges.

    Returns ``(minimized_scenario, runs_used)``.  ``max_runs`` caps the
    pair replays (each ddmin probe runs both variants); on budget
    exhaustion the best-so-far schedule is returned.
    """
    budget = {"runs": 0}

    def still_fails(events):
        if budget["runs"] >= max_runs:
            return False  # budget exhausted: treat as passing, stop
        budget["runs"] += 1
        result = runner.run_pair(scenario.replace_events(events))
        return not result.ok

    events = ddmin(scenario.events, still_fails)
    return scenario.replace_events(events), budget["runs"]


REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Auto-generated conformance divergence repro.

Scenario: {describe}
Original divergences:
{divergence_lines}

Run with the repository's src/ on PYTHONPATH:

    PYTHONPATH=src python {filename}
"""

import json
import sys

from repro.conformance import DifferentialRunner, Scenario{nobble_import}

SCENARIO = json.loads(r"""
{scenario_json}
""")


def main():
    scenario = Scenario.from_json(SCENARIO)
    result = DifferentialRunner({runner_args}).run_pair(scenario)
    if result.ok:
        print("no divergence (fixed?): %s" % scenario.describe())
        return 0
    print("divergence reproduced: %s" % scenario.describe())
    for divergence in result.divergences:
        print("  [%s] %s" % (divergence.channel, divergence.detail))
    return 1


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_script(scenario, divergences, path, nobble_name=None):
    """Emit a standalone repro script for a (minimized) scenario.

    ``nobble_name``, if given, names a nobble callable exported by
    ``repro.conformance`` (e.g. the canary's ``nobble_drop_tx``); the
    emitted script re-installs it so the divergence it provoked still
    reproduces standalone.
    """
    lines = "\n".join("  [%s] %s" % (d.channel, d.detail)
                      for d in divergences) or "  (none recorded)"
    text = REPRO_TEMPLATE.format(
        describe=scenario.describe(),
        divergence_lines=lines,
        filename=getattr(path, "name", str(path)),
        scenario_json=canonical_json(scenario.to_json()),
        nobble_import=(", %s" % nobble_name) if nobble_name else "",
        runner_args=("nobble=%s" % nobble_name) if nobble_name else "",
    )
    with open(path, "w") as fh:
        fh.write(text)
    return path
