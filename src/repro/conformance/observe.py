"""Observation collection and canonical digests.

An :class:`Observation` is everything about one run that an outside
observer (the device on one side, applications and dmesg on the other)
can see, held as plain JSON-able values so that byte-identical
observations produce byte-identical digests -- the determinism
invariant the conformance harness rests on.
"""

import hashlib
import json


def canonical_json(obj):
    """Canonical serialization: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj):
    """sha256 over the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def frame_digest(data):
    """Short per-payload digest; traces stay readable in repro output."""
    return hashlib.sha256(bytes(data)).hexdigest()[:16]


#: dmesg lines whose *presence pattern* legitimately differs between the
#: variants: boundary traffic, recovery narration, and injected-fault
#: markers only exist on the decaf side; lockdep has its own channel.
DMESG_EXCLUDE_PREFIXES = ("xpc ", "recovery ", "fault-inject", "lockdep:")


def normalize_dmesg(entries):
    """Comparable view of the printk ring: (level, message) at warn+.

    Timestamps are dropped (the variants run on different virtual
    schedules) and boundary-chatter prefixes are excluded -- what is
    left is the driver-visible error surface that must match.
    """
    out = []
    for _ns, level, message in entries:
        if level not in ("warn", "err"):
            continue
        if message.startswith(DMESG_EXCLUDE_PREFIXES):
            continue
        out.append([level, message])
    return out


class Observation:
    """All observable channels of one scenario run, JSON-able."""

    __slots__ = ("channels",)

    #: Channels asserted equal between variants in strict mode.  The
    #: ``counters`` channel is compared with bounds instead (crossing
    #: counts are decaf-only by design), and ``reg_trace`` equality is
    #: per-family (see runner.REG_TRACE_STRICT).
    STRICT_EQUAL = ("tx", "rx", "input", "disk", "sound", "ops", "dmesg")

    def __init__(self):
        self.channels = {
            "reg_trace": [],   # [op, region, offset, size, value]
            "tx": [],          # frame digests, device->wire order
            "rx": [],          # frame digests, stack-delivery order
            "input": [],       # [type, code, value] triples
            "disk": {},        # lba -> block digest
            "sound": {},       # end-of-run device/runtime state
            "ops": [],         # [event index, op, return value]
            "dmesg": [],       # normalized warn+ lines
            "counters": {},    # packet / crossing / recovery counters
            "lockdep": [],     # [kind, message] -- must stay empty
        }

    def __getitem__(self, key):
        return self.channels[key]

    def __setitem__(self, key, value):
        self.channels[key] = value

    def to_json(self):
        return self.channels

    def digest(self):
        return digest_of(self.channels)


def is_subsequence(needle, haystack):
    """True if ``needle`` appears in ``haystack`` in order (with gaps).

    The faulty-mode delivery invariant: a recovering decaf driver may
    *lose* payloads relative to the fault-free legacy run, but must
    never reorder, duplicate, or corrupt them.
    """
    it = iter(haystack)
    return all(item in it for item in needle)
