"""Replay one scenario against both driver variants and compare.

The runner is the only component that knows how to *drive* a rig; the
scenario is pure data.  One :meth:`DifferentialRunner.run_one` builds a
fresh rig (legacy or decaf), enables lockdep, replays the schedule at
its virtual-time offsets, and collects an :class:`Observation`.
:meth:`DifferentialRunner.run_pair` does that for both variants and
compares:

* **strict** mode (no faults): payloads, input events, device state,
  operation return codes, dmesg error surface, and the register-access
  trace must be *equal*; packet counters equal; XPC crossings zero on
  legacy and linearly bounded on decaf.
* **faulty** mode (faults armed on the decaf rig only, supervisor
  attached): the decaf run may lose payloads while recovering but must
  never reorder, duplicate, or corrupt them (subsequence check), the
  loss is bounded, recovery must complete, and the channel must be
  healthy at the end.

Any violated check becomes a :class:`Divergence`; lockdep reports are a
divergence in *either* variant, in every mode.
"""

import struct

from ..faults import FaultPlan, FaultSpec
from ..kernel import NETDEV_TX_BUSY, NETDEV_TX_OK, SkBuff
from ..kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from ..kernel.usb import usb_sndbulkpipe
from ..kernel.vtime import NSEC_PER_MSEC
from ..workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)
from .observe import (
    Observation,
    frame_digest,
    is_subsequence,
    normalize_dmesg,
)
from .scenario import FAMILY

MAKERS = {
    "e1000": make_e1000_rig,
    "8139too": make_8139too_rig,
    "ens1371": make_ens1371_rig,
    "psmouse": make_psmouse_rig,
    "uhci_hcd": make_uhci_rig,
}

#: How register-access traces are compared between variants in strict
#: mode.  ``"full"``: access-for-access equality (reads and writes, in
#: order).  ``"footprint"``: per-register *write* sequences -- the NIC
#: drivers run their management path behind deferred work on the decaf
#: side, so the interleaving of independent register programs shifts
#: legitimately while each register must still see the same values in
#: the same order.
REG_TRACE_MODE = {"net": "footprint", "sound": "footprint",
                  "input": "full", "usb": "full"}


#: Interrupt mask/ack registers, per region name.  Their write *counts*
#: track NAPI poll and interrupt boundaries, which shift legitimately
#: with the virtual-time cost of XPC crossings; for these the footprint
#: keeps the set of distinct values written instead of the sequence.
#: The e1000's per-queue register blocks repeat at a 0x100 stride
#: (queue 1's ICR is 0x1C0, its RDT 0x2918, ...), so the timing and
#: ring-tail sets cover every queue's copy.
_E1000_STRIDES = tuple(q * 0x100 for q in range(8))

TIMING_REGS = {
    "e1000": frozenset(reg + s                         # ICR, IMS, IMC
                       for reg in (0x000C0, 0x000D0, 0x000D8)
                       for s in _E1000_STRIDES),
    "8139too": frozenset((0x3C, 0x3E)),                # IMR, ISR
    # MEM_PAGE is rewritten once per period-interrupt service and
    # SERIAL's P2_INTR_EN bit is toggled to ack each one, so their
    # write counts track the (bounded, phase-coupled) irq count.
    "ens1371": frozenset((0x0C, 0x20)),                # MEM_PAGE, SERIAL
}

#: Write-1-to-clear acknowledge registers.  The handler acks exactly
#: the status bits it read, so when two device events coalesce into one
#: interrupt on one variant only, that variant writes the *union* value
#: (e.g. RxOK|TxOK = 5 on the 8139 ISR) which the other never does.
#: Acking {1, 4} across two interrupts and acking 5 across one clear
#: the same bits, so for these registers the footprint keeps the OR of
#: all written values -- the set of bits ever acked -- instead of the
#: distinct-value set.  (Surfaced by repro.explore: reordering
#: config_mac between tx/rx bursts shifts decaf interrupt arrival.)
ACK_W1C_REGS = {
    "8139too": frozenset((0x3E,)),                     # ISR
}

#: Ring tail pointers: the *positions* written depend on how rx/tx work
#: batches across poll boundaries, which shifts with crossing costs.
#: The footprint keeps only the final value (where the ring ended up).
RING_TAIL_REGS = {
    "e1000": frozenset(reg + s                         # RDT, TDT
                       for reg in (0x02818, 0x03818)
                       for s in _E1000_STRIDES),
}


def write_footprint(trace):
    """Per-register sequence of written values: {region: {offset: [v]}}.

    Timing-coupled mask/ack registers (:data:`TIMING_REGS`) are reduced
    to their sorted distinct-value set; write-1-to-clear ack registers
    (:data:`ACK_W1C_REGS`) further collapse to the OR of written values.
    """
    footprint = {}
    for op, region, offset, _size, value in trace:
        if op != "w":
            continue
        footprint.setdefault(region, {}).setdefault(offset, []).append(value)
    for region, regs in footprint.items():
        for offset in ACK_W1C_REGS.get(region, ()):
            if offset in regs:
                acked = 0
                for value in regs[offset]:
                    acked |= value
                regs[offset] = [acked]
        for offset in TIMING_REGS.get(region, ()):
            if offset in regs and offset not in ACK_W1C_REGS.get(region, ()):
                regs[offset] = sorted(set(regs[offset]))
        for offset in RING_TAIL_REGS.get(region, ()):
            if offset in regs:
                regs[offset] = regs[offset][-1:]
    return footprint


class Divergence:
    """One failed conformance check."""

    __slots__ = ("channel", "detail")

    def __init__(self, channel, detail):
        self.channel = channel
        self.detail = detail

    def to_json(self):
        return {"channel": self.channel, "detail": self.detail}

    def __repr__(self):
        return "<divergence %s: %s>" % (self.channel, self.detail)


class PairResult:
    """Outcome of one legacy/decaf comparison."""

    __slots__ = ("scenario", "legacy", "decaf", "divergences")

    def __init__(self, scenario, legacy, decaf, divergences):
        self.scenario = scenario
        self.legacy = legacy
        self.decaf = decaf
        self.divergences = divergences

    @property
    def ok(self):
        return not self.divergences

    def digest(self):
        """Digest over both observations: the determinism fingerprint."""
        from .observe import digest_of

        return digest_of({"legacy": self.legacy.to_json(),
                          "decaf": self.decaf.to_json()})


def nobble_drop_tx(rig):
    """The canonical canary: sabotage a decaf NIC rig to silently drop
    every third transmitted frame.  A correct conformance harness must
    flag the resulting tx divergence."""
    dev = rig.netdev()
    real_xmit = dev.hard_start_xmit
    state = {"n": 0}

    def broken_xmit(skb, netdev):
        state["n"] += 1
        if state["n"] % 3 == 0:
            return NETDEV_TX_OK  # claim success, eat the frame
        return real_xmit(skb, netdev)

    dev.hard_start_xmit = broken_xmit


class RunProbe:
    """Observer hooks around :meth:`DifferentialRunner.run_one`.

    ``repro.explore`` uses these to capture per-event resource
    footprints (locks, irq lines, channel crossings) and to steer
    controlled interleavings (released gated irqs at event boundaries).
    All hooks are no-ops here; a runner without a probe pays nothing.
    """

    def begin_run(self, rig, scenario, decaf):
        """Rig is built, armed, and set up; the replay loop is next."""

    def begin_event(self, rig, index, event):
        """Virtual time has advanced to the event's offset."""

    def end_event(self, rig, index, event):
        """The event's synchronous application just returned."""

    def end_events(self, rig, decaf):
        """All events applied; the settle window is next."""


class DifferentialRunner:
    def __init__(self, lockdep=True, nobble=None, settle_ms=40,
                 max_recoveries=8, smp=1, probe=None):
        self.lockdep = lockdep
        self.nobble = nobble  # callable(rig), decaf rig only (canary)
        self.settle_ms = settle_ms
        self.max_recoveries = max_recoveries
        # Virtual CPUs per rig; >1 additionally runs the e1000 pair
        # multi-queue (one NAPI context per queue, affined per CPU).
        self.smp = smp
        self.probe = probe  # RunProbe or None

    def _make_rig(self, scenario, decaf):
        kwargs = {"decaf": decaf}
        if self.smp > 1:
            kwargs["nr_cpus"] = self.smp
            if scenario.driver == "e1000":
                kwargs["num_queues"] = min(self.smp, 4)
        return MAKERS[scenario.driver](**kwargs)

    # -- single run --------------------------------------------------------

    def run_one(self, scenario, decaf):
        rig = self._make_rig(scenario, decaf)
        kernel = rig.kernel
        if self.lockdep:
            kernel.enable_lockdep()
        obs = Observation()
        family = scenario.family
        setup = getattr(self, "_setup_%s" % family)
        apply_event = getattr(self, "_apply_%s" % family)
        state = setup(rig, obs)

        if decaf and scenario.mode == "faulty" and scenario.faults:
            self._arm_faults(rig, scenario)
        if decaf and self.nobble is not None:
            self.nobble(rig)

        probe = self.probe
        if probe is not None:
            probe.begin_run(rig, scenario, decaf)
        trace = obs["reg_trace"]
        kernel.io.trace_tap = (
            lambda op, region, off, size, value:
            trace.append([op, region, off, size, value]))
        base_ns = kernel.now_ns()
        for index, event in enumerate(scenario.events):
            target = base_ns + event["t"]
            if target > kernel.now_ns():
                kernel.run_until(target)
            if probe is not None:
                probe.begin_event(rig, index, event)
            apply_event(rig, state, event, index, obs)
            if probe is not None:
                probe.end_event(rig, index, event)
        if probe is not None:
            probe.end_events(rig, decaf)
        kernel.run_for_ms(self.settle_ms)
        kernel.io.trace_tap = None

        teardown = getattr(self, "_teardown_%s" % family)
        teardown(rig, state, obs)
        self._collect_common(rig, scenario, obs)
        return obs

    def _arm_faults(self, rig, scenario):
        """Attach the supervisor and arm the scenario's fault plan
        (decaf rig, faulty mode).  Split out so repro.explore can reuse
        the arming while adding its own instrumentation."""
        rig.supervise(max_recoveries=self.max_recoveries)
        rig.inject_faults(FaultPlan(
            [FaultSpec(**spec) for spec in scenario.faults],
            name="conformance-%s-%d" % (scenario.driver, scenario.seed)))

    def _collect_common(self, rig, scenario, obs):
        kernel = rig.kernel
        obs["dmesg"] = normalize_dmesg(kernel.dmesg())
        if kernel.lockdep is not None:
            obs["lockdep"] = [[r.kind, r.message]
                              for r in kernel.lockdep.reports]
        counters = obs["counters"]
        counters["crossings"] = rig.crossings()
        counters["lang_crossings"] = rig.lang_crossings()
        fired, recoveries, work_lost = rig.fault_stats()
        counters["faults_fired"] = fired
        counters["recoveries"] = recoveries
        counters["work_lost"] = work_lost
        sup = rig.supervisor
        counters["gave_up"] = bool(sup is not None and sup.gave_up)
        counters["recovery_pending"] = bool(rig.recovery_pending())
        channel = rig.channel
        counters["channel_failed"] = bool(channel is not None
                                          and channel.failed)

    # -- network -----------------------------------------------------------

    def _setup_net(self, rig, obs):
        rig.insmod()
        dev = rig.netdev()
        net = rig.kernel.net
        ret = net.dev_open(dev)
        if ret != 0:
            raise RuntimeError("%s: dev_open failed with %d"
                               % (rig.name, ret))
        rig.kernel.run_for_ms(60)  # settle reset/link-up timers
        tx, rx = obs["tx"], obs["rx"]
        rig.link.peer_rx = lambda frame: tx.append(frame_digest(frame))
        state = {"dev": dev}
        num_queues = getattr(rig.device, "num_queues", 1)
        if num_queues > 1:
            # Multi-queue: the cross-queue interleave of deliveries is
            # timing-coupled (per-queue NAPI contexts on different CPUs
            # shift with crossing costs), so record the rx channel as
            # per-queue streams -- each stream must match exactly.
            steer = rig.device.steer
            buckets = {"q%d" % q: [] for q in range(num_queues)}

            def rx_sink(_dev, skb):
                data = skb.data
                buckets["q%d" % steer(data)].append(frame_digest(data))

            net.rx_sink = rx_sink
            state["rx_buckets"] = buckets
        else:
            net.rx_sink = (
                lambda _dev, skb: rx.append(frame_digest(skb.data)))
        return state

    def _pump_xmit(self, rig, dev, frame):
        """Transmit one frame, advancing virtual time past queue-full."""
        kernel = rig.kernel
        for _attempt in range(10_000):
            if not dev.netif_queue_stopped():
                ret = kernel.net.dev_queue_xmit(dev, SkBuff(frame))
                if ret == NETDEV_TX_OK:
                    return 0
                if ret != NETDEV_TX_BUSY:
                    return ret
            nxt = kernel.events.peek_time()
            if nxt is None:
                return -1  # queue wedged with nothing pending
            kernel.run_until(nxt)
        return -2

    def _apply_net(self, rig, state, event, index, obs):
        dev = state["dev"]
        kernel = rig.kernel
        kind = event["kind"]
        ops = obs["ops"]
        if kind == "tx_burst":
            for frame in event["frames"]:
                ret = self._pump_xmit(rig, dev, bytes.fromhex(frame))
                if ret != 0:
                    ops.append([index, "tx_burst", ret])
        elif kind == "rx_burst":
            for frame in event["frames"]:
                rig.link.inject(bytes.fromhex(frame))
            # Drain: when the replay schedule has slipped (slow config
            # ops overrun the event spacing), the next event can reset
            # the device microseconds after injection and wipe frames
            # still sitting unharvested in the rx ring -- a shutdown
            # race, not a driver difference.  A short run lets NAPI
            # harvest deterministically in both variants.
            kernel.run_for_ms(2)
        elif kind == "irq_storm":
            frame = bytes.fromhex(event["frame"])
            for _ in range(event["count"]):
                rig.link.inject(frame)
            kernel.run_for_ms(2)
        elif kind == "config_mac":
            # A missing op is an observation, not a crash: if only one
            # variant wires it, the ops channel diverges -- which is a
            # real conformance finding.
            if dev.set_mac_address is None:
                ops.append([index, "config_mac", "unsupported"])
            else:
                addr = bytes.fromhex(event["addr"])
                ops.append([index, "config_mac",
                            dev.set_mac_address(dev, addr)])
        elif kind == "config_mtu":
            if dev.change_mtu is None:
                ops.append([index, "config_mtu", "unsupported"])
            else:
                ops.append([index, "config_mtu",
                            dev.change_mtu(dev, event["mtu"])])
        elif kind == "set_multi":
            if dev.set_multicast_list is None:
                ops.append([index, "set_multi", "unsupported"])
            else:
                ret = dev.set_multicast_list(dev)
                ops.append([index, "set_multi", 0 if ret is None else ret])
        elif kind == "ifdown_up":
            # Quiesce first: frames already DMA'd into the rx ring but
            # not yet harvested by NAPI are discarded by dev_close in
            # both variants, and whether any are in flight at close
            # time depends on how far the replay schedule has slipped.
            # A short settle drains them so the comparison measures the
            # drivers, not the race between rx and shutdown.
            kernel.run_for_ms(2)
            kernel.net.dev_close(dev)
            kernel.run_for_ms(event["down_ms"])
            ret = kernel.net.dev_open(dev)
            ops.append([index, "ifdown_up", ret])
        else:
            raise ValueError("unknown net event %r" % kind)

    def _teardown_net(self, rig, state, obs):
        dev = state["dev"]
        if "rx_buckets" in state:
            obs["rx"] = state["rx_buckets"]
        rig.kernel.net.dev_close(dev)
        stats = dev.stats.snapshot()
        counters = obs["counters"]
        for key in ("tx_packets", "rx_packets", "tx_bytes", "rx_bytes"):
            counters[key] = stats[key]
        obs["sound"] = {}
        counters["mac"] = dev.dev_addr.hex()
        counters["mtu"] = dev.mtu

    # -- sound -------------------------------------------------------------

    def _setup_sound(self, rig, obs):
        rig.insmod()
        return {"sound": rig.kernel.sound}

    def _apply_sound(self, rig, state, event, index, obs):
        sound = state["sound"]
        ss = sound.cards[0].pcms[0].playback
        ops = obs["ops"]
        ops.append([index, "open", sound.pcm_open(ss)])
        ops.append([index, "hw_params", sound.pcm_hw_params(
            ss, event["rate"], event["channels"], event["sample_bytes"],
            event["period_frames"], event["periods"])])
        ops.append([index, "prepare", sound.pcm_prepare(ss)])
        ops.append([index, "trigger_start",
                    sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_START)])
        written = sound.pcm_write(ss, event["write_frames"])
        ops.append([index, "write", written])
        # periods_elapsed at write-return is phase-coupled: pcm_write
        # waits in period-sized quanta while the DAC's period clock
        # started at trigger time, so the decaf variant's crossing
        # costs can shift one period boundary into (or out of) the
        # blocking write.  Compared per-cycle with a +/-1 bound rather
        # than strictly, like device_irqs.
        obs["counters"]["pcm%d_periods" % index] = ss.runtime.periods_elapsed
        ops.append([index, "trigger_stop",
                    sound.pcm_trigger(ss, SNDRV_PCM_TRIGGER_STOP)])
        ops.append([index, "close", sound.pcm_close(ss)])

    def _teardown_sound(self, rig, state, obs):
        device = rig.device
        obs["sound"] = {
            "rate_reg": device.src_ram[0x75 % 128],
            "codec_master": device.codec_regs[0x02],
        }
        # Interrupt count is timing-coupled: XPC crossings consume
        # virtual time, so the decaf run can catch one more/fewer period
        # boundary around trigger-stop.  Compared with a bounded delta.
        obs["counters"]["device_irqs"] = device.period_interrupts

    # -- input -------------------------------------------------------------

    def _setup_input(self, rig, obs):
        rig.insmod()
        delivered = obs["input"]
        rig.kernel.input.devices[0].sink = (
            lambda events: delivered.extend(list(ev) for ev in events))
        return {}

    def _apply_input(self, rig, state, event, index, obs):
        rig.device.move(event["dx"], event["dy"],
                        buttons=event["buttons"], wheel=event["wheel"])

    def _teardown_input(self, rig, state, obs):
        device = rig.device
        obs["sound"] = {
            "rate": device.sample_rate,
            "resolution": device.resolution,
            "id": device.device_id,
        }

    # -- usb storage -------------------------------------------------------

    def _setup_usb(self, rig, obs):
        rig.insmod()
        return {"dev": rig.kernel.usb.devices[0]}

    def _apply_usb(self, rig, state, event, index, obs):
        dev = state["dev"]
        payload = bytes.fromhex(event["payload"])
        cmd = struct.pack("<BBHI", 1, 0, event["blocks"],
                          event["lba"]) + payload
        status, nbytes = rig.kernel.usb.usb_bulk_msg(
            dev, usb_sndbulkpipe(dev, 2), cmd)
        obs["ops"].append([index, "bulk_write", status, nbytes])

    def _teardown_usb(self, rig, state, obs):
        obs["disk"] = {
            str(lba): frame_digest(block)
            for lba, block in rig.extra["disk"].blocks.items()
        }
        obs["sound"] = {}

    # -- pair comparison ---------------------------------------------------

    def run_pair(self, scenario):
        legacy = self.run_one(scenario, decaf=False)
        decaf = self.run_one(scenario, decaf=True)
        if scenario.mode == "strict":
            divergences = self._compare_strict(scenario, legacy, decaf)
        else:
            divergences = self._compare_faulty(scenario, legacy, decaf)
        for name, obs in (("legacy", legacy), ("decaf", decaf)):
            for kind, message in obs["lockdep"]:
                divergences.append(Divergence(
                    "lockdep", "%s: %s: %s" % (name, kind, message)))
        return PairResult(scenario, legacy, decaf, divergences)

    def _payload_items(self, scenario):
        """Linear size of the schedule, for the crossing bound."""
        items = 0
        for event in scenario.events:
            kind = event["kind"]
            if kind in ("tx_burst", "rx_burst"):
                items += len(event["frames"])
            elif kind == "irq_storm":
                items += event["count"]
            elif kind == "pcm_cycle":
                items += (event["write_frames"] // event["period_frames"]
                          + event["periods"])
            elif kind == "bulk_write":
                items += event["blocks"]
            else:
                items += 1
        return items

    def _check_crossings(self, scenario, legacy, decaf, divergences):
        if legacy["counters"]["crossings"] != 0:
            divergences.append(Divergence(
                "counters", "legacy run recorded %d XPC crossings"
                % legacy["counters"]["crossings"]))
        crossings = decaf["counters"]["crossings"]
        if crossings <= 0:
            divergences.append(Divergence(
                "counters", "decaf run recorded no XPC crossings"))
        bound = (2000 + 400 * len(scenario.events)
                 + 60 * self._payload_items(scenario))
        if crossings > bound:
            divergences.append(Divergence(
                "counters",
                "decaf crossings %d exceed linear bound %d"
                % (crossings, bound)))

    def _compare_strict(self, scenario, legacy, decaf):
        divergences = []
        for channel in Observation.STRICT_EQUAL:
            if legacy[channel] != decaf[channel]:
                divergences.append(Divergence(
                    channel,
                    "legacy %r != decaf %r"
                    % (_clip(legacy[channel]), _clip(decaf[channel]))))
        mode = REG_TRACE_MODE.get(scenario.family, "footprint")
        if mode == "full":
            if legacy["reg_trace"] != decaf["reg_trace"]:
                divergences.append(Divergence(
                    "reg_trace", _trace_diff(legacy["reg_trace"],
                                             decaf["reg_trace"])))
        else:
            lfp = write_footprint(legacy["reg_trace"])
            dfp = write_footprint(decaf["reg_trace"])
            if lfp != dfp:
                divergences.append(Divergence(
                    "reg_trace", _footprint_diff(lfp, dfp)))
        for key in ("tx_packets", "rx_packets", "tx_bytes", "rx_bytes",
                    "mac", "mtu"):
            if key in legacy["counters"] and (
                    legacy["counters"][key] != decaf["counters"].get(key)):
                divergences.append(Divergence(
                    "counters", "%s: legacy %r != decaf %r"
                    % (key, legacy["counters"][key],
                       decaf["counters"].get(key))))
        for key in sorted(legacy["counters"]):
            if key.startswith("pcm") and key.endswith("_periods"):
                # periods_elapsed counts *serviced* period interrupts,
                # and hw_ptr advances from the pointer op (true device
                # position), so irqs coalesce: one serviced irq can
                # cover several consumed periods.  Coalescing depth is
                # bounded by the ring, so the variants may differ by up
                # to the ring's period count.
                try:
                    index = int(key[3:-len("_periods")])
                    bound = scenario.events[index]["periods"]
                except (ValueError, IndexError, KeyError):
                    bound = 4
                delta = abs(legacy["counters"][key]
                            - decaf["counters"].get(key, 0))
                if delta > bound:
                    divergences.append(Divergence(
                        "counters",
                        "%s: legacy %d vs decaf %d (bound %d)"
                        % (key, legacy["counters"][key],
                           decaf["counters"].get(key, 0), bound)))
        if "device_irqs" in legacy["counters"]:
            # Each pcm cycle contributes up to two phase-coupled irqs:
            # one inside the blocking write (see pcmN_periods) and one
            # in the window between the periods read and the DAC2
            # disable reaching the device.
            cycles = sum(1 for ev in scenario.events
                         if ev["kind"] == "pcm_cycle")
            bound = 2 + 2 * cycles
            delta = abs(legacy["counters"]["device_irqs"]
                        - decaf["counters"].get("device_irqs", 0))
            if delta > bound:
                divergences.append(Divergence(
                    "counters",
                    "device_irqs: legacy %d vs decaf %d (bound %d)"
                    % (legacy["counters"]["device_irqs"],
                       decaf["counters"].get("device_irqs", 0), bound)))
        self._check_crossings(scenario, legacy, decaf, divergences)
        return divergences

    def _compare_faulty(self, scenario, legacy, decaf):
        divergences = []
        fired = decaf["counters"]["faults_fired"]
        for channel in ("tx", "rx", "input"):
            lch, dch = legacy[channel], decaf[channel]
            # Multi-queue rx is a dict of per-queue streams; the
            # no-reorder/no-corruption invariant holds per queue.
            if isinstance(lch, dict):
                streams = [(("%s[%s]" % (channel, q)),
                            lch.get(q, []), dch.get(q, []))
                           for q in sorted(set(lch) | set(dch))]
            else:
                streams = [(channel, lch, dch)]
            loss = 0
            ordered = True
            for label, lst, dst in streams:
                if not is_subsequence(dst, lst):
                    divergences.append(Divergence(
                        channel,
                        "%s: decaf delivery is not a subsequence of "
                        "legacy (reorder/duplicate/corruption)" % label))
                    ordered = False
                    break
                loss += len(lst) - len(dst)
            if not ordered:
                continue
            bound = 8 + 24 * max(fired, 1)
            if loss > bound:
                divergences.append(Divergence(
                    channel, "lost %d payloads, bound %d" % (loss, bound)))
        for lba, block_digest in decaf["disk"].items():
            if legacy["disk"].get(lba) not in (None, block_digest):
                divergences.append(Divergence(
                    "disk", "block %s corrupted" % lba))
        counters = decaf["counters"]
        if fired > 0 and counters["recoveries"] < 1:
            divergences.append(Divergence(
                "recovery", "%d faults fired but no recovery ran" % fired))
        for flag in ("gave_up", "recovery_pending", "channel_failed"):
            if counters[flag]:
                divergences.append(Divergence(
                    "recovery", "decaf run ended with %s" % flag))
        if legacy["counters"]["crossings"] != 0:
            divergences.append(Divergence(
                "counters", "legacy run recorded XPC crossings"))
        return divergences


def _clip(value, limit=6):
    """First items of a channel, for readable divergence details."""
    if isinstance(value, list) and len(value) > limit:
        return value[:limit] + ["... %d more" % (len(value) - limit)]
    return value


def _trace_diff(a, b):
    """Locate the first register-trace mismatch."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return ("first mismatch at access %d: legacy %r != decaf %r"
                    % (i, x, y))
    return ("length mismatch: legacy %d accesses, decaf %d"
            % (len(a), len(b)))


def _footprint_diff(lfp, dfp):
    """Name the first register whose write sequence differs."""
    for region in sorted(set(lfp) | set(dfp)):
        lregs = lfp.get(region, {})
        dregs = dfp.get(region, {})
        for offset in sorted(set(lregs) | set(dregs)):
            lv, dv = lregs.get(offset), dregs.get(offset)
            if lv != dv:
                return ("%s+%#x writes: legacy %s != decaf %s"
                        % (region, offset, _clip(lv), _clip(dv)))
    return "footprints differ"
