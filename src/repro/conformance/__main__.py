"""CLI: ``python -m repro.conformance --seeds 25``.

Sweeps seeds x drivers, replaying each generated scenario against both
driver variants with lockdep enabled.  Per (driver, seed) the mode is
chosen deterministically: every third seed runs ``faulty`` (an injected
fault + supervised recovery cycle), the rest ``strict``.  On
divergence, the scenario is ddmin-minimized and a repro script is
written to ``--out``; the exit status is the number of diverging
scenarios (0 = conformant).

``--selfcheck`` replays the whole sweep twice and compares the suite
digests byte-for-byte -- the determinism audit.
"""

import argparse
import os
import sys

from .minimize import minimize_scenario, write_repro_script
from .observe import digest_of
from .runner import DifferentialRunner, nobble_drop_tx
from .scenario import ALL_DRIVERS, DRIVERS, ScenarioGenerator


def mode_for(seed):
    """Deterministic strict/faulty mix: seeds 2, 5, 8, ... run faulty."""
    return "faulty" if seed % 3 == 2 else "strict"


def run_sweep(seeds, drivers, runner, out_dir=None, verbose=False,
              echo=print):
    """Run the sweep; returns (results, suite_digest, failures)."""
    results = []
    failures = []
    for driver in drivers:
        for seed in seeds:
            scenario = ScenarioGenerator(seed).generate(
                driver, mode=mode_for(seed))
            result = runner.run_pair(scenario)
            results.append(result)
            status = "ok" if result.ok else "DIVERGED"
            if verbose or not result.ok:
                echo("%-10s seed=%-3d %-6s %-8s %s"
                     % (driver, seed, scenario.mode, status,
                        result.digest()[:16]))
            if not result.ok:
                failures.append(result)
                for divergence in result.divergences:
                    echo("    [%s] %s" % (divergence.channel,
                                          divergence.detail))
                if out_dir is not None:
                    minimized, runs = minimize_scenario(runner, scenario)
                    final = runner.run_pair(minimized)
                    path = os.path.join(
                        out_dir, "repro_%s_seed%d.py" % (driver, seed))
                    write_repro_script(
                        minimized,
                        final.divergences or result.divergences, path)
                    echo("    minimized to %d/%d events in %d runs -> %s"
                         % (len(minimized.events), len(scenario.events),
                            runs, path))
    suite_digest = digest_of([r.digest() for r in results])
    return results, suite_digest, failures


def run_canary(out_dir, echo=print):
    """A deliberately broken decaf rig must produce a divergence report
    (and a minimized repro); exit nonzero if the harness misses it."""
    runner = DifferentialRunner(nobble=nobble_drop_tx)
    scenario = ScenarioGenerator(1).generate("e1000", mode="strict")
    result = runner.run_pair(scenario)
    if result.ok:
        echo("CANARY FAILED: sabotaged decaf rig was not flagged")
        return 1
    echo("canary: %d divergences flagged" % len(result.divergences))
    for divergence in result.divergences[:4]:
        echo("    [%s] %s" % (divergence.channel, divergence.detail))
    if out_dir is not None:
        minimized, runs = minimize_scenario(runner, scenario)
        final = runner.run_pair(minimized)
        path = os.path.join(out_dir, "repro_canary_e1000.py")
        write_repro_script(minimized,
                           final.divergences or result.divergences, path,
                           nobble_name="nobble_drop_tx")
        echo("    minimized to %d/%d events in %d runs -> %s"
             % (len(minimized.events), len(scenario.events), runs, path))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="differential conformance sweep over the "
                    "legacy/decaf driver pairs")
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds per driver (default 10)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--drivers", default=",".join(DRIVERS),
                        help="comma-separated driver list (default %s)"
                             % ",".join(DRIVERS))
    parser.add_argument("--smp", type=int, default=1,
                        help="virtual CPUs per rig (default 1); >1 also "
                             "runs the e1000 pair multi-queue")
    parser.add_argument("--out", default=None,
                        help="directory for divergence repro scripts")
    parser.add_argument("--canary", action="store_true",
                        help="also run the sabotaged-rig canary "
                             "(must diverge)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the sweep twice and require "
                             "byte-identical suite digests")
    parser.add_argument("--verbose", "-v", action="store_true")
    args = parser.parse_args(argv)

    drivers = [d.strip() for d in args.drivers.split(",") if d.strip()]
    for driver in drivers:
        if driver not in ALL_DRIVERS:
            parser.error("unknown driver %r (one of %s)"
                         % (driver, ", ".join(ALL_DRIVERS)))
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)

    runner = DifferentialRunner(smp=args.smp)
    results, suite_digest, failures = run_sweep(
        seeds, drivers, runner, out_dir=args.out, verbose=args.verbose)
    print("%d scenario pairs, %d divergent; suite digest %s"
          % (len(results), len(failures), suite_digest))

    status = len(failures)
    if args.selfcheck:
        _, second_digest, _ = run_sweep(seeds, drivers,
                                        DifferentialRunner(smp=args.smp))
        if second_digest != suite_digest:
            print("SELFCHECK FAILED: suite digest not reproducible "
                  "(%s != %s)" % (suite_digest, second_digest))
            status += 1
        else:
            print("selfcheck: suite digest reproducible")
    if args.canary:
        status += run_canary(args.out)
    return status


if __name__ == "__main__":
    sys.exit(main())
