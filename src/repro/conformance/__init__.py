"""Model-based differential testing of the legacy/decaf driver pairs.

The paper's migration argument rests on the decaf driver being a
behaviour-preserving rewrite.  The handwritten equivalence tests pin a
handful of scenarios; this package generates *families* of them:

* :class:`ScenarioGenerator` expands a seed into a deterministic
  virtual-time event schedule for one driver -- traffic bursts,
  interrupt storms, configuration calls, interface flaps, and (in
  ``faulty`` mode) an injected-fault/recovery cycle built on
  :mod:`repro.faults`.
* :class:`DifferentialRunner` replays the *identical* schedule against
  the legacy and decaf variants and compares what is observable from
  outside the driver: register-access traces, payload digests on both
  directions, delivered input events, device state, dmesg-visible
  errors, and (bounded) crossing/packet counters.  Lockdep
  (:class:`repro.kernel.locks.LockDep`) is enabled for every run.
* On divergence, :func:`repro.conformance.minimize.minimize_scenario`
  shrinks the event schedule ddmin-style and a standalone repro script
  is emitted.

``python -m repro.conformance --seeds N`` runs the sweep; the suite
digest it prints is byte-stable for a given seed set, which is what the
determinism harness asserts.
"""

from .scenario import DRIVERS, Scenario, ScenarioGenerator
from .observe import Observation, canonical_json, digest_of
from .runner import DifferentialRunner, Divergence, PairResult, nobble_drop_tx
from .minimize import minimize_scenario, write_repro_script

__all__ = [
    "DRIVERS",
    "DifferentialRunner",
    "Divergence",
    "Observation",
    "PairResult",
    "Scenario",
    "ScenarioGenerator",
    "canonical_json",
    "digest_of",
    "minimize_scenario",
    "nobble_drop_tx",
    "write_repro_script",
]
