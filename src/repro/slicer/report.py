"""Conversion reporting: the data behind Table 2.

Runs the full DriverSlicer pipeline for one driver -- call graph,
partition, annotation count, field-access analysis -- and returns the
row the paper's Table 2 prints: lines of code, annotations, and the
function/LoC breakdown across driver nucleus, driver library, and decaf
driver.

The legacy driver is the single source; which user functions have been
converted to the decaf driver (vs. still staged in the driver library)
is recorded by the decaf driver packages themselves and passed in.
"""

from .accessanalysis import analyze_field_accesses, build_marshal_plan
from .annotations import count_annotations
from .callgraph import build_call_graph
from .partition import partition_driver
from .xdrgen import driver_struct_classes, generate_codec_plans


def conversion_report(config, decaf_converted=None):
    """Return the Table 2 row (a dict) for one driver.

    ``decaf_converted``: set of user-partition function names that have
    been rewritten in the managed language.  Defaults to all user
    functions (full conversion), matching the paper's end state for the
    drivers whose user code was fully converted.
    """
    modules = config.load_modules()
    graph = build_call_graph(modules)
    partition = partition_driver(graph, config)
    annotations, per_struct = count_annotations(modules)
    accesses = analyze_field_accesses(
        modules, partition.user_funcs, config.type_hints
    )
    plan = build_marshal_plan(accesses, config.extra_access)

    if decaf_converted is None:
        decaf_converted = set(partition.user_funcs)
    else:
        decaf_converted = set(decaf_converted) & partition.user_funcs
    library_funcs = partition.user_funcs - decaf_converted

    def loc_of(funcs):
        return sum(graph.functions[f].loc for f in funcs)

    return {
        "driver": config.name,
        "total_loc": graph.total_loc(),
        "annotations": annotations,
        "annotations_per_struct": per_struct,
        "nucleus_funcs": len(partition.kernel_funcs),
        "nucleus_loc": partition.kernel_loc(),
        "library_funcs": len(library_funcs),
        "library_loc": loc_of(library_funcs),
        "decaf_funcs": len(decaf_converted),
        "decaf_loc": loc_of(decaf_converted),
        "user_fraction": partition.summary()["user_fraction"],
        "partition": partition,
        "marshal_plan": plan,
        "codec_plans": generate_codec_plans(
            driver_struct_classes(modules), plan
        ),
        "graph": graph,
    }
