"""Field-access analysis: which struct fields user-level code touches.

DriverSlicer generates marshaling code that copies only the fields the
user-level partition accesses (paper sections 2.3 and 3.2.4).  This
analysis walks the user-partition functions' ASTs, resolving parameter
and local names to struct types via the config's type hints plus field
-chasing (``adapter.hw`` has the type of the ``hw`` field), and records
reads and writes per struct type.

The result feeds a :class:`repro.core.marshal.MarshalPlan`.  When Java
code later needs fields the analysis cannot see (section 3.2.4 -- CIL
only sees C), ``DECAF_XVAR`` additions from the config are merged in by
:func:`build_marshal_plan`.
"""

import ast
import inspect

from ..core.cstruct import Ptr, Struct, StructRegistry
from ..core.marshal import FieldAccess, MarshalPlan


def _field_type_name(struct_cls, field_name):
    """If struct.field is itself struct-typed, return that type name."""
    field = struct_cls._fields_by_name.get(field_name)
    if field is None:
        return None
    ctype = field.ctype
    if isinstance(ctype, Struct):
        return ctype.struct_cls.__name__
    if isinstance(ctype, Ptr):
        target = ctype.target
        if isinstance(target, str):
            return target
        if isinstance(target, type):
            return target.__name__
    return None


class _AccessVisitor(ast.NodeVisitor):
    def __init__(self, type_hints, accesses):
        self.type_hints = dict(type_hints)
        self.accesses = accesses
        self._local_types = dict(type_hints)

    def _type_of(self, node):
        """Best-effort struct type name of an expression."""
        if isinstance(node, ast.Name):
            return self._local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is None:
                return None
            try:
                struct_cls = StructRegistry.get(base)
            except Exception:
                return None
            return _field_type_name(struct_cls, node.attr)
        return None

    def _record(self, node, write):
        if not isinstance(node, ast.Attribute):
            return
        base_type = self._type_of(node.value)
        if base_type is None:
            return
        try:
            struct_cls = StructRegistry.get(base_type)
        except Exception:
            return
        if node.attr not in struct_cls._fields_by_name:
            return
        access = self.accesses.setdefault(base_type, FieldAccess())
        if write:
            access.add_write(node.attr)
        else:
            access.add_read(node.attr)

    def _record_target(self, target):
        # Element stores (``hw.mac_addr[i] = x``) are writes to the
        # array field; unwrap the subscript.
        while isinstance(target, ast.Subscript):
            target = target.value
        self._record(target, write=True)
        # A nested write (``adapter.tx_ring.count = x``) writes *through*
        # every container field on the way down: mark those as written
        # too, so the containers marshal back toward the kernel.
        node = target.value if isinstance(target, ast.Attribute) else None
        while isinstance(node, ast.Attribute):
            self._record(node, write=True)
            node = node.value

    def visit_Assign(self, node):
        for target in node.targets:
            self._record_target(target)
            # Track simple aliasing: ``hw = adapter.hw``.
            if isinstance(target, ast.Name):
                inferred = self._type_of(node.value)
                if inferred is not None:
                    self._local_types[target.id] = inferred
        self.visit(node.value)

    def visit_AugAssign(self, node):
        self._record_target(node.target)
        target = node.target
        while isinstance(target, ast.Subscript):
            target = target.value
        self._record(target, write=False)
        self.visit(node.value)

    def visit_Attribute(self, node):
        self._record(node, write=False)
        self.generic_visit(node)


def analyze_field_accesses(modules, user_funcs, type_hints):
    """Return {struct_name: FieldAccess} over the user partition."""
    accesses = {}
    for module in modules:
        source = inspect.getsource(module)
        tree = ast.parse(source)
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in user_funcs:
                continue
            visitor = _AccessVisitor(type_hints, accesses)
            visitor.visit(node)
    return accesses


def build_marshal_plan(accesses, extra_access=(), kernel_owned=()):
    """Build a MarshalPlan, merging DECAF_XVAR-style additions.

    ``extra_access`` entries are (struct_name, field_name, mode) with
    mode one of "R", "W", "RW" -- the paper's ``DECAF_XVAR(y)``
    annotations that tell the slicer about fields only Java code (which
    CIL cannot see) touches.

    ``kernel_owned`` entries are (struct_name, field_name) pairs pinned
    out of the user->kernel direction: hardware resource handles the
    access analysis may see written (legacy probe code in the user
    slice) but which a compromised user half must never write back.
    """
    merged = {name: FieldAccess(a.reads, a.writes) for name, a in accesses.items()}
    for struct_name, field_name, mode in extra_access:
        access = merged.setdefault(struct_name, FieldAccess())
        if "R" in mode:
            access.add_read(field_name)
        if "W" in mode:
            access.add_write(field_name)
    plan = MarshalPlan()
    for name, access in merged.items():
        plan.set_access(name, access)
    for struct_name, field_name in kernel_owned:
        plan.pin(struct_name, field_name)
    return plan
