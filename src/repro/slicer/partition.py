"""Partitioning: reachability from critical roots.

Unchanged in spirit from Microdrivers (paper section 2.4): given the
driver call graph and the set of *critical root functions* -- interrupt
handlers, data-path entry points, functions called with spinlocks held
-- every function reachable from a root must remain in the kernel.
Everything else may move to user level.

The partition also yields the two entry-point sets:

* **user entry points**: user-level functions invoked from the kernel
  (driver interface functions moved out, e.g. ``open`` ops); stubs for
  these transfer control kernel -> user.
* **kernel entry points**: kernel functions and kernel API that
  user-level functions call back into; stubs transfer user -> kernel.
"""

from collections import deque


class Partition:
    def __init__(self, graph, roots, reasons=None):
        self.graph = graph
        self.roots = set(roots)
        self.reasons = dict(reasons or {})
        self.kernel_funcs = set()
        self.user_funcs = set()
        self.user_entry_points = set()
        self.kernel_entry_points = set()
        self.kernel_api_from_user = set()

    # -- statistics used by Table 2 ------------------------------------------

    def kernel_loc(self):
        return sum(self.graph.functions[f].loc for f in self.kernel_funcs)

    def user_loc(self):
        return sum(self.graph.functions[f].loc for f in self.user_funcs)

    def summary(self):
        return {
            "total_funcs": len(self.graph.functions),
            "total_loc": self.graph.total_loc(),
            "kernel_funcs": len(self.kernel_funcs),
            "kernel_loc": self.kernel_loc(),
            "user_funcs": len(self.user_funcs),
            "user_loc": self.user_loc(),
            "user_entry_points": sorted(self.user_entry_points),
            "kernel_entry_points": sorted(self.kernel_entry_points),
            "user_fraction": (
                len(self.user_funcs) / max(1, len(self.graph.functions))
            ),
        }


def partition_driver(graph, config):
    """Run the partitioning analysis; returns a :class:`Partition`."""
    missing = [r for r in config.critical_roots if r not in graph.functions]
    if missing:
        raise ValueError("critical roots not found in driver: %r" % missing)

    part = Partition(graph, config.critical_roots,
                     reasons=config.root_reasons)

    # Reachability: all functions transitively callable from a critical
    # root must stay in the kernel.  References (function pointers) from
    # kernel code are conservative potential calls.
    worklist = deque(config.critical_roots)
    kernel = set()
    while worklist:
        name = worklist.popleft()
        if name in kernel:
            continue
        kernel.add(name)
        info = graph.functions[name]
        for callee in info.driver_calls | info.references:
            if callee not in kernel:
                worklist.append(callee)

    # Functions the config pins to the kernel (e.g. the ethtool
    # interrupt-test data race of section 5) and their callees.
    worklist = deque(config.pinned_kernel)
    while worklist:
        name = worklist.popleft()
        if name in kernel or name not in graph.functions:
            continue
        kernel.add(name)
        info = graph.functions[name]
        for callee in info.driver_calls | info.references:
            worklist.append(callee)

    part.kernel_funcs = kernel
    part.user_funcs = graph.all_names() - kernel

    # User entry points: user functions referenced or called from kernel
    # functions, plus driver-interface ops named in the config.
    for name in kernel:
        info = graph.functions[name]
        for target in info.driver_calls | info.references:
            if target in part.user_funcs:
                part.user_entry_points.add(target)
    for op in config.interface_ops:
        if op in part.user_funcs:
            part.user_entry_points.add(op)

    # Kernel entry points: kernel driver functions called from user
    # functions, plus every kernel API name user code uses.
    for name in part.user_funcs:
        info = graph.functions[name]
        for target in info.driver_calls:
            if target in kernel:
                part.kernel_entry_points.add(target)
        part.kernel_api_from_user |= info.kernel_calls
    part.kernel_entry_points |= {
        "linux." + api for api in sorted(part.kernel_api_from_user)
    }

    return part
