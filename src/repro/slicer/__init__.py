"""DriverSlicer: partitioning, stub generation, and marshaling codegen.

The reproduction of the paper's tool (section 3.2).  Where the original
used CIL over C sources, this implementation uses Python's ``ast`` over
the legacy driver modules -- the analyses are language-independent:

* :mod:`repro.slicer.callgraph` -- call-graph extraction;
* :mod:`repro.slicer.partition` -- reachability from critical root
  functions -> driver nucleus vs user-level sets, plus both directions
  of entry points;
* :mod:`repro.slicer.accessanalysis` -- which struct fields user-level
  code reads/writes (drives selective marshaling);
* :mod:`repro.slicer.annotations` -- counting/processing the pointer
  annotations and DECAF_XVAR marks;
* :mod:`repro.slicer.xdrgen` -- XDR interface-spec generation with the
  Figure 3 pointer-to-array rewrite;
* :mod:`repro.slicer.stubgen` -- generated Python stub source;
* :mod:`repro.slicer.splitter` -- the two patched source trees;
* :mod:`repro.slicer.report` -- Table 2 statistics.
"""

from .callgraph import CallGraph, build_call_graph
from .config import SliceConfig, DRIVER_CONFIGS
from .partition import Partition, partition_driver
from .accessanalysis import analyze_field_accesses, build_marshal_plan
from .annotations import count_annotations, find_xvar_annotations
from .xdrgen import generate_java_classes, generate_xdr_spec
from .stubgen import generate_stubs
from .splitter import split_driver_source
from .report import conversion_report
from .decafanalysis import (
    analyze_decaf_accesses,
    entry_point_spec,
    merge_accesses,
)

__all__ = [
    "CallGraph",
    "build_call_graph",
    "SliceConfig",
    "DRIVER_CONFIGS",
    "Partition",
    "partition_driver",
    "analyze_field_accesses",
    "build_marshal_plan",
    "count_annotations",
    "find_xvar_annotations",
    "generate_xdr_spec",
    "generate_java_classes",
    "generate_stubs",
    "split_driver_source",
    "conversion_report",
    "analyze_decaf_accesses",
    "merge_accesses",
    "entry_point_spec",
]
