"""Call-graph extraction over legacy driver source.

Plays the role CIL plays for the paper's DriverSlicer: parse every
module of a driver, find the function definitions, and record three
kinds of outgoing edges per function:

* **driver calls** -- direct calls to functions defined in any of the
  driver's own modules (including cross-module ``e1000_hw.foo(...)``);
* **kernel calls** -- calls through the ``linux`` facade (the kernel
  API surface);
* **references** -- a driver function's name used as a value (stored in
  an ops table, passed to ``request_irq``).  Like CIL's treatment of
  function pointers, a reference is a conservative potential call for
  reachability purposes *when the referencing function is itself in the
  kernel partition*.
"""

import ast
import inspect
import textwrap


class FunctionInfo:
    __slots__ = ("name", "module", "lineno", "end_lineno", "loc",
                 "driver_calls", "kernel_calls", "references", "doc")

    def __init__(self, name, module, lineno, end_lineno, loc):
        self.name = name
        self.module = module
        self.lineno = lineno
        self.end_lineno = end_lineno
        self.loc = loc
        self.driver_calls = set()
        self.kernel_calls = set()
        self.references = set()
        self.doc = None

    def __repr__(self):
        return "<fn %s (%d loc)>" % (self.name, self.loc)


class CallGraph:
    def __init__(self):
        self.functions = {}   # name -> FunctionInfo
        self.modules = []
        self.struct_classes = {}  # name -> class source module

    def add(self, info):
        self.functions[info.name] = info

    def callees(self, name, include_references=False):
        info = self.functions.get(name)
        if info is None:
            return set()
        result = set(info.driver_calls)
        if include_references:
            result |= info.references
        return result

    def all_names(self):
        return set(self.functions)

    def total_loc(self):
        return sum(f.loc for f in self.functions.values())


class _FunctionVisitor(ast.NodeVisitor):
    """Collects call and reference edges inside one function body."""

    def __init__(self, driver_function_names, module_aliases):
        self.driver_function_names = driver_function_names
        self.module_aliases = module_aliases
        self.driver_calls = set()
        self.kernel_calls = set()
        self.references = set()

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.driver_function_names:
                self.driver_calls.add(func.id)
        elif isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "linux":
                    self.kernel_calls.add(func.attr)
                elif value.id in self.module_aliases:
                    if func.attr in self.driver_function_names:
                        self.driver_calls.add(func.attr)
        # Arguments may carry function references.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._maybe_reference(arg)
        self.generic_visit(node)

    def visit_Assign(self, node):
        self._maybe_reference(node.value)
        self.generic_visit(node)

    def _maybe_reference(self, node):
        if isinstance(node, ast.Name) and node.id in self.driver_function_names:
            self.references.add(node.id)


def _function_loc(node, source_lines):
    """Non-blank, non-comment lines of one function body."""
    count = 0
    for i in range(node.lineno - 1, (node.end_lineno or node.lineno)):
        line = source_lines[i].strip()
        if line and not line.startswith("#"):
            count += 1
    return count


def build_call_graph(modules):
    """Build the call graph over a list of imported driver modules."""
    graph = CallGraph()
    parsed = []
    module_aliases = set()

    for module in modules:
        source = inspect.getsource(module)
        tree = ast.parse(source)
        short = module.__name__.rsplit(".", 1)[-1]
        module_aliases.add(short)
        parsed.append((module, short, tree, source.splitlines()))

    # Pass 1: function definitions and struct classes.
    for module, short, tree, lines in parsed:
        graph.modules.append(short)
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                # Skip nested defs and class methods for top-level naming;
                # methods are recorded under their own names too (the ops
                # tables hold staticmethods delegating to free functions).
                pass
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                info = FunctionInfo(node.name, short, node.lineno,
                                    node.end_lineno, _function_loc(node, lines))
                info.doc = ast.get_docstring(node)
                graph.add(info)
            elif isinstance(node, ast.ClassDef):
                bases = {getattr(b, "id", getattr(b, "attr", "")) for b in node.bases}
                if "CStruct" in bases:
                    graph.struct_classes[node.name] = short

    names = graph.all_names()

    # Pass 2: edges.
    for module, short, tree, lines in parsed:
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            visitor = _FunctionVisitor(names, module_aliases)
            visitor.visit(node)
            info = graph.functions[node.name]
            info.driver_calls |= visitor.driver_calls - {node.name}
            info.kernel_calls |= visitor.kernel_calls
            info.references |= visitor.references - {node.name}

    return graph
