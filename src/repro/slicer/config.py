"""Per-driver slicing configuration.

The paper's DriverSlicer takes "type signatures for critical root
functions" as input; :class:`SliceConfig` is that input plus the small
amount of guidance our ast-based analysis needs (parameter-name type
hints for the field-access analysis).

``DRIVER_CONFIGS`` holds the configuration for the five converted
drivers, including the reasons each root must stay in the kernel --
these feed the partition report.
"""


class SliceConfig:
    def __init__(self, name, module_names, critical_roots, root_reasons=None,
                 interface_ops=(), pinned_kernel=(), type_hints=None,
                 extra_access=(), kernel_owned=()):
        self.name = name
        self.module_names = tuple(module_names)
        self.critical_roots = tuple(critical_roots)
        self.root_reasons = dict(root_reasons or {})
        self.interface_ops = tuple(interface_ops)
        self.pinned_kernel = tuple(pinned_kernel)
        self.type_hints = dict(type_hints or {})
        # DECAF_XVAR-style additions: (struct_name, field_name, "R"/"W"/"RW")
        self.extra_access = tuple(extra_access)
        # Kernel-owned resource handles: (struct_name, field_name) pairs
        # excluded from user->kernel marshaling even when the access
        # analysis sees a write (legacy probe code in the user slice).
        # A compromised user half must not be able to redirect the
        # kernel's MMIO/IO base, irq line, or DMA base.
        self.kernel_owned = tuple(kernel_owned)

    def load_modules(self):
        import importlib

        return [
            importlib.import_module("repro.drivers.legacy." + name)
            for name in self.module_names
        ]


DRIVER_CONFIGS = {
    "8139too": SliceConfig(
        name="8139too",
        module_names=("rtl8139",),
        critical_roots=("rtl8139_interrupt", "rtl8139_start_xmit"),
        root_reasons={
            "rtl8139_interrupt": "interrupt handler (high priority)",
            "rtl8139_start_xmit": "data path (low latency, spinlock held)",
        },
        interface_ops=(
            "rtl8139_open", "rtl8139_close", "rtl8139_get_stats",
            "rtl8139_set_rx_mode", "rtl8139_set_mac_address",
            "rtl8139_init_one", "rtl8139_remove_one", "rtl8139_thread",
        ),
        type_hints={
            "tp": "rtl8139_private",
            "dev": None,  # opaque net_device
        },
        kernel_owned=(
            ("rtl8139_private", "ioaddr"),
            ("rtl8139_private", "irq"),
        ),
    ),
    "e1000": SliceConfig(
        name="e1000",
        module_names=("e1000_main", "e1000_hw", "e1000_param",
                      "e1000_ethtool"),
        critical_roots=("e1000_intr", "e1000_xmit_frame"),
        root_reasons={
            "e1000_intr": "interrupt handler (high priority)",
            "e1000_xmit_frame": "data path (low latency, spinlock held)",
        },
        interface_ops=(
            "e1000_probe", "e1000_remove", "e1000_open", "e1000_close",
            "e1000_set_multi", "e1000_set_mac", "e1000_change_mtu",
            "e1000_get_stats", "e1000_tx_timeout", "e1000_watchdog",
            "e1000_get_drvinfo", "e1000_get_settings", "e1000_set_settings",
            "e1000_get_regs", "e1000_get_eeprom", "e1000_set_eeprom",
            "e1000_get_ringparam", "e1000_set_ringparam",
            "e1000_get_pauseparam", "e1000_set_pauseparam",
            "e1000_get_strings", "e1000_get_ethtool_stats",
            "e1000_diag_test",
        ),
        # The four ethtool diag functions with the interrupt-handler data
        # race (section 5) and their helpers stay in the kernel.
        pinned_kernel=(
            "e1000_intr_test", "e1000_test_intr_handler",
            "e1000_reg_test", "e1000_loopback_test",
        ),
        type_hints={
            "adapter": "e1000_adapter",
            "hw": "e1000_hw",
            "tx_ring": "e1000_tx_ring",
            "rx_ring": "e1000_rx_ring",
            "phy_info": "e1000_phy_info",
            "eeprom": "e1000_eeprom_info",
        },
        kernel_owned=(
            ("e1000_hw", "hw_addr"),
        ),
    ),
    "ens1371": SliceConfig(
        name="ens1371",
        module_names=("ens1371",),
        critical_roots=(
            "snd_ens1371_interrupt",
            # prepare/trigger/pointer are invoked by the sound library
            # under its lock -- a spinlock in the stock kernel.  With the
            # paper's mutex modification, prepare and trigger could move;
            # the stock configuration pins them.
            "snd_ens1371_playback_pointer",
        ),
        root_reasons={
            "snd_ens1371_interrupt": "interrupt handler (high priority)",
            "snd_ens1371_playback_pointer":
                "called from snd_pcm_period_elapsed in irq context",
        },
        interface_ops=(
            "snd_ens1371_probe", "snd_ens1371_remove",
            "snd_ens1371_playback_open", "snd_ens1371_playback_close",
            "snd_ens1371_playback_hw_params",
            "snd_ens1371_playback_prepare",
            "snd_ens1371_playback_trigger",
        ),
        type_hints={
            "ensoniq_": "ensoniq",
        },
        kernel_owned=(
            ("ensoniq", "port"),
            ("ensoniq", "irq"),
        ),
    ),
    "uhci_hcd": SliceConfig(
        name="uhci_hcd",
        module_names=("uhci_hcd",),
        critical_roots=(
            "uhci_irq", "uhci_urb_enqueue", "uhci_urb_dequeue",
        ),
        root_reasons={
            "uhci_irq": "interrupt handler (high priority)",
            "uhci_urb_enqueue": "data path; called with HCD lock held",
            "uhci_urb_dequeue": "data path; called with HCD lock held",
        },
        interface_ops=(
            "uhci_pci_probe", "uhci_pci_remove", "uhci_hub_status_data",
        ),
        type_hints={
            "uhci": "uhci_hcd_state",
        },
        kernel_owned=(
            ("uhci_hcd_state", "io_addr"),
            ("uhci_hcd_state", "irq"),
            ("uhci_hcd_state", "fl_dma"),
        ),
    ),
    "psmouse": SliceConfig(
        name="psmouse",
        module_names=("psmouse",),
        critical_roots=("psmouse_interrupt",),
        root_reasons={
            "psmouse_interrupt": "serio byte handler (hardirq context)",
        },
        interface_ops=(
            "psmouse_connect", "psmouse_disconnect",
            "psmouse_extensions", "psmouse_initialize",
            "psmouse_activate", "psmouse_deactivate",
        ),
        type_hints={
            "psmouse": "psmouse_struct",
        },
    ),
}
