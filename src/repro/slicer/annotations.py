"""Annotation processing and counting.

Two kinds of annotations drive DriverSlicer (paper sections 3.2.2 and
3.2.4):

* **Pointer/array annotations** on struct fields -- ``Exp("LEN")``,
  ``Opaque()``, ``Null()`` -- that tell the marshaling generator how to
  treat pointers.  Table 2's "DriverSlicer Annotations" column counts
  the lines these occupy in each driver.

* **DECAF_XVAR(y)** marks placed in entry-point functions when the
  decaf driver needs fields the static analysis cannot see.  We accept
  them as calls ``DECAF_RVAR("field")`` / ``DECAF_WVAR`` /
  ``DECAF_RWVAR`` or comments ``# DECAF_RWVAR(field)`` in driver
  source, and as config-level ``extra_access`` tuples.
"""

import ast
import inspect
import re

from ..core.cstruct import Annotation, StructRegistry

_XVAR_CALL = re.compile(r"DECAF_(R|W|RW)VAR\(\s*['\"]?(\w+)['\"]?\s*\)")


def count_annotations(modules):
    """Count annotated field declarations across a driver's structs.

    Returns (annotation_count, per_struct dict).  Each annotated field
    line counts once, as in Table 2.
    """
    per_struct = {}
    total = 0
    module_names = {m.__name__.rsplit(".", 1)[-1] for m in modules}
    for name, struct_cls in StructRegistry.all_structs().items():
        # Only structs defined in these modules.
        mod = struct_cls.__module__.rsplit(".", 1)[-1]
        if mod not in module_names:
            continue
        count = sum(1 for f in struct_cls.fields() if f.annotations)
        if count:
            per_struct[name] = count
            total += count
    return total, per_struct


def find_xvar_annotations(modules):
    """Collect DECAF_XVAR marks from driver source.

    Returns a list of (function_name, mode, field_name).
    """
    found = []
    for module in modules:
        source = inspect.getsource(module)
        tree = ast.parse(source)
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            segment = ast.get_source_segment(source, node) or ""
            for match in _XVAR_CALL.finditer(segment):
                found.append((node.name, match.group(1), match.group(2)))
    return found
