"""Source splitting: the two patched source trees (section 3.2.1).

A key improvement of Decaf's DriverSlicer over Microdrivers' is that it
patches the *original* source rather than emitting preprocessed output:
comments and structure survive, so the split driver stays editable.

:func:`split_driver_source` reproduces that behaviour textually: it
takes a driver module's source and the partition, and produces

* the **driver nucleus** tree: the original file minus the user
  functions (each replaced by a one-line marker referring to the stub
  file), and
* the **driver library** tree: the original file minus the kernel
  functions.

Everything that is not a moved function -- module docstring, imports,
constants, struct definitions, comments -- appears in both copies,
exactly as the paper describes.
"""

import ast
import inspect


def _removed_marker(name, destination):
    return "# [DriverSlicer] %s moved to the %s; see generated stubs.\n" % (
        name, destination
    )


def _strip_functions(source, remove_names, destination):
    """Remove top-level functions in ``remove_names`` from the source."""
    tree = ast.parse(source)
    lines = source.splitlines(keepends=True)
    # Collect (start, end) line ranges to drop, including decorators.
    ranges = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in remove_names:
            start = node.lineno
            if node.decorator_list:
                start = min(d.lineno for d in node.decorator_list)
            ranges.append((start, node.end_lineno, node.name))
    out = []
    pos = 1
    for start, end, name in sorted(ranges):
        out.extend(lines[pos - 1:start - 1])
        out.append(_removed_marker(name, destination))
        pos = end + 1
    out.extend(lines[pos - 1:])
    return "".join(out)


def split_driver_source(modules, partition):
    """Produce {module_name: (nucleus_source, library_source)}."""
    result = {}
    for module in modules:
        source = inspect.getsource(module)
        short = module.__name__.rsplit(".", 1)[-1]
        module_funcs = {
            node.name
            for node in ast.parse(source).body
            if isinstance(node, ast.FunctionDef)
        }
        user_here = partition.user_funcs & module_funcs
        kernel_here = partition.kernel_funcs & module_funcs
        nucleus = _strip_functions(source, user_here, "driver library")
        library = _strip_functions(source, kernel_here, "driver nucleus")
        result[short] = (nucleus, library)
    return result
