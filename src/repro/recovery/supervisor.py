"""The driver supervisor: restart a FAILED user-level driver half.

Wiring: ``DriverSupervisor(kernel, nucleus)`` attaches itself to the
nucleus's plumbing; the channel's failure policy then reports every
contained fault to :meth:`note_fault`.  Recovery runs either

* **synchronously**, when ``DecafPlumbing.upcall`` catches a
  DriverFailedError and asks the supervisor to recover before retrying
  the call once (the caller never sees the fault), or
* **asynchronously**, via a work item scheduled from ``note_fault`` --
  the path taken when the fault surfaces in a deferred-notification
  flush, which has no caller to retry for.

The recovery sequence mirrors the shadow-driver model:

1. ``nucleus.fault_quiesce()`` -- silence the device from the kernel
   side only (no upcalls: the user half is dead), returning an estimate
   of in-flight work discarded (e.g. TX packets in the rings).
2. ``plumbing.restart_user_half()`` -- reset the channel's user side
   and start a fresh runtime (paying JVM startup again).
3. ``nucleus.rebuild_user_half()`` -- fresh library/decaf instances.
4. Replay the recorded configuration log through
   ``nucleus.replay_op`` -- probe, open, and the latest settings.

A bounded number of recoveries guards against a deterministic fault
looping forever; past the budget the supervisor gives up and the
driver stays FAILED (downcalls keep failing fast).
"""

from ..kernel.timers import WorkItem


class RecoveryError(Exception):
    """A replayed configuration call failed during recovery."""


class WedgedDriverError(Exception):
    """Pseudo-fault recorded when a watchdog reports a wedged driver.

    The driver never raised -- it went silent (lost TX completions, a
    deferred queue that never drains) -- so the watchdog manufactures
    the fault that puts the channel through the normal restart path.
    """


class DriverSupervisor:
    def __init__(self, kernel, nucleus, max_recoveries=3):
        self.kernel = kernel
        self.nucleus = nucleus
        self.plumbing = nucleus.plumbing
        self.max_recoveries = max_recoveries
        self.faults_seen = 0
        self.wedges = 0           # watchdog-reported stalls
        self.recoveries = 0
        self.failed_recoveries = 0
        self.replayed_ops = 0
        self.work_lost = 0        # in-flight units discarded by quiesce
        self.outage_ns = 0        # cumulative fault -> recovered time
        self.last_outage_ns = 0
        self.outage_samples = []  # per-recovery outage ns (p50/p99 source)
        self.in_progress = False
        self.gave_up = False
        self._work = WorkItem(kernel, self._recovery_work, None,
                              name="%s-recovery" % self.plumbing.driver_name)
        self._work_pending = False
        self.plumbing.supervisor = self
        # Some nuclei only run their periodic health poll (the decaf
        # half's mid-workload injection point) once supervised, so that
        # unsupervised rigs keep the seed crossing counts.
        started = getattr(nucleus, "supervision_started", None)
        if started is not None:
            started()
        kernel.kstat.register("recovery", self._kstat)
        health = kernel.health
        if health is not None:
            health.register_supervisor(self)

    def detach(self):
        """Undo every kernel-global registration this supervisor made.

        Hotplug churn builds and discards supervisors with their driver
        instances; without detach each one leaks a kstat provider and a
        health-plane entry, and its pending recovery work item keeps the
        dead instance alive.
        """
        self.kernel.workqueue.cancel_work(self._work)
        self._work_pending = False
        self.kernel.kstat.unregister("recovery", self._kstat)
        health = self.kernel.health
        if health is not None:
            health.unregister_supervisor(self)
        if self.plumbing.supervisor is self:
            self.plumbing.supervisor = None

    def _kstat(self):
        return {
            "restarts": self.recoveries,
            "faults_seen": self.faults_seen,
            "wedges": self.wedges,
            "failed_recoveries": self.failed_recoveries,
            "work_lost": self.work_lost,
            "gave_up": self.gave_up,
        }

    @property
    def channel(self):
        return self.plumbing.channel

    def recovery_pending(self):
        """True while a contained fault awaits (or is under) recovery.

        Workloads consult this to tell a restart outage apart from a
        genuinely wedged device.
        """
        if self.in_progress or self._work_pending:
            return True
        return self.channel.failed and not self.gave_up

    def note_fault(self, exc, callsite):
        """Fault report from the channel's failure policy."""
        self.faults_seen += 1
        kernel = self.kernel
        name = self.plumbing.driver_name
        kernel.printk(
            "recovery %s: driver fault in %s (%s: %s); restart scheduled"
            % (name, callsite, type(exc).__name__, exc),
            level="err",
        )
        tracer = kernel.tracer
        if tracer is not None:
            tracer.instant("recovery.fault", {
                "driver": name, "callsite": callsite,
                "exc": type(exc).__name__,
            })
            tracer.metrics.inc("recovery.faults|%s" % name)
        # Async path: sync callers invoke recover() themselves before
        # this work item runs; it then finds a healthy channel and
        # does nothing.
        if not self._work_pending and not self.in_progress:
            self._work_pending = True
            kernel.workqueue.schedule_work(self._work)

    def note_wedge(self, reason):
        """Watchdog report: the driver is silently stalled, not faulted.

        Marks the channel FAILED with a :class:`WedgedDriverError`
        pseudo-fault (unless a real fault already did) so the standard
        quiesce/restart/replay machinery applies.  No-op while a
        recovery is already pending or after the supervisor gave up.
        """
        if self.gave_up or self.in_progress or self._work_pending:
            return
        self.wedges += 1
        channel = self.channel
        exc = WedgedDriverError(reason)
        if not channel.failed:
            channel.failed = True
            channel.failure = (exc, "watchdog", self.kernel.clock.now_ns)
        self.note_fault(exc, "watchdog")

    def _recovery_work(self, _data):
        self._work_pending = False
        if self.channel.failed and not self.gave_up:
            self.recover()

    def recover(self):
        """Quiesce, restart, replay.  Returns True when healthy again."""
        if self.in_progress:
            return False
        if not self.channel.failed:
            return True
        if self.gave_up:
            return False
        if self.recoveries >= self.max_recoveries:
            self._give_up("recovery budget (%d) exhausted"
                          % self.max_recoveries)
            return False
        kernel = self.kernel
        name = self.plumbing.driver_name
        start_ns = kernel.clock.now_ns
        failure = self.channel.failure
        fault_ns = failure[2] if failure is not None else start_ns
        self.in_progress = True
        try:
            kernel.printk(
                "recovery %s: restarting user-level driver half" % name,
                level="warn",
            )
            lost = self.nucleus.fault_quiesce()
            self.work_lost += int(lost or 0)
            self.plumbing.restart_user_half()
            self.nucleus.rebuild_user_half()
            self._replay()
        except Exception as exc:
            self.failed_recoveries += 1
            # Whatever state the half-restarted driver is in, it is not
            # trustworthy: leave the channel FAILED.
            self.channel.failed = True
            kernel.printk(
                "recovery %s: restart failed (%s: %s)"
                % (name, type(exc).__name__, exc),
                level="err",
            )
            self._give_up("restart failed")
            return False
        finally:
            self.in_progress = False
        self.recoveries += 1
        self.last_outage_ns = kernel.clock.now_ns - fault_ns
        self.outage_ns += self.last_outage_ns
        self.outage_samples.append(self.last_outage_ns)
        tracer = kernel.tracer
        if tracer is not None:
            tracer.span("recovery.restart", start_ns, {
                "driver": name, "replayed": len(self.plumbing.replay_log),
            })
            tracer.instant("recovery.complete", {
                "driver": name,
                "outage_ms": self.last_outage_ns / 1e6,
                "recoveries": self.recoveries,
            })
            tracer.metrics.inc("recovery.recoveries|%s" % name)
        kernel.printk(
            "recovery %s: driver restarted (%d ops replayed, "
            "outage %.3f ms)"
            % (name, len(self.plumbing.replay_log),
               self.last_outage_ns / 1e6),
            level="warn",
        )
        return True

    def _replay(self):
        kernel = self.kernel
        name = self.plumbing.driver_name
        tracer = kernel.tracer
        for op, args in self.plumbing.replay_log.entries():
            ret = self.nucleus.replay_op(op, args)
            self.replayed_ops += 1
            if tracer is not None:
                tracer.instant("recovery.replay", {
                    "driver": name, "op": op, "ret": ret,
                })
            if isinstance(ret, int) and ret < 0:
                raise RecoveryError(
                    "replay of %r failed with errno %d" % (op, ret)
                )

    def _give_up(self, reason):
        if self.gave_up:
            return
        self.gave_up = True
        name = self.plumbing.driver_name
        self.kernel.printk(
            "recovery %s: giving up (%s); driver stays FAILED"
            % (name, reason),
            level="err",
        )
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.instant("recovery.giveup",
                           {"driver": name, "reason": reason})

    def stats(self):
        return {
            "faults_seen": self.faults_seen,
            "recoveries": self.recoveries,
            "failed_recoveries": self.failed_recoveries,
            "replayed_ops": self.replayed_ops,
            "work_lost": self.work_lost,
            "outage_ms": self.outage_ns / 1e6,
            "gave_up": self.gave_up,
        }
