"""The replay log: configuration calls a nucleus records for recovery.

Only *configuration* is logged (probe, open, MAC address, MTU, mixer
and PCM settings ...), never datapath traffic -- replaying the log must
restore the driver to the state applications believe it is in, not
reproduce history.  Entries are latest-wins per operation: a second
``set_mac`` replaces the first, exactly as replaying both would.
"""


class ReplayLog:
    def __init__(self):
        self._entries = []  # [op, args] pairs, oldest first

    def record(self, op, *args):
        """Record ``op``; an existing entry for it is updated in place
        (latest-wins), keeping the original replay position."""
        for entry in self._entries:
            if entry[0] == op:
                entry[1] = args
                return
        self._entries.append([op, args])

    def remove(self, op):
        """Forget ``op`` (e.g. ``open`` once the device is closed)."""
        self._entries = [e for e in self._entries if e[0] != op]

    def entries(self):
        """Snapshot of (op, args) pairs in replay order."""
        return [(op, args) for op, args in self._entries]

    def clear(self):
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def __contains__(self, op):
        return any(e[0] == op for e in self._entries)
