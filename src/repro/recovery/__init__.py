"""Supervised driver recovery (shadow-driver style).

The paper's reliability argument is that a user-level driver half can
crash without taking the kernel with it.  This package supplies the
other half of that story: a supervisor that notices a contained fault
(:class:`~repro.core.xpc.DriverFailedError` territory), unloads the
dead user-level half, starts a fresh one, and replays the recorded
configuration calls so the device comes back in the state applications
last requested -- the shadow-driver recovery model (Swift et al.)
adapted to Decaf's kernel-nucleus/user-library split.
"""

from .log import ReplayLog
from .supervisor import DriverSupervisor, RecoveryError, WedgedDriverError

__all__ = ["DriverSupervisor", "RecoveryError", "ReplayLog",
           "WedgedDriverError"]
