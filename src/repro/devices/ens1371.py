"""Ensoniq ES1371 / Creative AudioPCI sound chip model.

Models the pieces the ens1371 driver programs: the control/status pair,
the AC'97 codec access register with its ready/WIP handshake, the sample
rate converter RAM port with its busy bit, the memory-page window through
which the DAC2 (playback) frame address and size are set, and the DAC2
sample counter that generates a period interrupt stream while playback
runs.

Playback consumption is event-driven: while DAC2 is enabled the device
consumes the DMA audio buffer at the programmed rate, raising its
interrupt each time the sample counter expires -- so a 256 Kbps MP3
decoded to 44.1 kHz stereo produces the same interrupt cadence the real
workload sees (one per period).
"""

import struct

from ..kernel.pci import PciBar, PciFunction

ENSONIQ_VENDOR_ID = 0x1274
ES1371_DEVICE_ID = 0x1371

# Port-window register offsets.
REG_CONTROL = 0x00
REG_STATUS = 0x04
REG_UART_DATA = 0x08
REG_MEMPAGE = 0x0C
REG_SRC = 0x10
REG_CODEC = 0x14
REG_LEGACY = 0x18
REG_SCTRL = 0x20
REG_DAC2_SCOUNT = 0x28
REG_ADC_SCOUNT = 0x2C
# Memory-page window (0x30..0x3F), page selected via REG_MEMPAGE.
REG_DAC2_FRAME_ADDR = 0x38
REG_DAC2_FRAME_SIZE = 0x3C
MEMPAGE_DAC2 = 0x0C

# CONTROL bits.
CTRL_DAC2_EN = 1 << 5
CTRL_ADC_EN = 1 << 4

# STATUS bits.
STAT_INTR = 1 << 31
STAT_DAC2 = 1 << 1

# SCTRL bits.
SCTRL_P2_INTR_EN = 1 << 9
SCTRL_P2_PAUSE = 1 << 12
SCTRL_P2_SMB = 1 << 11   # 16-bit samples
SCTRL_P2_SSB = 1 << 2    # stereo

# SRC bits.
SRC_RAM_BUSY = 1 << 23
SRC_DISABLE = 1 << 22

# CODEC bits.
CODEC_RDY = 1 << 31
CODEC_WIP = 1 << 30
CODEC_PIRD = 1 << 23  # read operation

AC97_VENDOR_ID1 = 0x7C
AC97_VENDOR_ID2 = 0x7E


class Ens1371Device:
    BAR_SIZE = 0x40

    def __init__(self, kernel, irq=5, io_base=0xD000):
        self._kernel = kernel
        self.irq = irq
        self.pci = PciFunction(
            vendor_id=ENSONIQ_VENDOR_ID,
            device_id=ES1371_DEVICE_ID,
            irq=irq,
            bars=[PciBar(io_base, self.BAR_SIZE, is_mmio=False, handler=self)],
            name="ens1371",
        )

        self.codec_regs = self._build_codec()
        self.src_ram = [0] * 128
        self.resets = 0
        self.period_interrupts = 0
        self.samples_consumed = 0
        self.audio_checksum = 0
        self._reset_state()

    def _build_codec(self):
        regs = {i: 0 for i in range(0, 0x80, 2)}
        regs[0x00] = 0x0D40          # reset/capabilities
        regs[0x02] = 0x8000          # master volume (muted)
        regs[0x18] = 0x8808          # PCM out volume
        regs[0x26] = 0x000F          # powerdown: all ready
        regs[AC97_VENDOR_ID1] = 0x4352  # 'CR' (Cirrus/Crystal)
        regs[AC97_VENDOR_ID2] = 0x5914
        return regs

    def _reset_state(self):
        self.control = 0
        self.status = 0
        self.sctrl = 0
        self.mempage = 0
        self.src_reg = 0
        self.codec_reg = CODEC_RDY
        self.dac2_frame_addr = 0
        self.dac2_frame_size = 0
        self.dac2_scount_reload = 0
        self.dac2_scount_cur = 0
        self.dac2_pos_bytes = 0
        self._playing = False
        self._period_event = None

    # -- I/O handler interface -------------------------------------------------

    def read(self, offset, size):
        if offset == REG_CONTROL:
            return self.control
        if offset == REG_STATUS:
            return self.status
        if offset == REG_MEMPAGE:
            return self.mempage
        if offset == REG_SRC:
            return self.src_reg & ~SRC_RAM_BUSY  # always ready by read time
        if offset == REG_CODEC:
            return self.codec_reg
        if offset == REG_SCTRL:
            return self.sctrl
        if offset == REG_DAC2_SCOUNT:
            return (self.dac2_scount_cur << 16) | self.dac2_scount_reload
        if offset == REG_DAC2_FRAME_ADDR and self.mempage == MEMPAGE_DAC2:
            return self.dac2_frame_addr
        if offset == REG_DAC2_FRAME_SIZE and self.mempage == MEMPAGE_DAC2:
            cur_frames = self.dac2_pos_bytes // 4
            return (cur_frames << 16) | (self.dac2_frame_size & 0xFFFF)
        return 0

    def write(self, offset, value, size):
        if offset == REG_CONTROL:
            old = self.control
            self.control = value
            if value & CTRL_DAC2_EN and not old & CTRL_DAC2_EN:
                self._start_playback()
            elif not value & CTRL_DAC2_EN and old & CTRL_DAC2_EN:
                self._stop_playback()
        elif offset == REG_STATUS:
            pass  # read-only
        elif offset == REG_MEMPAGE:
            self.mempage = value & 0xF
        elif offset == REG_SRC:
            self._write_src(value)
        elif offset == REG_CODEC:
            self._write_codec(value)
        elif offset == REG_SCTRL:
            # Clearing P2_INTR_EN acknowledges the DAC2 interrupt; the
            # driver clears and re-sets the bit to ack (as on hardware).
            if self.sctrl & SCTRL_P2_INTR_EN and not value & SCTRL_P2_INTR_EN:
                self.status &= ~(STAT_INTR | STAT_DAC2)
            self.sctrl = value
        elif offset == REG_DAC2_SCOUNT:
            self.dac2_scount_reload = value & 0xFFFF
            self.dac2_scount_cur = value & 0xFFFF
        elif offset == REG_DAC2_FRAME_ADDR and self.mempage == MEMPAGE_DAC2:
            self.dac2_frame_addr = value
        elif offset == REG_DAC2_FRAME_SIZE and self.mempage == MEMPAGE_DAC2:
            self.dac2_frame_size = value & 0xFFFF

    # -- SRC (sample rate converter) -----------------------------------------------

    def _write_src(self, value):
        self.src_reg = value
        addr = (value >> 25) & 0x7F
        if value & (1 << 24):  # write enable
            self.src_ram[addr] = value & 0xFFFF
        # Each SRC RAM access takes a poll-visible while on hardware.
        self._kernel.consume(1_000, busy=False, category="src")

    # -- AC97 codec ---------------------------------------------------------------------

    def _write_codec(self, value):
        reg = (value >> 16) & 0x7F
        self._kernel.consume(
            self._kernel.costs.phy_reg_ns // 2, busy=False, category="ac97"
        )
        if value & CODEC_PIRD:
            data = self.codec_regs.get(reg & ~1, 0)
            self.codec_reg = CODEC_RDY | data
        else:
            self.codec_regs[reg & ~1] = value & 0xFFFF
            self.codec_reg = CODEC_RDY

    # -- playback engine ----------------------------------------------------------------------

    def _frame_bytes_per_sample(self):
        nbytes = 1
        if self.sctrl & SCTRL_P2_SMB:
            nbytes *= 2
        if self.sctrl & SCTRL_P2_SSB:
            nbytes *= 2
        return nbytes

    def _sample_rate(self):
        # The real chip derives the DAC2 rate from SRC RAM; the driver
        # writes the rate via a known SRC register.  We store it there.
        rate = self.src_ram[0x75 % 128]
        return rate if rate else 44100

    def _period_ns(self):
        samples = self.dac2_scount_reload + 1
        return int(samples * 1e9 / self._sample_rate())

    def _start_playback(self):
        if self._playing:
            return
        self._playing = True
        self._schedule_period()

    def _stop_playback(self):
        self._playing = False
        if self._period_event is not None:
            self._period_event.cancel()
            self._period_event = None

    def _schedule_period(self):
        if not self._playing:
            return
        self._period_event = self._kernel.events.schedule_after(
            self._period_ns(), self._period_elapsed, name="ens1371-period"
        )

    def _period_elapsed(self):
        self._period_event = None
        if not self._playing:
            return
        samples = self.dac2_scount_reload + 1
        nbytes = samples * self._frame_bytes_per_sample()
        self._consume_audio(nbytes)
        self.samples_consumed += samples
        if self.sctrl & SCTRL_P2_INTR_EN:
            self.period_interrupts += 1
            self.status |= STAT_INTR | STAT_DAC2
            self._kernel.irq.raise_irq(self.irq)
        self._schedule_period()

    def _consume_audio(self, nbytes):
        region, off = self._kernel.memory.dma_find(self.dac2_frame_addr)
        if region is None:
            return
        size_bytes = (self.dac2_frame_size + 1) * 4
        for i in range(0, nbytes, 4):
            pos = (self.dac2_pos_bytes + i) % size_bytes
            word = struct.unpack_from("<I", region.data, off + pos)[0] \
                if off + pos + 4 <= len(region.data) else 0
            self.audio_checksum = (self.audio_checksum + word) & 0xFFFFFFFF
        self.dac2_pos_bytes = (self.dac2_pos_bytes + nbytes) % size_bytes

    def ack_interrupt(self):
        """Driver acknowledges by toggling P2_INTR_EN; model helper."""
        self.status &= ~(STAT_INTR | STAT_DAC2)
