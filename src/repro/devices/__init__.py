"""Register-level device models.

Each model implements the hardware side of a real device closely enough
that the corresponding driver performs the same register/DMA/interrupt
dance it would on silicon: EEPROM serial reads, PHY management registers,
descriptor rings in DMA memory, port status registers, PS/2 command
protocols.  Models attach to the simulated kernel's I/O space and IRQ
controller; drivers never call a model directly.
"""

from .link import EthernetLink, TrafficGenerator
from .e1000 import E1000Device, E1000_DEVICE_IDS
from .rtl8139 import Rtl8139Device
from .ens1371 import Ens1371Device
from .uhci import UhciDevice, UsbFlashDiskModel
from .ps2mouse import Ps2MouseDevice

__all__ = [
    "EthernetLink",
    "TrafficGenerator",
    "E1000Device",
    "E1000_DEVICE_IDS",
    "Rtl8139Device",
    "Ens1371Device",
    "UhciDevice",
    "UsbFlashDiskModel",
    "Ps2MouseDevice",
]
