"""PS/2 mouse device model.

Speaks the PS/2 mouse command protocol over a serio port: reset with
self-test, identification, sample-rate and resolution programming, the
IntelliMouse "magic knock" (sample rates 200, 100, 80) that upgrades the
device ID to 3 and enables the 4-byte wheel packet, and streaming of
movement packets while reporting is enabled.

Every byte to the host is delivered through ``port.deliver`` in hardirq
context, exercising the psmouse driver's interrupt-side protocol decode.
"""

PSMOUSE_RESET = 0xFF
PSMOUSE_RESEND = 0xFE
PSMOUSE_SET_DEFAULTS = 0xF6
PSMOUSE_DISABLE = 0xF5
PSMOUSE_ENABLE = 0xF4
PSMOUSE_SET_RATE = 0xF3
PSMOUSE_GET_ID = 0xF2
PSMOUSE_SET_REMOTE = 0xF0
PSMOUSE_SET_WRAP = 0xEE
PSMOUSE_RESET_WRAP = 0xEC
PSMOUSE_READ_DATA = 0xEB
PSMOUSE_SET_STREAM = 0xEA
PSMOUSE_STATUS_REQUEST = 0xE9
PSMOUSE_SET_RESOLUTION = 0xE8
PSMOUSE_SET_SCALE21 = 0xE7
PSMOUSE_SET_SCALE11 = 0xE6

ACK = 0xFA
NAK = 0xFE
SELFTEST_PASSED = 0xAA

ID_STANDARD = 0x00
ID_INTELLIMOUSE = 0x03


class Ps2MouseDevice:
    def __init__(self, kernel, intellimouse_capable=True):
        self._kernel = kernel
        self.intellimouse_capable = intellimouse_capable
        self.port = None
        self.resets = 0
        self.packets_sent = 0
        self._reset_state()

    def _reset_state(self):
        self.device_id = ID_STANDARD
        self.sample_rate = 100
        self.resolution = 4
        self.reporting = False
        self.scale21 = False
        self._awaiting_arg = None
        self._knock = []
        self._buttons = 0

    def attach(self, port):
        self.port = port
        port.attach_device(self)

    # -- host -> device bytes ------------------------------------------------------

    def handle_byte(self, port, byte):
        if self._awaiting_arg is not None:
            command = self._awaiting_arg
            self._awaiting_arg = None
            self._handle_arg(command, byte)
            return
        if byte == PSMOUSE_RESET:
            self.resets += 1
            self._reset_state()
            self._send(ACK)
            # Self-test takes a visible while on real mice.
            self._kernel.consume(50_000_000, busy=False, category="ps2-reset")
            self._send(SELFTEST_PASSED)
            self._send(ID_STANDARD)
        elif byte == PSMOUSE_GET_ID:
            self._send(ACK)
            self._send(self.device_id)
        elif byte == PSMOUSE_SET_RATE:
            self._send(ACK)
            self._awaiting_arg = PSMOUSE_SET_RATE
        elif byte == PSMOUSE_SET_RESOLUTION:
            self._send(ACK)
            self._awaiting_arg = PSMOUSE_SET_RESOLUTION
        elif byte == PSMOUSE_ENABLE:
            self.reporting = True
            self._send(ACK)
        elif byte == PSMOUSE_DISABLE:
            self.reporting = False
            self._send(ACK)
        elif byte == PSMOUSE_SET_DEFAULTS:
            self.sample_rate = 100
            self.resolution = 4
            self._send(ACK)
        elif byte == PSMOUSE_STATUS_REQUEST:
            self._send(ACK)
            self._send(0x20 if self.reporting else 0x00)
            self._send(self.resolution)
            self._send(self.sample_rate)
        elif byte in (PSMOUSE_SET_SCALE11, PSMOUSE_SET_SCALE21):
            self.scale21 = byte == PSMOUSE_SET_SCALE21
            self._send(ACK)
        elif byte in (PSMOUSE_SET_STREAM, PSMOUSE_SET_REMOTE,
                      PSMOUSE_RESET_WRAP):
            self._send(ACK)
        else:
            self._send(NAK)

    def _handle_arg(self, command, value):
        if command == PSMOUSE_SET_RATE:
            self.sample_rate = value
            self._knock.append(value)
            self._knock = self._knock[-3:]
            if (
                self.intellimouse_capable
                and self._knock == [200, 100, 80]
                and self.device_id == ID_STANDARD
            ):
                self.device_id = ID_INTELLIMOUSE
        elif command == PSMOUSE_SET_RESOLUTION:
            self.resolution = value
        self._send(ACK)

    def _send(self, byte):
        if self.port is not None:
            self.port.deliver(byte)

    # -- movement injection (workload side) ---------------------------------------------

    def move(self, dx, dy, buttons=0, wheel=0):
        """Generate one movement packet if reporting is enabled."""
        if not self.reporting or self.port is None:
            return False
        self._buttons = buttons & 0x07
        sx = 1 if dx < 0 else 0
        sy = 1 if dy < 0 else 0
        b0 = 0x08 | self._buttons | (sx << 4) | (sy << 5)
        self._send(b0)
        self._send(dx & 0xFF)
        self._send(dy & 0xFF)
        if self.device_id == ID_INTELLIMOUSE:
            self._send(wheel & 0xFF)
        self.packets_sent += 1
        return True
