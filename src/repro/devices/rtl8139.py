"""RealTek RTL8139 fast-ethernet NIC model.

Port-I/O programmed like the real chip: MAC address in the IDR registers,
four transmit slots (TSD/TSAD), a single receive ring buffer the device
writes packet-header-prefixed frames into, the CR/ISR/IMR command and
interrupt scheme with write-1-to-clear status bits.
"""

import struct
from collections import deque

from ..kernel.pci import PciBar, PciFunction

REALTEK_VENDOR_ID = 0x10EC
RTL8139_DEVICE_ID = 0x8139

# Register offsets within the 256-byte port window.
IDR0 = 0x00          # 6 bytes of MAC address
MAR0 = 0x08          # multicast filter
TSD0 = 0x10          # 4 x transmit status (dword)
TSAD0 = 0x20         # 4 x transmit start address (dword)
RBSTART = 0x30
ERBCR = 0x34
ERSR = 0x36
CR = 0x37
CAPR = 0x38
CBR = 0x3A
IMR = 0x3C
ISR = 0x3E
TCR = 0x40
RCR = 0x44
TCTR = 0x48
MPC = 0x4C
CFG9346 = 0x50
CONFIG0 = 0x51
CONFIG1 = 0x52
MSR = 0x58
BMCR = 0x62
BMSR = 0x64

# CR bits.
CR_BUFE = 0x01
CR_TE = 0x04
CR_RE = 0x08
CR_RST = 0x10

# ISR/IMR bits.
ISR_ROK = 0x0001
ISR_RER = 0x0002
ISR_TOK = 0x0004
ISR_TER = 0x0008
ISR_RXOVW = 0x0010

# TSD bits.
TSD_OWN = 1 << 13
TSD_TOK = 1 << 15

# RX packet header status.
RX_STAT_ROK = 0x0001

# MSR bits.
MSR_LINKB = 0x04  # inverse link indicator: 0 = link up

RX_RING_SIZE = 32 * 1024
NUM_TX_DESC = 4


class Rtl8139Device:
    BAR_SIZE = 0x100

    def __init__(self, kernel, link, mac=b"\x00\xE0\x4C\x39\x13\x9A",
                 irq=11, io_base=0xC000, rx_coalesce_ns=0):
        self._kernel = kernel
        self.link = link
        link.nic_rx = self._link_rx
        self.mac = bytes(mac)
        self.irq = irq
        # Interrupt-coalescing window (the 8139C+'s IntrMitigate knob,
        # simplified): after raising an interrupt the device holds
        # further deliveries for this many ns; causes latch in ISR and
        # are delivered in one interrupt when the window closes.
        # 0 (the default, and the classic 8139's behavior) delivers
        # every unmasked cause immediately.
        self.rx_coalesce_ns = rx_coalesce_ns

        self.pci = PciFunction(
            vendor_id=REALTEK_VENDOR_ID,
            device_id=RTL8139_DEVICE_ID,
            irq=irq,
            bars=[PciBar(io_base, self.BAR_SIZE, is_mmio=False, handler=self)],
            name="rtl8139",
        )

        self.resets = 0
        self.frames_transmitted = 0
        self.frames_received = 0
        self.rx_overflows = 0
        self._reset_state()

    def _reset_state(self):
        # The register file is cleared in place, never replaced: the
        # fastpath compiler's reg_reader/reg_writer closures bind it by
        # identity and must survive a chip reset.
        regs = getattr(self, "regs", None)
        if regs is None:
            regs = self.regs = bytearray(256)
        else:
            regs[:] = bytes(256)
        self.regs[IDR0:IDR0 + 6] = self.mac
        self.regs[CR] = CR_BUFE
        self.regs[MSR] = 0x00  # link up (LINKB=0)
        struct.pack_into("<H", self.regs, BMSR, 0x7849 | 0x0004 | 0x0020)
        self._rx_write_off = 0
        self._rx_read_off = 0
        self._rx_enabled = False
        self._tx_enabled = False
        # RBSTART shadow + memoized dma_find result for the rx ring;
        # invalidated whenever RBSTART is rewritten (and here, on
        # reset).  Saves a linear DMA-region scan per received frame.
        self._rbstart = 0
        self._rx_dma = None
        # Drop any in-flight TX completions and their pump event.
        stale = getattr(self, "_tx_pump_event", None)
        if stale is not None:
            stale.cancel()
        self._tx_pump_event = None
        self._tx_done = deque()
        # Cancel a pending coalesce-window expiry; a stale one would
        # re-deliver against the post-reset ISR.
        stale = getattr(self, "_coalesce_event", None)
        if stale is not None:
            stale.cancel()
        self._coalesce_event = None

    # -- helpers --------------------------------------------------------------

    def _reg16(self, off):
        return struct.unpack_from("<H", self.regs, off)[0]

    def _set_reg16(self, off, val):
        struct.pack_into("<H", self.regs, off, val & 0xFFFF)

    def _reg32(self, off):
        return struct.unpack_from("<I", self.regs, off)[0]

    def _set_reg32(self, off, val):
        struct.pack_into("<I", self.regs, off, val & 0xFFFFFFFF)

    def _assert_irq(self, bits):
        # Hot path (once per rx frame / tx batch): ISR |= bits and the
        # IMR gate, as direct byte arithmetic on the register file.
        regs = self.regs
        isr = (regs[ISR] | regs[ISR + 1] << 8) | bits
        regs[ISR] = isr & 0xFF
        regs[ISR + 1] = isr >> 8
        if isr & (regs[IMR] | regs[IMR + 1] << 8):
            self._deliver_irq()

    def _deliver_irq(self):
        window = self.rx_coalesce_ns
        if window <= 0:
            self._kernel.irq.raise_irq(self.irq)
            return
        ev = self._coalesce_event
        if ev is not None and not ev.cancelled:
            return  # window open: causes accumulate in ISR
        # Arm the window BEFORE delivering so causes asserted from the
        # handler's own work coalesce instead of re-arming windows.
        self._coalesce_event = self._kernel.events.schedule_timer_after(
            window, self._coalesce_expire, name="rtl8139-coalesce"
        )
        self._kernel.irq.raise_irq(self.irq)

    def _coalesce_expire(self):
        self._coalesce_event = None
        if self._reg16(ISR) & self._reg16(IMR):
            self._assert_irq(0)

    # -- I/O handler interface -----------------------------------------------------

    def read(self, offset, size):
        if size == 1:
            return self.regs[offset]
        if size == 2:
            return self.regs[offset] | self.regs[offset + 1] << 8
        return self._reg32(offset)

    def write(self, offset, value, size):
        regs = self.regs
        if offset == CR and size == 1:
            self._write_cr(value)
            return
        if offset == ISR and size == 2:
            # Write-1-to-clear.
            isr = (regs[ISR] | regs[ISR + 1] << 8) & ~value
            regs[ISR] = isr & 0xFF
            regs[ISR + 1] = isr >> 8
            return
        if TSD0 <= offset < TSD0 + 4 * NUM_TX_DESC and size == 4:
            slot = (offset - TSD0) // 4
            self._write_tsd(slot, value)
            return
        if offset == CAPR and size == 2:
            self._write_capr(value)
            return
        if size == 1:
            regs[offset] = value & 0xFF
        elif size == 2:
            self._set_reg16(offset, value)
        else:
            self._set_reg32(offset, value)
        if RBSTART <= offset < RBSTART + 4:
            # Rx ring moved: refresh the shadow, drop the dma_find memo.
            self._rbstart = self._reg32(RBSTART)
            self._rx_dma = None

    def _write_capr(self, value):
        regs = self.regs
        regs[CAPR] = value & 0xFF
        regs[CAPR + 1] = value >> 8
        # The driver writes cur_rx - 16; the hardware's read pointer
        # is therefore CAPR + 16.
        read_off = self._rx_read_off = (value + 16) % RX_RING_SIZE
        if read_off == self._rx_write_off:
            regs[CR] |= CR_BUFE
        else:
            regs[CR] &= ~CR_BUFE

    # -- fastpath compiler hooks (kernel/fastpath.py) ---------------------------

    def reg_reader(self, offset, size):
        """Specialized accessor for a fixed register, or None.

        Reads have no side effects on this chip, so any 1/2-byte read
        compiles to plain byte loads from the (identity-stable)
        register file.
        """
        regs = self.regs
        if size == 1:
            return lambda: regs[offset]
        if size == 2:
            return lambda: regs[offset] | regs[offset + 1] << 8
        return None

    def reg_writer(self, offset, size):
        if offset == CAPR and size == 2:
            return self._write_capr
        if offset == IMR and size == 2:
            regs = self.regs

            def write_imr(value):
                regs[IMR] = value & 0xFF
                regs[IMR + 1] = value >> 8

            return write_imr
        return None

    # -- command register -------------------------------------------------------------

    def _write_cr(self, value):
        if value & CR_RST:
            self.resets += 1
            mac = bytes(self.regs[IDR0:IDR0 + 6])
            self._reset_state()
            self.regs[IDR0:IDR0 + 6] = mac
            # Reset completes after a short delay; RST bit self-clears.
            self.regs[CR] = CR_BUFE
            self._kernel.consume(10_000, busy=False, category="nic-reset")
            return
        self._rx_enabled = bool(value & CR_RE)
        self._tx_enabled = bool(value & CR_TE)
        buf_empty = self.regs[CR] & CR_BUFE
        self.regs[CR] = (value & (CR_RE | CR_TE)) | buf_empty

    # -- transmit ----------------------------------------------------------------------

    def _write_tsd(self, slot, value):
        self._set_reg32(TSD0 + 4 * slot, value)
        if value & TSD_OWN:
            return  # driver reclaiming, nothing to send
        if not self._tx_enabled:
            return
        length = value & 0x1FFF
        addr = self._reg32(TSAD0 + 4 * slot)
        region, off = self._kernel.memory.dma_find(addr)
        if region is None:
            self._assert_irq(ISR_TER)
            return
        frame = memoryview(region.data)[off:off + length]
        done_ns = self.link.transmit(frame)
        self.frames_transmitted += 1
        # Completion status lands at wire time (transmit throughput is
        # link-limited as on hardware), but write-backs are batched: one
        # pump event completes every slot whose wire time has passed and
        # raises a single TOK interrupt for the batch.
        self._tx_done.append((done_ns, slot, value))
        self._arm_tx_pump()

    def _arm_tx_pump(self):
        if not self._tx_done:
            return
        due_ns = self._tx_done[0][0]
        ev = self._tx_pump_event
        if ev is not None and not ev.cancelled:
            if ev.time_ns <= due_ns:
                return
            ev.cancel()
        self._tx_pump_event = self._kernel.events.schedule_timer_at(
            due_ns, self._tx_pump, name="rtl8139-txdone"
        )

    def _tx_pump(self):
        self._tx_pump_event = None
        now_ns = self._kernel.clock.now_ns
        completed = False
        while self._tx_done and self._tx_done[0][0] <= now_ns:
            _due, slot, value = self._tx_done.popleft()
            self._set_reg32(TSD0 + 4 * slot, value | TSD_OWN | TSD_TOK)
            completed = True
        if completed:
            self._assert_irq(ISR_TOK)
        self._arm_tx_pump()

    # -- receive ---------------------------------------------------------------------------

    def _link_rx(self, frame):
        if not self._rx_enabled:
            return
        dma = self._rx_dma
        if dma is None or dma[0].freed:
            region, base_off = self._kernel.memory.dma_find(self._rbstart)
            if region is None:
                return
            dma = self._rx_dma = (region, base_off)
        region, base_off = dma
        flen = len(frame)
        # 4-byte header (status, length incl 4-byte CRC), then frame data,
        # dword aligned.
        total_aligned = (flen + 8 + 3) & ~3
        off = self._rx_write_off
        used = off - self._rx_read_off
        if used < 0:
            used += RX_RING_SIZE
        if used + total_aligned >= RX_RING_SIZE:
            self.rx_overflows += 1
            self._assert_irq(ISR_RXOVW)
            return
        data = region.data
        # Header written in place: `off` is dword-aligned and the ring
        # size is a multiple of 4, so the header never wraps.
        size_field = flen + 4
        b = base_off + off
        data[b] = RX_STAT_ROK & 0xFF
        data[b + 1] = RX_STAT_ROK >> 8
        data[b + 2] = size_field & 0xFF
        data[b + 3] = size_field >> 8
        # Frame then 4 pad bytes, each with at most one wraparound
        # split: same byte layout as building header+frame+pad and
        # copying it, without the per-frame concatenation.
        start = off + 4
        end = start + flen
        if end <= RX_RING_SIZE:
            data[base_off + start:base_off + end] = frame
            z = end if end < RX_RING_SIZE else 0
        else:
            split = RX_RING_SIZE - start
            data[base_off + start:base_off + RX_RING_SIZE] = frame[:split]
            z = flen - split
            data[base_off:base_off + z] = frame[split:]
        zend = z + 4
        if zend <= RX_RING_SIZE:
            data[base_off + z:base_off + zend] = b"\x00\x00\x00\x00"
        else:
            cut = RX_RING_SIZE - z
            data[base_off + z:base_off + RX_RING_SIZE] = bytes(cut)
            data[base_off:base_off + 4 - cut] = bytes(4 - cut)
        w = off + total_aligned
        if w >= RX_RING_SIZE:
            w -= RX_RING_SIZE
        self._rx_write_off = w
        regs = self.regs
        regs[CBR] = w & 0xFF
        regs[CBR + 1] = w >> 8
        regs[CR] &= ~CR_BUFE
        self.frames_received += 1
        # Inlined _assert_irq(ISR_ROK): the per-frame case.
        isr = (regs[ISR] | regs[ISR + 1] << 8) | ISR_ROK
        regs[ISR] = isr & 0xFF
        regs[ISR + 1] = isr >> 8
        if isr & (regs[IMR] | regs[IMR + 1] << 8):
            self._deliver_irq()

