"""UHCI USB 1.1 host controller + flash-disk function model.

The controller is programmed through the classic UHCI port-I/O register
file (USBCMD/USBSTS/USBINTR/FRNUM/FLBASEADD/PORTSC).  The transfer
schedule uses a simplified transfer-descriptor ring in DMA memory -- the
same control flow as real UHCI (driver builds TDs in DMA memory, the
controller executes them frame by frame at 1 ms intervals within the USB
1.1 bandwidth budget, completion is signalled through TD status plus an
interrupt) with the QH/link-pointer plumbing reduced to a ring.

The TD format (16 bytes, little endian):

    u32 buffer_addr    u16 length      u8 flags    u8 dev_addr
    u8 endpoint        u8 reserved     u16 actual

flags: IN=0x01, ACTIVE=0x02, DONE=0x04, ERROR=0x08.

:class:`UsbFlashDiskModel` is a bulk-only mass-storage function with a
trivial block protocol, enough for the paper's tar-to-flash workload.
"""

import struct

from ..kernel.pci import PciBar, PciFunction

INTEL_VENDOR_ID = 0x8086
UHCI_DEVICE_ID = 0x7020  # 82371SB PIIX3 USB

# Registers.
USBCMD = 0x00
USBSTS = 0x02
USBINTR = 0x04
FRNUM = 0x06
FLBASEADD = 0x08
SOFMOD = 0x0C
PORTSC1 = 0x10
PORTSC2 = 0x12

# USBCMD bits.
CMD_RS = 0x0001
CMD_HCRESET = 0x0002
CMD_GRESET = 0x0004
CMD_MAXP = 0x0080

# USBSTS bits (write-1-to-clear).
STS_USBINT = 0x0001
STS_ERROR = 0x0002
STS_HCHALTED = 0x0020

# PORTSC bits.
PORT_CCS = 0x0001   # current connect status
PORT_CSC = 0x0002   # connect status change (w1c)
PORT_PE = 0x0004    # port enabled
PORT_PEC = 0x0008   # enable change (w1c)
PORT_LSDA = 0x0100  # low-speed device attached
PORT_PR = 0x0200    # port reset

# TD flags.
TD_IN = 0x01
TD_ACTIVE = 0x02
TD_DONE = 0x04
TD_ERROR = 0x08

TD_SIZE = 16
TD_RING_ENTRIES = 64

# USB 1.1 full-speed bulk bandwidth: ~19 64-byte packets per 1 ms frame.
FULL_SPEED_BYTES_PER_FRAME = 1216
FRAME_NS = 1_000_000
# Empty frames before the controller stops scheduling frame events and
# coasts.  Submits are followed by a register access (the driver's
# status check doubles as a doorbell), which resumes 1 ms framing with
# the frame counter caught up, so coasting is invisible to drivers.
IDLE_FRAMES_LIMIT = 4


class UhciDevice:
    BAR_SIZE = 0x20

    def __init__(self, kernel, irq=9, io_base=0xE000):
        self._kernel = kernel
        self.irq = irq
        self.pci = PciFunction(
            vendor_id=INTEL_VENDOR_ID,
            device_id=UHCI_DEVICE_ID,
            irq=irq,
            bars=[PciBar(io_base, self.BAR_SIZE, is_mmio=False, handler=self)],
            name="uhci",
        )
        self.port_devices = [None, None]  # function models by port
        self.resets = 0
        self.frames_processed = 0
        self.tds_completed = 0
        self._reset_state()

    def _reset_state(self):
        self.cmd = 0
        self.sts = STS_HCHALTED
        self.intr = 0
        self.frnum = 0
        self.flbase = 0
        self.portsc = [0, 0]
        for i, dev in enumerate(self.port_devices):
            if dev is not None:
                self.portsc[i] = PORT_CCS | PORT_CSC
        self._td_index = 0
        self._frame_event = None
        self._running = False
        self._idle_frames = 0
        self._coast_since_ns = None

    # -- topology --------------------------------------------------------------

    def attach(self, port, device_model):
        """Plug a USB function model into a root port."""
        self.port_devices[port] = device_model
        self.portsc[port] |= PORT_CCS | PORT_CSC

    def detach(self, port):
        self.port_devices[port] = None
        self.portsc[port] &= ~(PORT_CCS | PORT_PE)
        self.portsc[port] |= PORT_CSC

    def _device_for(self, dev_addr):
        for i, dev in enumerate(self.port_devices):
            if dev is not None and dev.address == dev_addr:
                if self.portsc[i] & PORT_PE:
                    return dev
        return None

    # -- I/O handler interface ------------------------------------------------------

    def read(self, offset, size):
        self._kick()
        if offset == USBCMD:
            return self.cmd
        if offset == USBSTS:
            return self.sts
        if offset == USBINTR:
            return self.intr
        if offset == FRNUM:
            return self.frnum
        if offset == FLBASEADD:
            return self.flbase
        if offset in (PORTSC1, PORTSC2):
            return self.portsc[(offset - PORTSC1) // 2]
        return 0

    def write(self, offset, value, size):
        self._kick()
        if offset == USBCMD:
            self._write_cmd(value)
        elif offset == USBSTS:
            self.sts &= ~value  # write-1-to-clear
        elif offset == USBINTR:
            self.intr = value
        elif offset == FRNUM:
            self.frnum = value & 0x7FF
        elif offset == FLBASEADD:
            self.flbase = value & ~0xFFF
        elif offset in (PORTSC1, PORTSC2):
            self._write_portsc((offset - PORTSC1) // 2, value)

    def _write_cmd(self, value):
        if value & (CMD_HCRESET | CMD_GRESET):
            self.resets += 1
            devices = self.port_devices
            self._reset_state()
            self.port_devices = devices
            self._kernel.consume(10_000_000, busy=False, category="usb-reset")
            return
        was_running = self._running
        self.cmd = value
        self._running = bool(value & CMD_RS)
        if self._running:
            self.sts &= ~STS_HCHALTED
            if not was_running:
                self._schedule_frame()
        else:
            self.sts |= STS_HCHALTED

    def _write_portsc(self, port, value):
        sc = self.portsc[port]
        sc &= ~(value & (PORT_CSC | PORT_PEC))  # w1c change bits
        if value & PORT_PR:
            sc |= PORT_PR
        elif sc & PORT_PR:
            # Reset deasserted: enable the port if a device is present.
            sc &= ~PORT_PR
            if sc & PORT_CCS:
                sc |= PORT_PE
        if value & PORT_PE:
            sc |= PORT_PE
        elif not value & PORT_PE and not sc & PORT_PR and value & 0x1000:
            sc &= ~PORT_PE
        self.portsc[port] = sc

    # -- frame processing -----------------------------------------------------------

    def _schedule_frame(self):
        if not self._running:
            return
        self._frame_event = self._kernel.events.schedule_after(
            FRAME_NS, self._process_frame, name="uhci-frame"
        )

    def _kick(self):
        """Resume framing after an idle coast (any register access).

        While coasting no frame events are scheduled at all -- an idle
        controller costs the simulator nothing.  The frame counter
        catches up from the coast duration so FRNUM reads stay
        consistent with wall (virtual) time.
        """
        if self._coast_since_ns is None or not self._running:
            return
        elapsed = self._kernel.clock.now_ns - self._coast_since_ns
        skipped = elapsed // FRAME_NS
        self.frnum = (self.frnum + skipped) & 0x7FF
        self.frames_processed += skipped
        self._coast_since_ns = None
        self._idle_frames = 0
        if self._frame_event is None:
            self._schedule_frame()

    def _process_frame(self):
        self._frame_event = None
        if not self._running:
            return
        self.frnum = (self.frnum + 1) & 0x7FF
        self.frames_processed += 1
        budget = FULL_SPEED_BYTES_PER_FRAME
        completed = False
        region, base_off = self._kernel.memory.dma_find(self.flbase)
        if region is not None:
            while budget > 0:
                off = base_off + self._td_index * TD_SIZE
                if off + TD_SIZE > len(region.data):
                    break
                buf, length, flags, dev_addr, endpoint, _res, _act = (
                    struct.unpack_from("<IHBBBBH", region.data, off)
                )
                if not flags & TD_ACTIVE:
                    break
                if length > budget:
                    break  # finish this TD next frame
                actual, new_flags = self._execute_td(
                    buf, length, flags, dev_addr, endpoint
                )
                struct.pack_into(
                    "<IHBBBBH", region.data, off,
                    buf, length, new_flags, dev_addr, endpoint, 0, actual,
                )
                budget -= max(actual, 1)
                self._td_index = (self._td_index + 1) % TD_RING_ENTRIES
                self.tds_completed += 1
                completed = True
        if completed:
            self.sts |= STS_USBINT
            if self.intr:
                self._kernel.irq.raise_irq(self.irq)
            self._idle_frames = 0
        else:
            self._idle_frames += 1
            if self._idle_frames >= IDLE_FRAMES_LIMIT:
                self._coast_since_ns = self._kernel.clock.now_ns
                return  # coast: no frame event until the next doorbell
        self._schedule_frame()

    def _execute_td(self, buf, length, flags, dev_addr, endpoint):
        device = self._device_for(dev_addr)
        if device is None:
            return 0, (flags & ~TD_ACTIVE) | TD_DONE | TD_ERROR
        memory = self._kernel.memory
        if flags & TD_IN:
            data = device.bulk_in(endpoint, length)
            region, off = memory.dma_find(buf)
            if region is None:
                return 0, (flags & ~TD_ACTIVE) | TD_DONE | TD_ERROR
            region.data[off:off + len(data)] = data
            return len(data), (flags & ~TD_ACTIVE) | TD_DONE
        region, off = memory.dma_find(buf)
        if region is None:
            return 0, (flags & ~TD_ACTIVE) | TD_DONE | TD_ERROR
        data = bytes(region.data[off:off + length])
        device.bulk_out(endpoint, data)
        return length, (flags & ~TD_ACTIVE) | TD_DONE


class UsbFlashDiskModel:
    """A bulk-only USB flash disk with a minimal block protocol.

    OUT endpoint 2 carries commands and write data; IN endpoint 1 returns
    read data and status.  Command header (8 bytes):

        u8 opcode (1=WRITE, 2=READ)   u8 pad   u16 block_count   u32 lba

    WRITE is followed by ``block_count * 512`` bytes of data in subsequent
    OUT transfers; READ makes the data available on the IN endpoint.
    """

    BLOCK_SIZE = 512

    def __init__(self, capacity_blocks=65536, address=0):
        self.capacity_blocks = capacity_blocks
        self.address = address
        self.blocks = {}
        self.writes = 0
        self.reads = 0
        self._expect_write = None  # (lba, remaining_bytes, buffer)
        self._cmd_buffer = bytearray()  # header bytes awaiting completion
        self._in_queue = bytearray()

    def set_address(self, address):
        self.address = address

    # -- endpoint handlers (called by the controller) ---------------------------

    def bulk_out(self, endpoint, data):
        if self._expect_write is not None:
            self._absorb_write_data(data)
            return
        # A command header may be split across bulk transfers: buffer
        # bytes until the full 8-byte header has arrived.
        self._cmd_buffer += data
        if len(self._cmd_buffer) < 8:
            return
        header = bytes(self._cmd_buffer[:8])
        rest = bytes(self._cmd_buffer[8:])
        self._cmd_buffer = bytearray()
        opcode, _pad, count, lba = struct.unpack_from("<BBHI", header, 0)
        if opcode == 1:  # WRITE
            self._expect_write = [lba, count * self.BLOCK_SIZE, bytearray()]
            self._absorb_write_data(rest)
        elif opcode == 2:  # READ
            out = bytearray()
            for i in range(count):
                out += self.blocks.get(lba + i, bytes(self.BLOCK_SIZE))
            self._in_queue += out
            self.reads += count

    def _absorb_write_data(self, data):
        lba, remaining, buf = self._expect_write
        take = min(remaining, len(data))
        buf += data[:take]
        remaining -= take
        if remaining > 0:
            self._expect_write = [lba, remaining, buf]
            return
        for i in range(0, len(buf), self.BLOCK_SIZE):
            block = bytes(buf[i:i + self.BLOCK_SIZE])
            if len(block) < self.BLOCK_SIZE:
                block += bytes(self.BLOCK_SIZE - len(block))
            self.blocks[lba + i // self.BLOCK_SIZE] = block
            self.writes += 1
        self._expect_write = None

    def bulk_in(self, endpoint, length):
        take = min(length, len(self._in_queue))
        data = bytes(self._in_queue[:take])
        del self._in_queue[:take]
        return data
