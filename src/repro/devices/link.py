"""Ethernet link and traffic generation.

A :class:`EthernetLink` joins a NIC device model to a peer: frames the NIC
transmits are delivered to the peer callback; frames the peer injects
arrive at the NIC.  The link enforces line rate by pacing deliveries in
virtual time, which is what makes netperf throughput link-limited (as on
the paper's gigabit testbed) rather than CPU-limited.

:class:`TrafficGenerator` plays the remote netperf host for receive-side
benchmarks: it schedules back-to-back frames at a configurable rate.
"""


class EthernetLink:
    def __init__(self, kernel, bits_per_second=1_000_000_000, name="link"):
        self._kernel = kernel
        self.bits_per_second = bits_per_second
        self.name = name
        self.peer_rx = None  # callable(frame_bytes): the "remote host"
        self.nic_rx = None   # callable(frame_bytes): set by the NIC model
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self._tx_busy_until_ns = 0

    def frame_time_ns(self, nbytes):
        # Preamble (8B) + IFG (12B) per Ethernet frame.
        return int((nbytes + 20) * 8 * 1e9 / self.bits_per_second)

    def transmit(self, frame):
        """NIC puts a frame on the wire; returns completion time (ns)."""
        now = self._kernel.clock.now_ns
        start = max(now, self._tx_busy_until_ns)
        done = start + self.frame_time_ns(len(frame))
        self._tx_busy_until_ns = done
        self.tx_frames += 1
        self.tx_bytes += len(frame)
        if self.peer_rx is not None:
            self.peer_rx(bytes(frame))
        return done

    def inject(self, frame):
        """Remote host sends a frame toward the NIC."""
        self.rx_frames += 1
        self.rx_bytes += len(frame)
        if self.nic_rx is not None:
            if type(frame) is not bytes:
                frame = bytes(frame)
            self.nic_rx(frame)


class TrafficGenerator:
    """Injects frames into a link at a steady rate (the remote netperf)."""

    def __init__(self, kernel, link, frame_bytes=1500, utilization=0.95,
                 burst=1):
        self._kernel = kernel
        self._link = link
        self.frame_bytes = frame_bytes
        self.utilization = utilization
        # Frames arriving back-to-back per tick.  Real traffic is bursty
        # (TCP windows, GRO on the sender); ``burst=k`` injects k frames
        # every k intervals -- the same average rate as burst=1, but the
        # arrival pattern coalescing/NAPI was designed for.
        self.burst = max(1, int(burst))
        self._running = False
        self.frames_sent = 0
        # Frozen at start(): the payload and pacing interval are
        # constant for a run, so the per-frame tick does no arithmetic
        # and no allocation.
        self._payload = b""
        self._interval_ns = 0
        self._stop_at_ns = None

    def interframe_ns(self):
        return int(self._link.frame_time_ns(self.frame_bytes) / self.utilization)

    def start(self, stop_at_ns=None):
        """Begin injecting; ``stop_at_ns`` is a hard virtual deadline.

        A nested ``run_until`` (an event handler that consumes time near
        the end of a run) can overshoot the caller's target and fire
        ticks past it; the deadline makes the injected frame count a
        function of the duration alone, not of which handler happened to
        straddle the boundary.
        """
        self._running = True
        self._stop_at_ns = stop_at_ns
        self._payload = bytes(self.frame_bytes)
        self._interval_ns = self.interframe_ns() * self.burst
        self._schedule_next()

    def stop(self):
        self._running = False

    def _schedule_next(self):
        if not self._running:
            return
        self._kernel.events.schedule_after(
            self._interval_ns, self._tick, context="process", name="trafficgen"
        )

    def _tick(self):
        if not self._running:
            return
        stop_at = self._stop_at_ns
        if stop_at is not None and self._kernel.clock.now_ns > stop_at:
            self._running = False
            return
        # Schedule the next frame BEFORE processing this one, so the
        # injection rate is independent of receive-side processing time.
        self._kernel.events.schedule_after(
            self._interval_ns, self._tick, context="process", name="trafficgen"
        )
        inject = self._link.inject
        payload = self._payload
        for _ in range(self.burst):
            inject(payload)
        self.frames_sent += self.burst
