"""Intel E1000 (PRO/1000) gigabit NIC device model.

Implements the register-level behaviour the Linux e1000 driver relies on:

* CTRL/STATUS with software reset and link-up reporting,
* microwire EEPROM reads through EERD (MAC address, device config,
  checksum word summing to 0xBABA),
* PHY management through MDIC (M88E1000/IGP01E1000 identities, autoneg),
* legacy transmit/receive descriptor rings fetched from DMA memory,
* the ICR/IMS/IMC interrupt scheme (read-to-clear cause register).

Fifty device IDs from the real driver's pci_device_id table are accepted
(``E1000_DEVICE_IDS``), mapped onto the handful of MAC types the model
distinguishes -- the driver's per-chipset code paths see the same
mac_type decisions they would on hardware.
"""

import struct
import zlib
from collections import deque

from ..kernel.pci import PciBar, PciFunction

INTEL_VENDOR_ID = 0x8086

# A representative slice of the real e1000 id table (the driver supports
# ~50 chipsets; the model accepts all of these and reports a matching
# mac_type through EEPROM/revision data).
E1000_DEVICE_IDS = (
    0x1000, 0x1001, 0x1004, 0x1008, 0x1009, 0x100C, 0x100D, 0x100E,
    0x100F, 0x1010, 0x1011, 0x1012, 0x1013, 0x1014, 0x1015, 0x1016,
    0x1017, 0x1018, 0x1019, 0x101A, 0x101D, 0x101E, 0x1026, 0x1027,
    0x1028, 0x1075, 0x1076, 0x1077, 0x1078, 0x1079, 0x107A, 0x107B,
    0x107C, 0x108A, 0x1099, 0x10B5, 0x1107, 0x1112, 0x1111, 0x1113,
    0x1115, 0x10A4, 0x10D9, 0x10DA, 0x10A5, 0x100A, 0x1060, 0x109A,
    0x10B9, 0x1096,
)

# Register offsets (from the 8254x software developer's manual).
REG_CTRL = 0x00000
REG_STATUS = 0x00008
REG_EECD = 0x00010
REG_EERD = 0x00014
REG_CTRL_EXT = 0x00018
REG_MDIC = 0x00020
REG_FCAL = 0x00028
REG_FCAH = 0x0002C
REG_FCT = 0x00030
REG_VET = 0x00038
REG_ICR = 0x000C0
REG_ITR = 0x000C4
REG_ICS = 0x000C8
REG_IMS = 0x000D0
REG_IMC = 0x000D8
REG_RCTL = 0x00100
REG_FCTTV = 0x00170
REG_TCTL = 0x00400
REG_TIPG = 0x00410
REG_LEDCTL = 0x00E00
REG_PBA = 0x01000
REG_RDBAL = 0x02800
REG_RDBAH = 0x02804
REG_RDLEN = 0x02808
REG_RDH = 0x02810
REG_RDT = 0x02818
REG_RDTR = 0x02820
REG_TDBAL = 0x03800
REG_TDBAH = 0x03804
REG_TDLEN = 0x03808
REG_TDH = 0x03810
REG_TDT = 0x03818
REG_TIDV = 0x03820
REG_RAL0 = 0x05400
REG_RAH0 = 0x05404
REG_MTA_BASE = 0x05200  # 128 entries
REG_CRCERRS = 0x04000   # statistics block base (64 counters)
REG_TDT_FETCHED = 0xFFFF0  # model-internal: descriptors fetched so far

# CTRL bits.
CTRL_FD = 1 << 0
CTRL_ASDE = 1 << 5
CTRL_SLU = 1 << 6
CTRL_RST = 1 << 26
CTRL_PHY_RST = 1 << 31

# STATUS bits.
STATUS_FD = 1 << 0
STATUS_LU = 1 << 1

# EERD bits.
EERD_START = 1 << 0
EERD_DONE = 1 << 4

# MDIC bits.
MDIC_OP_WRITE = 1 << 26
MDIC_OP_READ = 2 << 26
MDIC_READY = 1 << 28
MDIC_ERROR = 1 << 30

# Interrupt causes.
ICR_TXDW = 1 << 0
ICR_TXQE = 1 << 1
ICR_LSC = 1 << 2
ICR_RXSEQ = 1 << 3
ICR_RXDMT0 = 1 << 4
ICR_RXO = 1 << 6
ICR_RXT0 = 1 << 7

# RCTL/TCTL enable bits.
RCTL_EN = 1 << 1
TCTL_EN = 1 << 1

# TX descriptor cmd/status bits.
TXD_CMD_EOP = 0x01
TXD_CMD_RS = 0x08
TXD_STAT_DD = 0x01

# RX descriptor status bits.
RXD_STAT_DD = 0x01
RXD_STAT_EOP = 0x02

DESC_SIZE = 16

# Multi-queue register layout: queue ``q``'s interrupt block (ICR, ITR,
# ICS, IMS, IMC) and its RX/TX descriptor ring blocks live at the
# queue-0 offsets plus ``q * QUEUE_STRIDE`` -- an MSI-X-style per-vector
# layout.  Queue 0 is byte-identical to the legacy single-queue map, so
# an unmodified driver binds to a multi-queue device and simply never
# touches the higher queues.  The stride keeps every strided offset
# clear of the fixed registers for all q < MAX_QUEUES (RCTL at 0x100,
# TCTL at 0x400, LEDCTL at 0xE00 and the 0x4000 statistics block are
# never aliased; see tests/devices/test_e1000_multiqueue.py).
QUEUE_STRIDE = 0x100
MAX_QUEUES = 8

# Precompiled descriptor codecs: the receive path touches these once per
# packet, so the struct-format cache lookup is worth skipping.
_RXD_ADDR = struct.Struct("<Q")
_RXD_WRITEBACK = struct.Struct("<HHBBH")

# PHY identifiers the driver knows.
M88_PHY_ID1 = 0x0141
M88_PHY_ID2 = 0x0C50
IGP01_PHY_ID1 = 0x02A8
IGP01_PHY_ID2 = 0x0380

# PHY registers.
PHY_CTRL = 0x00
PHY_STATUS = 0x01
PHY_ID1 = 0x02
PHY_ID2 = 0x03
PHY_AUTONEG_ADV = 0x04
PHY_LP_ABILITY = 0x05
PHY_1000T_CTRL = 0x09
PHY_1000T_STATUS = 0x0A
M88_PHY_SPEC_CTRL = 0x10
M88_PHY_SPEC_STATUS = 0x11

PHY_STATUS_LINK = 1 << 2
PHY_STATUS_AUTONEG_DONE = 1 << 5


def _eeprom_checksum_fixup(words):
    """Set word 0x3F so the 64-word sum is 0xBABA, as the driver checks."""
    total = sum(words[:0x3F]) & 0xFFFF
    words[0x3F] = (0xBABA - total) & 0xFFFF
    return words


class E1000Device:
    """The NIC.  Attach to a kernel, wire to an :class:`EthernetLink`."""

    BAR_SIZE = 0x20000

    def __init__(self, kernel, link, mac=b"\x00\x1B\x21\x3A\x4B\x5C",
                 device_id=0x100E, irq=10, mmio_base=0xF0000000,
                 phy="m88", itr_window_ns=None, num_queues=1,
                 rx_pending_cap=256):
        if not 1 <= num_queues <= MAX_QUEUES:
            raise ValueError("num_queues must be 1..%d" % MAX_QUEUES)
        self._kernel = kernel
        self.link = link
        link.nic_rx = self._link_rx
        self.mac = bytes(mac)
        self.device_id = device_id
        self.irq = irq
        self.phy_kind = phy
        self.num_queues = num_queues
        # How many frames a queue buffers while its ring is full before
        # the device starts counting drops (the internal packet FIFO).
        self.rx_pending_cap = rx_pending_cap

        # Per-queue absolute register offsets; queue 0 is the legacy map.
        qr = range(num_queues)
        self._off_icr = [REG_ICR + q * QUEUE_STRIDE for q in qr]
        self._off_itr = [REG_ITR + q * QUEUE_STRIDE for q in qr]
        self._off_ims = [REG_IMS + q * QUEUE_STRIDE for q in qr]
        self._off_rdbal = [REG_RDBAL + q * QUEUE_STRIDE for q in qr]
        self._off_rdbah = [REG_RDBAH + q * QUEUE_STRIDE for q in qr]
        self._off_rdlen = [REG_RDLEN + q * QUEUE_STRIDE for q in qr]
        self._off_rdh = [REG_RDH + q * QUEUE_STRIDE for q in qr]
        self._off_rdt = [REG_RDT + q * QUEUE_STRIDE for q in qr]
        self._off_tdbal = [REG_TDBAL + q * QUEUE_STRIDE for q in qr]
        self._off_tdbah = [REG_TDBAH + q * QUEUE_STRIDE for q in qr]
        self._off_tdlen = [REG_TDLEN + q * QUEUE_STRIDE for q in qr]
        self._off_tdh = [REG_TDH + q * QUEUE_STRIDE for q in qr]
        self._off_tdt = [REG_TDT + q * QUEUE_STRIDE for q in qr]
        # Dispatch tables for queues >= 1 (queue 0 keeps the original
        # fast paths): absolute offset -> queue for read-to-clear ICR,
        # and absolute offset -> (kind, queue) for side-effecting writes.
        self._icr_alias = {}
        self._strided = {}
        for q in range(1, num_queues):
            s = q * QUEUE_STRIDE
            self._icr_alias[REG_ICR + s] = q
            self._strided[REG_ITR + s] = ("itr", q)
            self._strided[REG_ICS + s] = ("ics", q)
            self._strided[REG_IMS + s] = ("ims", q)
            self._strided[REG_IMC + s] = ("imc", q)
            self._strided[REG_RDT + s] = ("rdt", q)
            self._strided[REG_TDT + s] = ("tdt", q)
            for off in (REG_RDBAL + s, REG_RDBAH + s, REG_RDLEN + s):
                self._strided[off] = ("rxring", q)

        # Interrupt-throttle window; 0 selects true per-packet interrupts
        # (the NAPI-ablation baseline).  Per queue: each vector throttles
        # independently, like per-vector EITR on msi-x parts.
        self.itr_window_ns = (
            self.ITR_WINDOW_NS if itr_window_ns is None else itr_window_ns)

        self.regs = {}
        self.eeprom = self._build_eeprom()
        self.phy_regs = self._build_phy()
        self._reset_regs()

        self.pci = PciFunction(
            vendor_id=INTEL_VENDOR_ID,
            device_id=device_id,
            irq=irq,
            bars=[PciBar(mmio_base, self.BAR_SIZE, is_mmio=True, handler=self)],
            subsystem_vendor=INTEL_VENDOR_ID,
            subsystem_device=device_id,
            revision=2,
            name="e1000",
        )

        self.resets = 0
        self.frames_transmitted = 0
        self.frames_received = 0
        self.rx_no_buffer = 0
        self.rx_queue_frames = [0] * num_queues
        self.tx_queue_frames = [0] * num_queues
        self._pending_rx = [[] for _ in qr]
        if num_queues == 1:
            # Single queue: the wire delivers through the fused
            # closure (no steering, queue-0 constants pre-bound).
            self.link.nic_rx = self._build_rx_fast()

    @property
    def itr_window_ns(self):
        """Queue-0 throttle window (scalar API for single-queue users)."""
        return self._itr_window_ns[0]

    @itr_window_ns.setter
    def itr_window_ns(self, value):
        self._itr_window_ns = [value] * self.num_queues

    # -- EEPROM / PHY contents ---------------------------------------------------

    def _build_eeprom(self):
        words = [0] * 64
        words[0] = self.mac[0] | (self.mac[1] << 8)
        words[1] = self.mac[2] | (self.mac[3] << 8)
        words[2] = self.mac[4] | (self.mac[5] << 8)
        words[0x0A] = 0x4000  # init control word
        words[0x0B] = 0x8086
        words[0x0F] = self.device_id
        return _eeprom_checksum_fixup(words)

    def _build_phy(self):
        regs = [0] * 32
        regs[PHY_CTRL] = 0x1140  # autoneg enable, full duplex
        regs[PHY_STATUS] = 0x796D | PHY_STATUS_LINK | PHY_STATUS_AUTONEG_DONE
        if self.phy_kind == "igp":
            regs[PHY_ID1] = IGP01_PHY_ID1
            regs[PHY_ID2] = IGP01_PHY_ID2
        else:
            regs[PHY_ID1] = M88_PHY_ID1
            regs[PHY_ID2] = M88_PHY_ID2
        regs[PHY_AUTONEG_ADV] = 0x01E1
        regs[PHY_LP_ABILITY] = 0x45E1
        regs[PHY_1000T_STATUS] = 0x3C00
        regs[M88_PHY_SPEC_STATUS] = 0xAC08  # 1000 Mb/s, full duplex, link
        return regs

    def _reset_regs(self):
        nq = self.num_queues
        # Reset the register file in place: compiled-loop accessors
        # (kernel/fastpath.py reg_reader/reg_writer hooks) close over
        # this dict, so its identity must survive a chip reset.
        regs = self.regs
        regs.clear()
        regs[REG_CTRL] = CTRL_FD
        regs[REG_STATUS] = STATUS_FD  # link comes up after SLU/autoneg
        regs[REG_RCTL] = 0
        regs[REG_TCTL] = 0
        # Seed every queue's interrupt and ring-index registers so the
        # hot paths can index them without .get().
        for q in range(nq):
            s = q * QUEUE_STRIDE
            regs[REG_ICR + s] = 0
            regs[REG_IMS + s] = 0
            regs[REG_TDH + s] = 0
            regs[REG_TDT + s] = 0
            regs[REG_RDH + s] = 0
            regs[REG_RDT + s] = 0
        self._link_up = False
        # Cancel any armed throttle events: a stale expiry would clear
        # the throttle state and defeat interrupt moderation.
        for ev in getattr(self, "_itr_event", None) or ():
            if ev is not None:
                ev.cancel()
        self._itr_event = [None] * nq
        # Drop any in-flight TX completions and their pump events.
        for ev in getattr(self, "_tx_pump_event", None) or ():
            if ev is not None:
                ev.cancel()
        self._tx_pump_event = [None] * nq
        self._tx_done = [deque() for _ in range(nq)]
        # Per-queue (region, count) memo for the RX ring; invalidated
        # when the driver reprograms that queue's RDBAL/RDBAH/RDLEN.
        self._rx_ring_cache = [None] * nq
        # Per-queue (base, end, region) memo for the RX buffer arena
        # every descriptor's buffer pointer resolves into.
        self._rx_buf_cache = [None] * nq

    # -- MMIO handler interface ----------------------------------------------------

    def read(self, offset, size):
        assert size == 4, "e1000 registers are 32-bit"
        if offset == REG_ICR:
            value = self.regs.get(REG_ICR, 0)
            self.regs[REG_ICR] = 0  # read-to-clear
            return value
        if offset in self._icr_alias:  # queue >= 1 ICR: read-to-clear
            value = self.regs.get(offset, 0)
            self.regs[offset] = 0
            return value
        if offset == REG_EERD:
            return self.regs.get(REG_EERD, 0)
        if REG_CRCERRS <= offset < REG_CRCERRS + 64 * 4:
            return self.regs.get(offset, 0)
        return self.regs.get(offset, 0)

    def write(self, offset, value, size):
        assert size == 4, "e1000 registers are 32-bit"
        if offset == REG_CTRL:
            self._write_ctrl(value)
        elif offset == REG_EERD:
            self._write_eerd(value)
        elif offset == REG_MDIC:
            self._write_mdic(value)
        elif offset == REG_ICS:
            self._assert_irq(value)
        elif offset == REG_IMS:
            self.regs[REG_IMS] = self.regs.get(REG_IMS, 0) | value
            self._maybe_fire()
        elif offset == REG_IMC:
            self.regs[REG_IMS] = self.regs.get(REG_IMS, 0) & ~value
        elif offset == REG_ITR:
            # Interrupt throttle register: interval in 256 ns units
            # (82540 spec); 0 disables throttling.  The driver's dynamic
            # ITR reprograms this based on traffic class.
            self.regs[REG_ITR] = value
            self._itr_window_ns[0] = value * 256
        elif offset == REG_TDT:
            self.regs[REG_TDT] = value
            self._process_tx_ring()
        elif offset == REG_RDT:
            self.regs[REG_RDT] = value
            self._drain_pending_rx()
        elif offset == REG_RCTL:
            self.regs[REG_RCTL] = value
        elif offset == REG_TCTL:
            self.regs[REG_TCTL] = value
        else:
            strided = self._strided.get(offset)
            if strided is not None:
                self._write_strided(strided[0], strided[1], offset, value)
                return
            if offset in (REG_RDBAL, REG_RDBAH, REG_RDLEN):
                self._rx_ring_cache[0] = None
            self.regs[offset] = value

    def _write_strided(self, kind, q, offset, value):
        """Side-effecting register writes for queues >= 1."""
        regs = self.regs
        if kind == "tdt":
            regs[offset] = value
            self._process_tx_ring(q)
        elif kind == "rdt":
            regs[offset] = value
            self._drain_pending_rx(q)
        elif kind == "ims":
            off_ims = self._off_ims[q]
            regs[off_ims] = regs.get(off_ims, 0) | value
            self._maybe_fire(q)
        elif kind == "imc":
            off_ims = self._off_ims[q]
            regs[off_ims] = regs.get(off_ims, 0) & ~value
        elif kind == "ics":
            self._assert_irq(value, q)
        elif kind == "itr":
            regs[offset] = value
            self._itr_window_ns[q] = value * 256
        else:  # "rxring": RDBAL/RDBAH/RDLEN reprogram
            self._rx_ring_cache[q] = None
            regs[offset] = value

    # -- compiled-loop specialization hooks ----------------------------------------

    def reg_reader(self, offset, size):
        """Specialized read closure for one register (loop compiler hook).

        Must match :meth:`read` bit-for-bit, including ICR's
        read-to-clear, and survive chip resets (``regs`` is reset in
        place for that reason).
        """
        if size != 4:
            return None
        regs = self.regs
        if offset == REG_ICR or offset in self._icr_alias:
            def read_icr():
                value = regs.get(offset, 0)
                regs[offset] = 0
                return value
            return read_icr
        return lambda: regs.get(offset, 0)

    def reg_writer(self, offset, size):
        """Specialized write closure for one register (loop compiler hook).

        Only the registers the compiled datapath loops touch per drain
        are specialized (RDT hand-back, IMS unmask); everything else
        declines and goes through the generic :meth:`write` dispatch.
        """
        if size != 4:
            return None
        regs = self.regs
        if offset == REG_RDT:
            drain = self._drain_pending_rx
            pending = self._pending_rx[0]  # created once, mutated in place
            def write_rdt(value):
                regs[REG_RDT] = value
                if pending:
                    drain()
            return write_rdt
        if offset == REG_IMS:
            fire = self._maybe_fire
            def write_ims(value):
                regs[REG_IMS] = regs.get(REG_IMS, 0) | value
                fire()
            return write_ims
        strided = self._strided.get(offset)
        if strided is not None:
            kind, q = strided
            if kind == "rdt":
                drain = self._drain_pending_rx
                pending = self._pending_rx[q]
                def write_rdt_q(value):
                    regs[offset] = value
                    if pending:
                        drain(q)
                return write_rdt_q
            if kind == "ims":
                off_ims = self._off_ims[q]
                fire = self._maybe_fire
                def write_ims_q(value):
                    regs[off_ims] = regs.get(off_ims, 0) | value
                    fire(q)
                return write_ims_q
        return None

    # -- CTRL / reset / link -----------------------------------------------------------

    def _write_ctrl(self, value):
        if value & CTRL_RST:
            self.resets += 1
            self._reset_regs()
            # Link renegotiation completes a little later.
            self._kernel.events.schedule_after(
                2_000_000, self._link_negotiated, name="e1000-link-up"
            )
            return
        self.regs[REG_CTRL] = value
        if value & CTRL_SLU and not self._link_up:
            self._kernel.events.schedule_after(
                2_000_000, self._link_negotiated, name="e1000-link-up"
            )

    def _link_negotiated(self):
        if not self._link_up:
            self._link_up = True
            self.regs[REG_STATUS] = self.regs.get(REG_STATUS, 0) | STATUS_LU
            self._assert_irq(ICR_LSC)

    # -- EEPROM ------------------------------------------------------------------------

    def _write_eerd(self, value):
        if not value & EERD_START:
            self.regs[REG_EERD] = value
            return
        addr = (value >> 8) & 0xFF
        data = self.eeprom[addr] if addr < len(self.eeprom) else 0
        # An EEPROM word read is a slow serial transaction.
        self._kernel.consume(
            self._kernel.costs.eeprom_word_ns, busy=False, category="eeprom"
        )
        self.regs[REG_EERD] = (data << 16) | EERD_DONE | (addr << 8)

    # -- PHY (MDIC) -----------------------------------------------------------------------

    def _write_mdic(self, value):
        reg = (value >> 16) & 0x1F
        self._kernel.consume(
            self._kernel.costs.phy_reg_ns, busy=False, category="phy"
        )
        if value & MDIC_OP_READ:
            data = self.phy_regs[reg]
            self.regs[REG_MDIC] = (value & ~0xFFFF) | MDIC_READY | data
        elif value & MDIC_OP_WRITE:
            data = value & 0xFFFF
            if reg == PHY_CTRL and data & 0x8000:  # PHY reset self-clears
                data &= ~0x8000
            self.phy_regs[reg] = data
            self.regs[REG_MDIC] = value | MDIC_READY
        else:
            self.regs[REG_MDIC] = value | MDIC_ERROR | MDIC_READY

    # -- interrupts ----------------------------------------------------------------------------

    # Interrupt-throttle window: the driver programs ITR for 8000
    # interrupts/second; we coalesce causes within this window.
    ITR_WINDOW_NS = 125_000

    def _assert_irq(self, causes, q=0):
        regs = self.regs
        off_icr = self._off_icr[q]
        icr = regs.get(off_icr, 0) | causes
        regs[off_icr] = icr
        # Fast paths: masked by IMS (the NAPI poll window) the cause only
        # latches; with the ITR throttle window open it accumulates.
        if not icr & regs.get(self._off_ims[q], 0):
            return
        ev = self._itr_event[q]
        if ev is not None and not ev.cancelled:
            return
        self._maybe_fire(q)

    def _maybe_fire(self, q=0):
        regs = self.regs
        if not regs.get(self._off_icr[q], 0) & regs.get(self._off_ims[q], 0):
            return
        window = self._itr_window_ns[q]
        if window <= 0:
            # Throttling disabled: every unmasked cause fires at once.
            self._kernel.irq.raise_irq(self.irq + q)
            return
        ev = self._itr_event[q]
        if ev is not None and not ev.cancelled:
            return  # throttled: causes accumulate until the window ends
        # Arm the throttle window BEFORE delivering: the handler's own
        # work can assert new causes synchronously, and those must see
        # the window open or they each arm an orphan window.
        self._itr_event[q] = self._kernel.events.schedule_timer_after(
            window, lambda q=q: self._itr_expire(q), name="e1000-itr"
        )
        self._kernel.irq.raise_irq(self.irq + q)

    def _itr_expire(self, q=0):
        self._itr_event[q] = None
        regs = self.regs
        if regs.get(self._off_icr[q], 0) & regs.get(self._off_ims[q], 0):
            self._maybe_fire(q)

    # -- transmit path ------------------------------------------------------------------------

    def _ring(self, bal, bah, blen):
        base = self.regs.get(bal, 0) | (self.regs.get(bah, 0) << 32)
        length = self.regs.get(blen, 0)
        region = self._kernel.memory.dma_region(base)
        count = length // DESC_SIZE if length else 0
        return region, count

    def _process_tx_ring(self, q=0):
        """Fetch new descriptors and put their frames on the wire.

        Completion (DD write-back, TDH advance, TXDW interrupt) is
        paced at wire time: descriptors finish when the link has
        actually serialized the frame, so transmit throughput is
        link-limited as on hardware.
        """
        regs = self.regs
        if not regs.get(REG_TCTL, 0) & TCTL_EN:
            return
        region, count = self._ring(
            self._off_tdbal[q], self._off_tdbah[q], self._off_tdlen[q])
        if region is None or count == 0:
            return
        fetched_key = REG_TDT_FETCHED + q
        head = regs.get(fetched_key, regs.get(self._off_tdh[q], 0))
        tail = regs.get(self._off_tdt[q], 0) % count
        tx_done = self._tx_done[q]
        while head != tail:
            off = head * DESC_SIZE
            buf_addr, length, _cso, cmd, _status, _css, _special = struct.unpack_from(
                "<QHBBBBH", region.data, off
            )
            frame = self._dma_read(buf_addr, length)
            done_ns = self._kernel.clock.now_ns
            if frame is not None:
                done_ns = self.link.transmit(frame)
                self.frames_transmitted += 1
                self.tx_queue_frames[q] += 1
            tx_done.append((done_ns, region, count, head, off, cmd))
            head = (head + 1) % count
        regs[fetched_key] = head
        self._arm_tx_pump(q)

    def _arm_tx_pump(self, q=0):
        """Keep one completion event armed at the head descriptor's time.

        Write-backs are batched: a single pump event completes every
        descriptor whose wire time has passed, instead of one event per
        descriptor.  Per-descriptor timing is unchanged -- the pump fires
        exactly at the head's done time and re-arms for the next.
        """
        tx_done = self._tx_done[q]
        if not tx_done:
            return
        due_ns = tx_done[0][0]
        ev = self._tx_pump_event[q]
        if ev is not None and not ev.cancelled:
            if ev.time_ns <= due_ns:
                return
            ev.cancel()
        self._tx_pump_event[q] = self._kernel.events.schedule_timer_at(
            due_ns, lambda q=q: self._tx_pump(q), name="e1000-txdone"
        )

    def _tx_pump(self, q=0):
        self._tx_pump_event[q] = None
        now_ns = self._kernel.clock.now_ns
        want_irq = False
        tx_done = self._tx_done[q]
        off_tdh = self._off_tdh[q]
        while tx_done and tx_done[0][0] <= now_ns:
            _due, region, count, index, off, cmd = tx_done.popleft()
            if cmd & TXD_CMD_RS:
                struct.pack_into("<B", region.data, off + 12, TXD_STAT_DD)
                want_irq = True
            self.regs[off_tdh] = (index + 1) % count
        if want_irq:
            self._assert_irq(ICR_TXDW, q)
        self._arm_tx_pump(q)

    # -- receive path ----------------------------------------------------------------------------

    def steer(self, frame):
        """RSS-style flow steering: which RX queue a frame lands on.

        Hashes the flow-identifying bytes (source-MAC tail plus
        ethertype, bytes 12..20 of the frame) so every frame of one
        flow always lands on the same queue -- per-queue payload order
        is deterministic regardless of queue count or CPU count.
        """
        if self.num_queues == 1:
            return 0
        return zlib.crc32(bytes(frame[12:20])) % self.num_queues

    def _link_rx(self, frame):
        if not self.regs.get(REG_RCTL, 0) & RCTL_EN:
            return
        q = 0 if self.num_queues == 1 else self.steer(frame)
        if not self._deliver_rx(frame, q):
            pending = self._pending_rx[q]
            pending.append(frame)
            if len(pending) > self.rx_pending_cap:
                pending.pop(0)
                self.rx_no_buffer += 1

    def _build_rx_fast(self):
        """Fused single-queue wire->ring delivery.

        Collapses the ``_link_rx`` -> ``_deliver_rx`` chain into one
        closure with every queue-0 constant pre-bound.  Only the hot
        case (ring memo valid, buffer arena memoized) is inlined;
        every cold case delegates to the generic methods, so the rare
        logic lives in exactly one place.  Behavior-identical.
        """
        regs = self.regs
        pending = self._pending_rx[0]  # created once, mutated in place
        off_rdh = self._off_rdh[0]
        off_rdt = self._off_rdt[0]
        off_icr = self._off_icr[0]
        off_ims = self._off_ims[0]
        unpack_addr = _RXD_ADDR.unpack_from
        pack_wb = _RXD_WRITEBACK.pack_into
        raise_irq = self._kernel.irq.raise_irq
        irq0 = self.irq
        DD_EOP = RXD_STAT_DD | RXD_STAT_EOP

        def nic_rx(frame):
            if not regs[REG_RCTL] & RCTL_EN:
                return
            cached = self._rx_ring_cache[0]
            buf = self._rx_buf_cache[0]
            if (cached is None or cached[0].freed
                    or buf is None or buf[2].freed):
                self._link_rx(frame)  # (re)build memos, queue on failure
                return
            region = cached[0]
            count = cached[1]
            head = regs[off_rdh]
            if head == regs[off_rdt] % count:  # ring full
                self.rx_no_buffer += 1
                pending.append(frame)
                if len(pending) > self.rx_pending_cap:
                    pending.pop(0)
                    self.rx_no_buffer += 1
                return
            off = head * DESC_SIZE
            buf_addr, = unpack_addr(region.data, off)
            n = len(frame)
            start = buf_addr - buf[0]
            if start < 0 or buf_addr + n > buf[1]:
                self._link_rx(frame)  # outside the memoized arena
                return
            buf[2].data[start:start + n] = frame
            pack_wb(region.data, off + 8, n, 0, DD_EOP, 0, 0)
            head += 1
            regs[off_rdh] = head if head < count else 0
            self.frames_received += 1
            self.rx_queue_frames[0] += 1
            icr = regs[off_icr] | ICR_RXT0
            regs[off_icr] = icr
            if icr & regs[off_ims]:
                if self._itr_window_ns[0] <= 0:
                    raise_irq(irq0)
                else:
                    ev = self._itr_event[0]
                    if ev is None or ev.cancelled:
                        self._maybe_fire(0)

        return nic_rx

    def _drain_pending_rx(self, q=0):
        pending = self._pending_rx[q]
        while pending:
            if not self._deliver_rx(pending[0], q):
                return
            pending.pop(0)

    def _deliver_rx(self, frame, q=0):
        cached = self._rx_ring_cache[q]
        if cached is None or cached[0].freed:
            region, count = self._ring(
                self._off_rdbal[q], self._off_rdbah[q], self._off_rdlen[q])
            if region is None or count == 0:
                return False
            # The memo bundles every per-queue constant the per-frame
            # path needs, so one list index replaces six.
            self._rx_ring_cache[q] = cached = (
                region, count, self._off_rdh[q], self._off_rdt[q],
                self._off_icr[q], self._off_ims[q],
            )
        region, count, off_rdh, off_rdt, off_icr, off_ims = cached
        regs = self.regs
        head = regs[off_rdh]
        tail = regs[off_rdt] % count
        if head == tail:  # ring full from the device's perspective
            self.rx_no_buffer += 1
            return False
        off = head * DESC_SIZE
        buf_addr, = _RXD_ADDR.unpack_from(region.data, off)
        n = len(frame)
        buf = self._rx_buf_cache[q]
        if (buf is not None and buf[0] <= buf_addr
                and buf_addr + n <= buf[1] and not buf[2].freed):
            data = buf[2].data
            start = buf_addr - buf[0]
            data[start:start + n] = frame
        else:
            buf_region, buf_off = self._kernel.memory.dma_find(buf_addr)
            if buf_region is None or buf_off + n > len(buf_region.data):
                return False
            buf_region.data[buf_off:buf_off + n] = frame
            base = buf_region.dma_addr
            self._rx_buf_cache[q] = (base, base + len(buf_region.data),
                                     buf_region)
        _RXD_WRITEBACK.pack_into(
            region.data, off + 8,
            n, 0, RXD_STAT_DD | RXD_STAT_EOP, 0, 0,
        )
        head += 1
        regs[off_rdh] = head if head < count else 0
        self.frames_received += 1
        self.rx_queue_frames[q] += 1
        # Inlined _assert_irq(ICR_RXT0, q): latch, then fire only when
        # the cause is unmasked and no throttle window is open.  With
        # throttling off (irq mode) the line is raised directly -- the
        # cause was just confirmed unmasked, so _maybe_fire's re-check
        # is redundant.
        icr = regs[off_icr] | ICR_RXT0
        regs[off_icr] = icr
        if icr & regs[off_ims]:
            if self._itr_window_ns[q] <= 0:
                self._kernel.irq.raise_irq(self.irq + q)
            else:
                ev = self._itr_event[q]
                if ev is None or ev.cancelled:
                    self._maybe_fire(q)
        return True

    # -- DMA helpers ---------------------------------------------------------------------------------

    def _dma_read(self, addr, length):
        # Zero-copy: the link copies the view at transmit() time, so a
        # reused TX buffer cannot corrupt an in-flight frame.
        region, offset = self._kernel.memory.dma_find(addr)
        if region is None:
            return None
        return memoryview(region.data)[offset:offset + length]

    def _dma_write(self, addr, data):
        region, offset = self._kernel.memory.dma_find(addr)
        n = len(data)
        if region is None or offset + n > len(region.data):
            return False
        region.data[offset:offset + n] = data
        return True
