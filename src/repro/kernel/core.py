"""The simulated kernel: one object aggregating every subsystem.

The kernel is a discrete-event simulator.  All costs advance one virtual
clock (:mod:`repro.kernel.vtime`); timers, deferred work, and device
completions are events (:mod:`repro.kernel.events`) that fire as the clock
advances.  Driver code executes synchronously inside event callbacks or
inside code the test/workload drives directly; the execution context
(hardirq / softirq / process) is tracked and its rules enforced.

Typical use::

    kernel = Kernel()
    nic = E1000Device(kernel, ...)      # registers PCI function, IRQ, MMIO
    kernel.pci.add_device(nic.pci)
    kernel.modules.insmod(E1000Module())
    kernel.run_for_ms(100)
"""

from collections import deque

from .context import ExecContext, HARDIRQ, PROCESS, SOFTIRQ
from .costs import CostModel
from .errors import SimulationError
from .events import EventQueue
from .ioports import IoSpace
from .irq import IrqController
from .memory import MemoryManager
from .module import ModuleLoader
from .timers import Workqueue
from .vtime import NSEC_PER_MSEC, NSEC_PER_SEC, NSEC_PER_USEC, CpuAccounting, VirtualClock


#: printk severity order (higher = more severe); unknown levels rank as
#: "info" so a typo'd level is visible rather than filtered away.
LOG_LEVELS = {"debug": 0, "info": 1, "warn": 2, "err": 3}

DEFAULT_LOG_CAPACITY = 1024


class Kernel:
    def __init__(self, costs=None, log_capacity=DEFAULT_LOG_CAPACITY):
        self.costs = costs or CostModel()
        self.clock = VirtualClock()
        self.cpu = CpuAccounting(self.clock)
        self.context = ExecContext()
        self.events = EventQueue(self.clock)
        self.irq = IrqController(self)
        self.memory = MemoryManager(self)
        self.io = IoSpace(self)
        self.modules = ModuleLoader(self)
        self.workqueue = Workqueue(self, name="events")
        # printk ring buffer: (virtual ns, level, message) triples.  A
        # long-running rig cannot grow memory through logging; overflow
        # evicts the oldest line and counts it.
        self._log = deque(maxlen=log_capacity)
        self.log_dropped = 0
        # ktrace hook: a repro.trace.Tracer when installed, else None.
        # Every tracepoint in the kernel guards on this one attribute,
        # so the disabled path costs one load + one identity test.
        self.tracer = None
        # Runtime lock validator (repro.kernel.locks.LockDep); opt-in
        # via enable_lockdep() -- conformance runs turn it on, ordinary
        # rigs pay one attribute load per lock operation.
        self.lockdep = None

        # Bus / class subsystems are attached lazily to keep the core free
        # of upward dependencies; see repro.kernel.__init__.
        self.pci = None
        self.net = None
        self.sound = None
        self.usb = None
        self.input = None

        self._advancing = 0
        # Process-context events that came due while the CPU was atomic
        # (a nested clock advance inside an irq handler or under a
        # spinlock); parked here until the CPU is back in process
        # context, like work preempted by an interrupt.
        self._parked_process_events = deque()

    # -- lockdep ---------------------------------------------------------------

    def enable_lockdep(self):
        """Install (or return) the runtime lock validator."""
        if self.lockdep is None:
            from .locks import LockDep

            self.lockdep = LockDep(self)
            self.context.lockdep = self.lockdep
        return self.lockdep

    # -- logging (printk) ----------------------------------------------------

    def printk(self, message, level="info"):
        log = self._log
        if log.maxlen is not None and len(log) == log.maxlen:
            self.log_dropped += 1
        log.append((self.clock.now_ns, level, message))
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("printk", {"level": level, "msg": message})

    def dmesg(self, level=None):
        """Ring-buffer contents as (ns, level, message), oldest first.

        ``level`` filters to entries at that severity or higher
        (``"debug" < "info" < "warn" < "err"``).
        """
        if level is None:
            return list(self._log)
        if level not in LOG_LEVELS:
            raise ValueError("unknown log level %r (one of %s)"
                             % (level, ", ".join(sorted(LOG_LEVELS))))
        floor = LOG_LEVELS[level]
        return [
            entry for entry in self._log
            if LOG_LEVELS.get(entry[1], LOG_LEVELS["info"]) >= floor
        ]

    @property
    def log_lines(self):
        """Compat view of the ring buffer: (ns, message) pairs."""
        return [(t, message) for t, _level, message in self._log]

    # -- time ------------------------------------------------------------------

    def now_ns(self):
        return self.clock.now_ns

    def run_until(self, target_ns):
        """Advance virtual time to ``target_ns``, firing due events in order.

        Re-entrant: an event handler that sleeps (``msleep``) nests another
        ``run_until`` with a nearer target; monotonicity is preserved
        because the clock only moves forward.
        """
        self._advancing += 1
        clock = self.clock
        pop_due = self.events.pop_due
        dispatch = self._dispatch_event
        parked = self._parked_process_events
        in_atomic = self.context.in_atomic
        try:
            while True:
                # Work parked by an atomic-context advance runs as soon
                # as any advance finds the CPU schedulable again, before
                # later-timed events (it was due first).
                if parked and not in_atomic():
                    dispatch(parked.popleft())
                    continue
                ev = pop_due(target_ns)
                if ev is None:
                    break
                # Monotonicity holds by construction here: pop_due only
                # returns events at or after the current time.
                if ev.time_ns > clock._now_ns:
                    clock._now_ns = ev.time_ns
                dispatch(ev)
            if target_ns > clock._now_ns:
                clock._now_ns = target_ns
        finally:
            self._advancing -= 1

    def run_for_ns(self, delta_ns):
        self.run_until(self.clock.now_ns + delta_ns)

    def run_for_ms(self, ms):
        self.run_for_ns(int(ms * NSEC_PER_MSEC))

    def run_for_s(self, seconds):
        self.run_for_ns(int(seconds * NSEC_PER_SEC))

    def _dispatch_event(self, ev):
        if ev.context == HARDIRQ:
            self.context.enter_irq()
            try:
                ev.callback()
            finally:
                self.context.exit_irq()
        elif ev.context == SOFTIRQ:
            self.context.enter_softirq()
            try:
                ev.callback()
            finally:
                self.context.exit_softirq()
        else:
            if ev.needs_sched and self.context.in_atomic():
                # A work item came due inside a nested advance while
                # the CPU is in interrupt context or holds a spinlock.
                # Running it here would let sleeping work execute
                # atomically; park it until the CPU is schedulable.
                self._parked_process_events.append(ev)
                return
            ev.callback()

    # -- cost charging ------------------------------------------------------------

    def consume(self, ns, busy=True, category="kernel"):
        """Advance the clock by ``ns`` of work, firing events that come due.

        ``busy=True`` additionally charges CPU time (utilization).
        """
        if ns < 0:
            raise SimulationError("negative time consumption")
        if busy:
            self.cpu.charge(ns, category)
        self.run_until(self.clock.now_ns + ns)

    # -- delays (Linux API names) ----------------------------------------------

    def udelay(self, usecs):
        """Busy-wait; legal in atomic context (burns CPU)."""
        self.consume(int(usecs * NSEC_PER_USEC), busy=True, category="delay")

    def mdelay(self, msecs):
        self.udelay(msecs * 1000)

    def msleep(self, msecs):
        """Sleeping delay; forbidden in atomic context."""
        self.context.might_sleep("msleep")
        self.consume(int(msecs * NSEC_PER_MSEC), busy=False, category="sleep")

    def msleep_interruptible(self, msecs):
        self.msleep(msecs)
        return 0

    def schedule_timeout(self, msecs):
        self.msleep(msecs)

    # -- Linux accessor shims used pervasively by drivers -----------------------

    def request_irq(self, irq, handler, name, dev_id=None):
        return self.irq.request_irq(irq, handler, name, dev_id)

    def free_irq(self, irq, dev_id=None):
        self.irq.free_irq(irq, dev_id)
