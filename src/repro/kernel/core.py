"""The simulated kernel: one object aggregating every subsystem.

The kernel is a discrete-event simulator.  All costs advance one virtual
clock (:mod:`repro.kernel.vtime`); timers, deferred work, and device
completions are events (:mod:`repro.kernel.events`) that fire as the clock
advances.  Driver code executes synchronously inside event callbacks or
inside code the test/workload drives directly; the execution context
(hardirq / softirq / process) is tracked and its rules enforced.

Typical use::

    kernel = Kernel()
    nic = E1000Device(kernel, ...)      # registers PCI function, IRQ, MMIO
    kernel.pci.add_device(nic.pci)
    kernel.modules.insmod(E1000Module())
    kernel.run_for_ms(100)
"""

from collections import deque

from ..health.kstat import KstatRegistry
from .context import ExecContext, HARDIRQ, PROCESS, SOFTIRQ
from .costs import CostModel
from .errors import SimulationError
from .events import EventQueue
from .ioports import IoSpace
from .irq import IrqController
from .memory import MemoryManager
from .module import ModuleLoader
from .timers import Workqueue
from .vtime import NSEC_PER_MSEC, NSEC_PER_SEC, NSEC_PER_USEC, CpuAccounting, VirtualClock


#: printk severity order (higher = more severe); unknown levels rank as
#: "info" so a typo'd level is visible rather than filtered away.
LOG_LEVELS = {"debug": 0, "info": 1, "warn": 2, "err": 3}

DEFAULT_LOG_CAPACITY = 1024

#: Upper bound on simulated CPUs (matches the e1000 model's 8-queue cap).
MAX_CPUS = 8


class VCpu:
    """One virtual CPU: execution context, accounting, busy window.

    The simulator stays a single-threaded discrete-event loop; CPUs
    "run in parallel" in virtual time.  A CPU-targeted event executes
    with this CPU current, and the virtual time its callback charges is
    *deferred*: instead of advancing the global clock it widens this
    CPU's ``busy_until_ns`` window.  Later events targeted at the same
    CPU are pushed past the window; events on other CPUs (or untargeted
    ones) interleave freely inside it.  Two CPUs each doing 1 ms of
    work in the same window therefore finish after ~1 ms of virtual
    time, not 2 ms -- that is the whole point of SMP.
    """

    __slots__ = ("index", "context", "acct", "busy_until_ns",
                 "_defer_depth", "_pending_charge_ns", "rq_lock",
                 "softirq_lock")

    def __init__(self, kernel, index):
        self.index = index
        self.context = ExecContext()
        self.acct = CpuAccounting(kernel.clock)
        self.busy_until_ns = 0
        # >0 while a targeted event runs on this CPU: consume() defers.
        self._defer_depth = 0
        self._pending_charge_ns = 0
        # Per-CPU scheduler locks.  Named per CPU so lockdep sees one
        # class per lock ("cpu0/rq" != "cpu1/rq"): a cross-CPU AB/BA
        # acquisition closes a cycle in the global order graph and is
        # reported.  Created by Kernel.__init__ (needs the irq layer).
        self.rq_lock = None
        self.softirq_lock = None


class Kernel:
    def __init__(self, costs=None, log_capacity=DEFAULT_LOG_CAPACITY,
                 nr_cpus=1, nr_irqs=32):
        if not 1 <= nr_cpus <= MAX_CPUS:
            raise SimulationError("nr_cpus must be 1..%d" % MAX_CPUS)
        self.costs = costs or CostModel()
        self.clock = VirtualClock()
        # kstat: the always-on counter registry (repro.health).  Pull
        # only -- subsystems register lazy providers over counters they
        # already keep, so hot paths pay nothing for it.
        self.kstat = KstatRegistry()
        # Aggregate accounting across all CPUs (what single-CPU code
        # always charged); per-CPU accounting lives on each VCpu.
        self.cpu = CpuAccounting(self.clock)
        self.nr_cpus = nr_cpus
        self.cpus = [VCpu(self, i) for i in range(nr_cpus)]
        self.current_cpu = self.cpus[0]
        self.events = EventQueue(self.clock)
        self.irq = IrqController(self, nr_irqs=nr_irqs)
        self.memory = MemoryManager(self)
        self.io = IoSpace(self)
        self.modules = ModuleLoader(self)
        self.workqueue = Workqueue(self, name="events")
        # printk ring buffer: (virtual ns, level, message) triples.  A
        # long-running rig cannot grow memory through logging; overflow
        # evicts the oldest line and counts it.
        self._log = deque(maxlen=log_capacity)
        self.log_dropped = 0
        # ktrace hook: a repro.trace.Tracer when installed, else None.
        # Every tracepoint in the kernel guards on this one attribute,
        # so the disabled path costs one load + one identity test.
        self.tracer = None
        # Runtime lock validator (repro.kernel.locks.LockDep); opt-in
        # via enable_lockdep() -- conformance runs turn it on, ordinary
        # rigs pay one attribute load per lock operation.
        self.lockdep = None
        # Health plane (repro.health.HealthPlane) when installed, else
        # None: flight recorder, stall watchdogs, crash dumps.  Cold
        # paths (printk, faults, lockdep) guard on this one attribute.
        self.health = None
        # Sampling profiler (repro.health.SamplingProfiler) when
        # installed; instrumented dispatch sites guard on it exactly
        # like tracepoints guard on self.tracer.
        self.profiler = None
        # Watchdog bookkeeping: depth of nested event dispatches and
        # the aggregate busy count when the outermost one entered.  A
        # nested watchdog check reading busy - entry sees how long the
        # current handler has hogged the CPU (soft-lockup detection).
        self._dispatch_depth = 0
        self._dispatch_entry_busy_ns = 0
        # Unconditional counter of softirq-context dispatches (kstat).
        self.softirq_dispatches = 0
        # Total events dispatched (all contexts): the fleet harness
        # reports sustained events/s of the virtual-time core from it.
        self.events_dispatched = 0
        self.kstat.register("kernel", self._kstat_kernel)

        # Bus / class subsystems are attached lazily to keep the core free
        # of upward dependencies; see repro.kernel.__init__.
        self.pci = None
        self.net = None
        self.sound = None
        self.usb = None
        self.input = None

        self._advancing = 0
        # Process-context events that came due while the CPU was atomic
        # (a nested clock advance inside an irq handler or under a
        # spinlock); parked here until the CPU is back in process
        # context, like work preempted by an interrupt.
        self._parked_process_events = deque()

        # Per-CPU scheduler locks (distinct lockdep classes per CPU);
        # only taken around dispatch bookkeeping when nr_cpus > 1, so
        # single-CPU rigs keep the exact classic event path.
        if nr_cpus > 1:
            from .locks import SpinLock

            for vcpu in self.cpus:
                vcpu.rq_lock = SpinLock(self, "cpu%d/rq" % vcpu.index)
                vcpu.softirq_lock = SpinLock(
                    self, "cpu%d/softirq" % vcpu.index)

    @property
    def context(self):
        """Execution context of the CPU the kernel is running on."""
        return self.current_cpu.context

    # -- kstat ----------------------------------------------------------------

    def _kstat_kernel(self):
        """Core counters for the health plane's registry (pull-only)."""
        out = {
            "nr_cpus": self.nr_cpus,
            "now_ns": self.clock.now_ns,
            "log_dropped": self.log_dropped,
            "softirq_dispatches": self.softirq_dispatches,
            "events_dispatched": self.events_dispatched,
        }
        for vcpu in self.cpus:
            prefix = "cpu%d" % vcpu.index
            out["%s.busy_ns" % prefix] = vcpu.acct._busy_ns
            for category, ns in vcpu.acct._by_category.items():
                out["%s.%s_ns" % (prefix, category)] = ns
        return out

    # -- lockdep ---------------------------------------------------------------

    def enable_lockdep(self):
        """Install (or return) the runtime lock validator."""
        if self.lockdep is None:
            from .locks import LockDep

            self.lockdep = LockDep(self)
            for vcpu in self.cpus:
                vcpu.context.lockdep = self.lockdep
        return self.lockdep

    # -- logging (printk) ----------------------------------------------------

    def printk(self, message, level="info"):
        log = self._log
        if log.maxlen is not None and len(log) == log.maxlen:
            self.log_dropped += 1
        log.append((self.clock.now_ns, level, message))
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("printk", {"level": level, "msg": message})
        health = self.health
        if health is not None and tracer is None:
            # Mirror log lines into the flight ring.  With a tracer
            # installed the instant() above already mirrored there.
            health.flight.note("printk", {"level": level, "msg": message})

    def dmesg(self, level=None):
        """Ring-buffer contents as (ns, level, message), oldest first.

        ``level`` filters to entries at that severity or higher
        (``"debug" < "info" < "warn" < "err"``).
        """
        if level is None:
            return list(self._log)
        if level not in LOG_LEVELS:
            raise ValueError("unknown log level %r (one of %s)"
                             % (level, ", ".join(sorted(LOG_LEVELS))))
        floor = LOG_LEVELS[level]
        return [
            entry for entry in self._log
            if LOG_LEVELS.get(entry[1], LOG_LEVELS["info"]) >= floor
        ]

    @property
    def log_lines(self):
        """Compat view of the ring buffer: (ns, message) pairs."""
        return [(t, message) for t, _level, message in self._log]

    # -- time ------------------------------------------------------------------

    def now_ns(self):
        return self.clock.now_ns

    def run_until(self, target_ns):
        """Advance virtual time to ``target_ns``, firing due events in order.

        Re-entrant: an event handler that sleeps (``msleep``) nests another
        ``run_until`` with a nearer target; monotonicity is preserved
        because the clock only moves forward.
        """
        self._advancing += 1
        clock = self.clock
        pop_due = self.events.pop_due
        dispatch = self._dispatch_event
        parked = self._parked_process_events
        try:
            while True:
                # Work parked by an atomic-context advance runs as soon
                # as any advance finds the CPU schedulable again, before
                # later-timed events (it was due first).  The atomicity
                # check is against the *current* CPU -- dispatching a
                # targeted event may have switched it.
                if parked and not self.current_cpu.context.in_atomic():
                    dispatch(parked.popleft())
                    continue
                ev = pop_due(target_ns)
                if ev is None:
                    break
                # Monotonicity holds by construction here: pop_due only
                # returns events at or after the current time.
                if ev.time_ns > clock._now_ns:
                    clock._now_ns = ev.time_ns
                dispatch(ev)
            if target_ns > clock._now_ns:
                clock._now_ns = target_ns
        finally:
            self._advancing -= 1

    def run_for_ns(self, delta_ns):
        self.run_until(self.clock.now_ns + delta_ns)

    def run_for_ms(self, ms):
        self.run_for_ns(int(ms * NSEC_PER_MSEC))

    def run_for_s(self, seconds):
        self.run_for_ns(int(seconds * NSEC_PER_SEC))

    def _dispatch_event(self, ev):
        if ev.cpu is not None and self.nr_cpus > 1:
            self._dispatch_on_cpu(ev)
            return
        self._run_event(ev)

    def _run_event(self, ev):
        context = self.current_cpu.context
        depth = self._dispatch_depth
        if depth == 0:
            self._dispatch_entry_busy_ns = self.cpu._busy_ns
        self._dispatch_depth = depth + 1
        self.events_dispatched += 1
        try:
            if ev.context == HARDIRQ:
                context.enter_irq()
                try:
                    ev.callback()
                finally:
                    context.exit_irq()
            elif ev.context == SOFTIRQ:
                self.softirq_dispatches += 1
                context.enter_softirq()
                try:
                    ev.callback()
                finally:
                    context.exit_softirq()
            else:
                if ev.needs_sched and context.in_atomic():
                    # A work item came due inside a nested advance while
                    # the CPU is in interrupt context or holds a spinlock.
                    # Running it here would let sleeping work execute
                    # atomically; park it until the CPU is schedulable.
                    self._parked_process_events.append(ev)
                    return
                ev.callback()
        finally:
            self._dispatch_depth = depth

    def _dispatch_on_cpu(self, ev):
        """Run a CPU-targeted event with deferred time charging.

        If the target CPU's busy window is still open the event is
        re-queued at the window's close (it keeps its sequence number,
        so ties stay FIFO).  Otherwise the event runs with the target
        CPU current; virtual time its callback consumes is accumulated
        and becomes the CPU's next busy window instead of advancing the
        global clock, letting other CPUs' events overlap it.
        """
        vcpu = self.cpus[ev.cpu % self.nr_cpus]
        now = self.clock._now_ns
        if vcpu.busy_until_ns > now:
            self.events.requeue(ev, vcpu.busy_until_ns)
            return
        prev = self.current_cpu
        self.current_cpu = vcpu
        rq = vcpu.rq_lock
        if rq is not None and vcpu._defer_depth == 0:
            # Touch the runqueue under its lock (distinct lockdep class
            # per CPU); released before the callback so driver locks
            # never order against scheduler internals.
            rq.lock()
            rq.unlock()
        vcpu._defer_depth += 1
        try:
            self._run_event(ev)
        finally:
            vcpu._defer_depth -= 1
            if vcpu._defer_depth == 0 and vcpu._pending_charge_ns:
                vcpu.busy_until_ns = \
                    self.clock._now_ns + vcpu._pending_charge_ns
                vcpu._pending_charge_ns = 0
            self.current_cpu = prev

    # -- cost charging ------------------------------------------------------------

    def charge(self, ns, category="kernel"):
        """Charge CPU time to the aggregate and the current CPU.

        Does not advance the clock (see :meth:`consume` for that).
        """
        self.cpu.charge(ns, category)
        self.current_cpu.acct.charge(ns, category)

    def consume(self, ns, busy=True, category="kernel"):
        """Advance the clock by ``ns`` of work, firing events that come due.

        ``busy=True`` additionally charges CPU time (utilization).
        Inside a CPU-targeted event the advance is deferred into the
        CPU's busy window instead (other CPUs run in parallel there).
        """
        if ns < 0:
            raise SimulationError("negative time consumption")
        cur = self.current_cpu
        if busy:
            self.cpu.charge(ns, category)
            cur.acct.charge(ns, category)
        if cur._defer_depth:
            cur._pending_charge_ns += ns
            return
        self.run_until(self.clock.now_ns + ns)

    # -- delays (Linux API names) ----------------------------------------------

    def udelay(self, usecs):
        """Busy-wait; legal in atomic context (burns CPU)."""
        self.consume(int(usecs * NSEC_PER_USEC), busy=True, category="delay")

    def mdelay(self, msecs):
        self.udelay(msecs * 1000)

    def msleep(self, msecs):
        """Sleeping delay; forbidden in atomic context."""
        self.context.might_sleep("msleep")
        self.consume(int(msecs * NSEC_PER_MSEC), busy=False, category="sleep")

    def msleep_interruptible(self, msecs):
        self.msleep(msecs)
        return 0

    def schedule_timeout(self, msecs):
        self.msleep(msecs)

    # -- Linux accessor shims used pervasively by drivers -----------------------

    def request_irq(self, irq, handler, name, dev_id=None):
        return self.irq.request_irq(irq, handler, name, dev_id)

    def free_irq(self, irq, dev_id=None):
        self.irq.free_irq(irq, dev_id)
