"""Kernel error model.

The simulated kernel mirrors Linux in two respects that matter to the Decaf
architecture:

* Kernel C code reports failures through negative integer errno codes
  (``-EIO``, ``-ENOMEM``, ...).  The legacy drivers in
  :mod:`repro.drivers.legacy` follow that convention; the decaf drivers
  replace it with exceptions.

* Context rules are enforced, not assumed.  Code that might sleep (mutex
  acquisition, ``msleep``, XPC into user level, ``GFP_KERNEL`` allocation)
  raises :class:`SleepInAtomicError` when executed in interrupt context or
  while a spinlock is held.  Navigating exactly these rules is why the
  driver nucleus exists, so the simulator must make violations loud.
"""

# Linux errno values used throughout the drivers.
EPERM = 1
ENOENT = 2
EIO = 5
ENXIO = 6
EAGAIN = 11
ENOMEM = 12
EFAULT = 14
EBUSY = 16
ENODEV = 19
EINVAL = 22
ENOSPC = 28
EPIPE = 32
ETIMEDOUT = 110
EINPROGRESS = 115

ERRNO_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    EIO: "EIO",
    ENXIO: "ENXIO",
    EAGAIN: "EAGAIN",
    ENOMEM: "ENOMEM",
    EFAULT: "EFAULT",
    EBUSY: "EBUSY",
    ENODEV: "ENODEV",
    EINVAL: "EINVAL",
    ENOSPC: "ENOSPC",
    EPIPE: "EPIPE",
    ETIMEDOUT: "ETIMEDOUT",
    EINPROGRESS: "EINPROGRESS",
}


def errno_name(code):
    """Return a symbolic name for a (possibly negated) errno value."""
    return ERRNO_NAMES.get(abs(code), str(code))


class KernelError(Exception):
    """Base class for all simulated-kernel faults."""


class ContextViolation(KernelError):
    """An operation was attempted in a forbidden execution context."""


class SleepInAtomicError(ContextViolation):
    """A potentially-sleeping operation ran in atomic context.

    Linux would print "BUG: scheduling while atomic"; we raise instead so
    tests can assert the Decaf runtime never lets it happen.
    """


class KernelPanic(KernelError):
    """An unrecoverable inconsistency in the simulated kernel."""


class MemoryLeakError(KernelError):
    """Module unload left kernel allocations behind."""


class DeadlockError(KernelError):
    """Lock acquisition that can never succeed in the simulation."""


class SimulationError(KernelError):
    """The simulation itself was misused (e.g. time moved backwards)."""
