"""Discrete-event machinery for the simulated kernel.

The kernel owns a single event queue ordered by virtual time.  Timers,
deferred work, device completions (EEPROM reads, DMA, link negotiation) and
workload pacing are all events.  Events run in a declared execution context
(hardirq / softirq / process), and the context rules of
:mod:`repro.kernel.context` apply while they run.
"""

import heapq
import itertools

from .context import HARDIRQ, PROCESS, SOFTIRQ
from .errors import SimulationError

_VALID_CONTEXTS = (HARDIRQ, SOFTIRQ, PROCESS)


class Event:
    """A scheduled callback; cancellable, single-shot."""

    __slots__ = ("time_ns", "seq", "callback", "context", "name", "cancelled",
                 "wheel", "needs_sched", "cpu")

    def __init__(self, time_ns, seq, callback, context, name,
                 needs_sched=False, cpu=None):
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.context = context
        self.name = name
        self.cancelled = False
        self.wheel = None
        # True for scheduler-dispatched process work (workqueue items):
        # the callback must wait until the CPU leaves atomic context.
        # Plain process-context events (device completions, wire
        # deliveries, workload pacing) are environmental and fire on
        # time regardless of what the CPU is doing.
        self.needs_sched = needs_sched
        # Target virtual CPU index, or None for "wherever the clock is"
        # (classic single-CPU semantics).  A targeted event waits for
        # its CPU's busy window to close before dispatch.
        self.cpu = cpu

    def cancel(self):
        self.cancelled = True
        if self.wheel is not None:
            self.wheel.discard(self)

    def __lt__(self, other):
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self):
        return "<Event %s @%dns ctx=%s%s>" % (
            self.name,
            self.time_ns,
            self.context,
            " cancelled" if self.cancelled else "",
        )


class TimerWheel:
    """Indexed timer wheel: O(1) add, cancel and re-arm.

    Timers (the watchdog, ITR throttles, TX-completion pumps) are armed
    and cancelled far more often than they fire, so keeping them in the
    global min-heap leaves a trail of cancelled entries that every
    ``peek``/``pop`` has to step over.  The wheel hashes each timer into
    a bucket keyed by ``time_ns >> SHIFT`` (65.536 us granularity) and
    stores it in a per-bucket dict keyed by event seq, so ``cancel`` is
    a dict delete -- the event is truly gone, not lazily skipped.

    Bucketing only affects *lookup*; expiry remains exact.  The next
    due timer is found by scanning the front non-empty bucket (slot
    order equals time order because slots are monotonic in time), and
    events still fire at their precise ``time_ns``.
    """

    SHIFT = 16  # 2**16 ns = 65.536 us per slot

    def __init__(self):
        self._buckets = {}  # slot -> {seq: Event}
        self._slot_heap = []  # min-heap of slot keys (duplicates ok)
        self._live = 0
        # Memo of the earliest live timer.  Validity is ``ev.wheel is
        # self`` -- discard/pop clear ``ev.wheel``, invalidating the memo
        # for free; ``add`` keeps it current when a new timer sorts first.
        self._front = None

    def __len__(self):
        return self._live

    def add(self, ev):
        slot = ev.time_ns >> self.SHIFT
        bucket = self._buckets.get(slot)
        if bucket is None:
            bucket = self._buckets[slot] = {}
            heapq.heappush(self._slot_heap, slot)
        bucket[ev.seq] = ev
        ev.wheel = self
        self._live += 1
        front = self._front
        if front is not None and front.wheel is self:
            if ev is front:
                self._front = None  # re-added: may not be first any more
            elif (ev.time_ns, ev.seq) < (front.time_ns, front.seq):
                self._front = ev

    def discard(self, ev):
        slot = ev.time_ns >> self.SHIFT
        bucket = self._buckets.get(slot)
        if bucket is not None and bucket.pop(ev.seq, None) is not None:
            self._live -= 1
        ev.wheel = None

    def peek_event(self):
        """Earliest live timer (exact (time_ns, seq) order), or None."""
        front = self._front
        if front is not None and front.wheel is self:
            return front
        while self._slot_heap:
            slot = self._slot_heap[0]
            bucket = self._buckets.get(slot)
            if not bucket:
                heapq.heappop(self._slot_heap)
                if bucket is not None:
                    del self._buckets[slot]
                continue
            front = min(bucket.values())
            self._front = front
            return front
        self._front = None
        return None

    def pop(self, ev):
        """Remove ``ev`` (previously returned by peek_event) for dispatch."""
        self.discard(ev)


class EventQueue:
    """Time-ordered queue with stable FIFO ordering for equal timestamps.

    Two backing stores share one sequence counter (so FIFO order for
    equal timestamps holds across both): a min-heap for one-shot events
    (``schedule_at``/``schedule_after``) and an indexed :class:`TimerWheel`
    for timers that are frequently cancelled or re-armed
    (``schedule_timer_at``/``schedule_timer_after``).
    """

    def __init__(self, clock):
        self._clock = clock
        self._heap = []
        self._wheel = TimerWheel()
        self._seq = itertools.count()
        # ktrace hook, mirrored from Kernel.tracer by Tracer.install();
        # the queue has no kernel back-reference, so it keeps its own.
        self.tracer = None
        # Lower bound on the next live event's time, shared with the
        # fastpath accessors (kernel/fastpath.py): they advance the
        # clock without a heap peek while target < memo[0].  Any insert
        # resets it to -1 (unknown); removals only move the true next
        # event later, so a stale bound stays conservative.
        self.next_due_memo = [-1]

    def __len__(self):
        return sum(1 for ev in self._heap if not ev.cancelled) + \
            len(self._wheel)

    def _make_event(self, time_ns, callback, context, name):
        if context not in _VALID_CONTEXTS:
            raise SimulationError("unknown event context %r" % (context,))
        if time_ns < self._clock.now_ns:
            # Late events run "now"; the queue never travels backwards.
            time_ns = self._clock.now_ns
        return Event(time_ns, next(self._seq), callback, context, name)

    def schedule_at(self, time_ns, callback, context=PROCESS, name="event",
                    cpu=None):
        ev = self._make_event(time_ns, callback, context, name)
        ev.cpu = cpu
        heapq.heappush(self._heap, ev)
        self.next_due_memo[0] = -1
        return ev

    def schedule_after(self, delay_ns, callback, context=PROCESS, name="event",
                       needs_sched=False, cpu=None):
        # Inlined _make_event: this is the per-packet scheduling path.
        if context not in _VALID_CONTEXTS:
            raise SimulationError("unknown event context %r" % (context,))
        now = self._clock.now_ns
        ev = Event(now + delay_ns if delay_ns > 0 else now,
                   next(self._seq), callback, context, name,
                   needs_sched=needs_sched, cpu=cpu)
        heapq.heappush(self._heap, ev)
        self.next_due_memo[0] = -1
        return ev

    def requeue(self, ev, time_ns):
        """Push a popped event back, re-timed (SMP busy-window deferral).

        The event keeps its original sequence number, so among events
        re-landing at the same instant the earliest-scheduled still runs
        first -- deterministic round-robin across busy CPUs.
        """
        ev.time_ns = time_ns
        heapq.heappush(self._heap, ev)
        self.next_due_memo[0] = -1

    def schedule_timer_at(self, time_ns, callback, context=PROCESS,
                          name="timer"):
        """Like schedule_at, but on the wheel: cancel is O(1) and real."""
        ev = self._make_event(time_ns, callback, context, name)
        self._wheel.add(ev)
        self.next_due_memo[0] = -1
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("timer.arm", {"timer": name, "at_ns": ev.time_ns})
        return ev

    def schedule_timer_after(self, delay_ns, callback, context=PROCESS,
                             name="timer"):
        return self.schedule_timer_at(
            self._clock.now_ns + max(0, delay_ns), callback, context, name
        )

    def _peek_heap(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def peek_time(self):
        """Virtual time of the next live event, or None."""
        head = self._peek_heap()
        timer = self._wheel.peek_event() if self._wheel._live else None
        if head is None:
            return timer.time_ns if timer is not None else None
        if timer is None or head < timer:
            return head.time_ns
        return timer.time_ns

    def pop_due(self, target_ns):
        """Pop the next live event due at or before ``target_ns``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        head = heap[0] if heap else None
        timer = self._wheel.peek_event() if self._wheel._live else None
        if head is not None and (
            timer is None
            or head.time_ns < timer.time_ns
            or (head.time_ns == timer.time_ns and head.seq < timer.seq)
        ):
            if head.time_ns <= target_ns:
                return heapq.heappop(heap)
            return None
        if timer is not None and timer.time_ns <= target_ns:
            self._wheel.pop(timer)
            return timer
        return None
