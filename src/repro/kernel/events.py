"""Discrete-event machinery for the simulated kernel.

The kernel owns a single event queue ordered by virtual time.  Timers,
deferred work, device completions (EEPROM reads, DMA, link negotiation) and
workload pacing are all events.  Events run in a declared execution context
(hardirq / softirq / process), and the context rules of
:mod:`repro.kernel.context` apply while they run.
"""

import heapq
import itertools

from .context import HARDIRQ, PROCESS, SOFTIRQ
from .errors import SimulationError

_VALID_CONTEXTS = (HARDIRQ, SOFTIRQ, PROCESS)


class Event:
    """A scheduled callback; cancellable, single-shot."""

    __slots__ = ("time_ns", "seq", "callback", "context", "name", "cancelled")

    def __init__(self, time_ns, seq, callback, context, name):
        self.time_ns = time_ns
        self.seq = seq
        self.callback = callback
        self.context = context
        self.name = name
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time_ns, self.seq) < (other.time_ns, other.seq)

    def __repr__(self):
        return "<Event %s @%dns ctx=%s%s>" % (
            self.name,
            self.time_ns,
            self.context,
            " cancelled" if self.cancelled else "",
        )


class EventQueue:
    """Time-ordered queue with stable FIFO ordering for equal timestamps."""

    def __init__(self, clock):
        self._clock = clock
        self._heap = []
        self._seq = itertools.count()

    def __len__(self):
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule_at(self, time_ns, callback, context=PROCESS, name="event"):
        if context not in _VALID_CONTEXTS:
            raise SimulationError("unknown event context %r" % (context,))
        if time_ns < self._clock.now_ns:
            # Late events run "now"; the queue never travels backwards.
            time_ns = self._clock.now_ns
        ev = Event(time_ns, next(self._seq), callback, context, name)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay_ns, callback, context=PROCESS, name="event"):
        return self.schedule_at(
            self._clock.now_ns + max(0, delay_ns), callback, context, name
        )

    def peek_time(self):
        """Virtual time of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def pop_due(self, target_ns):
        """Pop the next live event due at or before ``target_ns``."""
        while self._heap:
            if self._heap[0].cancelled:
                heapq.heappop(self._heap)
                continue
            if self._heap[0].time_ns <= target_ns:
                return heapq.heappop(self._heap)
            return None
        return None
