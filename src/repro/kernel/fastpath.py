"""Datapath loop compiler: pre-bound register accessors for hot loops.

``core/marshal.py`` (PR 1) compiled per-struct codecs: resolve the field
layout once, then run a flat closure per crossing.  This module applies
the same technique to the NIC rx/tx inner loops (ROADMAP item 1): at
ring-setup time a driver builds *per-register accessor closures* with
the whole call chain pre-resolved -- the I/O region (one linear
``IoSpace._find`` per ring setup instead of one per access), the device
handler's bound ``read``/``write`` methods, the access cost, and the
event-queue internals the virtual clock advance needs.

Each accessor is observably identical to ``IoSpace.read``/``write``
plus its embedded ``Kernel.consume``: it advances the virtual clock by
the access cost *and fires any event that comes due* (consume is a
sequence point -- link ticks and IRQs land between register accesses),
honours wedged-register fault injection, and emits conformance trace
taps in the same order (reads tap after the device, writes before).
Two bookkeeping streams are batched and written back by :meth:`flush`
instead of paid per access, both read only at reporting time: CPU
accounting (busy-ns + per-category totals) and the io access counters.
The clock itself is *never* batched -- every access advances it exactly
where the interpreted path would, with an inline next-due-event check
deciding between the fast path (no event due before the new time: bump
the clock attribute) and a full ``kernel.consume`` (event due:
identical dispatch order, including events the device handler itself
schedules at the advanced time).

The next-due check itself is amortized through the event queue's
``next_due_memo`` -- a lower bound on the next live event's time that
every insert resets.  While ``target < memo`` the accessor advances the
clock with a single comparison; only the first access after an insert
(or after a dispatch) re-derives the bound from the heap and wheel.

Device models may expose ``reg_reader(off, size)`` /
``reg_writer(off, size)`` hooks returning a specialized closure for one
register (or None to decline); the compiler then bypasses the model's
generic ``read``/``write`` dispatch for that register.  The hook's
closure must be behaviourally identical to the generic path and must
stay valid across device resets (models keep their register files
identity-stable for this reason).

On an SMP kernel an accessor can run inside a CPU-targeted event, where
``consume`` defers the advance into the CPU's busy window
(``_pending_charge_ns``) instead of moving the global clock; the fast
path mirrors that branch exactly, so per-queue drains overlap across
CPUs the same way interpreted ones do.

The ablation flag (``compiled=False`` on the rigs / ``make_module``)
skips closure construction entirely, keeping the interpreted loops as
the measured baseline.
"""

import heapq

_heappop = heapq.heappop

# Sentinel "no event anywhere" bound; far beyond any simulated time.
_FAR = 1 << 62


class FastIo:
    """Accessor factory + batched bookkeeping for one compiled loop.

    One instance per compiled closure set (per ring / per queue); all
    accessors built from it share one pending-charge cell, so a single
    :meth:`flush` at drain exit settles the whole run's accounting.
    """

    def __init__(self, kernel, is_mmio, category="io"):
        self._kernel = kernel
        self._is_mmio = is_mmio
        self._category = category
        costs = kernel.costs
        self._cost = costs.mmio_ns if is_mmio else costs.port_io_ns
        # [batched busy-ns, batched access count]
        self._pending = [0, 0]

    def flush(self):
        """Write batched CPU accounting and io counters back."""
        pending = self._pending
        ns, count = pending
        if not count:
            return
        pending[0] = 0
        pending[1] = 0
        kernel = self._kernel
        io = kernel.io
        if self._is_mmio:
            io.mmio_accesses += count
        else:
            io.port_accesses += count
        if ns:
            kernel.cpu.charge(ns, self._category)
            kernel.current_cpu.acct.charge(ns, self._category)

    def _bind(self, addr, size):
        """Resolve the region once; return the pieces accessors share."""
        kernel = self._kernel
        io = kernel.io
        region = io._find(addr, size, self._is_mmio)
        return (kernel, io, region, region.handler, addr - region.base,
                region.name, (1 << (8 * size)) - 1)

    def reader(self, addr, size):
        """Compiled ``IoSpace.read(addr, size)`` for one fixed register."""
        (kernel, io, region, handler, off, rname, mask) = self._bind(
            addr, size)
        mk = getattr(handler, "reg_reader", None)
        hread = mk(off, size) if mk is not None else None
        if hread is None:
            generic = handler.read
            hread = lambda: generic(off, size)  # noqa: E731
        cost = self._cost
        category = self._category
        pending = self._pending
        clock = kernel.clock
        events = kernel.events
        heap = events._heap
        wheel = events._wheel
        wheel_peek = wheel.peek_event
        memo = events.next_due_memo
        consume = kernel.consume
        wedged = io._wedged
        flush = self.flush
        smp = kernel.nr_cpus > 1

        def read():
            # Inlined IoSpace.read + consume; see module docstring.
            pending[1] += 1
            if smp and kernel.current_cpu._defer_depth:
                pending[0] += cost
                kernel.current_cpu._pending_charge_ns += cost
            else:
                target = clock._now_ns + cost
                if target < memo[0]:
                    clock._now_ns = target
                    pending[0] += cost
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        flush()
                        consume(cost, True, category)
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pending[0] += cost
            if wedged:
                forced = wedged.get(addr)
                if forced is not None:
                    return forced & mask
            value = hread() & mask
            tap = io.trace_tap
            if tap is not None:
                tap("r", rname, off, size, value)
            return value

        return read

    def writer(self, addr, size):
        """Compiled ``IoSpace.write(addr, v, size)`` for one register."""
        (kernel, io, region, handler, off, rname, mask) = self._bind(
            addr, size)
        mk = getattr(handler, "reg_writer", None)
        hwrite = mk(off, size) if mk is not None else None
        if hwrite is None:
            generic = handler.write
            hwrite = lambda v: generic(off, v, size)  # noqa: E731
        cost = self._cost
        category = self._category
        pending = self._pending
        clock = kernel.clock
        events = kernel.events
        heap = events._heap
        wheel = events._wheel
        wheel_peek = wheel.peek_event
        memo = events.next_due_memo
        consume = kernel.consume
        wedged = io._wedged
        flush = self.flush
        smp = kernel.nr_cpus > 1

        def write(value):
            pending[1] += 1
            if smp and kernel.current_cpu._defer_depth:
                pending[0] += cost
                kernel.current_cpu._pending_charge_ns += cost
            else:
                target = clock._now_ns + cost
                if target < memo[0]:
                    clock._now_ns = target
                    pending[0] += cost
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        flush()
                        consume(cost, True, category)
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pending[0] += cost
            if wedged and addr in wedged:
                return
            value &= mask
            tap = io.trace_tap
            if tap is not None:
                tap("w", rname, off, size, value)
            hwrite(value)

        return write
