"""Kernel locking primitives: spinlock, mutex, semaphore.

The simulation is single-CPU and event-driven, so locks never actually
block; what they provide is *rule enforcement* and *state tracking*:

* A spinlock acquisition disables sleeping until release.  Acquiring a
  spinlock that is already held on this CPU is a self-deadlock and raises.
* A mutex/semaphore acquisition is a potentially-sleeping operation and is
  rejected in atomic context, exactly the property that forces driver
  functions called under spinlocks to stay in the driver nucleus (paper
  section 3.1.3).

The combolock of the Decaf runtime builds on these
(:mod:`repro.core.combolock`).
"""

from .errors import DeadlockError


class SpinLock:
    """A kernel spinlock.  Holding it makes the context atomic."""

    def __init__(self, kernel, name="spinlock"):
        self._kernel = kernel
        self.name = name
        self.owner_context = None
        self._held = False
        self._acquired_ns = None
        self.acquisitions = 0

    @property
    def held(self):
        return self._held

    def lock(self):
        if self._held:
            raise DeadlockError(
                "spinlock %r acquired while already held (single-CPU self-deadlock)"
                % self.name
            )
        self._held = True
        self.acquisitions += 1
        self.owner_context = self._kernel.context.current_context()
        self._kernel.context.push_spinlock(self)
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def unlock(self):
        if not self._held:
            raise DeadlockError("spinlock %r released while not held" % self.name)
        self._held = False
        self.owner_context = None
        self._kernel.context.pop_spinlock(self)
        tracer = self._kernel.tracer
        if tracer is not None and self._acquired_ns is not None:
            # Matched pairs only: a tracer installed mid-hold records
            # nothing for this acquisition.
            tracer.lock_span(self._acquired_ns, self.name, "spin")
            self._acquired_ns = None

    def lock_irqsave(self):
        """Linux ``spin_lock_irqsave``: also masks interrupts on this CPU."""
        self._kernel.irq.local_irq_disable()
        self.lock()

    def unlock_irqrestore(self):
        self.unlock()
        self._kernel.irq.local_irq_enable()

    def __enter__(self):
        self.lock()
        return self

    def __exit__(self, *exc):
        self.unlock()
        return False


class Mutex:
    """A sleeping mutex.  Blocking operations are allowed while held."""

    def __init__(self, kernel, name="mutex"):
        self._kernel = kernel
        self.name = name
        self._held = False
        self._acquired_ns = None
        self.acquisitions = 0

    @property
    def held(self):
        return self._held

    def lock(self):
        self._kernel.context.might_sleep("mutex_lock(%s)" % self.name)
        if self._held:
            raise DeadlockError(
                "mutex %r acquired while already held (single-thread self-deadlock)"
                % self.name
            )
        self._kernel.cpu.charge(self._kernel.costs.kmalloc_ns, "locking")
        self._held = True
        self.acquisitions += 1
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def unlock(self):
        if not self._held:
            raise DeadlockError("mutex %r released while not held" % self.name)
        self._held = False
        tracer = self._kernel.tracer
        if tracer is not None and self._acquired_ns is not None:
            tracer.lock_span(self._acquired_ns, self.name, "mutex")
            self._acquired_ns = None

    def __enter__(self):
        self.lock()
        return self

    def __exit__(self, *exc):
        self.unlock()
        return False


class Semaphore:
    """A counting semaphore with sleeping ``down``."""

    def __init__(self, kernel, count=1, name="semaphore"):
        self._kernel = kernel
        self.name = name
        self._count = count
        self.acquisitions = 0

    @property
    def count(self):
        return self._count

    def down(self):
        self._kernel.context.might_sleep("down(%s)" % self.name)
        if self._count <= 0:
            raise DeadlockError(
                "semaphore %r down() with count 0 would block forever "
                "(single simulated thread)" % self.name
            )
        self._count -= 1
        self.acquisitions += 1

    def down_trylock(self):
        """Non-sleeping acquire; returns True on success."""
        if self._count <= 0:
            return False
        self._count -= 1
        self.acquisitions += 1
        return True

    def up(self):
        self._count += 1
