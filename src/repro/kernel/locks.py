"""Kernel locking primitives: spinlock, mutex, semaphore -- and lockdep.

The simulation is single-CPU and event-driven, so locks never actually
block; what they provide is *rule enforcement* and *state tracking*:

* A spinlock acquisition disables sleeping until release.  Acquiring a
  spinlock that is already held on this CPU is a self-deadlock and raises.
* A mutex/semaphore acquisition is a potentially-sleeping operation and is
  rejected in atomic context, exactly the property that forces driver
  functions called under spinlocks to stay in the driver nucleus (paper
  section 3.1.3).

The combolock of the Decaf runtime builds on these
(:mod:`repro.core.combolock`).

:class:`LockDep` is an opt-in runtime checker in the style of the
kernel's lockdep: it records *classes* of violations that the hard
single-CPU rules above cannot see because they need two CPUs or an
unlucky interrupt to deadlock for real --

* **lock-order inversion** (AB/BA): the acquisition graph over lock
  names grows an edge held -> acquired per acquisition; a new edge that
  closes a cycle is reported once per pair.
* **sleep-while-atomic**: every ``might_sleep`` failure is also recorded
  as a report (the exception still raises), so conformance runs can
  assert "zero lockdep reports" uniformly.
* **mutex-in-hardirq**: a sleeping lock acquired in an interrupt
  handler.
* **irq-safety inconsistency**: a spinlock observed both inside a
  hardirq handler and in process context with interrupts enabled -- the
  classic "handler spins on a lock the interrupted code holds" hazard.

Enable with ``kernel.enable_lockdep()``; disabled (``kernel.lockdep is
None``) the primitives pay one attribute load per acquisition.
"""

from .context import HARDIRQ
from .errors import DeadlockError


class LockDepReport:
    """One recorded violation."""

    __slots__ = ("kind", "message", "ns")

    def __init__(self, kind, message, ns):
        self.kind = kind
        self.message = message
        self.ns = ns

    def __repr__(self):
        return "<lockdep %s @%dns: %s>" % (self.kind, self.ns, self.message)


class LockDep:
    """Lock-order / context validator (see module docstring).

    Reports are deduplicated per key the way the kernel's lockdep warns
    once per lock class, so a violating hot loop produces one report,
    not millions.
    """

    def __init__(self, kernel):
        self._kernel = kernel
        self.reports = []
        self.checks = 0
        # Optional observer ``tap(lock_name, kind)`` fired on every
        # acquisition check.  repro.explore uses it to capture the lock
        # footprint of an event window; one ``is not None`` test when
        # unset, and lockdep itself is opt-in, so the primitives'
        # fast path is untouched.
        self.acquire_tap = None
        # Held-lock stacks are per CPU (a lock held on cpu0 must not
        # order against an acquisition on cpu1), but the order graph
        # and usage table are global: opposite acquisition orders on
        # two different CPUs close a cycle and are reported.
        self._held_per_cpu = {}  # cpu index -> [locks], acquisition order
        self._edges = {}         # lock name -> set of names acquired under it
        self._usage = {}         # lock name -> set of usage flags
        self._seen = set()       # dedup keys of reported violations

    @property
    def _held(self):
        """Held locks of the CPU the kernel is currently running on."""
        cpu = self._kernel.current_cpu.index
        held = self._held_per_cpu.get(cpu)
        if held is None:
            held = self._held_per_cpu[cpu] = []
        return held

    # -- reporting ---------------------------------------------------------

    def _report(self, kind, key, message):
        if key in self._seen:
            return
        self._seen.add(key)
        report = LockDepReport(kind, message, self._kernel.clock.now_ns)
        self.reports.append(report)
        self._kernel.printk("lockdep: %s: %s" % (kind, message), level="err")
        tracer = self._kernel.tracer
        if tracer is not None:
            tracer.instant("lockdep.report", {"kind": kind, "msg": message})
            tracer.metrics.inc("lockdep.reports|%s" % kind)
        health = self._kernel.health
        if health is not None:
            health.on_lockdep_report(kind, message)

    def by_kind(self, kind):
        return [r for r in self.reports if r.kind == kind]

    # -- acquisition graph -------------------------------------------------

    def _reaches(self, src, dst):
        """True if the order graph has a path src ->* dst."""
        stack = [src]
        seen = set()
        edges = self._edges
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    def check_acquire(self, lock, kind):
        """Validate an acquisition about to happen (lock not yet held).

        Safe to call before the primitive's own rule enforcement: the
        checker only reads current state, so a subsequent
        ``SleepInAtomicError`` still finds the report recorded.
        """
        self.checks += 1
        if self.acquire_tap is not None:
            self.acquire_tap(lock.name, kind)
        context = self._kernel.context
        name = lock.name
        sleeping = kind in ("mutex", "semaphore", "combo-sem")
        if sleeping and context.current_context() == HARDIRQ:
            self._report(
                "mutex-in-hardirq", ("mutex-in-hardirq", name),
                "%s %r acquired in hardirq context" % (kind, name),
            )
        # Irq-safety usage: a spinlock seen in a hardirq handler must
        # never be held with interrupts enabled elsewhere -- the handler
        # would spin forever on the interrupted owner (one CPU) or
        # deadlock cross-CPU.
        if not sleeping:
            flags = self._usage.setdefault(name, set())
            if context.in_irq():
                flags.add("in-hardirq")
                if "irqs-on" in flags:
                    self._report(
                        "irq-unsafe-lock", ("irq-unsafe-lock", name),
                        "spinlock %r taken in hardirq but also held with "
                        "interrupts enabled" % name,
                    )
            elif self._kernel.irq.irqs_enabled():
                flags.add("irqs-on")
                if "in-hardirq" in flags:
                    self._report(
                        "irq-unsafe-lock", ("irq-unsafe-lock", name),
                        "spinlock %r held with interrupts enabled but also "
                        "taken in hardirq" % name,
                    )
        # Lock-order graph: held -> acquired, checked for cycles.
        for prev in self._held:
            pname = prev.name
            if pname == name:
                continue
            succ = self._edges.setdefault(pname, set())
            if name not in succ:
                if self._reaches(name, pname):
                    pair = tuple(sorted((pname, name)))
                    self._report(
                        "lock-order-inversion", ("order",) + pair,
                        "%r -> %r inverts the established order %r -> %r"
                        % (pname, name, name, pname),
                    )
                succ.add(name)

    def push(self, lock):
        """The acquisition succeeded; track it for ordering."""
        self._held.append(lock)

    def pop(self, lock):
        """Release; out-of-order release is legal (like spinlocks)."""
        for i in range(len(self._held) - 1, -1, -1):
            if self._held[i] is lock:
                del self._held[i]
                return

    def note_might_sleep(self, what, context):
        """Called by ``ExecContext.might_sleep`` on a violation (which
        still raises afterwards)."""
        held = ",".join(
            getattr(l, "name", "?") for l in context.spinlocks_held
        )
        self._report(
            "sleep-in-atomic",
            ("sleep-in-atomic", what, context.current_context(), held),
            "%s in %s context%s"
            % (what, context.current_context(),
               " holding [%s]" % held if held else ""),
        )

    def note_hardirq_entry(self):
        """Called at hardirq dispatch: held spinlocks are checked against
        the usage table (a lock the handler also takes would deadlock)."""
        for lock in self._held:
            flags = self._usage.get(lock.name)
            if flags and "in-hardirq" in flags:
                self._report(
                    "irq-unsafe-lock", ("irq-unsafe-lock", lock.name),
                    "hardirq entered while %r (also taken in hardirq) "
                    "is held" % lock.name,
                )


class SpinLock:
    """A kernel spinlock.  Holding it makes the context atomic."""

    def __init__(self, kernel, name="spinlock"):
        self._kernel = kernel
        self.name = name
        self.owner_context = None
        self._held = False
        self._acquired_ns = None
        self.acquisitions = 0

    @property
    def held(self):
        return self._held

    def lock(self):
        if self._held:
            raise DeadlockError(
                "spinlock %r acquired while already held (single-CPU self-deadlock)"
                % self.name
            )
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.check_acquire(self, "spin")
        self._held = True
        self.acquisitions += 1
        self.owner_context = self._kernel.context.current_context()
        self._kernel.context.push_spinlock(self)
        if lockdep is not None:
            lockdep.push(self)
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def unlock(self):
        if not self._held:
            raise DeadlockError("spinlock %r released while not held" % self.name)
        self._held = False
        self.owner_context = None
        self._kernel.context.pop_spinlock(self)
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.pop(self)
        tracer = self._kernel.tracer
        if tracer is not None and self._acquired_ns is not None:
            # Matched pairs only: a tracer installed mid-hold records
            # nothing for this acquisition.
            tracer.lock_span(self._acquired_ns, self.name, "spin")
            self._acquired_ns = None

    def lock_irqsave(self):
        """Linux ``spin_lock_irqsave``: also masks interrupts on this CPU."""
        self._kernel.irq.local_irq_disable()
        self.lock()

    def unlock_irqrestore(self):
        self.unlock()
        self._kernel.irq.local_irq_enable()

    def __enter__(self):
        self.lock()
        return self

    def __exit__(self, *exc):
        self.unlock()
        return False


class Mutex:
    """A sleeping mutex.  Blocking operations are allowed while held."""

    def __init__(self, kernel, name="mutex"):
        self._kernel = kernel
        self.name = name
        self._held = False
        self._acquired_ns = None
        self.acquisitions = 0

    @property
    def held(self):
        return self._held

    def lock(self):
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            # Before might_sleep: a mutex-in-hardirq / under-spinlock
            # violation must be on record even though the context check
            # then raises.
            lockdep.check_acquire(self, "mutex")
        self._kernel.context.might_sleep("mutex_lock(%s)" % self.name)
        if self._held:
            raise DeadlockError(
                "mutex %r acquired while already held (single-thread self-deadlock)"
                % self.name
            )
        self._kernel.charge(self._kernel.costs.kmalloc_ns, "locking")
        self._held = True
        self.acquisitions += 1
        if lockdep is not None:
            lockdep.push(self)
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def unlock(self):
        if not self._held:
            raise DeadlockError("mutex %r released while not held" % self.name)
        self._held = False
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.pop(self)
        tracer = self._kernel.tracer
        if tracer is not None and self._acquired_ns is not None:
            tracer.lock_span(self._acquired_ns, self.name, "mutex")
            self._acquired_ns = None

    def __enter__(self):
        self.lock()
        return self

    def __exit__(self, *exc):
        self.unlock()
        return False


class Semaphore:
    """A counting semaphore with sleeping ``down``."""

    def __init__(self, kernel, count=1, name="semaphore"):
        self._kernel = kernel
        self.name = name
        self._count = count
        self.acquisitions = 0

    @property
    def count(self):
        return self._count

    def down(self):
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.check_acquire(self, "semaphore")
        self._kernel.context.might_sleep("down(%s)" % self.name)
        if self._count <= 0:
            raise DeadlockError(
                "semaphore %r down() with count 0 would block forever "
                "(single simulated thread)" % self.name
            )
        self._count -= 1
        self.acquisitions += 1

    def down_trylock(self):
        """Non-sleeping acquire; returns True on success."""
        if self._count <= 0:
            return False
        self._count -= 1
        self.acquisitions += 1
        return True

    def up(self):
        self._count += 1
