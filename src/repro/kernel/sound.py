"""Sound core: an ALSA-like card/PCM layer.

The structure mirrors ALSA closely enough that the ens1371 driver's shape
is preserved: a card object, a PCM with a playback substream, driver ops
(open / hw_params / prepare / trigger / pointer), and an AC97 codec
accessed through driver-provided register read/write callbacks.

One detail is load-bearing for the paper (section 3.1.3): the original
kernel sound library acquired a **spinlock** before calling into the
driver, which would forbid the driver from ever calling up to user level.
The paper's authors modified the sound library to use **mutexes**.  The
:class:`SoundCore` reproduces both behaviours behind ``use_mutex``: with
``use_mutex=False`` a decaf driver upcall under the library lock raises
``SleepInAtomicError``, demonstrating exactly why the modification was
needed; the decaf stack runs with ``use_mutex=True``.
"""

from .errors import EBUSY, EINVAL
from .locks import Mutex, SpinLock

# Trigger commands.
SNDRV_PCM_TRIGGER_STOP = 0
SNDRV_PCM_TRIGGER_START = 1

SNDRV_PCM_STATE_OPEN = "open"
SNDRV_PCM_STATE_SETUP = "setup"
SNDRV_PCM_STATE_PREPARED = "prepared"
SNDRV_PCM_STATE_RUNNING = "running"
SNDRV_PCM_STATE_CLOSED = "closed"


class PcmRuntime:
    """Hardware parameters and ring-buffer positions for one substream."""

    def __init__(self):
        self.rate = 44100
        self.channels = 2
        self.sample_bytes = 2
        self.period_bytes = 4096
        self.periods = 4
        self.dma_region = None
        self.hw_ptr = 0     # bytes consumed by hardware
        self.appl_ptr = 0   # bytes written by application
        self.periods_elapsed = 0

    @property
    def buffer_bytes(self):
        return self.period_bytes * self.periods

    def bytes_free(self):
        return self.buffer_bytes - (self.appl_ptr - self.hw_ptr)

    def frame_bytes(self):
        return self.channels * self.sample_bytes


class PcmSubstream:
    def __init__(self, pcm, direction="playback"):
        self.pcm = pcm
        self.direction = direction
        self.runtime = PcmRuntime()
        self.state = SNDRV_PCM_STATE_CLOSED
        self.private_data = None
        self.ops = None  # driver fills in: open/close/hw_params/prepare/trigger/pointer


class SndPcm:
    def __init__(self, card, name):
        self.card = card
        self.name = name
        self.playback = PcmSubstream(self, "playback")
        self.private_data = None


class SndCard:
    def __init__(self, kernel, shortname):
        self._kernel = kernel
        self.shortname = shortname
        self.registered = False
        self.pcms = []
        self.controls = []
        self.private_data = None
        self.ac97 = None

    def new_pcm(self, name):
        pcm = SndPcm(self, name)
        self.pcms.append(pcm)
        return pcm


class Ac97Codec:
    """AC'97 codec attached through driver read/write register callbacks."""

    def __init__(self, read_reg, write_reg):
        self._read = read_reg
        self._write = write_reg

    def read(self, reg):
        return self._read(reg)

    def write(self, reg, value):
        self._write(reg, value)

    def reset_and_probe(self):
        """Standard AC97 bringup: reset, read vendor ID registers."""
        self._write(0x00, 0)  # AC97_RESET
        vendor = (self._read(0x7C) << 16) | self._read(0x7E)
        return vendor


class SoundCore:
    """The sound 'library' between applications and the driver."""

    def __init__(self, kernel, use_mutex=False):
        self._kernel = kernel
        self.use_mutex = use_mutex
        self._cards = []
        if use_mutex:
            self._lib_lock = Mutex(kernel, name="snd-lib-mutex")
        else:
            self._lib_lock = SpinLock(kernel, name="snd-lib-spinlock")
        # Open/close/hw_params run under a mutex in every ALSA variant;
        # it is the prepare/trigger path whose lock the paper changed.
        self._open_mutex = Mutex(kernel, name="snd-open-mutex")
        self.driver_op_calls = 0

    @property
    def cards(self):
        return list(self._cards)

    def snd_card_register(self, card):
        if card.registered:
            return -EBUSY
        card.registered = True
        self._cards.append(card)
        return 0

    def snd_card_free(self, card):
        card.registered = False
        if card in self._cards:
            self._cards.remove(card)
        return 0

    def snd_ctl_add(self, card, name):
        """Register one mixer control (ALSA's snd_ctl_add)."""
        if name in card.controls:
            return -EBUSY
        self._kernel.charge(self._kernel.costs.kmalloc_ns, "snd-ctl")
        card.controls.append(name)
        return 0

    def _call_op(self, substream, op_name, *args, lock=None):
        """Invoke a driver op under the given library lock.

        ``lock`` defaults to the prepare/trigger library lock -- a
        spinlock in the stock 2.6.18 sound library, a mutex in the
        paper's modified one.
        """
        op = getattr(substream.ops, op_name, None)
        if op is None:
            return -EINVAL
        self.driver_op_calls += 1
        with (lock if lock is not None else self._lib_lock):
            return op(substream, *args)

    # -- application-facing PCM API --------------------------------------------

    def pcm_open(self, substream):
        ret = self._call_op(substream, "open", lock=self._open_mutex)
        if ret == 0:
            substream.state = SNDRV_PCM_STATE_OPEN
        return ret

    def pcm_hw_params(self, substream, rate, channels, sample_bytes,
                      period_bytes, periods):
        rt = substream.runtime
        rt.rate = rate
        rt.channels = channels
        rt.sample_bytes = sample_bytes
        rt.period_bytes = period_bytes
        rt.periods = periods
        ret = self._call_op(substream, "hw_params", lock=self._open_mutex)
        if ret == 0:
            substream.state = SNDRV_PCM_STATE_SETUP
        return ret

    def pcm_prepare(self, substream):
        rt = substream.runtime
        rt.hw_ptr = 0
        rt.appl_ptr = 0
        rt.periods_elapsed = 0
        ret = self._call_op(substream, "prepare")
        if ret == 0:
            substream.state = SNDRV_PCM_STATE_PREPARED
        return ret

    def pcm_trigger(self, substream, cmd):
        ret = self._call_op(substream, "trigger", cmd)
        if ret == 0:
            substream.state = (
                SNDRV_PCM_STATE_RUNNING
                if cmd == SNDRV_PCM_TRIGGER_START
                else SNDRV_PCM_STATE_PREPARED
            )
        return ret

    def pcm_close(self, substream):
        ret = self._call_op(substream, "close", lock=self._open_mutex)
        substream.state = SNDRV_PCM_STATE_CLOSED
        return ret

    def pcm_write(self, substream, nbytes):
        """Application writes ``nbytes`` of audio into the ring.

        Blocks (advances virtual time) until space is available.  Returns
        bytes accepted.
        """
        rt = substream.runtime
        kernel = self._kernel
        written = 0
        quiet_waits = 0
        while written < nbytes:
            free = rt.bytes_free()
            if free <= 0:
                if substream.state != SNDRV_PCM_STATE_RUNNING:
                    return -EINVAL
                quiet_waits += 1
                if quiet_waits > 1000:
                    # Hardware stopped consuming: report a short write
                    # instead of blocking forever (xrun-ish behaviour).
                    return written
                # Wait one period for the hardware to drain.
                period_ns = int(
                    rt.period_bytes * 1e9 / (rt.rate * rt.frame_bytes())
                )
                kernel.consume(period_ns, busy=False, category="snd-wait")
                continue
            quiet_waits = 0
            chunk = min(free, nbytes - written)
            kernel.consume(
                int(chunk * kernel.costs.byte_copy_ns), busy=True, category="snd"
            )
            rt.appl_ptr += chunk
            written += chunk
        return written

    # -- driver-facing API -----------------------------------------------------------

    def snd_pcm_period_elapsed(self, substream):
        """Called by the driver (from its interrupt handler) per period.

        Runs in irq context, so the library mutex is NOT taken here; the
        ``pointer`` op must be irq-safe, which is why it always stays in
        the driver nucleus.
        """
        rt = substream.runtime
        rt.periods_elapsed += 1
        op = getattr(substream.ops, "pointer", None)
        ring_pos = None
        if op is not None:
            self.driver_op_calls += 1
            ptr = op(substream)
            if isinstance(ptr, int) and ptr >= 0:
                ring_pos = ptr % rt.buffer_bytes
        # The driver reports a ring offset; unwrap it against the
        # monotonically-growing application pointer.
        if ring_pos is None:
            rt.hw_ptr += rt.period_bytes
        else:
            base = rt.hw_ptr - (rt.hw_ptr % rt.buffer_bytes)
            unwrapped = base + ring_pos
            while unwrapped < rt.hw_ptr:
                unwrapped += rt.buffer_bytes
            rt.hw_ptr = min(unwrapped, rt.appl_ptr)
