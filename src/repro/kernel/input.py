"""Input core: serio ports and input devices (for the psmouse driver).

A :class:`SerioPort` is the byte pipe between the PS/2 controller and the
mouse: the driver writes command bytes to the device; the device answers
(and streams movement packets) as bytes delivered to the driver's
``interrupt`` callback **in hardirq context**, which is why psmouse's
protocol-decode stays in the driver nucleus while its detection and
initialization logic can move to Java.

An :class:`InputDev` is the upward-facing event device; the core counts
events and feeds an optional sink installed by the workload.
"""

from .errors import EIO

# Event types (subset of linux/input.h).
EV_KEY = 0x01
EV_REL = 0x02
EV_SYN = 0x00

REL_X = 0x00
REL_Y = 0x01
REL_WHEEL = 0x08

BTN_LEFT = 0x110
BTN_RIGHT = 0x111
BTN_MIDDLE = 0x112


class SerioPort:
    """A serio (PS/2-style) port connecting a driver and a device model."""

    def __init__(self, kernel, name="serio0"):
        self._kernel = kernel
        self.name = name
        self.device_model = None  # must expose handle_byte(port, byte)
        self.driver_interrupt = None  # callable(port, byte, flags)
        self.opened = False
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        # Optional observer ``tap(port, byte)`` fired on every
        # device->driver byte (before masking by open state); serio
        # delivers outside the IrqController, so repro.explore taps the
        # port directly to capture the input-line footprint.
        self.deliver_tap = None

    def attach_device(self, model):
        self.device_model = model

    def open(self, driver_interrupt):
        self.driver_interrupt = driver_interrupt
        self.opened = True
        return 0

    def close(self):
        self.opened = False
        self.driver_interrupt = None

    def write(self, byte):
        """Driver -> device command byte.  Returns 0 or -EIO."""
        if self.device_model is None:
            return -EIO
        self._kernel.consume(
            self._kernel.costs.port_io_ns * 12, busy=True, category="serio"
        )
        self.bytes_to_device += 1
        self.device_model.handle_byte(self, byte & 0xFF)
        return 0

    def deliver(self, byte):
        """Device -> driver byte, delivered in hardirq context."""
        self.bytes_from_device += 1
        if self.deliver_tap is not None:
            self.deliver_tap(self, byte)
        if not self.opened or self.driver_interrupt is None:
            return
        kernel = self._kernel
        kernel.charge(kernel.costs.irq_entry_ns, "irq")
        tracer = kernel.tracer
        entry_ns = kernel.clock.now_ns if tracer is not None else 0
        kernel.context.enter_irq()
        try:
            self.driver_interrupt(self, byte & 0xFF, 0)
        finally:
            kernel.context.exit_irq()
            if tracer is not None:
                # Serio delivers outside the IrqController (no line
                # number); trace it as an irq span keyed by port name.
                tracer.irq_span(entry_ns, None, self.name, True)


class InputDev:
    """``struct input_dev``: driver reports events through this."""

    def __init__(self, kernel, name):
        self._kernel = kernel
        self.name = name
        self.evbits = set()
        self.keybits = set()
        self.relbits = set()
        self.registered = False
        self._pending = []
        self.events_reported = 0
        self.syncs = 0
        self.sink = None  # callable(event_list) set by workloads

    def set_capability(self, ev_type, code):
        self.evbits.add(ev_type)
        if ev_type == EV_KEY:
            self.keybits.add(code)
        elif ev_type == EV_REL:
            self.relbits.add(code)

    def input_report_rel(self, code, value):
        if value:
            self._pending.append((EV_REL, code, value))

    def input_report_key(self, code, value):
        self._pending.append((EV_KEY, code, int(bool(value))))

    def input_sync(self):
        self.syncs += 1
        events = self._pending
        self._pending = []
        self.events_reported += len(events)
        if self.sink is not None and events:
            self.sink(events)


class InputCore:
    def __init__(self, kernel):
        self._kernel = kernel
        self._devices = []
        self._serio_ports = []

    def new_serio_port(self, name="serio0"):
        port = SerioPort(self._kernel, name)
        self._serio_ports.append(port)
        return port

    @property
    def serio_ports(self):
        return list(self._serio_ports)

    def register_device(self, dev):
        dev.registered = True
        self._devices.append(dev)
        return 0

    def unregister_device(self, dev):
        dev.registered = False
        if dev in self._devices:
            self._devices.remove(dev)

    @property
    def devices(self):
        return list(self._devices)
