"""Network core: net_device, sk_buff, transmit/receive paths.

Workloads hand packets to :meth:`NetworkCore.dev_queue_xmit`, which calls
the driver's ``hard_start_xmit`` honoring the transmit-queue state the
driver controls with ``netif_stop_queue`` / ``netif_wake_queue``.  Receive
is ``netif_rx``: the driver (usually in its interrupt handler) pushes an
skb up; the core charges protocol-stack CPU cost and delivers it to an
optional sink installed by the workload.

This mirrors enough of the Linux data path that the 8139too and E1000
drivers' performance-critical code is structurally the same as in C.
"""

from collections import deque

from .errors import EBUSY, ENODEV
from .napi import NapiCore

NETDEV_TX_OK = 0
NETDEV_TX_BUSY = 1

IFF_UP = 0x1
IFF_PROMISC = 0x100
IFF_ALLMULTI = 0x200


class SkBuff:
    """A socket buffer: payload plus bookkeeping.

    ``data`` is either ``bytes`` (legacy per-packet allocation) or a
    writable ``memoryview`` slice of the pooled DMA arena (zero-copy
    NAPI path).  Pooled buffers must be returned with :meth:`recycle`
    once the stack is done with them; ``recycle`` on a non-pooled skb is
    a no-op.
    """

    __slots__ = ("data", "protocol", "timestamp_ns", "dev", "_pool", "_slot")

    def __init__(self, data, protocol=0x0800):
        self.data = data if type(data) is memoryview else bytes(data)
        self.protocol = protocol
        self.timestamp_ns = 0
        self.dev = None
        self._pool = None
        self._slot = -1

    def __len__(self):
        return len(self.data)

    def tobytes(self):
        data = self.data
        return data.tobytes() if type(data) is memoryview else data

    def recycle(self):
        """Return a pooled buffer to its arena (explicit, like kfree_skb)."""
        pool = self._pool
        if pool is not None:
            self._pool = None
            # Drop the device back-reference: the pool caches this header
            # per slot, and a stale ``dev`` would pin a hot-unplugged
            # device's whole object graph until the slot is reused.
            self.dev = None
            pool.free(self._slot)
            self._slot = -1


class SkbPool:
    """Zero-copy rx buffers: fixed slots in one pooled DMA arena.

    ``alloc`` hands out a writable memoryview slice of the arena instead
    of a fresh ``bytes`` per packet; ``recycle`` (via the skb) returns the
    slot.  The free list is FIFO, so a recycled slot is only rewritten
    after every other free slot has been used once -- consumers that keep
    an skb's view past ``recycle`` (sinks that inspect payloads after the
    run) get ``count`` packets of slack before the data is overwritten.
    On exhaustion or oversize requests, ``alloc`` falls back to a private
    bytearray-backed skb (counted as a miss).
    """

    def __init__(self, kernel, buf_size=2048, count=256, owner="skb-pool",
                 fallback=None):
        self._kernel = kernel
        self.buf_size = buf_size
        self.count = count
        self.region = kernel.memory.dma_alloc_coherent(
            buf_size * count, owner=owner)
        self._arena = memoryview(self.region.data)
        self._free = deque(range(count))
        # Per-slot SkBuff headers, reused across alloc/recycle cycles
        # the way real drivers reuse rx buffers: a steady-state receive
        # loop allocates nothing per packet.  The header is only rebuilt
        # when the requested length differs from the slot's last use.
        self._skbs = [None] * count
        # Per-CPU shards chain to the shared pool: exhaustion falls
        # back there instead of going straight to a private bytearray.
        # A fallback-allocated skb carries the *fallback's* `_pool`, so
        # recycle always returns a slot to the arena that owns it.
        self.fallback = fallback
        self.hits = 0
        self.misses = 0
        self.recycles = 0

    def alloc(self, length, protocol=0x0800):
        if self._free and length <= self.buf_size:
            slot = self._free.popleft()
            self.hits += 1
            skb = self._skbs[slot]
            if skb is None or len(skb.data) != length:
                base = slot * self.buf_size
                skb = SkBuff(self._arena[base:base + length], protocol)
                self._skbs[slot] = skb
            else:
                skb.protocol = protocol
            skb._pool = self
            skb._slot = slot
            return skb
        self.misses += 1
        if self.fallback is not None:
            return self.fallback.alloc(length, protocol)
        return SkBuff(memoryview(bytearray(length)), protocol)

    def free(self, slot):
        self.recycles += 1
        self._free.append(slot)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NetDeviceStats:
    """Mirrors ``struct net_device_stats``."""

    FIELDS = (
        "rx_packets", "tx_packets", "rx_bytes", "tx_bytes",
        "rx_errors", "tx_errors", "rx_dropped", "tx_dropped",
        "multicast", "collisions", "rx_fifo_errors", "rx_crc_errors",
        "rx_length_errors", "tx_fifo_errors", "tx_carrier_errors",
    )

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def snapshot(self):
        return {name: getattr(self, name) for name in self.FIELDS}


class NetDevice:
    """``struct net_device``: ops are attributes assigned by the driver."""

    def __init__(self, kernel, name="eth%d"):
        self._kernel = kernel
        self.name = name
        self.mtu = 1500
        self.dev_addr = bytes(6)
        self.flags = 0
        self.features = 0
        self.irq = 0
        self.base_addr = 0
        self.mem_start = 0
        self.priv = None
        self.stats = NetDeviceStats()

        # Driver-provided operations (subset of net_device_ops).
        self.open = None
        self.stop = None
        self.hard_start_xmit = None
        self.get_stats = None
        self.set_multicast_list = None
        self.set_mac_address = None
        self.change_mtu = None
        self.tx_timeout = None
        self.do_ioctl = None

        self._queue_stopped = True
        self._carrier_ok = False
        self.registered = False
        self.tx_queue_wakeups = 0
        # Virtual timestamp of the last running->stopped transition;
        # None while the queue runs.  The hung-task watchdog reads this
        # to spot a TX queue that stopped and never woke (lost
        # completions: the wedged-device signature).
        self._stopped_since_ns = None

    # -- queue control (driver side) -----------------------------------------

    def netif_start_queue(self):
        self._queue_stopped = False
        self._stopped_since_ns = None

    def netif_stop_queue(self):
        if not self._queue_stopped:
            self._stopped_since_ns = self._kernel.clock.now_ns
        self._queue_stopped = True

    def netif_wake_queue(self):
        if self._queue_stopped:
            self.tx_queue_wakeups += 1
        self._queue_stopped = False
        self._stopped_since_ns = None

    def netif_queue_stopped(self):
        return self._queue_stopped

    def netif_carrier_on(self):
        self._carrier_ok = True

    def netif_carrier_off(self):
        self._carrier_ok = False

    def netif_carrier_ok(self):
        return self._carrier_ok

    def netif_running(self):
        return bool(self.flags & IFF_UP)


class NetworkCore:
    def __init__(self, kernel):
        self._kernel = kernel
        self._devices = []
        self._ifindex = 0
        self.rx_sink = None  # callable(dev, skb) installed by workloads
        self.stack_rx_packets = 0
        self.stack_rx_bytes = 0
        self.napi = NapiCore(kernel, self)
        self.skb_pool = None  # created lazily at first netif_napi_add
        self.cpu_skb_pools = {}  # cpu index -> per-CPU SkbPool shard
        self._rx_batch_packets = 0
        self._rx_batch_bytes = 0
        kernel.kstat.register("napi", self._kstat_napi)
        kernel.kstat.register("net", self._kstat_net)

    def _kstat_napi(self):
        return self.napi.snapshot()

    def _kstat_net(self):
        out = {"stack_rx_packets": self.stack_rx_packets,
               "stack_rx_bytes": self.stack_rx_bytes}
        for dev in self._devices:
            stats = dev.stats
            prefix = dev.name
            out["%s.tx_packets" % prefix] = stats.tx_packets
            out["%s.rx_packets" % prefix] = stats.rx_packets
            out["%s.tx_queue_wakeups" % prefix] = dev.tx_queue_wakeups
            out["%s.queue_stopped" % prefix] = dev._queue_stopped
        for label, counters in self.skb_pool_stats().items():
            total = counters["hits"] + counters["misses"]
            out["skb_pool.%s.hits" % label] = counters["hits"]
            out["skb_pool.%s.misses" % label] = counters["misses"]
            out["skb_pool.%s.recycles" % label] = counters["recycles"]
            out["skb_pool.%s.hit_rate" % label] = (
                counters["hits"] / total if total else 0.0)
        return out

    def get_skb_pool(self, cpu=None):
        """The zero-copy rx pool; allocated on first use.

        Lazy so that non-NAPI configurations (the per-packet-IRQ
        ablation, non-network tests) never pay for the DMA arena.  Must
        first be called from process context (the arena allocation may
        sleep); NAPI registration guarantees that.

        ``cpu`` selects that CPU's arena shard (created on demand, with
        the shared pool as exhaustion fallback) so the rx hot path
        allocates from CPU-local memory and recycles to the owning
        arena -- buffers never bounce between CPUs.
        """
        if self.skb_pool is None:
            self.skb_pool = SkbPool(self._kernel)
        if cpu is None:
            return self.skb_pool
        pool = self.cpu_skb_pools.get(cpu)
        if pool is None:
            pool = self.cpu_skb_pools[cpu] = SkbPool(
                self._kernel, owner="skb-pool-cpu%d" % cpu,
                fallback=self.skb_pool)
        return pool

    def alloc_rx_skb(self, length, protocol=0x0800):
        """Allocate an rx skb from the current CPU's pool shard.

        On a single-CPU kernel this is the shared pool (callers on the
        hot path bind ``pool.alloc`` directly instead); on SMP it is
        the shard of whichever CPU the caller's softirq runs on.
        """
        kernel = self._kernel
        if kernel.nr_cpus > 1:
            return self.get_skb_pool(kernel.current_cpu.index).alloc(
                length, protocol)
        return self.get_skb_pool().alloc(length, protocol)

    def skb_pool_stats(self):
        """Aggregate + per-CPU pool counters for result reporting."""
        pools = [("shared", self.skb_pool)] + [
            ("cpu%d" % cpu, pool)
            for cpu, pool in sorted(self.cpu_skb_pools.items())
        ]
        out = {}
        for label, pool in pools:
            if pool is not None:
                out[label] = {"hits": pool.hits, "misses": pool.misses,
                              "recycles": pool.recycles}
        return out

    @property
    def devices(self):
        return list(self._devices)

    def register_netdev(self, dev):
        if dev.registered:
            return -EBUSY
        if "%d" in dev.name:
            dev.name = dev.name % self._ifindex
        self._ifindex += 1
        dev.registered = True
        self._devices.append(dev)
        return 0

    def unregister_netdev(self, dev):
        dev.registered = False
        self._devices.remove(dev)

    def find(self, name):
        for dev in self._devices:
            if dev.name == name:
                return dev
        return None

    # -- up/down (ifconfig) ------------------------------------------------------

    def dev_open(self, dev):
        if dev.flags & IFF_UP:
            return 0
        ret = dev.open(dev) if dev.open else 0
        if ret == 0:
            dev.flags |= IFF_UP
        return ret

    def dev_close(self, dev):
        if not dev.flags & IFF_UP:
            return 0
        # Clear the running state *before* the driver's stop op, as
        # Linux clears __LINK_STATE_START ahead of ndo_stop: anything
        # observing netif_running() mid-teardown (the hung-TX watchdog
        # in particular) must see the device as going down.
        dev.flags &= ~IFF_UP
        return dev.stop(dev) if dev.stop else 0

    # -- transmit path -------------------------------------------------------------

    def dev_queue_xmit(self, dev, skb):
        """Send one skb; returns NETDEV_TX_OK or NETDEV_TX_BUSY.

        Charges the protocol-stack cost the paper's netperf workload pays
        per packet above the driver.
        """
        if not dev.registered or not (dev.flags & IFF_UP):
            return -ENODEV
        if dev.netif_queue_stopped():
            return NETDEV_TX_BUSY
        kernel = self._kernel
        kernel.consume(
            int(kernel.costs.packet_cpu_ns + len(skb) * kernel.costs.byte_copy_ns),
            busy=True,
            category="netstack",
        )
        skb.timestamp_ns = kernel.clock.now_ns
        return dev.hard_start_xmit(skb, dev)

    # -- receive path ----------------------------------------------------------------

    def netif_rx(self, dev, skb):
        """Driver hands a received skb to the stack.

        Charges protocol processing plus the copy to user space the
        receive path pays (transmit is zero-copy DMA).
        """
        kernel = self._kernel
        kernel.consume(
            int(
                kernel.costs.rx_packet_cpu_ns
                + len(skb)
                * (kernel.costs.byte_copy_ns + kernel.costs.rx_user_copy_byte_ns)
            ),
            busy=True,
            category="netstack",
        )
        skb.dev = dev
        self.stack_rx_packets += 1
        self.stack_rx_bytes += len(skb)
        if self.rx_sink is not None:
            self.rx_sink(dev, skb)
        return 0

    def netif_receive_skb(self, dev, skb):
        """NAPI delivery: same accounting as netif_rx, batched CPU charge.

        Per-packet protocol cost is accumulated and charged once per poll
        by :meth:`flush_rx_batch` -- the *virtual* total is identical to
        per-packet ``netif_rx``, but the simulator pays one consume per
        poll instead of one per packet.  The pooled buffer is recycled
        after the sink returns; sinks that need the payload later must
        copy it (see SkbPool's FIFO slack).
        """
        size = len(skb.data)
        self._rx_batch_packets += 1
        self._rx_batch_bytes += size
        skb.dev = dev
        if self.rx_sink is not None:
            self.rx_sink(dev, skb)
        pool = skb._pool
        if pool is not None:  # inlined skb.recycle()
            skb._pool = None
            skb.dev = None  # don't pin a hot-unplugged device via the cache
            pool.recycles += 1
            pool._free.append(skb._slot)
            skb._slot = -1
        return 0

    def flush_rx_batch(self):
        """Charge the accumulated protocol-stack cost for one poll."""
        packets = self._rx_batch_packets
        if not packets:
            return
        nbytes = self._rx_batch_bytes
        self._rx_batch_packets = 0
        self._rx_batch_bytes = 0
        # Stack counters are batched too -- same totals, one update.
        self.stack_rx_packets += packets
        self.stack_rx_bytes += nbytes
        kernel = self._kernel
        kernel.consume(
            int(
                packets * kernel.costs.rx_packet_cpu_ns
                + nbytes
                * (kernel.costs.byte_copy_ns + kernel.costs.rx_user_copy_byte_ns)
            ),
            busy=True,
            category="netstack",
        )
