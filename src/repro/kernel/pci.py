"""PCI bus: enumeration, config space, BAR claiming, driver binding.

Device models construct a :class:`PciFunction` describing their config
space, BARs and interrupt line; drivers register a :class:`PciDriver` with
an ID table and get probed, exactly mirroring
``pci_register_driver`` / ``probe`` in Linux.
"""

import struct

from .errors import EBUSY, ENODEV, SimulationError

# Config-space offsets (subset).
PCI_VENDOR_ID = 0x00
PCI_DEVICE_ID = 0x02
PCI_COMMAND = 0x04
PCI_STATUS = 0x06
PCI_REVISION_ID = 0x08
PCI_SUBSYSTEM_VENDOR_ID = 0x2C
PCI_SUBSYSTEM_ID = 0x2E
PCI_INTERRUPT_LINE = 0x3C

PCI_COMMAND_IO = 0x1
PCI_COMMAND_MEMORY = 0x2
PCI_COMMAND_MASTER = 0x4

PCI_ANY_ID = 0xFFFF


class PciBar:
    """One base-address register: a claimed port or MMIO window."""

    __slots__ = ("base", "size", "is_mmio", "handler")

    def __init__(self, base, size, is_mmio, handler):
        self.base = base
        self.size = size
        self.is_mmio = is_mmio
        self.handler = handler


class PciFunction:
    """A PCI device function as seen by the kernel and drivers."""

    def __init__(self, vendor_id, device_id, irq, bars,
                 subsystem_vendor=0, subsystem_device=0, revision=0,
                 name="pci-dev"):
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.irq = irq
        self.bars = list(bars)
        self.subsystem_vendor = subsystem_vendor
        self.subsystem_device = subsystem_device
        self.revision = revision
        self.name = name
        self.config = bytearray(256)
        self.enabled = False
        self.is_busmaster = False
        self.driver = None
        self.driver_data = None
        self._regions = []
        struct.pack_into("<H", self.config, PCI_VENDOR_ID, vendor_id)
        struct.pack_into("<H", self.config, PCI_DEVICE_ID, device_id)
        struct.pack_into("<H", self.config, PCI_SUBSYSTEM_VENDOR_ID, subsystem_vendor)
        struct.pack_into("<H", self.config, PCI_SUBSYSTEM_ID, subsystem_device)
        self.config[PCI_REVISION_ID] = revision & 0xFF
        self.config[PCI_INTERRUPT_LINE] = irq & 0xFF

    # Linux-style resource accessors.
    def resource_start(self, bar):
        return self.bars[bar].base

    def resource_len(self, bar):
        return self.bars[bar].size


class PciDriver:
    """Driver registration record: subclass or fill in callables.

    ``probe(kernel, pci_func)`` returns 0 or negative errno;
    ``remove(kernel, pci_func)`` tears down.
    """

    name = "pci-driver"
    id_table = ()  # iterable of (vendor_id, device_id)

    def probe(self, kernel, pci_func):
        raise NotImplementedError

    def remove(self, kernel, pci_func):
        raise NotImplementedError

    def matches(self, func):
        for vendor, device in self.id_table:
            if vendor in (func.vendor_id, PCI_ANY_ID) and device in (
                func.device_id,
                PCI_ANY_ID,
            ):
                return True
        return False


class PciBus:
    def __init__(self, kernel):
        self._kernel = kernel
        self._functions = []
        self._drivers = []

    @property
    def functions(self):
        return list(self._functions)

    def add_function(self, func):
        self._functions.append(func)
        for driver in self._drivers:
            if func.driver is None and driver.matches(func):
                self._probe(driver, func)

    def remove_function(self, func):
        if func.driver is not None:
            func.driver.remove(self._kernel, func)
            func.driver = None
        self._functions.remove(func)

    def register_driver(self, driver):
        """Returns number of devices bound (Linux returns 0; callers may
        treat 'no device' as -ENODEV themselves, as many drivers do)."""
        self._drivers.append(driver)
        bound = 0
        for func in self._functions:
            if func.driver is None and driver.matches(func):
                if self._probe(driver, func) == 0:
                    bound += 1
        return bound

    def unregister_driver(self, driver):
        for func in self._functions:
            if func.driver is driver:
                driver.remove(self._kernel, func)
                func.driver = None
        self._drivers.remove(driver)

    def _probe(self, driver, func):
        ret = driver.probe(self._kernel, func)
        if ret == 0:
            func.driver = driver
        return ret

    # -- Linux helper API used by drivers --------------------------------------

    def enable_device(self, func):
        func.enabled = True
        cmd = struct.unpack_from("<H", func.config, PCI_COMMAND)[0]
        cmd |= PCI_COMMAND_IO | PCI_COMMAND_MEMORY
        struct.pack_into("<H", func.config, PCI_COMMAND, cmd)
        return 0

    def disable_device(self, func):
        func.enabled = False

    def set_master(self, func):
        func.is_busmaster = True
        cmd = struct.unpack_from("<H", func.config, PCI_COMMAND)[0]
        struct.pack_into("<H", func.config, PCI_COMMAND, cmd | PCI_COMMAND_MASTER)

    def request_regions(self, func, name):
        """Claim all BARs in the kernel I/O space; returns 0 or -EBUSY."""
        if func._regions:
            return -EBUSY
        try:
            for bar in func.bars:
                region = self._kernel.io.register(
                    bar.base, bar.size, bar.handler, name, bar.is_mmio
                )
                func._regions.append(region)
        except SimulationError:
            self.release_regions(func)
            return -EBUSY
        return 0

    def release_regions(self, func):
        for region in func._regions:
            self._kernel.io.unregister(region)
        func._regions = []

    def read_config_word(self, func, offset):
        self._kernel.consume(self._kernel.costs.port_io_ns, category="io")
        return struct.unpack_from("<H", func.config, offset)[0]

    def write_config_word(self, func, offset, value):
        self._kernel.consume(self._kernel.costs.port_io_ns, category="io")
        struct.pack_into("<H", func.config, offset, value & 0xFFFF)

    def read_config_dword(self, func, offset):
        self._kernel.consume(self._kernel.costs.port_io_ns, category="io")
        return struct.unpack_from("<I", func.config, offset)[0]

    def write_config_dword(self, func, offset, value):
        self._kernel.consume(self._kernel.costs.port_io_ns, category="io")
        struct.pack_into("<I", func.config, offset, value & 0xFFFFFFFF)

    def find_function(self, vendor_id, device_id):
        for func in self._functions:
            if func.vendor_id == vendor_id and func.device_id == device_id:
                return func
        return None
