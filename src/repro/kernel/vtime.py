"""Virtual time.

Every cost in the simulation -- register accesses, domain crossings,
marshaling, packet processing, explicit delays -- advances one deterministic
virtual clock.  Wall-clock performance of the host Python process is
irrelevant; benchmarks report virtual seconds, which makes results exactly
reproducible run to run.

CPU accounting distinguishes *busy* virtual time (the CPU was executing
driver or kernel code) from *idle* time (sleeping, waiting for the device).
CPU utilization over a window is busy/elapsed, matching how the paper
reports utilization for its workloads.
"""

from .errors import SimulationError

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000


class VirtualClock:
    """A monotonic nanosecond clock advanced only by the simulator."""

    def __init__(self):
        self._now_ns = 0

    @property
    def now_ns(self):
        return self._now_ns

    @property
    def now_us(self):
        return self._now_ns / NSEC_PER_USEC

    @property
    def now_ms(self):
        return self._now_ns / NSEC_PER_MSEC

    @property
    def now_s(self):
        return self._now_ns / NSEC_PER_SEC

    def _set(self, t_ns):
        if t_ns < self._now_ns:
            raise SimulationError(
                "virtual clock moved backwards: %d -> %d" % (self._now_ns, t_ns)
            )
        self._now_ns = t_ns


class CpuAccounting:
    """Tracks busy virtual time, attributed to named categories.

    A measurement window is opened with :meth:`start_window`; utilization
    and per-category charges are read back relative to that window.
    """

    def __init__(self, clock):
        self._clock = clock
        self._busy_ns = 0
        self._by_category = {}
        self._window_start_ns = 0
        self._window_busy_start_ns = 0
        # Most recent category charged; the sampling profiler uses it
        # to label samples taken outside any instrumented frame.  (The
        # inlined charge in irq dispatch skips this -- the profiler's
        # frame stack covers that path.)
        self.last_category = None

    @property
    def busy_ns(self):
        return self._busy_ns

    def charge(self, ns, category="kernel"):
        """Record ``ns`` of busy CPU time against ``category``."""
        if ns < 0:
            raise SimulationError("negative CPU charge: %d" % ns)
        self._busy_ns += ns
        self._by_category[category] = self._by_category.get(category, 0) + ns
        self.last_category = category

    def category_ns(self, category):
        return self._by_category.get(category, 0)

    def start_window(self):
        self._window_start_ns = self._clock.now_ns
        self._window_busy_start_ns = self._busy_ns

    def window_elapsed_ns(self):
        return self._clock.now_ns - self._window_start_ns

    def window_busy_ns(self):
        return self._busy_ns - self._window_busy_start_ns

    def utilization(self):
        """Fraction of the current window the CPU was busy (0.0--1.0)."""
        elapsed = self.window_elapsed_ns()
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.window_busy_ns() / elapsed)
