"""Execution-context tracking.

Linux driver code runs in one of several contexts -- process context,
softirq, hardirq -- and the set of operations allowed differs per context.
The two rules the Decaf architecture is built around:

* code running at interrupt priority must not sleep, and
* code holding a spinlock must not sleep,

because invoking the user-level decaf driver always sleeps (it schedules a
user thread).  This module tracks the current context so that the locking
and XPC layers can enforce the rules.
"""

from .errors import SleepInAtomicError

PROCESS = "process"
SOFTIRQ = "softirq"
HARDIRQ = "hardirq"


class ExecContext:
    """The execution context of the (single simulated) CPU."""

    def __init__(self):
        self._irq_depth = 0
        self._softirq_depth = 0
        self._spinlocks_held = []
        self._preempt_disabled = 0
        # Set by Kernel.enable_lockdep(); violations found by
        # might_sleep are then also recorded as lockdep reports.
        self.lockdep = None

    # -- context queries ---------------------------------------------------

    @property
    def irq_depth(self):
        return self._irq_depth

    def in_irq(self):
        """True in hardirq context (interrupt handler)."""
        return self._irq_depth > 0

    def in_softirq(self):
        return self._softirq_depth > 0

    def in_interrupt(self):
        return self.in_irq() or self.in_softirq()

    def in_atomic(self):
        """True if sleeping is forbidden right now."""
        return (
            self.in_interrupt()
            or bool(self._spinlocks_held)
            or self._preempt_disabled > 0
        )

    def current_context(self):
        if self.in_irq():
            return HARDIRQ
        if self.in_softirq():
            return SOFTIRQ
        return PROCESS

    @property
    def spinlocks_held(self):
        return tuple(self._spinlocks_held)

    # -- context transitions (used by the kernel core and lock layer) ------

    def enter_irq(self):
        self._irq_depth += 1

    def exit_irq(self):
        assert self._irq_depth > 0
        self._irq_depth -= 1

    def enter_softirq(self):
        self._softirq_depth += 1

    def exit_softirq(self):
        assert self._softirq_depth > 0
        self._softirq_depth -= 1

    def push_spinlock(self, lock):
        self._spinlocks_held.append(lock)

    def pop_spinlock(self, lock):
        # Spinlocks are released in any order in real drivers; remove the
        # most recent matching entry.
        for i in range(len(self._spinlocks_held) - 1, -1, -1):
            if self._spinlocks_held[i] is lock:
                del self._spinlocks_held[i]
                return
        raise AssertionError("releasing spinlock %r not held" % (lock,))

    def preempt_disable(self):
        self._preempt_disabled += 1

    def preempt_enable(self):
        assert self._preempt_disabled > 0
        self._preempt_disabled -= 1

    # -- rule enforcement ---------------------------------------------------

    def might_sleep(self, what="operation"):
        """Raise unless sleeping is currently allowed.

        Mirrors Linux's ``might_sleep()`` debug check, but fatal: the Decaf
        runtime must never let potentially-sleeping work reach atomic
        context, so the simulator treats a violation as a test failure.
        """
        if self.in_atomic():
            if self.lockdep is not None:
                self.lockdep.note_might_sleep(what, self)
            held = ", ".join(getattr(l, "name", "?") for l in self._spinlocks_held)
            raise SleepInAtomicError(
                "%s may sleep, but CPU is in %s context%s"
                % (
                    what,
                    self.current_context(),
                    " holding spinlock(s): " + held if held else "",
                )
            )
