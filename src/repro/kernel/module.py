"""Module loader: insmod / rmmod with init-latency measurement.

The paper measures driver initialization latency as the latency of running
the ``insmod`` module loader (section 4.2).  :meth:`ModuleLoader.insmod`
reproduces that measurement point: it records the virtual time consumed
from the start of module init to its return, including every device access,
delay, and XPC crossing the init path performs.
"""

from .errors import EBUSY, KernelError, MemoryLeakError


class KernelModule:
    """Base class for kernel modules (drivers link against this).

    Subclasses implement ``init_module(kernel)`` returning 0 or a negative
    errno, and ``cleanup_module(kernel)``.
    """

    name = "module"

    def init_module(self, kernel):
        raise NotImplementedError

    def cleanup_module(self, kernel):
        raise NotImplementedError


class ModuleLoader:
    def __init__(self, kernel):
        self._kernel = kernel
        self._loaded = {}
        self.last_init_latency_ns = None

    @property
    def loaded(self):
        return dict(self._loaded)

    def insmod(self, module):
        """Load a module; returns 0 or negative errno.

        Records the virtual-time latency of the init call in
        :attr:`last_init_latency_ns`.
        """
        kernel = self._kernel
        if module.name in self._loaded:
            return -EBUSY
        start_ns = kernel.clock.now_ns
        # Cost of the loader itself: parse, relocate, link.
        kernel.consume(kernel.costs.insmod_base_ns, busy=True, category="module")
        ret = module.init_module(kernel)
        self.last_init_latency_ns = kernel.clock.now_ns - start_ns
        if ret == 0:
            self._loaded[module.name] = module
        return ret

    def rmmod(self, name, check_leaks=True):
        """Unload; raises :class:`MemoryLeakError` if allocations remain."""
        module = self._loaded.pop(name, None)
        if module is None:
            raise KernelError("module %r not loaded" % name)
        module.cleanup_module(self._kernel)
        if check_leaks:
            leaked = self._kernel.memory.live_allocations(owner=name)
            if leaked:
                raise MemoryLeakError(
                    "module %s leaked %d allocation(s) totalling %d bytes"
                    % (name, len(leaked), sum(a.size if hasattr(a, "size") else len(a.data) for a in leaked))
                )
