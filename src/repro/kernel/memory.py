"""Kernel memory management: kmalloc/kfree accounting and DMA memory.

Two properties matter to Decaf:

* ``GFP_KERNEL`` allocations may sleep and are therefore forbidden in
  atomic context (``GFP_ATOMIC`` is the non-sleeping variant) -- another
  context rule that pins code into the driver nucleus.
* Allocations are tracked per-owner so module unload can detect leaks;
  the decaf drivers' garbage-collected shared objects are verified against
  this ledger.

DMA-coherent memory doubles as the backing store for device descriptor
rings: a :class:`DmaRegion` is a ``bytearray`` visible to both the driver
and the device model, which is how real DMA behaves.
"""

import itertools

from .errors import ENOMEM, SimulationError

GFP_KERNEL = "GFP_KERNEL"
GFP_ATOMIC = "GFP_ATOMIC"


class Allocation:
    __slots__ = ("address", "size", "owner", "flags", "freed")

    def __init__(self, address, size, owner, flags):
        self.address = address
        self.size = size
        self.owner = owner
        self.flags = flags
        self.freed = False


class DmaRegion:
    """Physically-contiguous memory shared between CPU and device."""

    __slots__ = ("dma_addr", "data", "owner", "freed")

    def __init__(self, dma_addr, size, owner):
        self.dma_addr = dma_addr
        self.data = bytearray(size)
        self.owner = owner
        self.freed = False

    def __len__(self):
        return len(self.data)


class MemoryManager:
    def __init__(self, kernel, total_bytes=512 * 1024 * 1024):
        self._kernel = kernel
        self._total = total_bytes
        self._used = 0
        self._addr = itertools.count(0x1000_0000, 0x100)
        self._next_dma = 0x8000_0000
        self._live = {}
        self._dma_regions = {}
        self._dma_hit = None  # last region resolved by dma_find
        self.alloc_count = 0
        self.alloc_seq = 0  # every attempt, success or not, across both paths
        self.fail_next = 0  # fault injection: fail the next N allocations
        # Declarative fault injection (repro.faults): called with
        # (seq, size, owner) on every attempt; truthy return fails it.
        self.fault_hook = None

    def _should_fail(self, size, owner):
        """Single choke point for injected allocation failures.

        Both ``kmalloc`` and ``dma_alloc_coherent`` route through here,
        so one ``fail_next`` decrement covers exactly one attempt no
        matter which path it lands on, and ``alloc_seq`` gives fault
        plans a stable "Nth allocation" to aim at.
        """
        self.alloc_seq += 1
        hook = self.fault_hook
        if hook is not None and hook(self.alloc_seq, size, owner):
            return True
        if self.fail_next > 0:
            self.fail_next -= 1
            return True
        return False

    @property
    def used_bytes(self):
        return self._used

    def kmalloc(self, size, flags=GFP_KERNEL, owner="kernel"):
        """Allocate; returns an :class:`Allocation` or None on failure."""
        if flags == GFP_KERNEL:
            self._kernel.context.might_sleep("kmalloc(GFP_KERNEL)")
        elif flags != GFP_ATOMIC:
            raise SimulationError("unknown gfp flags %r" % (flags,))
        if self._should_fail(size, owner):
            return None
        if self._used + size > self._total:
            return None
        self._kernel.charge(self._kernel.costs.kmalloc_ns, "mm")
        addr = next(self._addr)
        alloc = Allocation(addr, size, owner, flags)
        self._live[addr] = alloc
        self._used += size
        self.alloc_count += 1
        return alloc

    def kfree(self, alloc):
        if alloc is None:
            return
        if alloc.freed:
            raise SimulationError(
                "double free of %d-byte allocation owned by %s"
                % (alloc.size, alloc.owner)
            )
        alloc.freed = True
        del self._live[alloc.address]
        self._used -= alloc.size

    def dma_alloc_coherent(self, size, owner="kernel"):
        """Allocate DMA memory usable by device models; may sleep."""
        self._kernel.context.might_sleep("dma_alloc_coherent")
        if self._should_fail(size, owner):
            return None
        self._kernel.charge(self._kernel.costs.kmalloc_ns * 4, "mm")
        dma_addr = self._next_dma
        # Keep regions 4 KiB-aligned and non-overlapping.
        self._next_dma += (size + 0xFFF) & ~0xFFF
        region = DmaRegion(dma_addr, size, owner)
        self._dma_regions[dma_addr] = region
        self._used += size
        return region

    def dma_free_coherent(self, region):
        if region is None:
            return
        if region.freed:
            raise SimulationError("double free of DMA region @%x" % region.dma_addr)
        region.freed = True
        del self._dma_regions[region.dma_addr]
        self._used -= len(region.data)
        if self._dma_hit is region:
            self._dma_hit = None

    def dma_region(self, dma_addr):
        """Device-side lookup of a DMA region by bus address."""
        return self._dma_regions.get(dma_addr)

    def dma_find(self, addr):
        """Resolve any bus address to ``(region, offset)`` or (None, 0).

        Supports addresses pointing into the middle of a region, which is
        how devices see buffer pointers in descriptor rings.  Datapath
        lookups hit the same region (the rx/tx buffer arena) for every
        packet, so the last resolved region is checked first.
        """
        hit = self._dma_hit
        if hit is not None:
            base = hit.dma_addr
            if base <= addr < base + len(hit.data):
                return hit, addr - base
        region = self._dma_regions.get(addr)
        if region is not None:
            self._dma_hit = region
            return region, 0
        for base, region in self._dma_regions.items():
            if base <= addr < base + len(region.data):
                self._dma_hit = region
                return region, addr - base
        return None, 0

    def live_allocations(self, owner=None):
        allocs = list(self._live.values()) + list(self._dma_regions.values())
        if owner is None:
            return allocs
        return [a for a in allocs if a.owner == owner]
