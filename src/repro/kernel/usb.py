"""USB core: URBs, devices, and the host-controller driver interface.

The uhci-hcd driver is a *host controller* driver: the USB core hands it
URBs (USB request blocks) via ``urb_enqueue`` and the HCD programs the
controller hardware to move the data, completing URBs from its interrupt
handler.  That data path -- enqueue, frame processing, completion -- is
what keeps most of uhci-hcd in the driver nucleus (the paper moved only
4% of its functions to Java).

The core also provides the synchronous ``usb_bulk_msg`` helper the
tar-to-flash-drive workload uses.
"""

from .errors import EINVAL, ENODEV, EPIPE, ETIMEDOUT

# Pipe/endpoint encoding.
PIPE_CONTROL = 0
PIPE_BULK = 2
PIPE_INTERRUPT = 3

USB_DIR_OUT = 0
USB_DIR_IN = 0x80

USB_SPEED_LOW = "low"
USB_SPEED_FULL = "full"


def usb_sndbulkpipe(device, endpoint):
    return (PIPE_BULK << 8) | (endpoint & 0x7F)


def usb_rcvbulkpipe(device, endpoint):
    return (PIPE_BULK << 8) | (endpoint & 0x7F) | USB_DIR_IN


def pipe_type(pipe):
    return (pipe >> 8) & 0x3

def pipe_endpoint(pipe):
    return pipe & 0x7F

def pipe_in(pipe):
    return bool(pipe & USB_DIR_IN)


class UsbDeviceDescriptor:
    def __init__(self, vendor_id, product_id, device_class=0, max_packet=64):
        self.vendor_id = vendor_id
        self.product_id = product_id
        self.device_class = device_class
        self.max_packet = max_packet


class UsbDevice:
    """A device on the bus, reachable through a root-hub port."""

    def __init__(self, descriptor, speed=USB_SPEED_FULL, name="usb-dev"):
        self.descriptor = descriptor
        self.speed = speed
        self.name = name
        self.address = 0
        self.port = None
        self.model = None  # the device model handling transfers
        self.hcd = None  # the host controller this device hangs off

    def __repr__(self):
        return "<UsbDevice %s addr=%d>" % (self.name, self.address)


class Urb:
    """A USB request block."""

    _next_id = 0

    def __init__(self, device, pipe, buffer, complete=None, context=None):
        Urb._next_id += 1
        self.id = Urb._next_id
        self.device = device
        self.pipe = pipe
        self.buffer = buffer  # bytearray for IN, bytes for OUT
        self.complete = complete
        self.context = context
        self.status = -EINPROGRESS_STATUS
        self.actual_length = 0

    def is_in(self):
        return pipe_in(self.pipe)


# URB in-flight status marker (positive sentinel; Linux uses -EINPROGRESS).
EINPROGRESS_STATUS = 115


class UsbCore:
    def __init__(self, kernel):
        self._kernel = kernel
        self._hcds = []
        self._devices = []
        self._next_address = 1
        self.urbs_submitted = 0
        self.urbs_completed = 0

    # -- HCD registration ------------------------------------------------------

    def register_hcd(self, hcd):
        """``hcd`` provides urb_enqueue(urb) -> int and urb_dequeue(urb).

        The core supports many controllers at once (a fleet kernel
        hosts one per UHCI function); URBs route to the HCD whose
        root-hub port the target device hangs off.
        """
        if hcd not in self._hcds:
            self._hcds.append(hcd)
        return hcd

    def unregister_hcd(self, hcd):
        if hcd in self._hcds:
            self._hcds.remove(hcd)

    @property
    def hcd(self):
        """The most recently registered controller (single-HCD compat)."""
        return self._hcds[-1] if self._hcds else None

    def _hcd_for(self, device):
        hcd = getattr(device, "hcd", None)
        if hcd is not None and hcd in self._hcds:
            return hcd
        return self._hcds[-1] if self._hcds else None

    # -- device lifecycle (called by HCD on port events) ------------------------

    def connect_device(self, device, hcd=None):
        if hcd is not None:
            device.hcd = hcd
        # Addresses are a per-bus namespace (1..127), as on real USB:
        # TDs carry the address in one byte, and a fleet of controllers
        # would otherwise exhaust a global counter under hotplug churn.
        bus = getattr(device, "hcd", None)
        used = {d.address for d in self._devices
                if getattr(d, "hcd", None) is bus}
        address = 1
        while address in used and address < 127:
            address += 1
        if address in used:
            return -ENODEV  # bus full
        device.address = address
        self._devices.append(device)
        return device.address

    def disconnect_device(self, device):
        if device in self._devices:
            self._devices.remove(device)

    @property
    def devices(self):
        return list(self._devices)

    # -- URB submission ------------------------------------------------------------

    def submit_urb(self, urb):
        hcd = self._hcd_for(urb.device)
        if hcd is None:
            return -ENODEV
        urb.status = -EINPROGRESS_STATUS
        urb.actual_length = 0
        self.urbs_submitted += 1
        return hcd.urb_enqueue(urb)

    def _giveback_urb(self, urb, status, actual_length):
        """HCD reports completion (usually from its irq handler)."""
        urb.status = status
        urb.actual_length = actual_length
        self.urbs_completed += 1
        if urb.complete is not None:
            urb.complete(urb)

    def usb_bulk_msg(self, device, pipe, data, timeout_ms=5000):
        """Synchronous bulk transfer.

        Returns (status, actual_length).  Advances virtual time while
        waiting for the HCD to complete the URB.
        """
        self._kernel.context.might_sleep("usb_bulk_msg")
        done = {"flag": False}

        def complete(urb):
            done["flag"] = True

        urb = Urb(device, pipe, data, complete=complete)
        ret = self.submit_urb(urb)
        if ret != 0:
            return ret, 0
        deadline = self._kernel.clock.now_ns + timeout_ms * 1_000_000
        while not done["flag"]:
            t = self._kernel.events.peek_time()
            if t is None or t > deadline:
                hcd = self._hcd_for(urb.device)
                if hcd is not None:
                    hcd.urb_dequeue(urb)
                return -ETIMEDOUT, urb.actual_length
            self._kernel.run_until(t)
        return urb.status, urb.actual_length
