"""Port I/O and memory-mapped I/O.

Device models register handler objects for port ranges and MMIO regions;
drivers use the Linux accessor names (``inb``/``outb``/``inl``/``outl``,
``readl``/``writel``).  Every access charges the virtual clock -- register
access cost is a first-order term in driver initialization latency, which
is one of the quantities Table 3 reports.

Port I/O (``outb`` and friends) is exactly the functionality the paper
calls out as *inexpressible in Java*: it lives in the decaf runtime's C
helper routines.  Our decaf runtime wraps these accessors the same way.
"""

from bisect import bisect_left, bisect_right

from .errors import SimulationError


class IoRegion:
    """A claimed range of port space or MMIO, bound to a device handler.

    The handler must expose ``read(offset, size)`` and
    ``write(offset, value, size)``.
    """

    __slots__ = ("base", "size", "handler", "name", "is_mmio")

    def __init__(self, base, size, handler, name, is_mmio):
        self.base = base
        self.size = size
        self.handler = handler
        self.name = name
        self.is_mmio = is_mmio

    def contains(self, addr, size):
        return self.base <= addr and addr + size <= self.base + self.size


class IoSpace:
    def __init__(self, kernel):
        self._kernel = kernel
        # Regions live in per-space sorted arrays (bases and regions in
        # lockstep) so lookup is a bisect plus a last-hit memo: a fleet
        # kernel claims thousands of regions, and a linear scan per
        # register access dominates its profile.  Index 0 is port
        # space, index 1 MMIO.
        self._bases = ([], [])
        self._sorted = ([], [])
        self._last_hit = [None, None]
        self.port_accesses = 0
        self.mmio_accesses = 0
        # Conformance tap: a callable(op, region_name, offset, size, value)
        # invoked for every register access ("r" after the read returns,
        # "w" before the device sees it).  Offsets are region-relative so
        # identical driver behaviour digests identically even if bus
        # enumeration assigns different bases.
        self.trace_tap = None
        # Fault injection: addr -> forced read value.  A wedged register
        # reads that value and drops writes -- the signature of a hung
        # device (all-ones is what a dead PCI function returns).
        self._wedged = {}

    # -- fault injection (repro.faults) --------------------------------------

    def wedge(self, addr, value=0xFFFFFFFF):
        self._wedged[addr] = value

    def unwedge(self, addr):
        self._wedged.pop(addr, None)

    # -- region management (device/bus side) --------------------------------

    def register(self, base, size, handler, name, is_mmio):
        space = 1 if is_mmio else 0
        bases = self._bases[space]
        regions = self._sorted[space]
        index = bisect_right(bases, base)
        # The sorted array is overlap-free, so only the would-be
        # neighbours can conflict with the new range.
        for neighbour in (regions[index - 1] if index else None,
                          regions[index] if index < len(regions) else None):
            if neighbour is not None and not (
                base + size <= neighbour.base
                or neighbour.base + neighbour.size <= base
            ):
                raise SimulationError(
                    "I/O region %s overlaps existing region %s"
                    % (name, neighbour.name)
                )
        region = IoRegion(base, size, handler, name, is_mmio)
        bases.insert(index, base)
        regions.insert(index, region)
        return region

    def unregister(self, region):
        space = 1 if region.is_mmio else 0
        regions = self._sorted[space]
        index = bisect_left(self._bases[space], region.base)
        if index >= len(regions) or regions[index] is not region:
            raise ValueError("I/O region %s is not registered" % region.name)
        del self._bases[space][index]
        del regions[index]
        if self._last_hit[space] is region:
            self._last_hit[space] = None

    def _find(self, addr, size, is_mmio):
        space = 1 if is_mmio else 0
        hit = self._last_hit[space]
        if hit is not None and hit.contains(addr, size):
            return hit
        bases = self._bases[space]
        index = bisect_right(bases, addr) - 1
        if index >= 0:
            region = self._sorted[space][index]
            if region.contains(addr, size):
                self._last_hit[space] = region
                return region
        raise SimulationError(
            "access to unclaimed %s address %#x"
            % ("MMIO" if is_mmio else "port", addr)
        )

    # -- access primitives ----------------------------------------------------

    def _charge(self, is_mmio):
        costs = self._kernel.costs
        if is_mmio:
            self.mmio_accesses += 1
            self._kernel.consume(costs.mmio_ns, busy=True, category="io")
        else:
            self.port_accesses += 1
            self._kernel.consume(costs.port_io_ns, busy=True, category="io")

    def read(self, addr, size, is_mmio):
        region = self._find(addr, size, is_mmio)
        self._charge(is_mmio)
        if self._wedged:
            forced = self._wedged.get(addr)
            if forced is not None:
                return forced & ((1 << (8 * size)) - 1)
        value = region.handler.read(addr - region.base, size)
        mask = (1 << (8 * size)) - 1
        value &= mask
        tap = self.trace_tap
        if tap is not None:
            tap("r", region.name, addr - region.base, size, value)
        return value

    def write(self, addr, value, size, is_mmio):
        region = self._find(addr, size, is_mmio)
        self._charge(is_mmio)
        if self._wedged and addr in self._wedged:
            return
        mask = (1 << (8 * size)) - 1
        value &= mask
        tap = self.trace_tap
        if tap is not None:
            tap("w", region.name, addr - region.base, size, value)
        region.handler.write(addr - region.base, value, size)

    # -- Linux-style accessors --------------------------------------------------

    def inb(self, port):
        return self.read(port, 1, is_mmio=False)

    def inw(self, port):
        return self.read(port, 2, is_mmio=False)

    def inl(self, port):
        return self.read(port, 4, is_mmio=False)

    def outb(self, value, port):
        self.write(port, value, 1, is_mmio=False)

    def outw(self, value, port):
        self.write(port, value, 2, is_mmio=False)

    def outl(self, value, port):
        self.write(port, value, 4, is_mmio=False)

    def readb(self, addr):
        return self.read(addr, 1, is_mmio=True)

    def readw(self, addr):
        return self.read(addr, 2, is_mmio=True)

    def readl(self, addr):
        return self.read(addr, 4, is_mmio=True)

    def writeb(self, value, addr):
        self.write(addr, value, 1, is_mmio=True)

    def writew(self, value, addr):
        self.write(addr, value, 2, is_mmio=True)

    def writel(self, value, addr):
        self.write(addr, value, 4, is_mmio=True)
