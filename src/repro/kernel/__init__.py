"""A deterministic simulated Linux kernel.

This package is the substrate the Decaf Drivers reproduction runs on: a
discrete-event kernel with virtual time, execution-context rule
enforcement (no sleeping in interrupt context or under spinlocks), IRQs,
timers, workqueues, kmalloc/DMA memory, a module loader that measures
init latency, and PCI / network / sound / USB / input subsystems.

:func:`make_kernel` builds a fully-wired kernel.
"""

from .context import ExecContext
from .core import Kernel, MAX_CPUS, VCpu
from .costs import CostModel, DEFAULT_COSTS
from .errors import (
    ContextViolation,
    DeadlockError,
    KernelError,
    KernelPanic,
    MemoryLeakError,
    SimulationError,
    SleepInAtomicError,
)
from .input import InputCore, InputDev, SerioPort
from .ioports import IoSpace
from .irq import IRQ_HANDLED, IRQ_NONE, IrqController
from .locks import LockDep, LockDepReport, Mutex, Semaphore, SpinLock
from .memory import GFP_ATOMIC, GFP_KERNEL, MemoryManager
from .module import KernelModule, ModuleLoader
from .napi import NapiCore, NapiStruct
from .netdev import (
    NETDEV_TX_BUSY,
    NETDEV_TX_OK,
    NetDevice,
    NetDeviceStats,
    NetworkCore,
    SkBuff,
    SkbPool,
)
from .pci import PciBar, PciBus, PciDriver, PciFunction
from .sound import (
    Ac97Codec,
    SNDRV_PCM_TRIGGER_START,
    SNDRV_PCM_TRIGGER_STOP,
    SndCard,
    SoundCore,
)
from .timers import KernelTimer, WorkItem, Workqueue
from .usb import UsbCore, UsbDevice, UsbDeviceDescriptor, Urb
from .vtime import NSEC_PER_MSEC, NSEC_PER_SEC, NSEC_PER_USEC, VirtualClock


def make_kernel(costs=None, sound_use_mutex=False, nr_cpus=1, nr_irqs=32):
    """Build a kernel with all bus/class subsystems attached.

    ``sound_use_mutex`` selects the paper's modified sound library
    (mutexes instead of spinlocks around driver ops); the decaf driver
    stack requires it.  ``nr_cpus`` > 1 builds an SMP kernel: per-CPU
    contexts/accounting/runqueues, CPU-targeted event dispatch, and
    per-CPU NAPI softirqs (see ``repro.kernel.core.VCpu``).
    ``nr_irqs`` sizes the interrupt controller -- fleet rigs hosting
    thousands of devices need more than the default 32 lines.
    """
    kernel = Kernel(costs=costs, nr_cpus=nr_cpus, nr_irqs=nr_irqs)
    kernel.pci = PciBus(kernel)
    kernel.net = NetworkCore(kernel)
    kernel.sound = SoundCore(kernel, use_mutex=sound_use_mutex)
    kernel.usb = UsbCore(kernel)
    kernel.input = InputCore(kernel)
    return kernel


__all__ = [
    "Kernel",
    "VCpu",
    "MAX_CPUS",
    "make_kernel",
    "CostModel",
    "DEFAULT_COSTS",
    "KernelModule",
    "KernelError",
    "ContextViolation",
    "SleepInAtomicError",
    "DeadlockError",
    "KernelPanic",
    "MemoryLeakError",
    "SimulationError",
    "SpinLock",
    "Mutex",
    "Semaphore",
    "KernelTimer",
    "WorkItem",
    "Workqueue",
    "GFP_KERNEL",
    "GFP_ATOMIC",
    "IRQ_HANDLED",
    "IRQ_NONE",
    "NetDevice",
    "SkBuff",
    "SkbPool",
    "NapiCore",
    "NapiStruct",
    "NETDEV_TX_OK",
    "NETDEV_TX_BUSY",
    "PciBus",
    "PciBar",
    "PciDriver",
    "PciFunction",
    "SndCard",
    "SoundCore",
    "Ac97Codec",
    "UsbCore",
    "UsbDevice",
    "UsbDeviceDescriptor",
    "Urb",
    "InputDev",
    "SerioPort",
    "NSEC_PER_MSEC",
    "NSEC_PER_SEC",
    "NSEC_PER_USEC",
]
