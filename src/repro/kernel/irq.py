"""Interrupt controller.

Devices raise interrupts on numbered lines; the controller dispatches the
registered handler immediately (in hardirq context) unless the line or local
interrupts are masked, in which case the interrupt is latched and delivered
on unmask.  ``disable_irq``/``enable_irq`` are the primitives the Decaf
*nuclear runtime* uses to keep the device from interrupting the driver while
the decaf driver runs at user level (paper section 3.1.3).
"""

from .errors import KernelPanic, SimulationError

IRQ_NONE = 0
IRQ_HANDLED = 1


class _IrqLine:
    __slots__ = ("number", "handler", "dev_id", "name", "disable_depth",
                 "pending", "count", "kstat_key")

    def __init__(self, number):
        self.number = number
        self.handler = None
        self.dev_id = None
        self.name = None
        self.disable_depth = 0
        self.pending = False
        self.count = 0  # deliveries on this line (/proc/interrupts style)
        # Pre-rendered kstat key: with thousands of lines the per-line
        # "%d" format in every snapshot shows up in fleet profiles.
        self.kstat_key = "line%d.count" % number


class IrqController:
    def __init__(self, kernel, nr_irqs=32):
        self._kernel = kernel
        self._lines = [_IrqLine(i) for i in range(nr_irqs)]
        self._local_disable_depth = 0
        self._local_pending = set()
        # MSI-X-style affinity: irq number -> target CPU index.  Only
        # meaningful on a multi-CPU kernel; affinitized lines deliver
        # via a CPU-targeted hardirq event instead of synchronously.
        self._affinity = {}
        self.delivered = 0
        self.spurious = 0
        # Observation/steering hooks for repro.explore.  ``raise_tap``
        # (callable(irq)) sees every device assert before masking;
        # ``delivery_gate`` (callable(irq) -> bool) may claim an assert,
        # which is then latched on ``_gated`` until ``release_gated``.
        # Both cost one ``is not None`` test when unset.
        self.raise_tap = None
        self.delivery_gate = None
        self._gated = []
        kernel.kstat.register("irq", self._kstat)

    def _kstat(self):
        out = {"delivered": self.delivered, "spurious": self.spurious}
        for line in self._lines:
            if line.count or line.handler is not None:
                out[line.kstat_key] = line.count
        return out

    def _line(self, irq):
        if not 0 <= irq < len(self._lines):
            raise SimulationError("bad irq number %d" % irq)
        return self._lines[irq]

    # -- driver API ---------------------------------------------------------

    def request_irq(self, irq, handler, name, dev_id=None):
        """Register ``handler(irq, dev_id)`` for a line.  Returns 0 or -EBUSY."""
        from .errors import EBUSY

        line = self._line(irq)
        if line.handler is not None:
            return -EBUSY
        line.handler = handler
        line.dev_id = dev_id
        line.name = name
        return 0

    def rebind_irq(self, irq, handler):
        """Swap a registered line's handler in place.

        The line keeps its name, dev_id, masks, and pending state --
        this is the hook a driver uses to install a specialized
        (compiled) handler after setup, or restore the generic one
        before teardown.  Raises if the line was never requested.
        """
        line = self._line(irq)
        if line.handler is None:
            raise SimulationError(
                "rebind_irq(%d) on a free line" % irq)
        line.handler = handler

    def free_irq(self, irq, dev_id=None):
        line = self._line(irq)
        line.handler = None
        line.dev_id = None
        line.name = None
        line.pending = False
        # The next request_irq must see the line in hardware-reset
        # state: a mask depth, affinity target, or latched local-pending
        # bit left behind by the previous owner would mask or mis-steer
        # the re-probed driver's interrupts.
        line.disable_depth = 0
        self._affinity.pop(irq, None)
        self._local_pending.discard(irq)
        if self._gated:
            self._gated = [i for i in self._gated if i != irq]

    def disable_irq(self, irq):
        """Mask one line; nests."""
        self._line(irq).disable_depth += 1

    def enable_irq(self, irq):
        line = self._line(irq)
        if line.disable_depth == 0:
            raise SimulationError("enable_irq(%d) without disable" % irq)
        line.disable_depth -= 1
        if line.disable_depth == 0 and line.pending:
            line.pending = False
            self.raise_irq(line.number)

    def irq_disabled(self, irq):
        return self._line(irq).disable_depth > 0

    def irqs_enabled(self):
        """True when local interrupts are unmasked (lockdep usage)."""
        return self._local_disable_depth == 0

    def local_irq_disable(self):
        self._local_disable_depth += 1

    def local_irq_enable(self):
        if self._local_disable_depth == 0:
            raise SimulationError("local_irq_enable without disable")
        self._local_disable_depth -= 1
        if self._local_disable_depth == 0 and self._local_pending:
            self._deliver_local_pending()

    def _deliver_local_pending(self):
        pending = sorted(self._local_pending)
        self._local_pending.clear()
        for irq in pending:
            line = self._line(irq)
            if line.disable_depth != 0:
                line.pending = True
            elif irq in self._affinity and self._kernel.nr_cpus > 1:
                self.raise_irq(irq)
            else:
                self._dispatch(line)

    # -- affinity (MSI-X style) ----------------------------------------------

    def set_affinity(self, irq, cpu):
        """Steer a line's delivery to one CPU (``irq_set_affinity``).

        On a single-CPU kernel this is recorded but delivery stays the
        classic synchronous dispatch.
        """
        kernel = self._kernel
        if not 0 <= cpu < kernel.nr_cpus:
            raise SimulationError(
                "irq %d affinity to nonexistent cpu %d" % (irq, cpu))
        self._line(irq)  # validate the number
        self._affinity[irq] = cpu

    def affinity_of(self, irq):
        return self._affinity.get(irq)

    def _deliver_affine(self, line):
        """Fire an affinitized interrupt on its target CPU.

        Runs as a CPU-targeted event; masks are re-checked at dispatch
        time because the line (or local interrupts) may have been
        disabled between assert and delivery.
        """
        if self._local_disable_depth > 0:
            self._local_pending.add(line.number)
            return
        if line.disable_depth > 0:
            line.pending = True
            return
        self._dispatch(line)

    # -- device API ----------------------------------------------------------

    def raise_irq(self, irq):
        """A device asserts its interrupt line."""
        lines = self._lines
        if 0 <= irq < len(lines):
            line = lines[irq]
        else:
            raise SimulationError("bad irq number %d" % irq)
        if self.raise_tap is not None:
            self.raise_tap(irq)
        if self.delivery_gate is not None and self.delivery_gate(irq):
            self._gated.append(irq)
            return
        kernel = self._kernel
        cpu = self._affinity.get(irq) if self._affinity else None
        if cpu is not None and kernel.nr_cpus > 1:
            # Cross-CPU delivery: post a targeted event; the handler
            # runs on the affinity CPU (context entry happens inside
            # _dispatch, so the event itself is a plain carrier).
            kernel.events.schedule_after(
                0, lambda line=line: self._deliver_affine(line),
                name="irq%d-affine" % irq, cpu=cpu)
            return
        if self._local_disable_depth > 0:
            self._local_pending.add(irq)
            return
        if line.disable_depth > 0:
            line.pending = True
            return
        self._dispatch(line)

    def release_gated(self):
        """Deliver asserts the ``delivery_gate`` deferred, in order.

        The gate is suspended for the duration so the replayed asserts
        take the normal masking/affinity path instead of re-latching.
        Returns the number of asserts released.
        """
        if not self._gated:
            return 0
        gated, self._gated = self._gated, []
        gate, self.delivery_gate = self.delivery_gate, None
        try:
            for irq in gated:
                self.raise_irq(irq)
        finally:
            self.delivery_gate = gate
        return len(gated)

    # -- internal -------------------------------------------------------------

    def _dispatch(self, line):
        kernel = self._kernel
        entry_cost = kernel.costs.irq_entry_ns
        cur = kernel.current_cpu
        # Inlined charge(entry_cost, "irq") pair: this is the hottest
        # fixed cost on the interrupt path, so the two method calls are
        # traded for raw counter ops.
        agg = kernel.cpu
        agg._busy_ns += entry_cost
        cat = agg._by_category
        cat["irq"] = cat.get("irq", 0) + entry_cost
        acct = cur.acct
        acct._busy_ns += entry_cost
        cat = acct._by_category
        cat["irq"] = cat.get("irq", 0) + entry_cost
        handler = line.handler
        tracer = kernel.tracer
        if handler is None:
            self.spurious += 1
            if tracer is not None:
                tracer.instant("irq.spurious", {"irq": line.number})
            return
        entry_ns = kernel.clock.now_ns if tracer is not None else 0
        lockdep = kernel.lockdep
        if lockdep is not None:
            # A spinlock the handler also takes held across this entry
            # is the canonical irq deadlock; report before dispatching.
            lockdep.note_hardirq_entry()
        # The CPU masks local interrupts while a handler runs: a device
        # asserting mid-handler is latched and delivered on return, so
        # handlers never nest (no reentrant ring cleaning).  The mask
        # push/pop is inlined (depth is provably nonzero on the way
        # out, so the enable-side underflow check cannot trip).
        self._local_disable_depth += 1
        context = cur.context
        context._irq_depth += 1
        prof = kernel.profiler
        if prof is not None:
            prof.push("irq:%s" % (line.name or line.number))
        ret = IRQ_NONE
        try:
            ret = handler(line.number, line.dev_id)
        finally:
            if prof is not None:
                prof.pop()
            context._irq_depth -= 1
            # Emit before local_irq_enable: a latched IRQ delivered on
            # unmask would otherwise appear *before* this span in the
            # stream while overlapping it in time.
            if tracer is not None:
                tracer.irq_span(entry_ns, line.number, line.name,
                                ret != IRQ_NONE)
            depth = self._local_disable_depth - 1
            self._local_disable_depth = depth
            if depth == 0 and self._local_pending:
                self._deliver_local_pending()
        if ret == IRQ_NONE:
            # Handler declined the interrupt: it counts as spurious
            # only -- /proc/interrupts-style delivery totals cover
            # handled interrupts, so spurious ones are not also rolled
            # into ``delivered``/``line.count``.
            self.spurious += 1
        else:
            self.delivered += 1
            line.count += 1
