"""Kernel timers and deferred work.

Linux timer callbacks run in softirq context at high priority: they must not
sleep, hence the paper's technique of converting driver timers (E1000's
watchdog) into work items executed by a worker thread, which *may* sleep and
may therefore call up into the decaf driver.

:class:`KernelTimer` mirrors ``struct timer_list`` (``mod_timer`` /
``del_timer``); :class:`Workqueue` mirrors ``schedule_work`` with
process-context execution.
"""

from .context import PROCESS, SOFTIRQ


class KernelTimer:
    """A one-shot re-armable kernel timer; callback runs in softirq context."""

    def __init__(self, kernel, function, data=None, name="timer"):
        self._kernel = kernel
        self.function = function
        self.data = data
        self.name = name
        self._event = None
        self.fired = 0

    def mod_timer(self, expires_ns):
        """(Re)arm to fire at absolute virtual time ``expires_ns``.

        Timers live on the event queue's indexed wheel rather than the
        global heap: watchdog-style timers are re-armed hundreds of times
        per fire, and the wheel makes each cancel/re-arm O(1) with no
        cancelled-entry debris for the dispatcher to skip.
        """
        self.del_timer()
        self._event = self._kernel.events.schedule_timer_at(
            expires_ns, self._fire, context=SOFTIRQ, name="timer:%s" % self.name
        )

    def mod_timer_after(self, delay_ns):
        self.mod_timer(self._kernel.clock.now_ns + max(0, delay_ns))

    def del_timer(self):
        """Cancel if pending; returns True if a pending timer was cancelled."""
        if self._event is not None and not self._event.cancelled:
            self._event.cancel()
            self._event = None
            tracer = self._kernel.tracer
            if tracer is not None:
                tracer.instant("timer.cancel", {"timer": self.name})
            return True
        self._event = None
        return False

    @property
    def pending(self):
        return self._event is not None and not self._event.cancelled

    def _fire(self):
        self._event = None
        self.fired += 1
        kernel = self._kernel
        prof = kernel.profiler
        if prof is not None:
            prof.push("timer:%s" % self.name)
        try:
            tracer = kernel.tracer
            if tracer is None:
                self.function(self.data)
                return
            start_ns = kernel.clock.now_ns
            self.function(self.data)
            tracer.span("timer.fire", start_ns, {"timer": self.name},
                        cat="timer")
        finally:
            if prof is not None:
                prof.pop()


class WorkItem:
    """A deferred unit of work executed in process context."""

    def __init__(self, kernel, function, data=None, name="work"):
        self._kernel = kernel
        self.function = function
        self.data = data
        self.name = name
        self._event = None
        self._queue = None
        self.executed = 0

    @property
    def pending(self):
        return self._event is not None and not self._event.cancelled

    def _run(self):
        self._event = None
        if self._queue is not None:
            self._queue._pending.discard(self)
            self._queue = None
        self.executed += 1
        kernel = self._kernel
        kernel.charge(kernel.costs.context_switch_ns, "workqueue")
        prof = kernel.profiler
        if prof is not None:
            prof.push("work:%s" % self.name)
        try:
            tracer = kernel.tracer
            if tracer is None:
                self.function(self.data)
                return
            start_ns = kernel.clock.now_ns
            self.function(self.data)
            tracer.span("work.item", start_ns, {"work": self.name},
                        cat="work")
        finally:
            if prof is not None:
                prof.pop()


class Workqueue:
    """Mirrors the kernel's shared workqueue (``schedule_work``)."""

    def __init__(self, kernel, name="events"):
        self._kernel = kernel
        self.name = name
        self.scheduled = 0
        self._pending = set()

    def schedule_work(self, item, delay_ns=0):
        """Queue ``item`` unless already pending; returns True if queued."""
        if item.pending:
            return False
        item._event = self._kernel.events.schedule_after(
            delay_ns, item._run, context=PROCESS, name="work:%s" % item.name,
            needs_sched=True,
        )
        item._queue = self
        self._pending.add(item)
        self.scheduled += 1
        return True

    def cancel_work(self, item):
        if item._event is not None:
            item._event.cancel()
            item._event = None
            self._pending.discard(item)
            item._queue = None
            return True
        return False

    def flush(self):
        """Advance virtual time until all currently-queued items have run.

        Only drains *this* queue's pending items; unrelated periodic timers
        in the event queue do not keep flush alive forever.  An item that
        re-schedules itself while flush runs is waited for at most once
        (Linux's flush_workqueue drains the work present at flush time,
        not a self-rearming item's infinite future), so flush always
        terminates.
        """
        waited = set()
        while True:
            batch = [item for item in self._pending if item not in waited]
            if not batch:
                break
            waited.update(batch)
            deadlines = [item._event.time_ns for item in batch
                         if item._event is not None
                         and not item._event.cancelled]
            if not deadlines:
                # Every unwaited item lost its event (cancelled under
                # us); nothing left to advance the clock for.
                break
            self._kernel.run_until(max(deadlines))
