"""NAPI-style polled packet receive.

Per-packet interrupts dominate receive cost at high packet rates: every
frame pays interrupt entry, a register read, and a trip through the
event dispatcher.  NAPI inverts this.  The interrupt handler masks the
device's interrupt sources and calls :meth:`NapiCore.schedule`; the core
masks the IRQ *line*, queues the context on its poll list, and raises a
net-rx softirq.  The softirq's budget loop then calls each driver's
``poll(napi, budget)`` to drain up to ``budget`` descriptors per trip,
and the driver calls :meth:`NapiCore.complete` + re-enables device
interrupts only when the ring is empty.  One interrupt therefore covers
an entire burst.

Invariants enforced here (the "checkable protocol"):

* ``poll`` runs in softirq context -- scheduling uses a SOFTIRQ event,
  and ``_net_rx_action`` verifies ``in_softirq()``.
* The device's IRQ line stays masked for the whole time its NAPI context
  sits on the poll list; polling with the line enabled raises
  :class:`SimulationError` (lost-wakeup/reentrancy hazard in real NAPI).
* A context can be scheduled at most once (``scheduled`` latch), and a
  disabled context cannot be scheduled at all.
"""

from collections import deque

from .context import SOFTIRQ
from .errors import SimulationError


class NapiStruct:
    """Per-driver NAPI context; mirrors ``struct napi_struct``."""

    def __init__(self, core, dev, poll, weight=64, irq=None, name=None,
                 cpu=None):
        self._core = core
        self.dev = dev
        self.poll = poll
        self.weight = weight
        self.irq = irq
        # Home CPU (irq affinity): on a multi-CPU kernel this context
        # polls from that CPU's softirq; None = classic shared list.
        self.cpu = cpu
        # Driver-private queue index (multi-queue NICs tag their
        # per-queue contexts; single-queue drivers leave it 0).
        self.queue = 0
        self.name = name or getattr(dev, "name", "napi")
        self.scheduled = False
        self.disabled = True  # drivers must napi_enable() before use
        self._line_masked = False
        # Virtual timestamp of the schedule() that queued this context;
        # consumed by the tracer's IRQ->poll latency histogram.
        self._trace_sched_ns = None
        # Counters (per context).
        self.polls = 0
        self.work_total = 0

    def __repr__(self):
        return "<NapiStruct %s weight=%d%s%s>" % (
            self.name, self.weight,
            " scheduled" if self.scheduled else "",
            " disabled" if self.disabled else "")


class NapiCore:
    """The net-rx softirq: poll list, budget loop, counters."""

    DEFAULT_BUDGET = 300  # netdev_budget: max packets per softirq run

    def __init__(self, kernel, net):
        self._kernel = kernel
        self._net = net
        self.budget = self.DEFAULT_BUDGET
        # Poll lists keyed by CPU index; None is the classic shared
        # list (single-CPU kernels and non-affine contexts).
        self._lists = {None: deque()}
        self._softirq_pending = set()
        self._running = set()
        # Counters (global, across all contexts).
        self.polls = 0
        self.work_total = 0
        self.budget_exhaustions = 0
        self.softirq_runs = 0
        self.schedules = 0
        self.packets_per_poll = {}  # work_done -> count

    @property
    def _list(self):
        """The classic shared poll list (single-CPU compatibility)."""
        return self._lists[None]

    def _key_for(self, napi):
        """Which poll list a context belongs to right now."""
        if napi.cpu is not None and self._kernel.nr_cpus > 1:
            return napi.cpu
        return None

    # -- driver API ----------------------------------------------------------

    def register(self, dev, poll, weight=64, irq=None, name=None, cpu=None):
        """``netif_napi_add``: create a context (still disabled).

        Also ensures the zero-copy skb pool exists (the per-CPU shard
        for affine contexts on an SMP kernel); this runs from the
        driver's open path in process context, where the pool's DMA
        arena may legally be allocated (``dma_alloc_coherent`` sleeps).
        """
        if cpu is not None and self._kernel.nr_cpus > 1:
            self._net.get_skb_pool(cpu)
        elif self._kernel.nr_cpus > 1:
            # Non-affine context on SMP: the shared poll list may run on
            # any CPU's softirq, and the rx path allocates from the
            # polling CPU's shard -- creating one lazily there would be
            # an allocation in atomic context.  Pre-create them all.
            for c in range(self._kernel.nr_cpus):
                self._net.get_skb_pool(c)
        else:
            self._net.get_skb_pool()
        return NapiStruct(self, dev, poll, weight=weight, irq=irq, name=name,
                          cpu=cpu)

    def enable(self, napi):
        napi.disabled = False

    def disable(self, napi):
        """``napi_disable``: unschedule and unmask; poll will not run."""
        napi.disabled = True
        napi.scheduled = False
        for lst in self._lists.values():
            try:
                lst.remove(napi)
            except ValueError:
                pass
        self._unmask(napi)

    def schedule(self, napi):
        """``napi_schedule`` from the interrupt handler.

        Masks the IRQ line, queues the context, raises the softirq.
        Returns True if newly scheduled.
        """
        if napi.disabled or napi.scheduled:
            return False
        napi.scheduled = True
        self.schedules += 1
        tracer = self._kernel.tracer
        if tracer is not None:
            napi._trace_sched_ns = self._kernel.clock.now_ns
            tracer.instant("napi.schedule",
                           {"napi": napi.name, "irq": napi.irq})
        if napi.irq is not None:
            self._kernel.irq.disable_irq(napi.irq)
            napi._line_masked = True
        key = self._key_for(napi)
        lst = self._lists.get(key)
        if lst is None:
            lst = self._lists[key] = deque()
        if napi not in lst:
            lst.append(napi)
        self._raise_softirq(key)
        return True

    def complete(self, napi):
        """``napi_complete``: ring drained; unmask and allow rescheduling."""
        napi.scheduled = False
        self._unmask(napi)

    def _unmask(self, napi):
        if napi._line_masked:
            napi._line_masked = False
            # A cause latched while masked is delivered here, which can
            # re-enter schedule() -- by then `scheduled` is clear again.
            self._kernel.irq.enable_irq(napi.irq)

    # -- softirq -------------------------------------------------------------

    def _raise_softirq(self, key=None):
        """Raise the net-rx softirq for one CPU's poll list.

        ``key`` is a CPU index (the softirq event is targeted there) or
        None for the classic shared list.  One softirq per CPU can be
        pending/running at a time -- per-CPU softirq state, like Linux.
        """
        if key in self._softirq_pending or key in self._running:
            return
        self._softirq_pending.add(key)
        self._kernel.events.schedule_after(
            0, lambda key=key: self._net_rx_action(key),
            context=SOFTIRQ, name="net-rx-softirq", cpu=key
        )

    def _net_rx_action(self, key=None):
        """The budget loop (``net_rx_action`` in Linux)."""
        self._softirq_pending.discard(key)
        kernel = self._kernel
        if not kernel.context.in_softirq():
            raise SimulationError("net_rx_action outside softirq context")
        lst = self._lists.get(key)
        if lst is None:
            return
        if key is not None:
            # Touch this CPU's softirq bookkeeping under its lock
            # (distinct lockdep class per CPU); released before any
            # driver poll runs.
            sl = kernel.cpus[key].softirq_lock
            if sl is not None:
                sl.lock()
                sl.unlock()
        self.softirq_runs += 1
        kernel.charge(kernel.costs.softirq_ns, "softirq")
        tracer = kernel.tracer
        prof = kernel.profiler
        clock = kernel.clock
        run_start_ns = clock.now_ns if tracer is not None else 0
        # Drain run: the whole budget loop runs against hoisted
        # bindings, and the run-wide counters (softirq bookkeeping)
        # are written back once per run instead of once per poll.
        budget = self.budget
        flush_rx_batch = self._net.flush_rx_batch
        irq_disabled = kernel.irq.irq_disabled
        hist = self.packets_per_poll
        polls_this_run = 0
        work_this_run = 0
        poll_start_ns = 0
        self._running.add(key)
        try:
            while lst:
                if budget <= 0:
                    self.budget_exhaustions += 1
                    break
                napi = lst.popleft()
                if napi.disabled or not napi.scheduled:
                    # Stale entry: disabled, or completed and re-queued
                    # by a latched IRQ firing inside napi_complete().
                    continue
                if napi.irq is not None and not irq_disabled(napi.irq):
                    raise SimulationError(
                        "NAPI poll for %s with IRQ %d unmasked" %
                        (napi.name, napi.irq))
                weight = napi.weight if napi.weight < budget else budget
                if tracer is not None:
                    poll_start_ns = clock.now_ns
                if prof is not None:
                    prof.push("napi:%s" % napi.name)
                    try:
                        work = napi.poll(napi, weight)
                    finally:
                        prof.pop()
                else:
                    work = napi.poll(napi, weight)
                flush_rx_batch()
                if tracer is not None:
                    latency = None
                    if napi._trace_sched_ns is not None:
                        latency = poll_start_ns - napi._trace_sched_ns
                        napi._trace_sched_ns = None
                    tracer.napi_poll_span(poll_start_ns, napi.name, work,
                                          weight, latency)
                napi.polls += 1
                napi.work_total += work
                polls_this_run += 1
                work_this_run += work
                hist[work] = hist.get(work, 0) + 1
                budget -= work
                if napi.scheduled and napi not in lst:
                    # Did not complete: ring still has work; round-robin.
                    # (A latched IRQ inside complete() may have already
                    # re-queued it -- don't create a duplicate entry.)
                    lst.append(napi)
        finally:
            self._running.discard(key)
            self.polls += polls_this_run
            self.work_total += work_this_run
        if tracer is not None:
            tracer.span("softirq.net_rx", run_start_ns,
                        {"polls": polls_this_run,
                         "work": self.budget - budget,
                         "budget_start": self.budget,
                         "budget_left": budget,
                         "requeued": len(lst)},
                        cat="softirq")
        if lst:
            # Out of budget with work pending: yield and re-raise, like
            # ksoftirqd punting to the next softirq iteration.
            self._raise_softirq(key)

    # -- introspection -------------------------------------------------------

    def snapshot(self):
        return {
            "polls": self.polls,
            "work_total": self.work_total,
            "budget_exhaustions": self.budget_exhaustions,
            "softirq_runs": self.softirq_runs,
            "schedules": self.schedules,
            "packets_per_poll": dict(self.packets_per_poll),
        }
