"""The virtual-time cost model.

Every constant here is a nanosecond cost charged to the virtual clock.  The
absolute values are calibrated to commodity x86 hardware of the paper's era
(3 GHz Pentium D / 2.5 GHz Core 2) so that the *shape* of Table 3 --
steady-state parity, several-fold init slowdowns ordered by crossing count
and marshaled bytes -- reproduces.  Absolute seconds are not the claim; the
model is deliberately centralized so a user can re-calibrate one object.
"""

from dataclasses import dataclass, field


@dataclass
class CostModel:
    """Nanosecond costs for simulated operations."""

    # Device access.  Port I/O on legacy hardware is slow (~1 us per access);
    # MMIO is faster.  EEPROM and PHY accesses on NICs involve bit-banged
    # serial protocols measured in microseconds.
    port_io_ns: int = 1_000
    mmio_ns: int = 250
    eeprom_word_ns: int = 40_000
    phy_reg_ns: int = 40_000

    # Interrupt delivery and handling overhead.
    irq_entry_ns: int = 800
    # Fixed cost of one net-rx softirq run (raise, dispatch, poll-list
    # bookkeeping); amortized over every packet drained by the poll.
    softirq_ns: int = 500

    # Packet-path CPU costs (per packet, excluding copies).  Calibrated
    # so gigabit receive lands near the paper's ~20% CPU and transmit
    # (DMA, checksum offload, zero-copy) in the low percent range:
    # receive pays protocol processing plus a copy to user space.
    packet_cpu_ns: int = 350        # transmit-side per-packet cost
    rx_packet_cpu_ns: int = 1_000   # receive-side protocol processing
    rx_user_copy_byte_ns: float = 0.6
    byte_copy_ns: float = 0.08

    # Base kernel operations.
    kmalloc_ns: int = 300
    context_switch_ns: int = 3_000

    # Module loading: base cost of insmod machinery (link, relocate).
    insmod_base_ns: int = 10_000_000

    # XPC costs.  A kernel<->user crossing involves a system call, a wakeup
    # of the user-level driver process, and a scheduler round trip; the
    # paper's measured init latencies put the all-in cost per crossing in
    # the tens of milliseconds once marshaling is included.  We charge a
    # fixed control-transfer cost per crossing plus a per-byte marshaling
    # cost; big structures (E1000's adapter) then dominate, as observed.
    # The dispatch term reflects the paper's unoptimized marshaling
    # path (unmarshal in user C, re-marshal into Java) plus the
    # scheduler round trip; their measured init latencies put it around
    # 10-50 ms per crossing.
    xpc_kernel_user_ns: int = 60_000
    xpc_thread_dispatch_ns: int = 7_000_000
    xpc_lang_ns: int = 20_000  # C<->Java (JNI) transition
    # Marginal cost of one extra notification riding an already-paid
    # batched crossing (deferred-queue flush): the control transfer and
    # thread dispatch are shared, only demux and argument copies remain.
    xpc_batch_item_ns: int = 8_000
    marshal_byte_ns: int = 450
    marshal_field_ns: int = 2_200
    objtracker_lookup_ns: int = 800

    # User-level managed runtime: JVM startup charged once per decaf driver
    # process, garbage-collection amortized cost ignored (idle-time).
    jvm_startup_ns: int = 220_000_000

    # Scheduling granularity for workloads.
    tick_ns: int = 1_000_000

    extra: dict = field(default_factory=dict)


DEFAULT_COSTS = CostModel()
