"""ktrace: unified tracing + metrics for the simulated kernel and XPC.

The tracepoint catalog, overhead contract and trace schema are
documented in DESIGN.md ("Observability"); the capture/report recipe
is in EXPERIMENTS.md.  Quick use::

    from repro.trace import Tracer
    tracer = Tracer(rig.kernel).install()
    ... run workload ...
    tracer.uninstall()
    from repro.trace.perfetto import write_chrome_trace
    write_chrome_trace(tracer, "trace.json")   # open in ui.perfetto.dev

or let a workload rig do the plumbing::

    result = netperf_recv(rig, trace="trace.json")
    result.trace_summary["per_driver"]

then ``python -m repro.trace.report trace.json``.
"""

import os

from .core import TRACEPOINTS, TraceError, Tracer
from .metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "TRACEPOINTS",
    "TraceError",
    "Tracer",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "begin_trace",
    "finish_trace",
]


def begin_trace(kernel, trace):
    """Normalize a workload's ``trace=`` argument into a session.

    ``trace`` may be:

    * falsy -- tracing stays off (returns ``None``);
    * a :class:`Tracer` for ``kernel`` -- used as-is (installed for the
      duration if it was not already);
    * a path (``str`` / ``os.PathLike``) -- a fresh tracer is installed
      and the Chrome-trace JSON is written there at finish;
    * ``True`` -- a fresh tracer, summary only, no file.

    Returns an opaque session handle for :func:`finish_trace`.
    """
    if not trace:
        return None
    if isinstance(trace, Tracer):
        if trace.kernel is not kernel:
            raise TraceError("trace= tracer belongs to a different kernel")
        tracer, path = trace, None
        owned = not tracer.installed
        if owned:
            tracer.install()
    else:
        path = os.fspath(trace) if not isinstance(trace, bool) else None
        tracer = Tracer(kernel).install()
        owned = True
    return (tracer, owned, path)


def finish_trace(session, result):
    """Close a :func:`begin_trace` session.

    Snapshots the tracer's metrics into ``result.trace_summary``,
    writes the export file if a path was given, and uninstalls the
    tracer if this session installed it.  Returns the tracer (so
    callers that passed a path can still inspect events).
    """
    if session is None:
        return None
    tracer, owned, path = session
    if result is not None:
        result.trace_summary = tracer.summary()
    if path is not None:
        from .perfetto import write_chrome_trace

        write_chrome_trace(tracer, path)
    if owned:
        tracer.uninstall()
    return tracer
