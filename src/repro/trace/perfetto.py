"""Chrome-trace-event / Perfetto JSON export.

Traces export in the Chrome trace-event JSON format, which
``ui.perfetto.dev`` (and ``chrome://tracing``) open directly.  The
virtual clock maps onto the trace timebase as 1 virtual ns = 0.001
"microseconds", so Perfetto's timeline shows exact virtual time.

Execution contexts map to synthetic threads of one process, so the
hardirq / softirq / process interleaving reads as three swimlanes:

    tid 1  process
    tid 2  softirq
    tid 3  hardirq

The exporter also embeds the tracer's metrics summary under
``otherData.trace_summary`` (ignored by viewers, consumed by
``repro.trace.report``).
"""

import json

CTX_TIDS = {"process": 1, "softirq": 2, "hardirq": 3}
PID = 1


def chrome_trace_events(tracer):
    """The tracer's event list in Chrome trace-event dict form."""
    out = []
    for ctx, tid in sorted(CTX_TIDS.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "pid": PID, "tid": tid, "name": "thread_name",
            "args": {"name": ctx},
        })
    for ev in tracer.events:
        args = dict(ev["args"])
        args["ctx"] = ev["ctx"]
        args["locks_held"] = ev["locks"]
        rec = {
            "name": ev["name"],
            "cat": ev["cat"],
            "ph": ev["ph"],
            "ts": ev["ts"] / 1000.0,
            "pid": PID,
            "tid": CTX_TIDS.get(ev["ctx"], 1),
            "args": args,
        }
        if ev["ph"] == "X":
            rec["dur"] = ev["dur"] / 1000.0
        elif ev["ph"] == "i":
            rec["s"] = "t"  # instant scope: thread
        out.append(rec)
    return out


def chrome_trace(tracer):
    """Full Chrome-trace JSON document (as a dict) for ``tracer``."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual-ns (1 trace us == 1000 virtual ns)",
            "tracer": tracer.name,
            "trace_summary": tracer.summary(),
        },
    }


def write_chrome_trace(tracer, path):
    """Export ``tracer`` to ``path``; returns the document dict."""
    doc = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def load_trace(path):
    with open(path) as fh:
        return json.load(fh)


def span_events(doc, cat=None, name=None):
    """The "X" (complete span) events of a loaded trace document."""
    return [
        ev for ev in doc.get("traceEvents", ())
        if ev.get("ph") == "X"
        and (cat is None or ev.get("cat") == cat)
        and (name is None or ev.get("name") == name)
    ]
