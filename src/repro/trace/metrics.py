"""Counters and fixed-bucket histograms for the trace subsystem.

The metrics registry is the cheap, always-aggregated consumer of the
tracepoint stream: tracepoints update counters and histograms online,
and a :meth:`MetricsRegistry.snapshot` is embedded into
``WorkloadResult.trace_summary`` and the exported trace file.

Histograms use fixed power-of-two nanosecond buckets (65 of them:
bucket 0 holds exact zeros, bucket *b* holds values in
``[2**(b-1), 2**b - 1]``), so recording is O(1), storage is bounded,
and two runs' histograms can be diffed bucket by bucket.  Percentiles
are read back as the upper bound of the bucket where the cumulative
count crosses the rank -- deterministic, and never more than 2x off,
which is plenty for hold-time and latency distributions.
"""

_NUM_BUCKETS = 65  # bucket 0 = {0}; bucket b = [2^(b-1), 2^b - 1]


def bucket_upper_bound(index):
    """Largest value the bucket at ``index`` can hold."""
    if index == 0:
        return 0
    return (1 << index) - 1


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Histogram:
    """Fixed log2 buckets; O(1) record, bounded storage."""

    __slots__ = ("name", "buckets", "count", "total", "max")

    def __init__(self, name):
        self.name = name
        self.buckets = [0] * _NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.max = 0

    def record(self, value):
        v = int(value)
        if v < 0:
            v = 0
        self.buckets[v.bit_length()] += 1
        self.count += 1
        self.total += v
        if v > self.max:
            self.max = v

    def percentile(self, p):
        """Upper bound of the bucket holding the p-th percentile (0-100)."""
        if self.count == 0:
            return 0
        rank = p / 100.0 * self.count
        cum = 0
        for index, n in enumerate(self.buckets):
            cum += n
            if cum >= rank and n:
                return min(bucket_upper_bound(index), self.max)
        return self.max

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "mean": round(self.mean, 1),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            # Sparse: only non-empty buckets, keyed by their upper bound.
            "buckets": {
                str(bucket_upper_bound(i)): n
                for i, n in enumerate(self.buckets) if n
            },
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    Multi-dimensional metrics (per-driver XPC totals, per-kind lock
    hold times) encode the label into the name after a ``|`` separator,
    e.g. ``xpc.bytes|e1000`` -- :func:`split_label` recovers the pair.
    """

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    def counter(self, name):
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name):
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def record(self, name, value):
        self.histogram(name).record(value)

    def snapshot(self):
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }


def split_label(name):
    """Split ``"metric|label"`` into ``(metric, label)``; label may be ''."""
    metric, _, label = name.partition("|")
    return metric, label
