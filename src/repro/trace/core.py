"""ktrace: the structured event tracer for the simulated kernel.

Design goals, in order:

1. **Near-zero cost when disabled.**  Instrumented call sites guard
   every tracepoint with ``tracer = kernel.tracer`` / ``if tracer is
   not None`` -- one attribute load and one identity test, nothing
   else.  No tracer object, no argument packing, no string formatting
   happens on the disabled path; ``benchmarks/test_trace_overhead.py``
   asserts the aggregate guard cost stays under 3% of the hottest
   workload.  :data:`active_tracers` is the module-level fast-path
   flag: code that wants a single global check (e.g. assertions in
   tests) can read it instead of walking kernels.

2. **Virtual-time, structured, replayable.**  Every event carries the
   deterministic virtual-ns timestamp, the execution context the CPU
   was in (hardirq / softirq / process) and the number of spinlocks
   held, plus typed per-tracepoint args.  Two runs of the same rig
   produce byte-identical traces.

3. **Attribution.**  XPC spans carry the driver (channel) name and the
   callsite (the driver function crossing the boundary), marshal byte
   and field counts, delta-trip savings, and object-tracker hit/miss
   -- every crossing in a run is attributable.

Consumers: the online :class:`~repro.trace.metrics.MetricsRegistry`
(snapshotted into ``WorkloadResult.trace_summary``), the Perfetto /
Chrome-trace exporter (:mod:`repro.trace.perfetto`), and the report
CLI (``python -m repro.trace.report``).
"""

from .metrics import MetricsRegistry, split_label

#: Module-level fast-path flag: number of installed tracers across all
#: kernels in this process.  Zero means no kernel is being traced.
active_tracers = 0

#: The tracepoint catalog: every name the instrumented layers may emit,
#: with phase ("X" = span, "i" = instant) and a one-line description.
#: :meth:`Tracer.instant` / :meth:`Tracer.span` validate names against
#: this registry (cheaply, via set membership) so a typo'd tracepoint
#: fails loudly in tests instead of producing an orphan event stream.
TRACEPOINTS = {
    # IRQ / softirq / NAPI
    "irq": ("X", "hardirq dispatch span (entry to handler return)"),
    "irq.spurious": ("i", "interrupt with no handler or IRQ_NONE return"),
    "napi.schedule": ("i", "napi_schedule from the interrupt handler"),
    "napi.poll": ("X", "one driver poll(napi, weight) call"),
    "softirq.net_rx": ("X", "net-rx softirq budget loop run"),
    # Timers / deferred work
    "timer.arm": ("i", "timer (re)armed on the wheel"),
    "timer.cancel": ("i", "pending timer cancelled"),
    "timer.fire": ("X", "timer callback span"),
    "work.item": ("X", "workqueue item execution span"),
    # Locks
    "lock.held": ("X", "lock hold span (acquire to release)"),
    "lockdep.report": ("i", "runtime lock validator recorded a violation"),
    # XPC (cat 'xpc' spans each pay one kernel/user crossing)
    "xpc.upcall": ("X", "kernel->user round trip"),
    "xpc.downcall": ("X", "user->kernel round trip"),
    "xpc.flush": ("X", "batched deferred-notification crossing"),
    "xpc.lang": ("X", "C<->Java language crossing (marshaled)"),
    "xpc.direct": ("X", "scalar-only direct cross-language call"),
    "xpc.defer": ("i", "one-way notification enqueued (no crossing)"),
    # Failure boundary / fault injection / recovery
    "xpc.fault": ("i", "unchecked exception contained at the boundary"),
    "xpc.deferred_error": ("i", "deferred notification handler raised"),
    "fault.inject": ("i", "an armed fault spec fired"),
    "recovery.fault": ("i", "supervisor notified of a driver fault"),
    "recovery.restart": ("X", "quiesce + restart + replay span"),
    "recovery.replay": ("i", "one replay-log operation re-executed"),
    "recovery.complete": ("i", "driver healthy again after restart"),
    "recovery.giveup": ("i", "supervisor stopped recovering this driver"),
    # Logging
    "printk": ("i", "kernel log line"),
    # Health plane
    "health.watchdog": ("i", "stall watchdog fired (soft lockup / hung task)"),
    "health.dump": ("i", "flight recorder wrote a crash report"),
}

_VALID_NAMES = frozenset(TRACEPOINTS)


class TraceError(Exception):
    pass


class Tracer:
    """Per-kernel structured event tracer.

    Install with :meth:`install` (sets ``kernel.tracer``); every
    instrumented layer then emits events here.  ``enable`` restricts
    collection to a subset of tracepoint names; ``max_events`` bounds
    memory (overflow increments :attr:`dropped` instead of growing).

    Internal event schema (one dict per event)::

        {"name": str,   # tracepoint name (TRACEPOINTS key)
         "cat":  str,   # category, defaults to name's first component
         "ph":   "X"|"i",
         "ts":   int,   # virtual ns (span start for "X")
         "dur":  int,   # virtual ns, "X" only
         "ctx":  "hardirq"|"softirq"|"process",
         "locks": int,  # spinlocks held at emission
         "args": dict}
    """

    def __init__(self, kernel, name="trace", enable=None, max_events=1_000_000):
        self.kernel = kernel
        self.name = name
        self.events = []
        self.dropped = 0
        self.max_events = max_events
        self.metrics = MetricsRegistry()
        self._enabled = frozenset(enable) if enable is not None else None
        if self._enabled is not None:
            unknown = self._enabled - _VALID_NAMES
            if unknown:
                raise TraceError(
                    "unknown tracepoint(s): %s" % ", ".join(sorted(unknown)))
        self.installed = False
        # Flight recorder of the kernel's health plane (if installed):
        # instant/span mirror every event into its ring *before* the
        # enable-filter, so the ring always holds the recent past even
        # when the tracer only collects a subset.
        self.flight = None
        # Pre-resolved hot histograms (skip dict lookups on hot spans).
        self._hist_irq = self.metrics.histogram("irq_ns")
        self._hist_irq_to_poll = self.metrics.histogram("irq_to_poll_ns")
        self._hist_xpc_rt = self.metrics.histogram("xpc.roundtrip_ns")

    # -- lifecycle ----------------------------------------------------------

    def install(self):
        """Attach to the kernel; tracepoints start flowing."""
        global active_tracers
        if self.kernel.tracer is not None:
            raise TraceError("kernel already has a tracer installed")
        self.kernel.tracer = self
        self.kernel.events.tracer = self
        health = self.kernel.health
        if health is not None:
            self.flight = health.flight
        self.installed = True
        active_tracers += 1
        return self

    def uninstall(self):
        """Detach; the kernel returns to the zero-cost disabled path."""
        global active_tracers
        if not self.installed:
            return
        self.kernel.tracer = None
        self.kernel.events.tracer = None
        self.flight = None
        self.installed = False
        active_tracers -= 1

    # -- raw emission -------------------------------------------------------

    def wants(self, name):
        return self._enabled is None or name in self._enabled

    def now(self):
        """Virtual-ns timestamp for starting a span at a call site."""
        return self.kernel.clock.now_ns

    def _append(self, ev):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(ev)

    def instant(self, name, args=None, cat=None):
        if name not in _VALID_NAMES:
            raise TraceError("unregistered tracepoint %r" % name)
        flight = self.flight
        if flight is not None:
            kernel = self.kernel
            flight.mirror(kernel.clock.now_ns, kernel.current_cpu.index,
                          name, args if args is not None else {})
        if self._enabled is not None and name not in self._enabled:
            return
        kernel = self.kernel
        self._append({
            "name": name,
            "cat": cat or name.split(".", 1)[0],
            "ph": "i",
            "ts": kernel.clock.now_ns,
            "cpu": kernel.current_cpu.index,
            "ctx": kernel.context.current_context(),
            "locks": len(kernel.context._spinlocks_held),
            "args": args if args is not None else {},
        })

    def span(self, name, start_ns, args=None, cat=None, ctx=None):
        """Emit a complete span from ``start_ns`` to now.

        ``ctx`` overrides context capture for sites that emit after the
        context has already been exited (e.g. the IRQ dispatcher).
        """
        if name not in _VALID_NAMES:
            raise TraceError("unregistered tracepoint %r" % name)
        flight = self.flight
        if flight is not None:
            kernel = self.kernel
            flight.mirror(start_ns, kernel.current_cpu.index,
                          name, args if args is not None else {})
        if self._enabled is not None and name not in self._enabled:
            return
        kernel = self.kernel
        now = kernel.clock.now_ns
        self._append({
            "name": name,
            "cat": cat or name.split(".", 1)[0],
            "ph": "X",
            "ts": start_ns,
            "dur": now - start_ns,
            "cpu": kernel.current_cpu.index,
            "ctx": ctx or kernel.context.current_context(),
            "locks": len(kernel.context._spinlocks_held),
            "args": args if args is not None else {},
        })

    # -- typed tracepoint helpers (one per instrumented subsystem) ----------

    def irq_span(self, start_ns, irq, name, handled):
        dur = self.kernel.clock.now_ns - start_ns
        self._hist_irq.record(dur)
        self.span("irq", start_ns,
                  {"irq": irq, "handler": name, "handled": handled},
                  cat="irq", ctx="hardirq")

    def napi_poll_span(self, start_ns, napi_name, work, weight,
                       sched_latency_ns):
        args = {"napi": napi_name, "work": work, "weight": weight}
        if sched_latency_ns is not None:
            self._hist_irq_to_poll.record(sched_latency_ns)
            args["irq_to_poll_ns"] = sched_latency_ns
        self.span("napi.poll", start_ns, args, cat="napi")

    def lock_span(self, start_ns, lock_name, kind):
        """Lock hold span: acquire at ``start_ns``, release now."""
        hold = self.kernel.clock.now_ns - start_ns
        self.metrics.record("lock.hold_ns|%s" % kind, hold)
        self.span("lock.held", start_ns, {"lock": lock_name, "kind": kind},
                  cat="lock")

    def xpc_span(self, name, start_ns, driver, callsite, transfers,
                 cat="xpc", extra_args=None):
        """An XPC crossing span with full marshal attribution.

        ``transfers`` is a sequence of
        ``(bytes, fields, tracker_lookups, tracker_hits, delta_saved)``
        tuples -- one per ``_transfer_args`` the span performed (forward
        and return trips, or one per batched notification).  cat "xpc"
        marks spans that paid one kernel/user crossing; language
        crossings use cat "xpc.lang".
        """
        nbytes = nfields = lookups = hits = saved = 0
        for t in transfers:
            nbytes += t[0]
            nfields += t[1]
            lookups += t[2]
            hits += t[3]
            saved += t[4]
        args = {
            "driver": driver,
            "callsite": callsite,
            "bytes": nbytes,
            "fields": nfields,
            "tracker_lookups": lookups,
            "tracker_hits": hits,
            "delta_fields_saved": saved,
        }
        if extra_args:
            args.update(extra_args)
        m = self.metrics
        if cat == "xpc":
            m.inc("xpc.crossings|%s" % driver)
            if self.kernel.nr_cpus > 1:
                # Per-CPU crossing attribution: which CPU paid the
                # kernel/user transition (SMP rigs only, so classic
                # per-driver summaries keep their exact key set).
                m.inc("xpc.crossings.cpu%d|%s"
                      % (self.kernel.current_cpu.index, driver))
            self._hist_xpc_rt.record(self.kernel.clock.now_ns - start_ns)
        else:
            m.inc("xpc.lang_crossings|%s" % driver)
        if nbytes:
            m.inc("xpc.bytes|%s" % driver, nbytes)
        if nfields:
            m.inc("xpc.fields|%s" % driver, nfields)
        if saved:
            m.inc("xpc.delta_fields_saved|%s" % driver, saved)
        if lookups:
            m.inc("xpc.tracker_lookups|%s" % driver, lookups)
            m.inc("xpc.tracker_hits|%s" % driver, hits)
        m.inc("xpc.%s|%s" % (name.split(".", 1)[1], driver))
        self.span(name, start_ns, args, cat=cat)

    # -- summaries ----------------------------------------------------------

    def per_driver(self):
        """Table-3-style per-driver breakdown from the XPC counters."""
        out = {}
        for cname, counter in self.metrics._counters.items():
            metric, label = split_label(cname)
            if not metric.startswith("xpc.") or not label:
                continue
            out.setdefault(label, {})[metric[len("xpc."):]] = counter.value
        return out

    def summary(self):
        """Everything a result row needs: counts, metrics, per-driver."""
        snap = self.metrics.snapshot()
        return {
            "tracer": self.name,
            "clock": "virtual-ns",
            "events": len(self.events),
            "dropped": self.dropped,
            "counters": snap["counters"],
            "histograms": snap["histograms"],
            "per_driver": self.per_driver(),
        }
