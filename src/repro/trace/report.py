"""Trace / bench summarizer and differ.

Usage::

    python -m repro.trace.report trace.json [--top N]
    python -m repro.trace.report --diff a.json b.json [--threshold PCT]

The first form summarizes one exported Chrome-trace file: top-N XPC
callsites by marshaled bytes and by crossings, the lock hold-time
table, IRQ->poll latency percentiles, and the softirq budget timeline.

The second form diffs two runs: either two exported traces (their
embedded metric summaries are compared) or two ``BENCH_*.json`` files
(every numeric leaf is compared).  Counters that moved more than the
threshold (default 10%) are flagged with ``!``.
"""

import argparse
import json
import sys


def _fmt_ns(ns):
    ns = float(ns)
    if ns >= 1e6:
        return "%.3f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.3f us" % (ns / 1e3)
    return "%d ns" % ns


def _print_table(title, headers, rows, out):
    out = out or sys.stdout
    print(title, file=out)
    if not rows:
        print("  (none)", file=out)
        print(file=out)
        return
    rows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
          file=out)
    for row in rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)),
              file=out)
    print(file=out)


def _spans(doc, cat=None, name=None):
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        if cat is not None and ev.get("cat") != cat:
            continue
        if name is not None and ev.get("name") != name:
            continue
        yield ev


def _percentiles(values, points=(50, 90, 99)):
    if not values:
        return {p: 0 for p in points}, 0
    ordered = sorted(values)
    out = {}
    for p in points:
        index = min(len(ordered) - 1, max(0, int(p / 100.0 * len(ordered))))
        out[p] = ordered[index]
    return out, ordered[-1]


def report_trace(doc, top=10, out=None):
    """Summarize one loaded Chrome-trace document."""
    out = out or sys.stdout
    summary = doc.get("otherData", {}).get("trace_summary", {})
    print("trace: %d events (%d dropped), clock %s" % (
        summary.get("events", len(doc.get("traceEvents", []))),
        summary.get("dropped", 0),
        doc.get("otherData", {}).get("clock", "?")), file=out)
    print(file=out)

    # -- XPC callsites ------------------------------------------------------
    sites = {}
    for ev in _spans(doc):
        if ev.get("cat") not in ("xpc", "xpc.lang"):
            continue
        a = ev.get("args", {})
        key = (a.get("driver", "?"), a.get("callsite", "?"))
        site = sites.setdefault(
            key, {"crossings": 0, "bytes": 0, "fields": 0, "dur_ns": 0.0,
                  "kind": ev["name"]})
        site["crossings"] += 1
        site["bytes"] += a.get("bytes", 0)
        site["fields"] += a.get("fields", 0)
        site["dur_ns"] += ev.get("dur", 0.0) * 1000.0

    def site_rows(order_key):
        ranked = sorted(sites.items(), key=order_key, reverse=True)[:top]
        return [
            (driver, callsite, s["kind"], s["crossings"], s["bytes"],
             s["fields"], _fmt_ns(s["dur_ns"]))
            for (driver, callsite), s in ranked
        ]

    headers = ["driver", "callsite", "kind", "crossings", "bytes", "fields",
               "total time"]
    _print_table("top XPC callsites by marshaled bytes", headers,
                 site_rows(lambda kv: kv[1]["bytes"]), out)
    _print_table("top XPC callsites by crossings", headers,
                 site_rows(lambda kv: kv[1]["crossings"]), out)

    # -- lock hold times ----------------------------------------------------
    locks = {}
    for ev in _spans(doc, cat="lock"):
        a = ev.get("args", {})
        key = (a.get("lock", "?"), a.get("kind", "?"))
        rec = locks.setdefault(key, [])
        rec.append(ev.get("dur", 0.0) * 1000.0)
    rows = []
    for (lock, kind), holds in sorted(
            locks.items(), key=lambda kv: -sum(kv[1]))[:top]:
        pct, mx = _percentiles(holds)
        rows.append((lock, kind, len(holds), _fmt_ns(sum(holds)),
                     _fmt_ns(pct[50]), _fmt_ns(mx)))
    _print_table("lock hold times (contention table)",
                 ["lock", "kind", "acquisitions", "total held", "p50", "max"],
                 rows, out)
    hold_hists = {
        name: h for name, h in summary.get("histograms", {}).items()
        if name.startswith("lock.hold_ns")
    }
    for name, h in sorted(hold_hists.items()):
        print("  histogram %s: count=%d p50=%s p99=%s max=%s" % (
            name, h["count"], _fmt_ns(h["p50"]), _fmt_ns(h["p99"]),
            _fmt_ns(h["max"])), file=out)
    if hold_hists:
        print(file=out)

    # -- IRQ -> poll latency -------------------------------------------------
    lat = [ev["args"]["irq_to_poll_ns"]
           for ev in _spans(doc, name="napi.poll")
           if "irq_to_poll_ns" in ev.get("args", {})]
    pct, mx = _percentiles(lat)
    print("IRQ->poll latency: %d samples, p50=%s p90=%s p99=%s max=%s" % (
        len(lat), _fmt_ns(pct[50]), _fmt_ns(pct[90]), _fmt_ns(pct[99]),
        _fmt_ns(mx)), file=out)
    print(file=out)

    # -- softirq budget timeline --------------------------------------------
    runs = list(_spans(doc, name="softirq.net_rx"))
    rows = [
        ("%.3f" % (ev["ts"] / 1000.0), _fmt_ns(ev.get("dur", 0) * 1000.0),
         ev["args"].get("polls", "?"), ev["args"].get("work", "?"),
         ev["args"].get("budget_left", "?"), ev["args"].get("requeued", "?"))
        for ev in runs[:top]
    ]
    _print_table(
        "softirq budget timeline (first %d of %d runs)" % (len(rows),
                                                           len(runs)),
        ["t (trace us)", "span", "polls", "work", "budget left", "requeued"],
        rows, out)

    # -- per-driver breakdown -----------------------------------------------
    per_driver = summary.get("per_driver", {})
    keys = sorted({k for d in per_driver.values() for k in d})
    _print_table(
        "per-driver XPC breakdown (Table 3 style)",
        ["driver"] + keys,
        [[driver] + [d.get(k, 0) for k in keys]
         for driver, d in sorted(per_driver.items())],
        out)


# -- diffing -------------------------------------------------------------------


def _numeric_leaves(node, prefix=""):
    """Flatten nested dicts/lists to dotted-path -> number."""
    out = {}
    if isinstance(node, bool):
        return out
    if isinstance(node, (int, float)):
        out[prefix or "value"] = node
    elif isinstance(node, dict):
        for key in node:
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            out.update(_numeric_leaves(node[key], path))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            out.update(_numeric_leaves(item, "%s[%d]" % (prefix, i)))
    return out


def _comparable(doc):
    """The numeric-leaf dict a trace or bench JSON diff runs over."""
    if isinstance(doc, dict) and "traceEvents" in doc:
        summary = dict(doc.get("otherData", {}).get("trace_summary", {}))
        summary.pop("histograms", None)  # bucket noise; counters suffice
        return _numeric_leaves(summary)
    return _numeric_leaves(doc)


def diff_docs(doc_a, doc_b, threshold_pct=10.0, out=None):
    """Print a counter diff; returns the number of flagged counters.

    Counters present in both docs diff as percentages.  Counters in
    only one doc get no percentage -- a vanished counter is not a
    "-100% regression" and an appeared one has no base to divide by;
    both land in an explicit new/gone section instead (still flagged,
    since a counter appearing or vanishing between runs is exactly the
    kind of change a diff exists to surface).
    """
    out = out or sys.stdout
    a, b = _comparable(doc_a), _comparable(doc_b)
    flagged = 0
    rows = []
    for path in sorted(set(a) & set(b)):
        va, vb = a[path], b[path]
        if va == vb:
            continue
        if va == 0:
            # Grew from zero: no base to divide by; always flag.
            pct, delta = None, "from 0"
        else:
            pct = 100.0 * (vb - va) / abs(va)
            delta = "%+.1f%%" % pct
        mark = ""
        if pct is None or abs(pct) > threshold_pct:
            mark = "!"
            flagged += 1
        rows.append((mark, path, va, vb, delta))
    _print_table(
        "diff (threshold %.0f%%; '!' = counter moved beyond it)"
        % threshold_pct,
        ["", "counter", "a", "b", "delta"], rows, out)

    new = sorted(set(b) - set(a))
    gone = sorted(set(a) - set(b))
    if new or gone:
        section = [("!", path, "-", b[path], "new") for path in new]
        section += [("!", path, a[path], "-", "gone") for path in gone]
        flagged += len(section)
        _print_table("only in one doc (%d new, %d gone)"
                     % (len(new), len(gone)),
                     ["", "counter", "a", "b", "delta"], section, out)
    print("%d counter(s) moved > %.0f%%" % (flagged, threshold_pct), file=out)
    return flagged


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", metavar="trace.json",
                        help="exported trace file(s) to summarize")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        help="diff two trace or BENCH_*.json files")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per ranking table (default 10)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="diff flag threshold in percent (default 10)")
    args = parser.parse_args(argv)

    if args.diff:
        with open(args.diff[0]) as fh:
            doc_a = json.load(fh)
        with open(args.diff[1]) as fh:
            doc_b = json.load(fh)
        diff_docs(doc_a, doc_b, threshold_pct=args.threshold)
        return 0

    if not args.paths:
        parser.error("give at least one trace file, or --diff A B")
    for path in args.paths:
        with open(path) as fh:
            doc = json.load(fh)
        print("== %s ==" % path)
        report_trace(doc, top=args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
