"""The fleet harness: churn engine, fault storm, and metrics.

One :class:`FleetHarness` owns one simulated machine
(``make_kernel(nr_cpus=..., nr_irqs=N+8)``) carrying N device slots in
a mixed legacy/decaf configuration.  The run loop interleaves, over
the kernel's timer wheel and virtual CPUs:

* **traffic** -- a rotating batch of slots moves a little traffic each
  tick (NIC tx/rx, USB bulk writes, PCM periods, mouse samples);
* **churn** -- every churn period a sample of bound slots is removed
  and every previously removed slot is re-probed, so the module
  loader, IRQ lines, I/O windows and bus bindings cycle continuously
  under load;
* **faults** -- every fault period an ``xpc_raise`` plan is armed
  against a random bound decaf slot; the next crossing raises inside
  the user half, the boundary contains it, and the slot's supervisor
  restarts the driver while the rest of the fleet keeps running.

Metrics come out as an extended :class:`WorkloadResult`: sustained
simulator events per wall-clock second, tracemalloc bytes per device
slot, the fault recovery rate with p50/p99 fault-to-recovered latency,
and (from an optional profiled phase) the fraction of host CPU spent
in the device models.
"""

import cProfile
import gc
import os
import pstats
import random
import time
import tracemalloc

from ..faults import FaultPlan, FaultSpec
from ..kernel import make_kernel
from ..workloads.result import WorkloadResult, health_summary_of
from .isolate import CLONE_SETS, ClonePool
from .slots import FAMILIES

DEFAULT_MIX = ("e1000", "rtl8139", "uhci", "ens1371", "psmouse")

# cProfile source-path buckets (tools/profile_hotpath.py's view).  The
# device-model share counts the device models themselves plus the
# compiled datapath loops that execute ring work on their behalf.
_DEVICE_NEEDLES = ("repro/devices/", "kernel/fastpath")
_BUCKETS = (
    ("device-model", _DEVICE_NEEDLES),
    ("driver-loop", ("drivers/legacy/", "drivers/decaf/")),
    ("io-dispatch", ("kernel/ioports",)),
    ("net-stack", ("kernel/netdev", "kernel/napi")),
    ("kernel-core", ("kernel/core", "kernel/events", "kernel/vtime",
                     "kernel/irq", "kernel/context", "kernel/locks",
                     "kernel/memory", "kernel/timers", "kernel/usb",
                     "kernel/sound", "kernel/input", "kernel/pci",
                     "kernel/module")),
    ("xpc/marshal", ("core/xpc", "core/marshal", "core/cstruct",
                     "core/runtime", "drivers/decaf/plumbing")),
    ("fleet", ("repro/fleet/",)),
    ("health", ("repro/health/",)),
)


def _bucket_for(path):
    norm = path.replace(os.sep, "/")
    for name, needles in _BUCKETS:
        for needle in needles:
            if needle in norm:
                return name
    return "other"


class FleetSpec:
    """Shape of one fleet run (all knobs deterministic)."""

    def __init__(self, n_devices=128, mix=DEFAULT_MIX, decaf_fraction=0.5,
                 nr_cpus=4, duration_ms=200, tick_period_ms=1,
                 tick_batch=None, churn_period_ms=20, churn_fraction=0.04,
                 churn_max=8, fault_period_ms=10, max_recoveries=1000,
                 settle_ms=60, seed=1234):
        if not 1 <= n_devices <= 4096:
            raise ValueError("n_devices must be 1..4096")
        unknown = set(mix) - set(FAMILIES)
        if unknown:
            raise ValueError("unknown families: %s" % sorted(unknown))
        self.n_devices = n_devices
        self.mix = tuple(mix)
        self.decaf_fraction = decaf_fraction
        self.nr_cpus = nr_cpus
        self.duration_ms = duration_ms
        self.tick_period_ms = tick_period_ms
        # How many slots move traffic per tick; default keeps one full
        # rotation through the fleet every ~16 ticks regardless of N.
        self.tick_batch = tick_batch or max(8, n_devices // 16)
        self.churn_period_ms = churn_period_ms
        self.churn_fraction = churn_fraction
        # Cap on slots churned per event: a decaf re-probe costs real
        # virtual time (JVM startup), so unbounded churn at N=1024
        # would make every churn event a multi-minute stall.
        self.churn_max = churn_max
        self.fault_period_ms = fault_period_ms  # 0 disables faults
        self.max_recoveries = max_recoveries
        self.settle_ms = settle_ms
        self.seed = seed


class FleetHarness:
    def __init__(self, spec):
        self.spec = spec
        self.kernel = make_kernel(nr_cpus=spec.nr_cpus,
                                  nr_irqs=spec.n_devices + 8,
                                  sound_use_mutex=True)
        self.pool = ClonePool()
        self.rng = random.Random(spec.seed)
        self.slots = []
        self._parked = []        # removed slots awaiting re-probe
        self._plans = []         # every fault plan ever armed
        self.churn_cycles = 0    # completed remove -> re-probe cycles
        self.removes = 0
        self.mem_bytes_per_device = 0.0
        self.events_per_sec = 0.0
        self.wall_elapsed_s = 0.0
        self.device_model_fraction = 0.0
        self.profile_buckets = {}

    # -- construction ---------------------------------------------------------

    def _build_slot(self, index):
        spec = self.spec
        family = spec.mix[index % len(spec.mix)]
        decaf = self.rng.random() < spec.decaf_fraction
        slot = FAMILIES[family](index, decaf=decaf)
        slot.attach(self.kernel, self.pool.acquire(family, decaf))
        slot.probe(max_recoveries=spec.max_recoveries)
        self.slots.append(slot)

    def build(self):
        """Create and probe every slot; waits for links to settle."""
        for index in range(self.spec.n_devices):
            self._build_slot(index)
        self.kernel.run_for_ms(self.spec.settle_ms)
        return self

    def measure_build(self, sample=64):
        """Like :meth:`build`, with tracemalloc over a slot sample.

        tracemalloc slows slot construction by more than an order of
        magnitude, so only the first ``sample`` slots build traced (the
        per-device cost is uniform by construction: same families, same
        clone sets); the rest build at full speed.
        """
        spec = self.spec
        sample = min(sample, spec.n_devices)
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        gc.collect()
        before = tracemalloc.get_traced_memory()[0]
        try:
            for index in range(sample):
                self._build_slot(index)
            gc.collect()
            after = tracemalloc.get_traced_memory()[0]
        finally:
            if started_here:
                tracemalloc.stop()
        self.mem_bytes_per_device = max(0.0, (after - before) / sample)
        for index in range(sample, spec.n_devices):
            self._build_slot(index)
        self.kernel.run_for_ms(spec.settle_ms)
        return self

    # -- the run loop ---------------------------------------------------------

    def run(self, duration_ms=None):
        """Traffic + churn + faults for ``duration_ms`` of tick rounds.

        The loop runs ``duration_ms / tick_period_ms`` tick rounds and
        schedules churn and fault events by round count, not by virtual
        deadline: a single recovery (JVM restart, 220ms) or a decaf
        re-probe costs more virtual time than a whole quiet run, so
        virtual-deadline scheduling would let one recovery starve every
        other event.  Virtual time still advances faithfully -- the
        reported ``duration_s`` includes whatever the big events cost.
        """
        spec = self.spec
        kernel = self.kernel
        duration_ms = spec.duration_ms if duration_ms is None else duration_ms
        period_ns = spec.tick_period_ms * 1_000_000
        rounds = max(1, duration_ms // spec.tick_period_ms)
        churn_every = max(1, spec.churn_period_ms // spec.tick_period_ms)
        fault_every = (max(1, spec.fault_period_ms // spec.tick_period_ms)
                       if spec.fault_period_ms else 0)
        cursor = 0
        nslots = len(self.slots)
        events0 = kernel.events_dispatched
        wall0 = time.perf_counter()
        for rnd in range(1, rounds + 1):
            for j in range(min(spec.tick_batch, nslots)):
                slot = self.slots[(cursor + j) % nslots]
                if slot.bound:
                    slot.tick()
            cursor += spec.tick_batch
            if rnd % churn_every == 0:
                self._churn_event()
            if fault_every and rnd % fault_every == 0:
                self._fault_event()
            kernel.run_for_ns(period_ns)
        self._settle()
        self.wall_elapsed_s += time.perf_counter() - wall0
        elapsed = time.perf_counter() - wall0
        if elapsed > 0:
            self.events_per_sec = ((kernel.events_dispatched - events0)
                                   / elapsed)
        return self

    def profile_run(self, duration_ms=40):
        """A short profiled phase: fills the device-model fraction."""
        saved_rate = self.events_per_sec  # don't let profiler overhead
        profiler = cProfile.Profile()     # pollute the sustained rate
        profiler.enable()
        try:
            self.run(duration_ms)
        finally:
            profiler.disable()
            self.events_per_sec = saved_rate or self.events_per_sec
        stats = pstats.Stats(profiler)
        buckets = {}
        for (path, _line, _fn), (_cc, _nc, tottime, _ct, _callers) \
                in stats.stats.items():
            buckets[_bucket_for(path)] = (
                buckets.get(_bucket_for(path), 0.0) + tottime)
        # Profiler bookkeeping shows up under "other" with builtins;
        # keep it -- the fraction should be conservative, not flattered.
        total = sum(buckets.values())
        self.profile_buckets = buckets
        self.device_model_fraction = (
            buckets.get("device-model", 0.0) / total if total else 0.0)
        return self

    # -- churn + faults --------------------------------------------------------

    def _churn_event(self):
        """Re-probe everything parked, then park a fresh sample."""
        spec = self.spec
        for slot in self._parked:
            slot.probe(max_recoveries=spec.max_recoveries)
            self.churn_cycles += 1
        self._parked = []
        bound = [s for s in self.slots if s.bound]
        k = max(1, min(spec.churn_max,
                       int(len(bound) * spec.churn_fraction)))
        for slot in self.rng.sample(bound, min(k, len(bound))):
            slot.remove()
            self.removes += 1
            self._parked.append(slot)

    def _fault_event(self):
        """Arm one transient user-half fault on a random decaf slot."""
        candidates = [s for s in self.slots
                      if s.decaf and s.bound and not s.recovery_pending()]
        if not candidates:
            return
        slot = self.rng.choice(candidates)
        plan = FaultPlan([FaultSpec("xpc_raise")],
                         name="fleet-%s" % slot.name)
        slot.inject_faults(plan)
        self._plans.append(plan)
        # The decaf datapaths are engineered to cross rarely; poke a
        # control-plane op so the armed fault meets a crossing now.
        slot.poke()

    def _settle(self):
        """Drain pending recoveries so end-of-run counters are stable."""
        kernel = self.kernel
        for _ in range(50):
            if not any(s.bound and s.recovery_pending()
                       for s in self.slots):
                break
            kernel.run_for_ms(5)
        for slot in self.slots:
            sup = slot.supervisor
            if (sup is not None and slot.channel is not None
                    and slot.channel.failed and not sup.gave_up):
                sup.recover()

    # -- teardown + metrics ----------------------------------------------------

    def teardown(self):
        """Remove every slot and pool its clone namespaces."""
        for slot in self._parked:
            if slot not in self.slots:
                self.slots.append(slot)
        self._parked = []
        for slot in self.slots:
            if slot.bound:
                slot.remove()
            if slot.clones is not None:
                self.pool.release(slot.family, slot.decaf, slot.clones)
                slot.clones = None
        return self

    def faults_fired(self):
        return sum(plan.fired for plan in self._plans)

    def recoveries(self):
        return sum(slot.recoveries_total() for slot in self.slots)

    def outage_samples_ns(self):
        out = []
        for slot in self.slots:
            out.extend(slot.harvest_outages())
        return out

    def result(self, name="fleet"):
        kernel = self.kernel
        samples = sorted(self.outage_samples_ns())
        fired = self.faults_fired()
        recovered = self.recoveries()
        crossings = sum(s.channel.xpc.kernel_user_crossings
                        for s in self.slots if s.channel is not None)
        return WorkloadResult(
            name=name,
            health_summary=health_summary_of(kernel),
            duration_s=kernel.clock.now_ns / 1e9,
            packets=sum(s.traffic_units for s in self.slots),
            packets_lost=sum(s.traffic_lost for s in self.slots),
            cpu_utilization=kernel.cpu.utilization(),
            kernel_user_crossings=crossings,
            faults_injected=fired,
            recoveries=recovered,
            fleet_devices=self.spec.n_devices,
            churn_cycles=self.churn_cycles,
            events_per_sec=self.events_per_sec,
            mem_bytes_per_device=self.mem_bytes_per_device,
            recovery_rate=(recovered / fired) if fired else 1.0,
            recovery_p50_ms=_percentile(samples, 0.50) / 1e6,
            recovery_p99_ms=_percentile(samples, 0.99) / 1e6,
            device_model_fraction=self.device_model_fraction,
            extra={
                "decaf_slots": sum(1 for s in self.slots if s.decaf),
                "legacy_slots": sum(1 for s in self.slots if not s.decaf),
                "probes": sum(s.probes for s in self.slots),
                "removes": self.removes,
                "clone_pool": self.pool.stats(),
                "profile_buckets": {
                    k: round(v, 4)
                    for k, v in sorted(self.profile_buckets.items())},
                "wall_elapsed_s": round(self.wall_elapsed_s, 3),
            },
        )


def _percentile(sorted_samples, q):
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1,
                int(q * (len(sorted_samples) - 1) + 0.5))
    return sorted_samples[index]


def fleet_workload(n_devices=128, decaf_fraction=0.5, nr_cpus=4,
                   duration_ms=200, fault_period_ms=10, profile=False,
                   seed=1234, spec=None):
    """Build, run, tear down one fleet; returns the WorkloadResult."""
    if spec is None:
        spec = FleetSpec(n_devices=n_devices, decaf_fraction=decaf_fraction,
                         nr_cpus=nr_cpus, duration_ms=duration_ms,
                         fault_period_ms=fault_period_ms, seed=seed)
    harness = FleetHarness(spec)
    harness.measure_build()
    harness.run()
    if profile:
        harness.profile_run()
    result = harness.result()
    harness.teardown()
    result.extra["harness"] = harness
    return result
