"""Per-slot driver module cloning.

The drivers mirror their C originals: one module-level ``_state``
struct, one ``linux`` binding, free functions closing over both.  That
is faithful to a 2.6.18 driver -- and it makes every driver a
singleton, which a fleet kernel cannot live with.

Rather than rewrite five drivers into classes (and lose the
C-idiomatic shape the conversion tables measure), the fleet execs a
*fresh module namespace* per device slot from the driver's compiled
code object.  Code objects are compiled once and shared; each clone
pays only for its own function/class objects and module dict.  While a
clone set is being exec'd, ``sys.modules`` (and the parent package
attribute) temporarily point intra-family imports -- a decaf nucleus'
``from ..legacy import rtl8139 as legacy`` -- at the slot's private
legacy clone, then are restored, so the rest of the process never sees
the clones.

Freed clone sets are pooled per family: probe/remove/re-probe churn
reuses namespaces instead of growing the heap monotonically.
"""

import importlib
import sys
import types

_CODE_CACHE = {}

# Modules that hold per-instance driver state (module-level ``_state``
# or a ``legacy`` binding that must resolve to the slot's clone).
# Stateless helpers (e1000_hw/param/ethtool, the decaf user halves,
# plumbing, cstruct) are shared: their globals are constants, classes
# and a ``linux`` handle every slot of one kernel binds identically.
CLONE_SETS = {
    ("e1000", False): ("repro.drivers.legacy.e1000_main",),
    ("e1000", True): ("repro.drivers.legacy.e1000_main",
                      "repro.drivers.decaf.e1000_nucleus"),
    ("rtl8139", False): ("repro.drivers.legacy.rtl8139",),
    ("rtl8139", True): ("repro.drivers.legacy.rtl8139",
                        "repro.drivers.decaf.rtl8139_nucleus"),
    ("uhci", False): ("repro.drivers.legacy.uhci_hcd",),
    ("uhci", True): ("repro.drivers.legacy.uhci_hcd",
                     "repro.drivers.decaf.uhci_nucleus"),
    ("psmouse", False): ("repro.drivers.legacy.psmouse",),
    ("psmouse", True): ("repro.drivers.legacy.psmouse",
                        "repro.drivers.decaf.psmouse_nucleus"),
    ("ens1371", False): ("repro.drivers.legacy.ens1371",),
    ("ens1371", True): ("repro.drivers.legacy.ens1371",
                        "repro.drivers.decaf.ens1371_nucleus"),
}


def _code_for(name):
    if name not in _CODE_CACHE:
        module = importlib.import_module(name)
        path = module.__file__
        with open(path) as fh:
            source = fh.read()
        _CODE_CACHE[name] = (compile(source, path, "exec"), path)
    return _CODE_CACHE[name]


def _reregister_original_structs(original):
    """Keep the global CStruct registry pointing at the originals.

    Exec'ing a clone re-runs its class statements, and CStructMeta
    registers every struct name globally (last writer wins).  Marshal
    plans and type ids are name-keyed, so which twin the registry holds
    never changes wire behaviour -- but process-global state should
    stay canonical once the clone exec is done.
    """
    from ..core.cstruct import CStruct, StructRegistry

    for value in vars(original).values():
        if (isinstance(value, type) and issubclass(value, CStruct)
                and value is not CStruct
                and getattr(value, "_fields", None)):
            StructRegistry.register(value)


def clone_module_set(names):
    """Exec fresh namespaces for ``names`` (dependency order).

    Returns {dotted name: module clone}.  Imports *between* members of
    the set resolve to the clones; everything else resolves normally.
    """
    clones = {}
    saved_modules = {}
    saved_attrs = {}
    try:
        for name in names:
            code, path = _code_for(name)
            original = sys.modules[name]
            clone = types.ModuleType(name)
            clone.__package__ = original.__package__
            clone.__file__ = path
            pkg_name, _, attr = name.rpartition(".")
            package = sys.modules[pkg_name]
            if name not in saved_modules:
                saved_modules[name] = original
                saved_attrs[name] = getattr(package, attr)
            sys.modules[name] = clone
            setattr(package, attr, clone)
            exec(code, clone.__dict__)
            _reregister_original_structs(original)
            clones[name] = clone
    finally:
        for name, module in saved_modules.items():
            sys.modules[name] = module
        for name, value in saved_attrs.items():
            pkg_name, _, attr = name.rpartition(".")
            setattr(sys.modules[pkg_name], attr, value)
    return clones


class ClonePool:
    """Per-(family, decaf) free lists of clone sets.

    ``acquire`` hands out a pooled namespace set when one is free --
    re-probe churn then costs a ``_state.__init__()`` reset instead of
    a fresh exec -- and builds a new one otherwise.
    """

    def __init__(self):
        self._free = {}
        self.builds = 0
        self.reuses = 0

    def acquire(self, family, decaf):
        key = (family, bool(decaf))
        free = self._free.get(key)
        if free:
            self.reuses += 1
            return free.pop()
        self.builds += 1
        return clone_module_set(CLONE_SETS[key])

    def release(self, family, decaf, clones):
        self._free.setdefault((family, bool(decaf)), []).append(clones)

    def stats(self):
        return {"builds": self.builds, "reuses": self.reuses,
                "pooled": sum(len(v) for v in self._free.values())}
