"""CLI for the fleet harness: ``python -m repro.fleet``.

Examples::

    python -m repro.fleet --devices 128
    python -m repro.fleet --devices 1024 --profile --json out.json
    python -m repro.fleet --devices 256 --decaf-fraction 0.8 --no-faults
"""

import argparse
import json
import sys

from .harness import DEFAULT_MIX, FleetSpec, fleet_workload


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Probe, drive, churn and fault a fleet of simulated "
                    "devices under one kernel.",
    )
    parser.add_argument("--devices", "-n", type=int, default=128,
                        help="device slots (1..4096, default 128)")
    parser.add_argument("--duration-ms", type=int, default=150,
                        help="tick rounds worth of traffic (default 150)")
    parser.add_argument("--decaf-fraction", type=float, default=0.5,
                        help="fraction of slots running decaf drivers")
    parser.add_argument("--cpus", type=int, default=4,
                        help="virtual CPUs (default 4)")
    parser.add_argument("--mix", default=",".join(DEFAULT_MIX),
                        help="comma-separated driver families to cycle")
    parser.add_argument("--churn-period-ms", type=int, default=20,
                        help="rounds between churn events (default 20)")
    parser.add_argument("--fault-period-ms", type=int, default=10,
                        help="rounds between fault injections (default 10)")
    parser.add_argument("--no-faults", action="store_true",
                        help="disable fault injection")
    parser.add_argument("--no-churn", action="store_true",
                        help="disable remove/re-probe churn")
    parser.add_argument("--profile", action="store_true",
                        help="run a profiled phase and report the "
                             "device-model fraction")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--json", metavar="PATH",
                        help="write the result row as JSON ('-' = stdout)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    spec = FleetSpec(
        n_devices=args.devices,
        mix=tuple(f.strip() for f in args.mix.split(",") if f.strip()),
        decaf_fraction=args.decaf_fraction,
        nr_cpus=args.cpus,
        duration_ms=args.duration_ms,
        churn_period_ms=(args.duration_ms * 10 if args.no_churn
                         else args.churn_period_ms),
        fault_period_ms=0 if args.no_faults else args.fault_period_ms,
        seed=args.seed,
    )
    result = fleet_workload(profile=args.profile, spec=spec)
    row = result.row()
    width = max(len(key) for key in row)
    for key, value in row.items():
        print("%-*s  %s" % (width, key, value))
    if args.json:
        payload = json.dumps(row, indent=2, default=str)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
