"""Per-family device slots: device model + cloned driver + traffic.

A :class:`DeviceSlot` is one pluggable device under the fleet kernel:
the device model (with slot-unique IRQ line, I/O window and MAC), the
driver module built from the slot's private clone namespace
(:mod:`repro.fleet.isolate`), and a small traffic generator that keeps
the device busy between hotplug churn events.

Slots are duck-typed as rigs where it matters: the fault injector and
the recovery supervisor only need ``.kernel``, ``.name``, ``.decaf``
and ``.module.instance`` -- all of which a slot provides -- so the
whole :mod:`repro.faults` / :mod:`repro.recovery` stack applies
unchanged to every member of a 4096-device fleet.
"""

import struct as _struct

from ..devices import (
    E1000Device,
    Ens1371Device,
    EthernetLink,
    Ps2MouseDevice,
    Rtl8139Device,
    UhciDevice,
    UsbFlashDiskModel,
)
from ..drivers.legacy import e1000_ethtool, e1000_hw, e1000_param
from ..drivers.linuxapi import LinuxApi
from ..drivers.modulebase import LegacyDriverModule
from ..kernel import NETDEV_TX_OK, SkBuff
from ..kernel.module import KernelModule
from ..kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from ..kernel.usb import usb_sndbulkpipe

# Slot resource carving.  The address space is simulated, so strides
# just need to clear the largest BAR (e1000's 0x20000 MMIO window).
PORT_BASE = 0x1_0000
PORT_STRIDE = 0x1000
MMIO_BASE = 0x1000_0000
MMIO_STRIDE = 0x10_0000


def slot_irq(index):
    """IRQ line for slot ``index`` (line 0 stays free for the kernel)."""
    return index + 1


def slot_port_base(index):
    return PORT_BASE + index * PORT_STRIDE


def slot_mmio_base(index):
    return MMIO_BASE + index * MMIO_STRIDE


def slot_mac(index, family_code):
    """Locally administered, unique per (family, slot index)."""
    return bytes((0x02, family_code, (index >> 16) & 0xFF,
                  (index >> 8) & 0xFF, index & 0xFF, 0x01))


class SlotPciGlue:
    """Identity filter in front of a driver's PCI glue.

    ``PciBus.register_driver`` probes *every* unbound function the ID
    table matches; with N identical NICs on the bus, slot 7's driver
    would otherwise claim slot 3's silicon.  Real kernels do not have
    this problem (one driver serves all instances); the fleet's
    driver-per-slot cloning reintroduces it, so each slot's glue binds
    exactly its own function.
    """

    def __init__(self, inner, pci_func):
        self._inner = inner
        self._func = pci_func
        self.name = getattr(inner, "name", "slot-glue")
        self.id_table = getattr(inner, "id_table", ())

    def matches(self, func):
        return func is self._func and self._inner.matches(func)

    def probe(self, kernel, func):
        return self._inner.probe(kernel, func)

    def remove(self, kernel, func):
        return self._inner.remove(kernel, func)


class DeviceSlot:
    """One device + driver instance under the fleet kernel."""

    family = None

    def __init__(self, index, decaf=False):
        self.index = index
        self.decaf = bool(decaf)
        self.name = "%s%s.%d" % (self.family,
                                 "+decaf" if decaf else "", index)
        self.kernel = None
        self.clones = None
        self.device = None
        self.module = None
        self.supervisor = None
        self.injector = None
        self.bound = False
        self.probes = 0
        self.init_latency_ns = None
        self.traffic_units = 0   # packets / blocks / chunks / samples moved
        self.traffic_lost = 0    # units refused (queue stopped, recovery)
        self.outage_samples = []  # harvested from detached supervisors
        self.recoveries = 0       # harvested from detached supervisors

    # -- rig duck-typing (FaultInjector, workload helpers) --------------------

    @property
    def channel(self):
        if not self.decaf or self.module is None:
            return None
        instance = getattr(self.module, "instance", None)
        if instance is None:
            return None
        return instance.plumbing.channel

    def recovery_pending(self):
        sup = self.supervisor
        return bool(sup is not None and sup.recovery_pending())

    def fault_stats(self):
        fired = self.injector.plan.fired if self.injector else 0
        sup = self.supervisor
        return (fired,
                sup.recoveries if sup else 0,
                sup.work_lost if sup else 0)

    # -- lifecycle ------------------------------------------------------------

    def attach(self, kernel, clones):
        """Plug the hardware in and build the driver module (once)."""
        self.kernel = kernel
        self.clones = clones
        self._attach_device()
        self.module = self._build_module()

    def probe(self, max_recoveries=1000):
        """insmod the slot's driver and start its traffic endpoint."""
        if self.bound:
            return 0
        self._on_probing()
        ret = self.kernel.modules.insmod(self.module)
        if ret != 0:
            raise RuntimeError("%s: insmod failed with %d"
                               % (self.name, ret))
        self.init_latency_ns = self.kernel.modules.last_init_latency_ns
        self.probes += 1
        self.bound = True
        if self.decaf:
            from ..recovery import DriverSupervisor

            self.supervisor = DriverSupervisor(
                self.kernel, self.module.instance,
                max_recoveries=max_recoveries,
            )
        self._on_probed()
        return 0

    def remove(self):
        """Stop traffic, detach supervision, rmmod."""
        if not self.bound:
            return
        if self.injector is not None:
            self.injector.disarm()
            self.injector = None
        # A slot churned away mid-recovery must be made healthy first:
        # tearing down a FAILED channel would surface the contained
        # fault from the cleanup upcalls.
        sup = self.supervisor
        if (sup is not None and self.channel is not None
                and self.channel.failed and not sup.gave_up):
            sup.recover()
        self._on_removing()
        if sup is not None:
            self.outage_samples.extend(sup.outage_samples)
            self.recoveries += sup.recoveries
            sup.detach()
            self.supervisor = None
        # Leak accounting is fleet-global (owners are DRV_NAMEs shared
        # by every slot of a family); the harness asserts the global
        # allocation delta instead.
        self.kernel.modules.rmmod(self.module.name, check_leaks=False)
        self.bound = False

    def inject_faults(self, plan):
        from ..faults import FaultInjector

        if self.injector is not None:
            self.injector.disarm()
        self.injector = FaultInjector(self, plan)
        self.injector.arm()
        return self.injector

    def harvest_outages(self):
        samples = list(self.outage_samples)
        if self.supervisor is not None:
            samples.extend(self.supervisor.outage_samples)
        return samples

    def recoveries_total(self):
        live = self.supervisor.recoveries if self.supervisor else 0
        return self.recoveries + live

    def tick(self, units=2):
        """Move a little traffic; returns units actually moved."""
        raise NotImplementedError

    def poke(self):
        """Force one control-plane op that crosses the XPC boundary.

        The decaf datapaths are engineered to avoid crossings, so an
        armed ``xpc_raise`` fault could wait indefinitely for traffic
        alone; the harness pokes the slot right after arming to give
        the fault a deterministic crossing to strike.  No-op on legacy
        slots (no boundary) and unbound slots.
        """
        return None

    # -- per-family hooks ------------------------------------------------------

    def _attach_device(self):
        raise NotImplementedError

    def _build_module(self):
        raise NotImplementedError

    def _on_probing(self):
        pass

    def _on_probed(self):
        pass

    def _on_removing(self):
        pass

    # -- decaf module fitting -------------------------------------------------

    def _pin_decaf(self, mod):
        """Rename the module per-slot and fit its instance at setup time.

        ``DecafDriverModule`` builds its nucleus instance inside
        ``init_module``; wrapping ``_setup`` lets the slot adjust the
        fresh instance (bus glue, port hint) before ``init()`` runs.
        """
        mod.name = self.name
        orig_setup = mod._setup

        def setup(kernel):
            instance = orig_setup(kernel)
            self._fit_instance(instance)
            self._stretch_polls(instance)
            return instance

        mod._setup = setup
        return mod

    def _fit_instance(self, instance):
        instance.pci_glue = SlotPciGlue(instance.pci_glue, self.device.pci)

    # Periodic health polls (root-hub status, link watch, resync) each
    # cost a couple of XPC crossings.  One driver polling at 250ms is
    # noise; hundreds of them make crossings the whole fleet's virtual
    # time, so fleet slots stretch every nucleus poll period.
    _POLL_PERIOD_ATTRS = ("rh_poll_period_ns", "watchdog_period_ns",
                          "link_poll_period_ns", "resync_period_ns")
    POLL_STRETCH = 64

    def _stretch_polls(self, instance):
        for attr in self._POLL_PERIOD_ATTRS:
            period = getattr(instance, attr, None)
            if period is not None:
                setattr(instance, attr, period * self.POLL_STRETCH)


# -- network slots -------------------------------------------------------------


class _NicSlot(DeviceSlot):
    link_bps = 1_000_000_000
    payload_bytes = 256

    def _attach_device(self):
        self.link = EthernetLink(self.kernel, bits_per_second=self.link_bps,
                                 name="link-%s" % self.name)
        self.device = self._make_nic()
        self.kernel.pci.add_function(self.device.pci)
        self.netdev = None
        self._payload = bytes(self.payload_bytes)

    def _make_nic(self):
        raise NotImplementedError

    def _on_probing(self):
        self._devs_before = {id(d) for d in self.kernel.net.devices}

    def _on_probed(self):
        new = [d for d in self.kernel.net.devices
               if id(d) not in self._devs_before]
        if len(new) != 1:
            raise RuntimeError("%s: probe registered %d netdevs"
                               % (self.name, len(new)))
        self.netdev = new[0]
        ret = self.kernel.net.dev_open(self.netdev)
        if ret != 0:
            raise RuntimeError("%s: dev_open failed: %d" % (self.name, ret))

    def _on_removing(self):
        if self.netdev is not None:
            self.kernel.net.dev_close(self.netdev)
            self.netdev = None

    def tick(self, units=2):
        dev = self.netdev
        if dev is None:
            return 0
        moved = 0
        net = self.kernel.net
        if dev.netif_carrier_ok():
            for _ in range(units):
                if dev.netif_queue_stopped():
                    self.traffic_lost += 1
                    break
                if net.dev_queue_xmit(dev, SkBuff(self._payload)) \
                        == NETDEV_TX_OK:
                    moved += 1
                else:
                    self.traffic_lost += 1
                    break
        for _ in range(units):
            self.link.inject(self._payload)
        moved += units
        self.traffic_units += moved
        return moved


class E1000Slot(_NicSlot):
    family = "e1000"
    link_bps = 1_000_000_000

    def poke(self):
        if self.decaf and self.bound and self.netdev is not None:
            self.netdev.set_multicast_list(self.netdev)

    def _make_nic(self):
        return E1000Device(
            self.kernel, self.link,
            mac=slot_mac(self.index, 0xE1),
            irq=slot_irq(self.index),
            mmio_base=slot_mmio_base(self.index),
        )

    def _build_module(self):
        clone = self.clones["repro.drivers.legacy.e1000_main"]
        if self.decaf:
            nucleus = self.clones["repro.drivers.decaf.e1000_nucleus"]
            return self._pin_decaf(nucleus.make_module(napi=True,
                                                       num_queues=1,
                                                       compiled=True))

        def init_fn():
            clone.set_napi_mode(True)
            clone.set_num_queues(1)
            clone.set_compiled_mode(True)
            return clone.e1000_init_module()

        # The hw/param/ethtool helpers are stateless and shared by all
        # slots; only the stateful main module is the slot's clone.
        return LegacyDriverModule(
            name=self.name,
            driver_module=clone,
            extra_modules=(e1000_hw, e1000_param, e1000_ethtool),
            pci_glue=SlotPciGlue(clone.E1000PciGlue(), self.device.pci),
            init_fn=init_fn,
            cleanup_fn=clone.e1000_exit_module,
        )


class Rtl8139Slot(_NicSlot):
    family = "rtl8139"
    link_bps = 100_000_000

    def poke(self):
        if self.decaf and self.bound and self.netdev is not None:
            # Reprogramming the current MAC is an upcall with no
            # observable state change.
            self.netdev.set_mac_address(self.netdev, self.netdev.dev_addr)

    def _make_nic(self):
        return Rtl8139Device(
            self.kernel, self.link,
            mac=slot_mac(self.index, 0x81),
            irq=slot_irq(self.index),
            io_base=slot_port_base(self.index),
        )

    def _build_module(self):
        clone = self.clones["repro.drivers.legacy.rtl8139"]
        if self.decaf:
            nucleus = self.clones["repro.drivers.decaf.rtl8139_nucleus"]
            return self._pin_decaf(nucleus.make_module(napi=True,
                                                       compiled=True))

        def init_fn():
            clone.set_napi_mode(True)
            clone.set_compiled_mode(True)
            return clone.rtl8139_init_module()

        return LegacyDriverModule(
            name=self.name,
            driver_module=clone,
            pci_glue=SlotPciGlue(clone.Rtl8139PciGlue(), self.device.pci),
            init_fn=init_fn,
            cleanup_fn=clone.rtl8139_cleanup_module,
        )


# -- USB slot -------------------------------------------------------------------


class UhciSlot(DeviceSlot):
    family = "uhci"
    BLOCK = 512
    blocks_per_tick = 2

    def _attach_device(self):
        self.device = UhciDevice(self.kernel, irq=slot_irq(self.index),
                                 io_base=slot_port_base(self.index))
        self.disk = UsbFlashDiskModel()
        self.device.attach(0, self.disk)
        self.kernel.pci.add_function(self.device.pci)
        self.disk_dev = None
        self._pipe = None
        self._lba = 0

    def _hook(self, port):
        return self.disk if port == 0 else None

    def _build_module(self):
        clone = self.clones["repro.drivers.legacy.uhci_hcd"]
        if self.decaf:
            nucleus = self.clones["repro.drivers.decaf.uhci_nucleus"]
            return self._pin_decaf(
                nucleus.make_module(device_model_hook=self._hook))
        # The hook is a post-construction attribute on _state, so the
        # loader's per-insmod ``_state.__init__()`` reset preserves it.
        clone._state.device_model_hook = self._hook
        return LegacyDriverModule(
            name=self.name,
            driver_module=clone,
            pci_glue=SlotPciGlue(clone.UhciPciGlue(), self.device.pci),
            init_fn=clone.uhci_hcd_init,
            cleanup_fn=clone.uhci_hcd_cleanup,
        )

    def _on_probing(self):
        self._usb_before = {id(d) for d in self.kernel.usb.devices}

    def _on_probed(self):
        new = [d for d in self.kernel.usb.devices
               if id(d) not in self._usb_before]
        if len(new) != 1:
            raise RuntimeError("%s: probe enumerated %d USB devices"
                               % (self.name, len(new)))
        self.disk_dev = new[0]
        self._pipe = usb_sndbulkpipe(self.disk_dev, 2)

    def _on_removing(self):
        self.disk_dev = None
        self._pipe = None

    def poke(self):
        if self.decaf and self.bound:
            # One root-hub status poll (normally timer-driven).
            self.module.instance._rh_poll_work(None)

    def tick(self, units=1):
        if self.disk_dev is None:
            return 0
        moved = 0
        for _ in range(units):
            blocks = self.blocks_per_tick
            payload = bytes(blocks * self.BLOCK)
            cmd = _struct.pack("<BBHI", 1, 0, blocks, self._lba) + payload
            status, _n = self.kernel.usb.usb_bulk_msg(
                self.disk_dev, self._pipe, cmd, timeout_ms=30_000)
            if status != 0:
                self.traffic_lost += 1
                break
            self._lba = (self._lba + blocks) % self.disk.capacity_blocks
            moved += blocks
        self.traffic_units += moved
        return moved


# -- sound slot -----------------------------------------------------------------


class Ens1371Slot(DeviceSlot):
    family = "ens1371"
    PERIOD_BYTES = 4096
    PERIODS = 4

    def _attach_device(self):
        self.device = Ens1371Device(self.kernel, irq=slot_irq(self.index),
                                    io_base=slot_port_base(self.index))
        self.kernel.pci.add_function(self.device.pci)
        self.substream = None

    def _build_module(self):
        if self.decaf:
            nucleus = self.clones["repro.drivers.decaf.ens1371_nucleus"]
            return self._pin_decaf(nucleus.make_module())
        clone = self.clones["repro.drivers.legacy.ens1371"]
        return LegacyDriverModule(
            name=self.name,
            driver_module=clone,
            pci_glue=SlotPciGlue(clone.Ens1371PciGlue(), self.device.pci),
            init_fn=clone.alsa_card_ens1371_init,
            cleanup_fn=clone.alsa_card_ens1371_exit,
        )

    def _on_probing(self):
        self._cards_before = {id(c) for c in self.kernel.sound.cards}

    def _on_probed(self):
        new = [c for c in self.kernel.sound.cards
               if id(c) not in self._cards_before]
        if len(new) != 1:
            raise RuntimeError("%s: probe registered %d sound cards"
                               % (self.name, len(new)))
        sound = self.kernel.sound
        substream = new[0].pcms[0].playback
        for step, ret in (
            ("open", sound.pcm_open(substream)),
            ("hw_params", sound.pcm_hw_params(
                substream, 44_100, 2, 2, self.PERIOD_BYTES, self.PERIODS)),
            ("prepare", sound.pcm_prepare(substream)),
        ):
            if ret != 0:
                raise RuntimeError("%s: pcm %s failed: %d"
                                   % (self.name, step, ret))
        self.substream = substream
        # Playback starts lazily on the first tick: a freshly probed
        # card that started streaming immediately would fire period
        # interrupts all through the *rest of the fleet's* probes,
        # making build time quadratic in N.
        self._playing = False

    def _on_removing(self):
        if self.substream is not None:
            sound = self.kernel.sound
            if self._playing:
                sound.pcm_trigger(self.substream, SNDRV_PCM_TRIGGER_STOP)
                self._playing = False
            sound.pcm_close(self.substream)
            self.substream = None

    def poke(self):
        if (self.decaf and self.bound and self.substream is not None
                and self._playing):
            # Trigger stop/start is two upcalls through stub_trigger.
            sound = self.kernel.sound
            sound.pcm_trigger(self.substream, SNDRV_PCM_TRIGGER_STOP)
            sound.pcm_trigger(self.substream, SNDRV_PCM_TRIGGER_START)

    def tick(self, units=1):
        substream = self.substream
        if substream is None:
            return 0
        if not self._playing:
            ret = self.kernel.sound.pcm_trigger(substream,
                                                SNDRV_PCM_TRIGGER_START)
            if ret != 0:
                self.traffic_lost += 1
                return 0
            self._playing = True
        moved = 0
        for _ in range(units):
            # Only write into free ring space: the fleet tick must not
            # block this slot at the card's real-time drain pace.
            free = substream.runtime.bytes_free()
            if free < self.PERIOD_BYTES:
                break
            accepted = self.kernel.sound.pcm_write(substream,
                                                   self.PERIOD_BYTES)
            if accepted <= 0:
                self.traffic_lost += 1
                break
            moved += 1
        self.traffic_units += moved
        return moved


# -- mouse slot -----------------------------------------------------------------


class _PsmouseCloneModule(KernelModule):
    """Loadable wrapper for a psmouse clone bound to one serio port.

    The stock ``psmouse.make_module`` resolves its module through
    ``sys.modules`` (which holds the original, not the clone) and
    always binds the first serio port, so the fleet builds its own.
    """

    def __init__(self, name, clone, port):
        self.name = name
        self.clone = clone
        self.glue = clone.PsmouseSerioGlue(port=port)

    def init_module(self, kernel):
        self.clone.linux = LinuxApi(kernel)
        self.clone._state.__init__()  # fresh driver-global state per load
        ret = self.clone.psmouse_init()
        if ret:
            return ret
        return self.glue.connect(kernel)

    def cleanup_module(self, kernel):
        self.glue.disconnect()
        self.clone.psmouse_exit()


class PsmouseSlot(DeviceSlot):
    family = "psmouse"
    samples_per_tick = 2

    def _attach_device(self):
        self.port = self.kernel.input.new_serio_port(
            name="serio-%d" % self.index)
        self.device = Ps2MouseDevice(self.kernel)
        self.device.attach(self.port)
        self.input_dev = None
        self.input_events = 0

    def _build_module(self):
        if self.decaf:
            nucleus = self.clones["repro.drivers.decaf.psmouse_nucleus"]
            return self._pin_decaf(nucleus.make_module())
        clone = self.clones["repro.drivers.legacy.psmouse"]
        return _PsmouseCloneModule(self.name, clone, self.port)

    def _fit_instance(self, instance):
        instance.port_hint = self.port

    def _on_probing(self):
        self._input_before = {id(d) for d in self.kernel.input.devices}

    def _on_probed(self):
        new = [d for d in self.kernel.input.devices
               if id(d) not in self._input_before]
        if len(new) != 1:
            raise RuntimeError("%s: probe registered %d input devices"
                               % (self.name, len(new)))
        self.input_dev = new[0]
        self.input_dev.sink = self._sink

    def _sink(self, events):
        self.input_events += len(events)

    def _on_removing(self):
        if self.input_dev is not None:
            self.input_dev.sink = None
            self.input_dev = None

    def poke(self):
        if self.decaf and self.bound:
            # One resync check (normally a 1 Hz supervised-only timer).
            self.module.instance._resync_work(None)

    def tick(self, units=2):
        if not self.bound:
            return 0
        moved = 0
        for i in range(units * self.samples_per_tick):
            if self.device.move(3, -1, buttons=i & 1):
                moved += 1
            else:
                self.traffic_lost += 1
        self.traffic_units += moved
        return moved


FAMILIES = {
    "e1000": E1000Slot,
    "rtl8139": Rtl8139Slot,
    "uhci": UhciSlot,
    "ens1371": Ens1371Slot,
    "psmouse": PsmouseSlot,
}
