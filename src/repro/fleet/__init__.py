"""repro.fleet: hotplug harness for thousands of devices in one kernel.

Every workload before this package drove *one* device through one
driver.  The fleet harness probes N mixed device instances (both NICs,
USB, sound, mouse; legacy and decaf) concurrently under a single
``make_kernel(nr_cpus=...)``, drives them with interleaved traffic and
probe/remove/re-probe churn over the timer wheel, and injects
fleet-wide faults so the recovery supervisors restart drivers under
load -- the simulated analogue of one host multiplexing thousands of
tenants.

Layout:

* :mod:`repro.fleet.isolate` -- per-slot driver module cloning (the
  drivers are C-idiomatic singletons around a module-level ``_state``;
  a fleet needs N independent instances of each).
* :mod:`repro.fleet.slots` -- per-family device slot builders: device
  model + cloned driver module + identity-filtered bus glue + traffic.
* :mod:`repro.fleet.harness` -- the churn engine, fault injection and
  metrics (events/s, bytes/device, recovery latency percentiles).

Run ``python -m repro.fleet --help`` for the CLI.
"""

from .harness import FleetHarness, FleetSpec, fleet_workload
from .slots import FAMILIES

__all__ = ["FleetHarness", "FleetSpec", "fleet_workload", "FAMILIES"]
