"""Lines-of-code accounting (Table 1 and Table 2 support).

The paper's Table 1 reports the size of the Decaf infrastructure:
runtime support (Jeannie helpers, XPC in the decaf and nuclear
runtimes) and DriverSlicer (CIL OCaml, Python scripts, XDR compilers).
Our reproduction has direct analogues for each row.
"""

import importlib
import inspect


def count_module_loc(module_name):
    """Non-comment, non-blank source lines of one importable module."""
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    count = 0
    in_docstring = False
    delim = None
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # Track (simple) module/class/function docstrings.
        if in_docstring:
            if delim in line:
                in_docstring = False
            continue
        if line.startswith(('"""', "'''")):
            delim = line[:3]
            if line.count(delim) == 1:
                in_docstring = True
            continue
        count += 1
    return count


# Paper's Table 1 rows -> our analogous components.
INFRASTRUCTURE_COMPONENTS = {
    "Runtime support": {
        "Decaf runtime helpers (Jeannie helpers analogue)": [
            "repro.core.runtime",
            "repro.drivers.decaf.plumbing",
            "repro.drivers.decaf.exceptions",
        ],
        "XPC in Decaf runtime": [
            "repro.core.xpc",
            "repro.core.objtracker",
            "repro.core.domains",
        ],
        "XPC in Nuclear runtime": [
            "repro.core.marshal",
            "repro.core.combolock",
            "repro.core.cstruct",
        ],
    },
    "DriverSlicer": {
        "Static analysis (CIL OCaml analogue)": [
            "repro.slicer.callgraph",
            "repro.slicer.partition",
            "repro.slicer.accessanalysis",
        ],
        "Post-processing scripts": [
            "repro.slicer.splitter",
            "repro.slicer.stubgen",
            "repro.slicer.report",
            "repro.slicer.config",
        ],
        "XDR compilers": [
            "repro.slicer.xdrgen",
            "repro.slicer.annotations",
        ],
    },
}


def infrastructure_loc_report():
    """Return the Table 1 analogue: {section: {row: loc}} plus total."""
    report = {}
    total = 0
    for section, rows in INFRASTRUCTURE_COMPONENTS.items():
        report[section] = {}
        for row, modules in rows.items():
            loc = sum(count_module_loc(m) for m in modules)
            report[section][row] = loc
            total += loc
    report["total"] = total
    return report
