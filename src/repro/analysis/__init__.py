"""Static analyses for the case study (paper section 5) and Table 1.

* :mod:`repro.analysis.errorhandling` -- finds ignored/unchecked error
  returns in legacy driver code (the paper found 28 such cases in
  E1000) and measures the code devoted to error-propagation chains
  that exception conversion removes (675 lines, ~8% of e1000_hw.c).
* :mod:`repro.analysis.loc` -- lines-of-code accounting for the Decaf
  infrastructure (Table 1) and arbitrary module sets.
"""

from .errorhandling import (
    ErrorHandlingReport,
    analyze_error_handling,
    count_exception_usage,
)
from .loc import count_module_loc, infrastructure_loc_report

__all__ = [
    "ErrorHandlingReport",
    "analyze_error_handling",
    "count_exception_usage",
    "count_module_loc",
    "infrastructure_loc_report",
]
