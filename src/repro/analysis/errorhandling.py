"""Error-handling analysis (paper section 5.1).

Two measurements over legacy driver source:

1. **Broken error handling**: calls to error-returning functions whose
   result is discarded.  The standard kernel idiom returns 0 or a
   nonzero error code; a call used as a bare expression statement
   silently drops failures.  The paper found 28 such cases in E1000
   when converting to checked exceptions, which the compiler refuses to
   let you ignore.

2. **Error-propagation overhead**: the ``ret_val = f(...); if ret_val:
   return ret_val`` chains.  Each chain is pure plumbing that exception
   propagation deletes; counting the plumbing lines reproduces the
   675-lines/~8% reduction the paper reports for e1000_hw.c.
"""

import ast
import inspect
from dataclasses import dataclass, field


@dataclass
class IgnoredError:
    function: str
    callee: str
    module: str
    lineno: int


@dataclass
class ErrorHandlingReport:
    modules: list = field(default_factory=list)
    error_returning_functions: set = field(default_factory=set)
    ignored: list = field(default_factory=list)
    propagation_lines: int = 0
    total_loc: int = 0
    propagation_by_module: dict = field(default_factory=dict)
    loc_by_module: dict = field(default_factory=dict)

    @property
    def ignored_count(self):
        return len(self.ignored)

    def propagation_fraction(self, module=None):
        if module is None:
            return self.propagation_lines / max(1, self.total_loc)
        return (self.propagation_by_module.get(module, 0)
                / max(1, self.loc_by_module.get(module, 1)))


def _returns_error_codes(node):
    """Does this function return negative errnos / nonzero codes?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Return) or sub.value is None:
            continue
        value = sub.value
        # (ret_val, data) tuple returns: judge the first element.
        if isinstance(value, ast.Tuple) and value.elts:
            value = value.elts[0]
        # return -linux.EIO / return -E1000_ERR_X
        if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
            return True
        # return ret_val (propagation)
        if isinstance(value, ast.Name) and value.id in ("ret_val", "err",
                                                        "rc", "ret"):
            return True
    return False


def _call_name(call):
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# Kernel API calls whose return values must be checked.
KERNEL_ERROR_API = {
    "request_irq", "pci_enable_device", "pci_request_regions",
    "register_netdev", "snd_card_register", "usb_connect_device",
    "input_register_device",
}


def analyze_error_handling(modules):
    """Analyze legacy driver modules; returns ErrorHandlingReport."""
    report = ErrorHandlingReport()
    parsed = []
    for module in modules:
        source = inspect.getsource(module)
        tree = ast.parse(source)
        short = module.__name__.rsplit(".", 1)[-1]
        report.modules.append(short)
        parsed.append((short, tree, source.splitlines()))

    # Pass 1: which driver functions return error codes.
    for short, tree, _lines in parsed:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and _returns_error_codes(node):
                report.error_returning_functions.add(node.name)

    error_names = report.error_returning_functions | KERNEL_ERROR_API

    # Pass 2: ignored calls and propagation chains.
    for short, tree, lines in parsed:
        module_prop = 0
        module_loc = 0
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            for i in range(node.lineno - 1, (node.end_lineno or node.lineno)):
                stripped = lines[i].strip()
                if stripped and not stripped.startswith("#"):
                    module_loc += 1
            for sub in ast.walk(node):
                # Bare expression-statement call whose value is dropped.
                if isinstance(sub, ast.Expr) and isinstance(sub.value, ast.Call):
                    name = _call_name(sub.value)
                    if name in error_names:
                        report.ignored.append(IgnoredError(
                            function=node.name, callee=name,
                            module=short, lineno=sub.lineno,
                        ))
                # Propagation chain: `if ret_val: return ret_val` (or a
                # negated errno).  Each chain costs its if + return.
                if isinstance(sub, ast.If):
                    test = sub.test
                    if (isinstance(test, ast.Name)
                            and test.id in ("ret_val", "err", "rc", "ret")
                            and len(sub.body) == 1
                            and isinstance(sub.body[0], ast.Return)):
                        module_prop += 2
        report.propagation_by_module[short] = module_prop
        report.loc_by_module[short] = module_loc
        report.propagation_lines += module_prop
        report.total_loc += module_loc

    return report


def count_exception_usage(modules):
    """Stats over decaf modules: functions/methods using exceptions.

    Returns (functions_with_raise_or_try, exception_classes_used).
    """
    with_exceptions = 0
    exc_classes = set()
    for module in modules:
        source = inspect.getsource(module)
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                uses = False
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Raise, ast.Try)):
                        uses = True
                    if isinstance(sub, ast.Raise) and sub.exc is not None:
                        call = sub.exc
                        if isinstance(call, ast.Call):
                            name = _call_name(call)
                            if name:
                                exc_classes.add(name)
                if uses:
                    with_exceptions += 1
    return with_exceptions, exc_classes
