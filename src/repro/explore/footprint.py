"""Empirical per-event resource footprints.

The dependency relation of :mod:`repro.explore.dpor` needs to know, for
each event of a base schedule, which lock classes, irq lines, serio
ports, and XPC channels the event touches.  Rather than deriving that
statically (fragile against driver refactors), a probe run of *both*
variants records it from the kernel's own instrumentation:

* ``LockDep.acquire_tap`` -- every lock acquisition check;
* ``IrqController.raise_tap`` -- every device interrupt assert;
* ``SerioPort.deliver_tap`` -- every device->driver serio byte (serio
  delivers outside the irq controller);
* the rig's XPC crossing counter, sampled at window boundaries.

Attribution windows follow the replay loop: event *k* owns everything
from its ``begin_event`` to the next event's ``begin_event`` -- i.e.
its synchronous application *plus* its asynchronous tail (tx-complete
interrupts, NAPI polls, deferred-notification flushes landing before
the next event).  The last event's window extends through settle and
teardown.  This over-approximates (background periodic work inside a
window adds dependencies), which only costs pruning -- never soundness.
The union of the legacy and decaf runs is used, so an event depends on
everything *either* variant touches.
"""

from ..conformance.runner import RunProbe


class FootprintProbe(RunProbe):
    """Record one run's per-event resource footprints."""

    def __init__(self):
        self.footprints = []
        self.event_crossings = 0
        self._rig = None
        self._current = None
        self._chan_base = 0
        self._crossings_at_begin = 0

    # -- tap plumbing ------------------------------------------------------

    def begin_run(self, rig, scenario, decaf):
        self._rig = rig
        self.footprints = [set() for _ in scenario.events]
        self.event_crossings = 0
        self._current = None
        kernel = rig.kernel
        if kernel.lockdep is not None:
            kernel.lockdep.acquire_tap = self._on_lock
        kernel.irq.raise_tap = self._on_irq
        for port in kernel.input.serio_ports:
            port.deliver_tap = self._on_serio
        self._crossings_at_begin = self._crossings()

    def _crossings(self):
        rig = self._rig
        if rig is None or rig.channel is None:
            return 0
        return rig.crossings()

    def _on_lock(self, name, kind):
        if self._current is not None:
            self._current.add("lock:%s" % name)

    def _on_irq(self, irq):
        if self._current is not None:
            self._current.add("irq:%d" % irq)

    def _on_serio(self, port, byte):
        if self._current is not None:
            self._current.add("serio:%s" % port.name)

    # -- window boundaries -------------------------------------------------

    def _close_window(self):
        if self._current is not None and self._crossings() > self._chan_base:
            self._current.add("chan")
        self._current = None

    def begin_event(self, rig, index, event):
        self._close_window()
        self._current = self.footprints[index]
        self._chan_base = self._crossings()

    def end_events(self, rig, decaf):
        # Crossings that land inside event windows bound the reachable
        # fault placements; settle/teardown crossings are excluded so an
        # enumerated occurrence count always fires mid-scenario.
        self.event_crossings = self._crossings() - self._crossings_at_begin

    def take(self):
        """Close the final window (it spanned settle + teardown) and
        return this run's footprints."""
        self._close_window()
        self._rig = None
        return [frozenset(fp) for fp in self.footprints]


def capture_footprints(runner, scenario):
    """Probe both variants of ``scenario``; union the footprints.

    Returns ``(footprints, decaf_event_crossings)`` where the crossing
    count covers the decaf run's event windows only (the reachable
    budget for enumerated ``xpc_raise`` placements).
    """
    probe = FootprintProbe()
    saved = runner.probe
    runner.probe = probe
    try:
        runner.run_one(scenario, decaf=False)
        legacy = probe.take()
        runner.run_one(scenario, decaf=True)
        decaf_crossings = probe.event_crossings
        decaf = probe.take()
    finally:
        runner.probe = saved
    return [l | d for l, d in zip(legacy, decaf)], decaf_crossings
