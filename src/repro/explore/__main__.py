"""CLI for the systematic explorer and the XPC adversary.

Examples::

    # depth-6 e1000 exploration: canonical orders x fault placements x
    # irq deferrals, repro scripts + JSON report under explore_out/
    PYTHONPATH=src python -m repro.explore --driver e1000 --depth 6 \\
        --out explore_out

    # same, plus the adversarial corpus against the e1000 nucleus
    PYTHONPATH=src python -m repro.explore --driver e1000 --depth 6 \\
        --adversary

    # the full adversary corpus against all five nuclei (CI smoke)
    PYTHONPATH=src python -m repro.explore --adversary-only \\
        --driver all --depth 4

Exit status: 0 when every exploration is divergence-free and every
adversarial mutation was contained; 1 otherwise.
"""

import argparse
import json
import os
import sys
import time

from ..conformance.scenario import ALL_DRIVERS
from .adversary import run_adversary
from .explorer import Explorer, write_report


def _say(msg):
    print(msg, flush=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="bounded systematic exploration + adversarial XPC",
    )
    parser.add_argument("--driver", action="append", default=None,
                        help="driver to explore (repeatable; 'all' for "
                             "all five; default e1000)")
    parser.add_argument("--depth", type=int, default=6,
                        help="events in the base schedule (1..8)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smp", type=int, default=1)
    parser.add_argument("--fault-cap", type=int, default=3,
                        help="enumerated xpc_raise placements per order")
    parser.add_argument("--no-defer", action="store_true",
                        help="skip the irq-deferral axis")
    parser.add_argument("--no-minimize", action="store_true",
                        help="emit findings without ddmin")
    parser.add_argument("--adversary", action="store_true",
                        help="also run the mutation corpus")
    parser.add_argument("--adversary-only", action="store_true",
                        help="run only the mutation corpus")
    parser.add_argument("--adversary-points", type=int, default=24,
                        help="max crossings attacked per driver")
    parser.add_argument("--out", default=None,
                        help="directory for JSON reports + repro scripts")
    args = parser.parse_args(argv)

    drivers = args.driver or ["e1000"]
    if "all" in drivers:
        drivers = list(ALL_DRIVERS)

    failed = False
    for driver in drivers:
        if not args.adversary_only:
            started = time.time()
            explorer = Explorer(
                driver, depth=args.depth, seed=args.seed, smp=args.smp,
                fault_cap=args.fault_cap, defer=not args.no_defer,
                out_dir=args.out, minimize=not args.no_minimize,
            )
            report = explorer.run(log=_say)
            elapsed = time.time() - started
            states = report.to_json()["states"]
            _say("%s depth=%d: %d/%d states explored (%d pruned, "
                 "ratio %.1fx), %d pairs, %d findings [%.1fs]"
                 % (driver, args.depth, states["explored"],
                    states["total"],
                    states["pruned_redundant"]
                    + states["pruned_unreachable"],
                    states["ratio"], report.pairs_run,
                    len(report.findings), elapsed))
            if args.out:
                path = write_report(report, args.out)
                _say("  report: %s" % path)
            if not report.ok:
                failed = True
        if args.adversary or args.adversary_only:
            adv = run_adversary(
                driver, depth=min(args.depth, 4), seed=args.seed,
                max_points=args.adversary_points, log=_say)
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out,
                                    "adversary_%s.json" % driver)
                with open(path, "w") as fh:
                    json.dump(adv.to_json(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                _say("  report: %s" % path)
            if not adv.ok:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
