"""Systematic exploration driver.

For one driver and a bounded depth ``n`` this builds a fixed base
schedule of ``n`` events (a designed mix of datapath and configuration
work), captures per-event resource footprints
(:mod:`repro.explore.footprint`), prunes the ``n!`` orders to canonical
trace representatives (:mod:`repro.explore.dpor`), and replays every
canonical order through the differential harness along three axes:

* **order** -- the permuted schedule itself, strict mode;
* **fault placements** -- ``xpc_raise`` at the k-th post-setup
  crossing, for every k up to the probe-measured reachable budget
  (placements beyond it are counted as pruned-unreachable);
* **irq-deferral placements** -- all interrupt asserts raised in one
  event's window are gated to the next event boundary (both variants),
  an irq-vs-process interleaving the event order alone cannot express;
  events whose windows raise no interrupts are pruned-unreachable.

State counts satisfy ``explored + pruned == total`` exactly, where
``total = n! * (1 + fault_cap + n)``; the pruning ratio reported is
``total / explored``.  Divergences are minimized with the PR-5 ddmin
machinery and emitted as standalone repro scripts.
"""

import json
import os
import random

from ..conformance.minimize import minimize_scenario, write_repro_script
from ..conformance.observe import canonical_json
from ..conformance.runner import DifferentialRunner, RunProbe
from ..conformance.scenario import FAMILY, Scenario
from ..kernel.vtime import NSEC_PER_MSEC
from .dpor import DependencyRelation, enumerate_orders
from .footprint import capture_footprints

#: Inter-event spacing (virtual ms) per family.  Input uses the faulty
#: spacing of the seeded generator: the decaf mouse only crosses on its
#: 1 Hz resync poll, so enumerated fault placements need windows wide
#: enough for crossings to land in.
GAP_MS = {"net": 3, "sound": 3, "input": 400, "usb": 3}


def _frame(rng, size):
    return bytes(rng.randrange(256) for _ in range(size))


def base_events(driver, depth, seed=0):
    """The designed base schedule: ``depth`` events at fixed spacing.

    Net mixes datapath bursts (tx/rx -- they share the device irq line)
    with configuration ops (they cross the XPC channel but raise no
    interrupt), which is where order-level independence comes from.
    Sound, input, and usb schedules are homogeneous; their pruning is
    dominated by the unreachable-placement axes.
    """
    family = FAMILY[driver]
    rng = random.Random("explore:%s:%d" % (driver, seed))
    gap_ns = GAP_MS[family] * NSEC_PER_MSEC
    events = []
    for k in range(depth):
        t = (k + 1) * gap_ns
        if family == "net":
            kind = ("tx_burst", "rx_burst", "config_mac",
                    "tx_burst", "rx_burst", "set_multi")[k % 6]
            if kind in ("tx_burst", "rx_burst"):
                frames = [_frame(rng, 60 + rng.randrange(0, 61)).hex()
                          for _ in range(2)]
                events.append({"t": t, "kind": kind, "frames": frames})
            elif kind == "config_mac":
                mac = bytearray(rng.randrange(256) for _ in range(6))
                mac[0] = (mac[0] | 0x02) & 0xFE
                events.append({"t": t, "kind": "config_mac",
                               "addr": bytes(mac).hex()})
            else:
                events.append({"t": t, "kind": "set_multi"})
        elif family == "sound":
            rate = (8000, 22050, 44100)[k % 3]
            events.append({
                "t": t, "kind": "pcm_cycle", "rate": rate, "channels": 2,
                "sample_bytes": 2, "period_frames": 2048, "periods": 4,
                "write_frames": rate // 8,
            })
        elif family == "input":
            events.append({
                "t": t, "kind": "move",
                "dx": rng.randrange(-127, 128),
                "dy": rng.randrange(-127, 128),
                "buttons": k % 8, "wheel": rng.randrange(-2, 3),
            })
        else:  # usb
            events.append({
                "t": t, "kind": "bulk_write", "lba": 2 * k, "blocks": 1,
                "payload": _frame(rng, 512).hex(),
            })
    return events


def reorder_events(events, order):
    """Events permuted into ``order``: slot ``p`` runs ``events[order[p]]``
    at slot ``p``'s original virtual-time offset, so every permutation
    replays on the identical timing grid."""
    times = [ev["t"] for ev in events]
    return [dict(events[oi], t=times[p]) for p, oi in enumerate(order)]


class GateProbe(RunProbe):
    """Defer one event's interrupt asserts to the next event boundary.

    Installed on *both* variants of a pair, so the deferral itself is
    part of the schedule under comparison, not a variant difference.
    """

    def __init__(self, target_index):
        self.target = target_index
        self._active = False

    def begin_run(self, rig, scenario, decaf):
        self._active = False
        rig.kernel.irq.delivery_gate = self._gate

    def _gate(self, irq):
        return self._active

    def begin_event(self, rig, index, event):
        if self._active:
            self._active = False
            rig.kernel.irq.release_gated()
        if index == self.target:
            self._active = True

    def end_events(self, rig, decaf):
        self._active = False
        rig.kernel.irq.release_gated()
        rig.kernel.irq.delivery_gate = None


def run_defer_pair(runner, scenario, defer_event):
    """Run one pair with event ``defer_event``'s irqs gated to the next
    boundary.  Used directly and by generated defer repro scripts."""
    saved = runner.probe
    runner.probe = GateProbe(defer_event)
    try:
        return runner.run_pair(scenario)
    finally:
        runner.probe = saved


DEFER_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Auto-generated exploration divergence repro (irq-deferral axis).

Scenario: {describe}
Deferred event: {defer_event} (its irq asserts deliver at the next
event boundary in both variants).
Original divergences:
{divergence_lines}

Run with the repository's src/ on PYTHONPATH:

    PYTHONPATH=src python {filename}
"""

import json
import sys

from repro.conformance import DifferentialRunner, Scenario
from repro.explore import run_defer_pair

SCENARIO = json.loads(r"""
{scenario_json}
""")

DEFER_EVENT = {defer_event}


def main():
    scenario = Scenario.from_json(SCENARIO)
    result = run_defer_pair(DifferentialRunner(), scenario, DEFER_EVENT)
    if result.ok:
        print("no divergence (fixed?): %s" % scenario.describe())
        return 0
    print("divergence reproduced: %s" % scenario.describe())
    for divergence in result.divergences:
        print("  [%s] %s" % (divergence.channel, divergence.detail))
    return 1


if __name__ == "__main__":
    sys.exit(main())
'''


class ExploreReport:
    """Everything one exploration produced, JSON-able for EXPERIMENTS."""

    def __init__(self, driver, depth):
        self.driver = driver
        self.depth = depth
        self.events = []
        self.footprints = []
        self.dependent_pairs = []
        self.orders_total = 0
        self.orders_explored = 0
        self.orders_pruned = 0
        self.fault_cap = 0
        self.fault_reachable = 0
        self.defer_axis = 0
        self.defer_reachable = 0
        self.states_total = 0
        self.states_explored = 0
        self.states_pruned_redundant = 0
        self.states_pruned_unreachable = 0
        self.pairs_run = 0
        self.findings = []

    @property
    def states_pruned(self):
        return self.states_pruned_redundant + self.states_pruned_unreachable

    @property
    def pruning_ratio(self):
        return self.states_total / max(1, self.states_explored)

    @property
    def order_ratio(self):
        return self.orders_total / max(1, self.orders_explored)

    @property
    def ok(self):
        return not self.findings

    def to_json(self):
        return {
            "driver": self.driver,
            "depth": self.depth,
            "events": [ev["kind"] for ev in self.events],
            "footprints": [sorted(fp) for fp in self.footprints],
            "dependent_pairs": self.dependent_pairs,
            "orders": {
                "total": self.orders_total,
                "explored": self.orders_explored,
                "pruned": self.orders_pruned,
                "ratio": round(self.order_ratio, 2),
            },
            "fault_axis": {"cap": self.fault_cap,
                           "reachable": self.fault_reachable},
            "defer_axis": {"cap": self.defer_axis,
                           "reachable": self.defer_reachable},
            "states": {
                "total": self.states_total,
                "explored": self.states_explored,
                "pruned_redundant": self.states_pruned_redundant,
                "pruned_unreachable": self.states_pruned_unreachable,
                "ratio": round(self.pruning_ratio, 2),
            },
            "pairs_run": self.pairs_run,
            "findings": self.findings,
        }


class Explorer:
    """Enumerate and replay one driver's bounded schedule space."""

    def __init__(self, driver, depth=6, seed=0, smp=1, fault_cap=3,
                 defer=True, out_dir=None, minimize=True, max_minimize=4,
                 nobble=None, max_recoveries=8):
        if depth < 1 or depth > 8:
            raise ValueError("depth must be 1..8 (got %d)" % depth)
        self.driver = driver
        self.depth = depth
        self.seed = seed
        self.fault_cap = fault_cap
        self.defer = defer
        self.out_dir = out_dir
        self.minimize = minimize
        self.max_minimize = max_minimize
        self.runner = DifferentialRunner(smp=smp, nobble=nobble,
                                         max_recoveries=max_recoveries)

    # -- scenario construction ---------------------------------------------

    def base_scenario(self):
        return Scenario(self.driver, self.seed, "strict",
                        base_events(self.driver, self.depth, self.seed))

    def order_scenario(self, events, order, fault_at=None):
        reordered = reorder_events(events, order)
        if fault_at is None:
            return Scenario(self.driver, self.seed, "strict", reordered)
        return Scenario(self.driver, self.seed, "faulty", reordered,
                        faults=[{"kind": "xpc_raise", "at": fault_at}])

    # -- exploration --------------------------------------------------------

    def run(self, log=None):
        say = log or (lambda msg: None)
        report = ExploreReport(self.driver, self.depth)
        base = self.base_scenario()
        report.events = base.events

        say("probing footprints (%s, depth %d)" % (self.driver, self.depth))
        footprints, event_crossings = capture_footprints(self.runner, base)
        report.footprints = footprints
        deps = DependencyRelation(footprints)
        report.dependent_pairs = deps.dependent_pairs()

        enum = enumerate_orders(deps)
        report.orders_total = enum.total
        report.orders_explored = enum.explored
        report.orders_pruned = enum.pruned

        report.fault_cap = self.fault_cap
        report.fault_reachable = min(self.fault_cap, event_crossings)
        defer_events = [
            k for k, fp in enumerate(footprints)
            if any(r.startswith(("irq:", "serio:")) for r in fp)
        ] if self.defer else []
        # Serio delivers outside the irq controller, so only
        # irq-controller lines are gateable; serio-only events count as
        # unreachable placements.
        gateable = [k for k in defer_events
                    if any(r.startswith("irq:") for r in footprints[k])]
        report.defer_axis = self.depth if self.defer else 0
        report.defer_reachable = len(gateable)

        per_order_axes = 1 + self.fault_cap + report.defer_axis
        report.states_total = enum.total * per_order_axes
        report.states_pruned_redundant = enum.pruned * per_order_axes
        report.states_pruned_unreachable = enum.explored * (
            (self.fault_cap - report.fault_reachable)
            + (report.defer_axis - report.defer_reachable)
        )
        report.states_explored = enum.explored * (
            1 + report.fault_reachable + report.defer_reachable)
        assert (report.states_explored + report.states_pruned
                == report.states_total)

        say("orders: %d canonical of %d (%d pruned); per-order axes: "
            "1 strict + %d fault + %d defer"
            % (enum.explored, enum.total, enum.pruned,
               report.fault_reachable, report.defer_reachable))

        for count, order in enumerate(enum.orders):
            scenario = self.order_scenario(base.events, order)
            result = self.runner.run_pair(scenario)
            report.pairs_run += 1
            if not result.ok:
                self._record(report, "order", scenario, result, order)
            for k in range(1, report.fault_reachable + 1):
                faulty = self.order_scenario(base.events, order, fault_at=k)
                result = self.runner.run_pair(faulty)
                report.pairs_run += 1
                if not result.ok:
                    self._record(report, "fault", faulty, result, order,
                                 fault_at=k)
            for d in gateable:
                # The deferral placement names a *base* event; find its
                # slot in this order so the gate tracks the event, not
                # the position.
                slot = order.index(d)
                result = run_defer_pair(self.runner, scenario, slot)
                report.pairs_run += 1
                if not result.ok:
                    self._record(report, "defer", scenario, result, order,
                                 defer_event=slot)
            if log is not None and (count + 1) % 10 == 0:
                say("  %d/%d orders done, %d pairs, %d findings"
                    % (count + 1, enum.explored, report.pairs_run,
                       len(report.findings)))
        return report

    # -- findings -----------------------------------------------------------

    def _record(self, report, kind, scenario, result, order,
                fault_at=None, defer_event=None):
        finding = {
            "kind": kind,
            "order": list(order),
            "fault_at": fault_at,
            "defer_event": defer_event,
            "divergences": [d.to_json() for d in result.divergences],
            "scenario": scenario.to_json(),
            "repro": None,
        }
        index = len(report.findings)
        report.findings.append(finding)
        if self.out_dir is None:
            return
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(
            self.out_dir,
            "repro_%s_%s_%02d.py" % (self.driver, kind, index))
        if kind == "defer":
            self._write_defer_repro(scenario, result.divergences,
                                    defer_event, path)
        else:
            emit = scenario
            if self.minimize and index < self.max_minimize:
                emit, _runs = minimize_scenario(self.runner, scenario,
                                                max_runs=48)
                finding["minimized_events"] = len(emit.events)
            write_repro_script(emit, result.divergences, path)
        finding["repro"] = path

    def _write_defer_repro(self, scenario, divergences, defer_event, path):
        lines = "\n".join("  [%s] %s" % (d.channel, d.detail)
                          for d in divergences) or "  (none recorded)"
        text = DEFER_REPRO_TEMPLATE.format(
            describe=scenario.describe(),
            defer_event=defer_event,
            divergence_lines=lines,
            filename=os.path.basename(path),
            scenario_json=canonical_json(scenario.to_json()),
        )
        with open(path, "w") as fh:
            fh.write(text)


def explore(driver, depth=6, **kwargs):
    """One-call convenience: build an :class:`Explorer` and run it."""
    return Explorer(driver, depth=depth, **kwargs).run()


def write_report(report, out_dir, name=None):
    """Serialize a report into ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, name or "explore_%s_d%d.json" % (report.driver,
                                                  report.depth))
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
