"""Adversarial XPC: a compromised user half attacks the nucleus.

PR 4's failure boundary was built against a *crashing* user half
(exceptions escaping upcalls).  The driver-isolation SoK's stronger
threat model is a *hostile* one: the user-level driver is assumed
compromised and puts arbitrary bytes on the wire.  This module replays
a driver's captured XPC crossings with mutated marshaled payloads and
verifies the nucleus-side contract:

    every mutation is contained to an errno and/or a supervised
    recovery -- never a kernel-side unchecked exception, a hang, or a
    lockdep report.

The mutation corpus covers the ISSUE taxonomy: truncated buffers,
oversized lengths, wrong argument/field counts, stale/forged
object-tracker handles and type ids, and out-of-range scalar stomps
(which double as out-of-range enum/register values -- the wire does not
distinguish them).

Mechanically, mutations ride :attr:`XpcChannel.corrupt_hook`, which
fires between encode and decode of every transfer -- exactly the point
where a compromised user process controls the bytes.  One attack run
mutates one crossing with one corpus entry; everything after it runs
unmodified so recovery has a clean channel to replay over.
"""

import signal

from ..conformance.runner import MAKERS, DifferentialRunner, RunProbe
from ..conformance.scenario import Scenario
from ..core.xpc import DriverFailedError, XpcChannel
from ..drivers.decaf.exceptions import DriverException
from .explorer import base_events

#: Wire tag constants mirrored from repro.core.marshal (kept literal so
#: a corpus entry reads like the attack it performs).
_TAG_ARRAY = 4


def _stomp_u32(offset, value):
    def fn(data):
        if len(data) < offset + 4:
            return data
        return (data[:offset] + value.to_bytes(4, "little")
                + data[offset + 4:])
    return fn


def _stomp_u64(offset, value):
    def fn(data):
        if len(data) < offset + 8:
            return data
        return (data[:offset] + value.to_bytes(8, "little")
                + data[offset + 8:])
    return fn


def _bitflip_last(data):
    if not data:
        return data
    return data[:-1] + bytes([data[-1] ^ 0x80])


def _stomp_mid(data):
    mid = (len(data) // 2) & ~3
    return _stomp_u32(mid, 0xFFFFFFFF)(data)


#: The corpus: (name, mutation).  A mutation returning the payload
#: unchanged at some crossing (e.g. a stomp past a short payload's end)
#: is recorded as *skipped* there, never silently counted as contained.
MUTATIONS = (
    # truncated buffers
    ("trunc-half", lambda d: d[: len(d) // 2]),
    ("trunc-4", lambda d: d[:4]),
    ("trunc-1", lambda d: d[:1]),
    ("empty", lambda d: b""),
    # trailing garbage (decode must not read past its args)
    ("extend-garbage", lambda d: d + b"\xfe\xed\xfa\xce" * 4),
    # wrong argument count (first wire word)
    ("argc-max", _stomp_u32(0, 0xFFFFFFFF)),
    ("argc-zero", _stomp_u32(0, 0)),
    # bad reference tags (first arg's tag word)
    ("tag-garbage", _stomp_u32(4, 0x7F)),
    ("tag-array", _stomp_u32(4, _TAG_ARRAY)),
    # stale/forged object-tracker identity (first object record)
    ("forge-identity", _stomp_u64(8, 0xDEADBEEFDEADBEEF)),
    # unknown type id
    ("type-id-stomp", _stomp_u32(16, 0x00FFFFFF)),
    # oversized length / wrong field count / out-of-range scalars:
    # 0xFFFFFFFF lands on whatever wire word sits there -- a delta
    # count, an exp-array length, a string length, or a register value.
    ("stomp-u32@20", _stomp_u32(20, 0xFFFFFFFF)),
    ("stomp-u32@24", _stomp_u32(24, 0xFFFFFFFF)),
    ("stomp-u32@mid", _stomp_mid),
    # single corrupted byte (checksum-less wire: must still be contained)
    ("bitflip-last", _bitflip_last),
)


class _Hang(Exception):
    pass


class _watchdog:
    """SIGALRM backstop: a mutation that drives the simulation into an
    unbounded loop surfaces as a ``hang`` verdict instead of wedging
    the sweep.  No-op where SIGALRM is unavailable (non-main thread)."""

    def __init__(self, seconds):
        self.seconds = seconds
        self._armed = False

    def __enter__(self):
        try:
            self._prev = signal.signal(signal.SIGALRM, self._fire)
            signal.alarm(self.seconds)
            self._armed = True
        except ValueError:  # not the main thread
            pass
        return self

    def _fire(self, signum, frame):
        raise _Hang("simulation exceeded %ds wall clock" % self.seconds)

    def __exit__(self, *exc):
        if self._armed:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, self._prev)
        return False


class _CaptureProbe(RunProbe):
    """Record every marshaled payload crossing the channel."""

    def __init__(self):
        self.records = []

    def begin_run(self, rig, scenario, decaf):
        if not decaf or rig.channel is None:
            return
        records = self.records

        def tap(data, direction):
            records.append((direction, bytes(data)))
            return data

        rig.channel.corrupt_hook = tap


class _AttackProbe(RunProbe):
    """Supervise the rig and mutate exactly one crossing in flight."""

    def __init__(self, crossing, mutate, max_recoveries):
        self.crossing = crossing
        self.mutate = mutate
        self.max_recoveries = max_recoveries
        self.hits = 0

    def begin_run(self, rig, scenario, decaf):
        if not decaf or rig.channel is None:
            return
        rig.supervise(max_recoveries=self.max_recoveries)
        state = {"n": 0}
        probe = self

        def tap(data, direction):
            state["n"] += 1
            if state["n"] - 1 == probe.crossing:
                probe.hits += 1
                return probe.mutate(data)
            return data

        rig.channel.corrupt_hook = tap


class AdversaryReport:
    """Outcome of one driver's adversarial sweep (both phases)."""

    def __init__(self, driver, depth):
        self.driver = driver
        self.depth = depth
        self.crossings_captured = 0
        self.crossings_attacked = 0
        self.probe_crossings_captured = 0
        self.probe_crossings_attacked = 0
        self.attacks = 0
        self.contained_recovered = 0
        self.contained_absorbed = 0
        self.contained_errno = 0
        self.skipped = 0
        self.violations = []  # dicts: phase, crossing, mutation, detail

    @property
    def contained(self):
        return (self.contained_recovered + self.contained_absorbed
                + self.contained_errno)

    @property
    def ok(self):
        return not self.violations

    def to_json(self):
        return {
            "driver": self.driver,
            "depth": self.depth,
            "crossings_captured": self.crossings_captured,
            "crossings_attacked": self.crossings_attacked,
            "probe_crossings_captured": self.probe_crossings_captured,
            "probe_crossings_attacked": self.probe_crossings_attacked,
            "corpus": [name for name, _fn in MUTATIONS],
            "attacks": self.attacks,
            "contained_recovered": self.contained_recovered,
            "contained_absorbed": self.contained_absorbed,
            "contained_errno": self.contained_errno,
            "skipped": self.skipped,
            "violations": self.violations,
        }


# -- probe-phase attacks -------------------------------------------------------
#
# psmouse and uhci_hcd exchange XPC traffic only while probing (their
# event-phase work -- serio bytes, urb rings -- is nucleus-side), so the
# scenario-phase sweep has nothing to attack there.  The hostile-user
# threat model covers probe too: the channel is constructed mid-insmod,
# which is why the hook rides XpcChannel.default_corrupt_hook instead
# of an instance attribute.  The contract during probe (no supervisor
# exists yet) is: a corrupted crossing makes insmod fail with a clean
# errno / contained driver failure, or the driver comes up anyway and
# unloads cleanly -- never an unchecked kernel exception, hang, or
# lockdep report.

class _probe_hook:
    """Temporarily install a function as every new channel's
    corrupt_hook."""

    def __init__(self, fn):
        self.fn = fn

    def __enter__(self):
        self._saved = XpcChannel.default_corrupt_hook
        XpcChannel.default_corrupt_hook = self.fn
        return self

    def __exit__(self, *exc):
        XpcChannel.default_corrupt_hook = self._saved
        return False


def _capture_probe_phase(driver):
    """Insmod/rmmod once, recording every probe-time payload."""
    records = []

    def tap(data, direction):
        records.append((direction, bytes(data)))
        return data

    rig = MAKERS[driver](decaf=True)
    with _probe_hook(tap):
        rig.insmod()
    rig.rmmod()
    return records


def _run_probe_attack(driver, crossing, mutate, timeout_s):
    """Mutate one probe-time crossing; classify the insmod outcome."""
    state = {"n": 0, "hits": 0}

    def tap(data, direction):
        state["n"] += 1
        if state["n"] - 1 == crossing:
            state["hits"] += 1
            return mutate(data)
        return data

    rig = MAKERS[driver](decaf=True)
    up = False
    try:
        with _watchdog(timeout_s), _probe_hook(tap):
            rig.insmod()
            up = True
    except _Hang as exc:
        return {"kind": "hang", "detail": str(exc)}
    except (DriverFailedError, DriverException, RuntimeError) as exc:
        # Contained: the boundary turned the corruption into a driver
        # failure and insmod reported a clean errno (rig.insmod wraps
        # the negative return in RuntimeError).
        if not state["hits"]:
            return {"kind": "absorbed", "detail": "mutation did not fire"}
        return {"kind": "errno", "detail": type(exc).__name__}
    except Exception as exc:  # noqa: BLE001 -- the verdict *is* the catch
        return {
            "kind": "escape",
            "detail": "kernel-side unchecked %s: %s"
                      % (type(exc).__name__, exc),
        }
    finally:
        if up:
            try:
                rig.rmmod()
            except Exception as exc:  # noqa: BLE001
                return {
                    "kind": "escape",
                    "detail": "rmmod after absorbed mutation raised %s: %s"
                              % (type(exc).__name__, exc),
                }
    if not state["hits"]:
        return {"kind": "absorbed", "detail": "mutation did not fire"}
    if rig.kernel.lockdep is not None and rig.kernel.lockdep.reports:
        return {
            "kind": "lockdep",
            "detail": "lockdep reports after probe mutation",
        }
    return {"kind": "absorbed", "detail": ""}


def _attack_points(n_records, max_points):
    """Which captured crossings to attack: all of them up to the cap,
    an evenly spread sample beyond it (the cap is reported, not
    silent)."""
    if n_records <= max_points:
        return list(range(n_records))
    step = n_records / max_points
    return sorted({int(i * step) for i in range(max_points)})


def run_adversary(driver, depth=4, seed=0, max_points=24, max_recoveries=8,
                  timeout_s=60, log=None, probe_phase=True):
    """The full corpus against every (sampled) crossing of one driver.

    Two phases: scenario-phase attacks mutate post-setup crossings under
    a supervised rig; probe-phase attacks mutate insmod-time crossings
    (each phase capped at ``max_points``).  Runs decaf-only: the
    reference for containment is the boundary contract, not the legacy
    variant.  Returns an :class:`AdversaryReport`; ``report.ok`` is the
    acceptance gate.
    """
    say = log or (lambda msg: None)
    runner = DifferentialRunner(max_recoveries=max_recoveries)
    scenario = Scenario(driver, seed, "strict",
                        base_events(driver, depth, seed))
    report = AdversaryReport(driver, depth)

    capture = _CaptureProbe()
    saved = runner.probe
    runner.probe = capture
    try:
        runner.run_one(scenario, decaf=True)
    finally:
        runner.probe = saved
    records = capture.records
    report.crossings_captured = len(records)
    points = _attack_points(len(records), max_points)
    report.crossings_attacked = len(points)
    say("%s: captured %d crossings, attacking %d of them with %d "
        "mutations each"
        % (driver, len(records), len(points), len(MUTATIONS)))

    for point in points:
        _direction, original = records[point]
        for name, mutate in MUTATIONS:
            if mutate(original) == original:
                report.skipped += 1
                continue
            report.attacks += 1
            verdict = _run_attack(runner, scenario, point, mutate,
                                  max_recoveries, timeout_s)
            if verdict["kind"] == "recovered":
                report.contained_recovered += 1
            elif verdict["kind"] == "absorbed":
                report.contained_absorbed += 1
            else:
                report.violations.append({
                    "phase": "run",
                    "crossing": point,
                    "direction": _direction,
                    "mutation": name,
                    "detail": verdict["detail"],
                })
                say("  VIOLATION %s @%d: %s"
                    % (name, point, verdict["detail"]))

    if probe_phase:
        probe_records = _capture_probe_phase(driver)
        report.probe_crossings_captured = len(probe_records)
        probe_points = _attack_points(len(probe_records), max_points)
        report.probe_crossings_attacked = len(probe_points)
        say("%s: captured %d probe-time crossings, attacking %d"
            % (driver, len(probe_records), len(probe_points)))
        for point in probe_points:
            _direction, original = probe_records[point]
            for name, mutate in MUTATIONS:
                if mutate(original) == original:
                    report.skipped += 1
                    continue
                report.attacks += 1
                verdict = _run_probe_attack(driver, point, mutate, timeout_s)
                if verdict["kind"] == "errno":
                    report.contained_errno += 1
                elif verdict["kind"] == "absorbed":
                    report.contained_absorbed += 1
                elif verdict["kind"] == "recovered":
                    report.contained_recovered += 1
                else:
                    report.violations.append({
                        "phase": "probe",
                        "crossing": point,
                        "direction": _direction,
                        "mutation": name,
                        "detail": verdict["detail"],
                    })
                    say("  VIOLATION probe %s @%d: %s"
                        % (name, point, verdict["detail"]))

    say("%s: %d attacks, %d recovered, %d errno, %d absorbed, "
        "%d skipped, %d violations"
        % (driver, report.attacks, report.contained_recovered,
           report.contained_errno, report.contained_absorbed,
           report.skipped, len(report.violations)))
    return report


def _run_attack(runner, scenario, crossing, mutate, max_recoveries,
                timeout_s):
    """One mutation at one crossing; classify the outcome."""
    probe = _AttackProbe(crossing, mutate, max_recoveries)
    saved = runner.probe
    runner.probe = probe
    try:
        with _watchdog(timeout_s):
            obs = runner.run_one(scenario, decaf=True)
    except _Hang as exc:
        return {"kind": "hang", "detail": str(exc)}
    except Exception as exc:  # noqa: BLE001 -- the verdict *is* the catch
        return {
            "kind": "escape",
            "detail": "kernel-side unchecked %s: %s"
                      % (type(exc).__name__, exc),
        }
    finally:
        runner.probe = saved
    if not probe.hits:
        # The attacked crossing never re-occurred (schedule noise from
        # supervision); nothing was actually tested.
        return {"kind": "absorbed", "detail": "mutation did not fire"}
    lockdep = obs["lockdep"]
    if lockdep:
        return {
            "kind": "lockdep",
            "detail": "lockdep reports after mutation: %r" % (lockdep[:2],),
        }
    counters = obs["counters"]
    for flag in ("gave_up", "recovery_pending", "channel_failed"):
        if counters.get(flag):
            return {
                "kind": "unrecovered",
                "detail": "run ended with %s set" % flag,
            }
    if counters.get("recoveries"):
        return {"kind": "recovered", "detail": ""}
    return {"kind": "absorbed", "detail": ""}
