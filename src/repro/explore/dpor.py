"""Trace-theoretic order enumeration with DPOR-style pruning.

The theory is Mazurkiewicz's: given an *independence* relation over
events (symmetric, irreflexive), two schedules are equivalent iff one
can be rewritten into the other by repeatedly swapping adjacent
independent events.  Every schedule in a class drives the kernel
through the same happens-before order of *dependent* pairs, so a
conformance verdict established for one representative holds for the
whole class -- replaying the others is redundant.

Here independence is derived from empirically captured resource
footprints (:mod:`repro.explore.footprint`): two events commute unless
their footprints intersect -- i.e. they touch the same lock class, irq
line, serio port, or XPC channel.  That is the classic persistent-set
argument specialized to this kernel: all cross-event communication goes
through those four resource kinds, so disjoint footprints mean the
events' effects compose in either order.

Instead of exploring a tree with sleep sets, the bounded-depth setting
(n <= ~8) lets us enumerate all ``n!`` permutations and keep exactly
the *lexicographically least* member of each class, recognized locally:

    ``w`` is canonical iff there is no pair ``i < j`` such that
    ``w[j] < w[i]`` and ``w[j]`` is independent of all of
    ``w[i..j-1]``.

If such a pair exists, ``w[j]`` can bubble left past ``i`` by
independent adjacent swaps, producing an equivalent
lexicographically-smaller word -- so ``w`` is not the least member.
Conversely the least member admits no such pair.  Every class therefore
contributes exactly one canonical word: ``explored + pruned == n!`` by
construction, and the pruning ratio is ``n! / explored``.
"""

from itertools import permutations
from math import factorial


class DependencyRelation:
    """Pairwise (in)dependence derived from per-event footprints.

    ``footprints[i]`` is the set of resource tokens event ``i`` touched
    (``lock:*``, ``irq:*``, ``serio:*``, ``chan``).  Events are
    dependent iff their footprints intersect.
    """

    def __init__(self, footprints):
        self.footprints = [frozenset(fp) for fp in footprints]
        n = len(self.footprints)
        self._dep = [
            [bool(self.footprints[i] & self.footprints[j]) for j in range(n)]
            for i in range(n)
        ]

    def __len__(self):
        return len(self.footprints)

    def dependent(self, i, j):
        return self._dep[i][j]

    def independent(self, i, j):
        return not self._dep[i][j]

    def shared(self, i, j):
        """The resources making (i, j) dependent (divergence triage)."""
        return sorted(self.footprints[i] & self.footprints[j])

    def dependent_pairs(self):
        n = len(self.footprints)
        return [(i, j) for i in range(n) for j in range(i + 1, n)
                if self._dep[i][j]]

    def to_json(self):
        return {
            "footprints": [sorted(fp) for fp in self.footprints],
            "dependent_pairs": self.dependent_pairs(),
        }


def is_canonical(order, deps):
    """True iff ``order`` is the lex-least member of its trace class.

    ``order`` is a permutation of original event indices; the natural
    integer order on indices is the lexicographic base.
    """
    for j in range(1, len(order)):
        ej = order[j]
        for i in range(j - 1, -1, -1):
            ei = order[i]
            if not deps.independent(ei, ej):
                break
            if ej < ei:
                # ej commutes with everything in order[i..j-1], so an
                # equivalent word places it before the larger ei.
                return False
    return True


def canonical_orders(deps):
    """All canonical representatives, in lexicographic order."""
    n = len(deps)
    return [order for order in permutations(range(n))
            if is_canonical(order, deps)]


class EnumerationResult:
    """Canonical orders plus the explored/pruned/total bookkeeping."""

    __slots__ = ("orders", "pruned", "total")

    def __init__(self, orders, pruned, total):
        self.orders = orders
        self.pruned = pruned
        self.total = total

    @property
    def explored(self):
        return len(self.orders)

    @property
    def ratio(self):
        return self.total / max(1, len(self.orders))


def enumerate_orders(deps):
    """Enumerate all orders of ``len(deps)`` events, pruned to canonical
    representatives.  ``result.explored + result.pruned == result.total``
    holds by construction (the acceptance invariant)."""
    total = factorial(len(deps))
    orders = canonical_orders(deps)
    return EnumerationResult(orders, total - len(orders), total)


def trace_class(order, deps):
    """The full equivalence class of ``order`` (BFS over adjacent
    independent swaps).  Test/triage utility -- exponential in the
    worst case, only for small ``n``."""
    seen = {tuple(order)}
    frontier = [tuple(order)]
    while frontier:
        word = frontier.pop()
        for k in range(len(word) - 1):
            if deps.independent(word[k], word[k + 1]):
                swapped = list(word)
                swapped[k], swapped[k + 1] = swapped[k + 1], swapped[k]
                swapped = tuple(swapped)
                if swapped not in seen:
                    seen.add(swapped)
                    frontier.append(swapped)
    return seen
