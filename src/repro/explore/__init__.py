"""Bounded systematic exploration on top of the conformance harness.

PR 5's differential harness *samples* seeded schedules; this package
*enumerates* them for small bounded scenarios (<= ~8 events):

* :mod:`repro.explore.dpor` -- Mazurkiewicz-trace enumeration of event
  orders with DPOR-style pruning: two events commute unless they touch
  the same lock class, irq line, serio port, or XPC channel, and only
  the lexicographically-least representative of each equivalence class
  is replayed.  ``explored + pruned == total`` by construction.
* :mod:`repro.explore.footprint` -- empirical capture of each event's
  resource footprint (the dependency relation's ground truth) via the
  kernel's lockdep/irq/serio taps and the channel crossing counters.
* :mod:`repro.explore.explorer` -- drives the canonical orders, fault
  placements, and irq-deferral placements through
  :class:`~repro.conformance.runner.DifferentialRunner`; divergences
  minimize to standalone repro scripts via the PR-5 ddmin machinery.
* :mod:`repro.explore.adversary` -- a compromised user half: captured
  XPC crossings are replayed with mutated marshaled payloads at every
  decaf nucleus; the PR-4 boundary must contain all of it.

CLI: ``python -m repro.explore --driver e1000 --depth 6 --adversary``.
"""

from .adversary import AdversaryReport, MUTATIONS, run_adversary
from .dpor import (
    DependencyRelation,
    canonical_orders,
    enumerate_orders,
    is_canonical,
    trace_class,
)
from .explorer import ExploreReport, Explorer, run_defer_pair
from .footprint import FootprintProbe, capture_footprints

__all__ = [
    "AdversaryReport",
    "DependencyRelation",
    "ExploreReport",
    "Explorer",
    "FootprintProbe",
    "MUTATIONS",
    "canonical_orders",
    "capture_footprints",
    "enumerate_orders",
    "is_canonical",
    "run_adversary",
    "run_defer_pair",
    "trace_class",
]
