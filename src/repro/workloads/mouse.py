"""move-and-click: 30 seconds of continuous mouse input (Table 3).

Moves the mouse at its sample rate (100 Hz) with a click every second;
the driver decodes each packet in interrupt context.  Bandwidth is too
low to measure (as the paper notes), so the result reports CPU
utilization and event counts.
"""

from ..trace import begin_trace, finish_trace
from .result import WorkloadResult, health_summary_of


def move_and_click(rig, duration_s=30.0, trace=None):
    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    mouse = rig.device
    input_devs = kernel.input.devices
    if not input_devs:
        raise RuntimeError("no input device registered")
    input_dev = input_devs[0]

    events = {"count": 0}
    input_dev.sink = lambda evs: events.__setitem__(
        "count", events["count"] + len(evs)
    )

    x0 = rig.crossings()
    f0 = rig.fault_stats()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    sample_interval_ns = int(1e9 / max(1, mouse.sample_rate))

    t = 0
    packets = 0
    clicks = 0
    lost = 0
    while t < duration_s * 1e9:
        buttons = 1 if (t // 1_000_000_000) % 2 == 0 else 0
        if buttons and clicks * 1_000_000_000 <= t:
            clicks += 1
        if mouse.move(3, -1, buttons=buttons):
            packets += 1
        elif rig.supervisor is not None:
            # The device drops samples while reporting is off -- i.e.
            # during a supervised restart, until the replayed connect
            # re-enables it.
            lost += 1
        kernel.run_for_ns(sample_interval_ns)
        t += sample_interval_ns

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    f1 = rig.fault_stats()
    ds = rig.deferred_stats()
    result = WorkloadResult(
        name="move-and-click",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        packets=packets,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        faults_injected=f1[0] - f0[0],
        recoveries=f1[1] - f0[1],
        packets_lost=lost + (f1[2] - f0[2]),
        extra={"input_events": events["count"], "clicks": clicks},
    )
    finish_trace(session, result)
    return result
