"""tar-to-flash: untar an archive onto the USB 1.1 flash disk (Table 3).

Writes a synthetic archive file by file through ``usb_bulk_msg`` at
USB 1.1 full-speed bandwidth (~1.2 MB/s of bulk payload), with a small
per-file CPU cost for tar's header processing.  The paper reports
relative performance (elapsed time ratio) and CPU utilization.
"""

import struct

from ..kernel.usb import usb_sndbulkpipe
from ..trace import begin_trace, finish_trace
from .result import WorkloadResult, health_summary_of

BLOCK_SIZE = 512
TAR_HEADER_CPU_NS = 20_000


def tar_to_flash(rig, archive_bytes=2 * 1024 * 1024, file_size=64 * 1024,
                 trace=None):
    """Untar ``archive_bytes`` of payload; returns the result row."""
    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    devices = kernel.usb.devices
    if not devices:
        raise RuntimeError("no USB device enumerated")
    disk_dev = devices[0]
    pipe = usb_sndbulkpipe(disk_dev, 2)

    x0 = rig.crossings()
    f0 = rig.fault_stats()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns

    lba = 0
    written = 0
    nfiles = 0
    retried = 0
    while written < archive_bytes:
        this_file = min(file_size, archive_bytes - written)
        kernel.consume(TAR_HEADER_CPU_NS, busy=True, category="tar")
        blocks = (this_file + BLOCK_SIZE - 1) // BLOCK_SIZE
        # Write the file in bulk-transfer-sized chunks (16 KiB each).
        offset = 0
        while offset < blocks * BLOCK_SIZE:
            chunk_blocks = min(32, blocks - offset // BLOCK_SIZE)
            payload = bytes((nfiles + offset) & 0xFF
                            for _ in range(chunk_blocks * BLOCK_SIZE))
            cmd = struct.pack("<BBHI", 1, 0, chunk_blocks,
                              lba + offset // BLOCK_SIZE) + payload
            status, _n = kernel.usb.usb_bulk_msg(disk_dev, pipe, cmd,
                                                 timeout_ms=30_000)
            if status != 0:
                if rig.recovery_pending():
                    # Supervised restart in progress: re-queue this
                    # chunk once the driver is back instead of failing
                    # the whole archive.
                    retried += 1
                    kernel.run_for_ms(1)
                    continue
                raise RuntimeError("bulk write failed: %d" % status)
            offset += chunk_blocks * BLOCK_SIZE
        lba += blocks
        written += this_file
        nfiles += 1

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    f1 = rig.fault_stats()
    ds = rig.deferred_stats()
    result = WorkloadResult(
        name="tar",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        bytes_moved=written,
        packets=nfiles,
        throughput_mbps=written * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        faults_injected=f1[0] - f0[0],
        recoveries=f1[1] - f0[1],
        packets_lost=retried + (f1[2] - f0[2]),
        extra={"files": nfiles,
               "disk_blocks_written": rig.extra["disk"].writes},
    )
    finish_trace(session, result)
    return result
