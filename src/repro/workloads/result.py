"""Workload result record."""

from dataclasses import dataclass, field


def health_summary_of(kernel):
    """``HealthPlane.summary()`` of the kernel, or {} when none installed.

    Workloads call this at result-construction time so every
    WorkloadResult from a health-enabled rig carries the kstat
    snapshot, flight-recorder state and watchdog fires.
    """
    health = kernel.health
    return health.summary() if health is not None else {}


@dataclass
class WorkloadResult:
    """What one workload run measured (one Table 3 cell group)."""

    name: str
    duration_s: float = 0.0
    bytes_moved: int = 0
    packets: int = 0
    throughput_mbps: float = 0.0
    cpu_utilization: float = 0.0
    init_latency_s: float = 0.0
    kernel_user_crossings: int = 0
    lang_crossings: int = 0
    decaf_invocations: int = 0
    # Deferred one-way notifications (batched crossings): enqueued,
    # absorbed into a queued duplicate, and batches actually flushed.
    deferred_calls: int = 0
    deferred_coalesced: int = 0
    deferred_flushes: int = 0
    # NAPI datapath counters (zero when the per-packet IRQ path runs).
    napi_polls: int = 0
    napi_budget_exhaustions: int = 0
    napi_pkts_per_poll: dict = field(default_factory=dict)
    skb_pool_hit_rate: float = 0.0
    # Per-shard hit rates ({"shared": r, "cpu0": r, ...}) when the rx
    # path ran on per-CPU pool shards; empty on single-CPU kernels.
    skb_pool_cpu_hit_rates: dict = field(default_factory=dict)
    # Fault isolation / supervised recovery (zero when no faults were
    # injected or no supervisor was attached).
    faults_injected: int = 0
    recoveries: int = 0
    packets_lost: int = 0
    # Fleet harness dimensions (zero outside repro.fleet runs).
    fleet_devices: int = 0          # concurrent device slots
    churn_cycles: int = 0           # remove/re-probe cycles performed
    events_per_sec: float = 0.0     # simulator events per wall-clock second
    mem_bytes_per_device: float = 0.0  # tracemalloc bytes per device slot
    recovery_rate: float = 0.0      # recoveries / faults fired
    recovery_p50_ms: float = 0.0    # median fault->recovered outage
    recovery_p99_ms: float = 0.0
    device_model_fraction: float = 0.0  # device-model share of profiled time
    # ktrace summary (Tracer.summary()) when the workload ran traced.
    trace_summary: dict = field(default_factory=dict)
    # HealthPlane.summary() when the kernel ran with a health plane
    # installed (kstat snapshot, flight-recorder state, watchdog fires).
    health_summary: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def _pkts_per_poll_compact(self):
        """Weighted p50/max of the {work_done: count} poll histogram."""
        hist = self.napi_pkts_per_poll
        if not hist:
            return "-"
        total = sum(hist.values())
        rank = (total + 1) // 2
        seen = 0
        p50 = max(hist)
        for work in sorted(hist):
            seen += hist[work]
            if seen >= rank:
                p50 = work
                break
        return "p50=%d/max=%d" % (p50, max(hist))

    def row(self):
        row = {
            "workload": self.name,
            "throughput_mbps": round(self.throughput_mbps, 2),
            "cpu_utilization_pct": round(100 * self.cpu_utilization, 2),
            "init_latency_s": round(self.init_latency_s, 3),
            "crossings": self.kernel_user_crossings,
            "decaf_invocations": self.decaf_invocations,
            "deferred_calls": self.deferred_calls,
            "deferred_coalesced": self.deferred_coalesced,
            "deferred_flushes": self.deferred_flushes,
            "napi_polls": self.napi_polls,
            "napi_budget_exhaustions": self.napi_budget_exhaustions,
            "napi_pkts_per_poll": self._pkts_per_poll_compact(),
            "skb_pool_hit_rate": round(self.skb_pool_hit_rate, 4),
            "skb_pool_cpu_hit_rates": {
                label: round(rate, 4)
                for label, rate in sorted(self.skb_pool_cpu_hit_rates.items())
            },
            "faults_injected": self.faults_injected,
            "recoveries": self.recoveries,
            "packets_lost": self.packets_lost,
        }
        if self.fleet_devices:
            row["fleet_devices"] = self.fleet_devices
            row["churn_cycles"] = self.churn_cycles
            row["events_per_sec"] = round(self.events_per_sec, 1)
            row["mem_bytes_per_device"] = round(self.mem_bytes_per_device)
            row["recovery_rate"] = round(self.recovery_rate, 4)
            row["recovery_p50_ms"] = round(self.recovery_p50_ms, 3)
            row["recovery_p99_ms"] = round(self.recovery_p99_ms, 3)
            row["device_model_fraction"] = round(
                self.device_model_fraction, 4)
        if self.health_summary:
            fires = self.health_summary.get("watchdog_fires", {})
            row["watchdog_fires"] = sum(fires.values())
            row["health_dumps"] = self.health_summary.get("dumps", 0)
        # Scalar extras ride along (non-scalars, e.g. a whole Rig kept
        # for inspection, stay out of the printable row).
        for key, value in self.extra.items():
            if isinstance(value, (int, float, str, bool)):
                row.setdefault(key, value)
        return row
