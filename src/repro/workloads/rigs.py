"""Test rigs: kernel + device + driver, native or decaf.

A :class:`Rig` owns one simulated machine with one device and its
driver loaded.  ``decaf=True`` loads the split driver; ``decaf=False``
the legacy kernel-only driver.  The rig exposes the counters Table 3
needs: insmod latency and, for decaf rigs, the XPC crossing counts and
decaf-invocation counts.
"""

from ..devices import (
    E1000Device,
    Ens1371Device,
    EthernetLink,
    Ps2MouseDevice,
    Rtl8139Device,
    UhciDevice,
    UsbFlashDiskModel,
)
from ..kernel import make_kernel


def _install_health(kernel, health):
    """Install a HealthPlane when a builder is asked for one.

    ``health`` may be False (off), True (defaults), or a dict of
    HealthPlane keyword arguments (``dump_dir``, ``flight_capacity``,
    watchdog thresholds...).  Installed *before* the driver module is
    built so XPC channels self-register with the watchdog.
    """
    if not health:
        return None
    from ..health import HealthPlane

    kwargs = dict(health) if isinstance(health, dict) else {}
    return HealthPlane(kernel, **kwargs).install()


class Rig:
    def __init__(self, name, kernel, device, module, decaf, link=None,
                 extra=None):
        self.name = name
        self.kernel = kernel
        self.device = device
        self.module = module
        self.decaf = decaf
        self.link = link
        self.extra = extra or {}
        self.init_latency_ns = None
        self.supervisor = None
        self.injector = None

    def insmod(self):
        ret = self.kernel.modules.insmod(self.module)
        if ret != 0:
            raise RuntimeError("%s: insmod failed with %d" % (self.name, ret))
        self.init_latency_ns = self.kernel.modules.last_init_latency_ns
        return ret

    def rmmod(self, check_leaks=False):
        self.kernel.modules.rmmod(self.module.name, check_leaks=check_leaks)

    @property
    def xpc(self):
        if not self.decaf:
            return None
        return self.module.instance.plumbing.xpc

    def crossings(self):
        return self.xpc.kernel_user_crossings if self.xpc else 0

    def lang_crossings(self):
        return self.xpc.lang_crossings if self.xpc else 0

    def deferred_stats(self):
        """Deferred-notification counters (batched one-way crossings)."""
        if not self.xpc:
            return {"calls": 0, "coalesced": 0, "flushes": 0}
        return {
            "calls": self.xpc.deferred_calls,
            "coalesced": self.xpc.deferred_coalesced,
            "flushes": self.xpc.deferred_flushes,
        }

    def netdev(self):
        return self.kernel.net.find("eth0")

    @property
    def health(self):
        """The kernel's HealthPlane, or None (``health=`` builder arg)."""
        return self.kernel.health

    # -- fault isolation / supervised recovery (decaf rigs) -------------------

    @property
    def channel(self):
        if not self.decaf:
            return None
        return self.module.instance.plumbing.channel

    def supervise(self, max_recoveries=3):
        """Attach a DriverSupervisor to the loaded decaf driver."""
        if not self.decaf:
            raise RuntimeError("%s: only decaf rigs can be supervised"
                               % self.name)
        from ..recovery import DriverSupervisor

        self.supervisor = DriverSupervisor(
            self.kernel, self.module.instance,
            max_recoveries=max_recoveries,
        )
        return self.supervisor

    def inject_faults(self, plan):
        """Arm a FaultPlan against this rig; returns the injector."""
        from ..faults import FaultInjector

        self.injector = FaultInjector(self, plan)
        self.injector.arm()
        return self.injector

    def recovery_pending(self):
        sup = self.supervisor
        return bool(sup is not None and sup.recovery_pending())

    def fault_stats(self):
        """(faults fired, recoveries completed, kernel-side work lost)."""
        fired = self.injector.plan.fired if self.injector else 0
        sup = self.supervisor
        return (fired,
                sup.recoveries if sup else 0,
                sup.work_lost if sup else 0)


def make_8139too_rig(decaf=False, irq_mode="napi", nr_cpus=1,
                     rx_coalesce_ns=0, compiled=True, health=False):
    """``irq_mode="napi"`` (default) polls RX under a softirq budget;
    ``irq_mode="irq"`` keeps the seed per-packet interrupt path.
    ``rx_coalesce_ns`` opens the device's interrupt-coalescing window.
    ``compiled=False`` is the loop ablation: interpreted rx loop instead
    of the per-ring compiled closures (identical behaviour)."""
    napi = irq_mode == "napi"
    kernel = make_kernel(nr_cpus=nr_cpus)
    _install_health(kernel, health)
    link = EthernetLink(kernel, bits_per_second=100_000_000, name="100M")
    nic = Rtl8139Device(kernel, link, rx_coalesce_ns=rx_coalesce_ns)
    kernel.pci.add_function(nic.pci)
    if decaf:
        from ..drivers.decaf import rtl8139_nucleus

        module = rtl8139_nucleus.make_module(napi=napi, compiled=compiled)
    else:
        from ..drivers.legacy import rtl8139

        module = rtl8139.make_module(napi=napi, compiled=compiled)
    return Rig("8139too", kernel, nic, module, decaf, link=link)


def make_e1000_rig(decaf=False, options=None, irq_mode="napi", nr_cpus=1,
                   num_queues=1, rx_pending_cap=256, compiled=True,
                   health=False):
    """``irq_mode="napi"`` (default) polls RX under a softirq budget;
    ``irq_mode="irq"`` keeps the seed per-packet interrupt path and
    disables the device's ITR window so every cause fires an IRQ.
    ``num_queues`` > 1 enables the multi-queue datapath: the device
    RSS-steers flows across that many RX/TX queue pairs, and the driver
    runs one NAPI context per queue, spread across the ``nr_cpus``
    virtual CPUs by per-vector IRQ affinity."""
    napi = irq_mode == "napi"
    kernel = make_kernel(nr_cpus=nr_cpus)
    _install_health(kernel, health)
    link = EthernetLink(kernel, bits_per_second=1_000_000_000, name="1G")
    nic = E1000Device(kernel, link,
                      itr_window_ns=None if napi else 0,
                      num_queues=num_queues,
                      rx_pending_cap=rx_pending_cap)
    kernel.pci.add_function(nic.pci)
    if decaf:
        from ..drivers.decaf import e1000_nucleus

        module = e1000_nucleus.make_module(options=options, napi=napi,
                                           num_queues=num_queues,
                                           compiled=compiled)
    else:
        from ..drivers.legacy import e1000_main

        module = e1000_main.make_module(napi=napi, num_queues=num_queues,
                                        compiled=compiled)
    return Rig("e1000", kernel, nic, module, decaf, link=link)


def make_ens1371_rig(decaf=False, nr_cpus=1, health=False):
    # The decaf sound driver requires the mutex-based sound library
    # (paper section 3.1.3); the native driver runs on the stock one.
    kernel = make_kernel(sound_use_mutex=decaf, nr_cpus=nr_cpus)
    _install_health(kernel, health)
    card = Ens1371Device(kernel)
    kernel.pci.add_function(card.pci)
    if decaf:
        from ..drivers.decaf import ens1371_nucleus

        module = ens1371_nucleus.make_module()
    else:
        from ..drivers.legacy import ens1371

        module = ens1371.make_module()
    return Rig("ens1371", kernel, card, module, decaf)


def make_uhci_rig(decaf=False, nr_cpus=1, health=False):
    kernel = make_kernel(nr_cpus=nr_cpus)
    _install_health(kernel, health)
    controller = UhciDevice(kernel)
    disk = UsbFlashDiskModel()
    controller.attach(0, disk)
    kernel.pci.add_function(controller.pci)
    hook = lambda port: disk if port == 0 else None  # noqa: E731
    if decaf:
        from ..drivers.decaf import uhci_nucleus

        module = uhci_nucleus.make_module(device_model_hook=hook)
    else:
        from ..drivers.legacy import uhci_hcd

        module = uhci_hcd.make_module(device_model_hook=hook)
    return Rig("uhci_hcd", kernel, controller, module, decaf,
               extra={"disk": disk})


def make_psmouse_rig(decaf=False, nr_cpus=1, health=False):
    kernel = make_kernel(nr_cpus=nr_cpus)
    _install_health(kernel, health)
    port = kernel.input.new_serio_port()
    mouse = Ps2MouseDevice(kernel)
    mouse.attach(port)
    if decaf:
        from ..drivers.decaf import psmouse_nucleus

        module = psmouse_nucleus.make_module()
    else:
        from ..drivers.legacy import psmouse

        module = psmouse.make_module()
    return Rig("psmouse", kernel, mouse, module, decaf,
               extra={"port": port})
