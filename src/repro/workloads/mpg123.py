"""mpg123: 256 Kbps MP3 playback through the sound stack (Table 3).

Decoding a 256 Kbps stream to 44.1 kHz stereo 16-bit PCM costs a small
amount of CPU per chunk (mpg123 used ~0-0.1% of a 3 GHz CPU); the PCM
write path then blocks on the ring buffer at the hardware's pace, so
the workload is real-time-bound, exactly like the paper's.
"""

from ..kernel.sound import SNDRV_PCM_TRIGGER_START, SNDRV_PCM_TRIGGER_STOP
from ..trace import begin_trace, finish_trace
from .result import WorkloadResult, health_summary_of

MP3_BITRATE = 256_000
PCM_RATE = 44_100
PCM_CHANNELS = 2
PCM_SAMPLE_BYTES = 2

# Decode cost: ~2 ms CPU per second of audio on period-2005 hardware.
DECODE_NS_PER_AUDIO_SECOND = 2_000_000


def mpg123_play(rig, duration_s=10.0, period_bytes=4096, periods=4,
                trace=None):
    """Play ``duration_s`` seconds of audio; returns the result row."""
    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    cards = kernel.sound.cards
    if not cards:
        raise RuntimeError("no sound card registered")
    substream = cards[0].pcms[0].playback

    x0 = rig.crossings()
    f0 = rig.fault_stats()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns

    sound = kernel.sound
    ret = sound.pcm_open(substream)
    if ret != 0:
        raise RuntimeError("pcm_open failed: %d" % ret)
    ret = sound.pcm_hw_params(substream, PCM_RATE, PCM_CHANNELS,
                              PCM_SAMPLE_BYTES, period_bytes, periods)
    if ret != 0:
        raise RuntimeError("pcm_hw_params failed: %d" % ret)
    ret = sound.pcm_prepare(substream)
    if ret != 0:
        raise RuntimeError("pcm_prepare failed: %d" % ret)
    ret = sound.pcm_trigger(substream, SNDRV_PCM_TRIGGER_START)
    if ret != 0:
        raise RuntimeError("pcm_trigger(start) failed: %d" % ret)

    bytes_per_second = PCM_RATE * PCM_CHANNELS * PCM_SAMPLE_BYTES
    total_bytes = int(duration_s * bytes_per_second)
    chunk = period_bytes
    written = 0
    dropped = 0
    while written < total_bytes:
        n = min(chunk, total_bytes - written)
        # MP3 decode cost for this chunk.
        kernel.consume(
            int(DECODE_NS_PER_AUDIO_SECOND * n / bytes_per_second),
            busy=True, category="mpg123",
        )
        accepted = sound.pcm_write(substream, n)
        if accepted <= 0:
            if rig.recovery_pending():
                # Supervised restart in progress: the chunk is dropped
                # audio, not end-of-stream.  Let the recovery work item
                # run and carry on with the next chunk.
                dropped += 1
                written += n
                kernel.run_for_ms(1)
                continue
            break
        written += accepted

    sound.pcm_trigger(substream, SNDRV_PCM_TRIGGER_STOP)
    sound.pcm_close(substream)

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    f1 = rig.fault_stats()
    ds = rig.deferred_stats()
    result = WorkloadResult(
        name="mpg123",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        bytes_moved=written,
        throughput_mbps=written * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        faults_injected=f1[0] - f0[0],
        recoveries=f1[1] - f0[1],
        packets_lost=dropped + (f1[2] - f0[2]),
        extra={
            "periods_elapsed": substream.runtime.periods_elapsed,
            "device_interrupts": getattr(rig.device, "period_interrupts", 0),
        },
    )
    finish_trace(session, result)
    return result
