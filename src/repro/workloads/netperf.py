"""netperf: TCP/UDP-style streaming benchmarks (Table 3).

``netperf_send`` saturates the transmit path (flow-controlled by the
driver's queue state and the link's wire pacing); ``netperf_recv``
receives from a remote generator at near line rate; ``netperf_udp_rr``
is the 1-byte-message UDP test the paper ran on E1000.

Durations are virtual seconds.  The paper ran 600 s iterations on real
hardware; the simulator is deterministic, so a few virtual seconds
give exact, stable numbers (configurable for longer runs).
"""

from ..kernel import NETDEV_TX_OK, SkBuff
from .result import WorkloadResult


def _open_dev(rig):
    dev = rig.netdev()
    if dev is None:
        raise RuntimeError("no network device registered")
    ret = rig.kernel.net.dev_open(dev)
    if ret != 0:
        raise RuntimeError("dev_open failed: %d" % ret)
    # Let autonegotiation and the first watchdog tick finish.
    rig.kernel.run_for_ms(50)
    return dev


def netperf_send(rig, duration_s=2.0, msg_bytes=1500):
    """Saturating send; returns throughput and CPU utilization."""
    kernel = rig.kernel
    dev = _open_dev(rig)
    payload = bytes(msg_bytes)

    x0 = rig.crossings()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    end_ns = start_ns + int(duration_s * 1e9)
    sent_packets = 0
    sent_bytes = 0

    while kernel.clock.now_ns < end_ns:
        if dev.netif_queue_stopped():
            t = kernel.events.peek_time()
            kernel.run_until(min(end_ns, t if t is not None else end_ns))
            continue
        rc = kernel.net.dev_queue_xmit(dev, SkBuff(payload))
        if rc == NETDEV_TX_OK:
            sent_packets += 1
            sent_bytes += msg_bytes
        else:
            t = kernel.events.peek_time()
            kernel.run_until(min(end_ns, t if t is not None else end_ns))

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    result = WorkloadResult(
        name="netperf-send",
        duration_s=elapsed_s,
        bytes_moved=sent_bytes,
        packets=sent_packets,
        throughput_mbps=sent_bytes * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=rig.deferred_stats()["calls"],
        deferred_coalesced=rig.deferred_stats()["coalesced"],
        deferred_flushes=rig.deferred_stats()["flushes"],
        decaf_invocations=rig.crossings() - x0,
    )
    kernel.net.dev_close(dev)
    return result


def netperf_recv(rig, duration_s=2.0, msg_bytes=1500, utilization=0.95):
    """Receive from a remote generator at ~line rate."""
    from ..devices import TrafficGenerator

    kernel = rig.kernel
    dev = _open_dev(rig)
    generator = TrafficGenerator(kernel, rig.link, frame_bytes=msg_bytes,
                                 utilization=utilization)

    received = {"packets": 0, "bytes": 0}

    def sink(_dev, skb):
        received["packets"] += 1
        received["bytes"] += len(skb)

    kernel.net.rx_sink = sink
    x0 = rig.crossings()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    generator.start()
    kernel.run_for_s(duration_s)
    generator.stop()
    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9

    result = WorkloadResult(
        name="netperf-recv",
        duration_s=elapsed_s,
        bytes_moved=received["bytes"],
        packets=received["packets"],
        throughput_mbps=received["bytes"] * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=rig.deferred_stats()["calls"],
        deferred_coalesced=rig.deferred_stats()["coalesced"],
        deferred_flushes=rig.deferred_stats()["flushes"],
        decaf_invocations=rig.crossings() - x0,
    )
    kernel.net.rx_sink = None
    kernel.net.dev_close(dev)
    return result


def netperf_udp_rr(rig, duration_s=1.0, msg_bytes=1):
    """UDP request/response with 1-byte messages (E1000, section 4.2).

    Each round trip sends a tiny frame and receives the echo the link
    peer reflects back.
    """
    kernel = rig.kernel
    dev = _open_dev(rig)

    # Remote host: echo every received frame back after a short RTT.
    def echo(frame):
        kernel.events.schedule_after(
            30_000, lambda: rig.link.inject(frame), name="udp-echo"
        )

    rig.link.peer_rx = echo

    responses = {"count": 0}

    def sink(_dev, skb):
        responses["count"] += 1

    kernel.net.rx_sink = sink
    # Minimum Ethernet payload still makes a 60-byte frame on the wire.
    payload = bytes(max(60, msg_bytes))

    x0 = rig.crossings()
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    end_ns = start_ns + int(duration_s * 1e9)
    sent = 0
    while kernel.clock.now_ns < end_ns:
        before = responses["count"]
        if kernel.net.dev_queue_xmit(dev, SkBuff(payload)) == NETDEV_TX_OK:
            sent += 1
        # Wait for the echo (request/response semantics).
        while responses["count"] == before:
            t = kernel.events.peek_time()
            if t is None or t > end_ns:
                break
            kernel.run_until(t)
        else:
            continue
        if responses["count"] == before:
            break

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    result = WorkloadResult(
        name="netperf-udp-rr",
        duration_s=elapsed_s,
        bytes_moved=sent * len(payload),
        packets=sent,
        throughput_mbps=responses["count"] / elapsed_s / 1000.0,  # kTPS
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=rig.deferred_stats()["calls"],
        deferred_coalesced=rig.deferred_stats()["coalesced"],
        deferred_flushes=rig.deferred_stats()["flushes"],
        decaf_invocations=rig.crossings() - x0,
        extra={"transactions": responses["count"]},
    )
    kernel.net.rx_sink = None
    rig.link.peer_rx = None
    kernel.net.dev_close(dev)
    return result
